//! Inspect what the way-placement layout pass actually does to a
//! binary: chains, weights, the final order, and dynamic coverage.
//!
//! ```text
//! cargo run --release --example layout_explorer [benchmark]
//! ```

use wp_bench::{Engine, SharedError};
use wp_core::wp_linker::Layout;
use wp_core::wp_workloads::{Benchmark, InputSet};

fn main() -> Result<(), SharedError> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "crc".into());
    let benchmark =
        Benchmark::by_name(&name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    let workbench = Engine::global().workbench(benchmark)?;
    let profile = workbench.profile();

    let natural = workbench.link(Layout::Natural, InputSet::Large)?;
    let optimised = workbench.link(Layout::WayPlacement, InputSet::Large)?;

    println!("== {benchmark} ==");
    println!(
        "text: {} instructions in {} basic blocks, {} chains",
        natural.image.text.len(),
        natural.icfg.len(),
        natural.chains.len()
    );
    println!("cold blocks (never executed in training): {:.1}%\n", profile.cold_fraction() * 100.0);

    println!("-- ten heaviest chains (weight = dynamic instructions) --");
    let mut chains = natural.chains.clone();
    chains.sort_by_key(|c| std::cmp::Reverse(c.weight));
    for (rank, chain) in chains.iter().take(10).enumerate() {
        let head = &natural.icfg.blocks()[chain.blocks[0]];
        let label = head.labels.first().map(String::as_str).unwrap_or("(anonymous)");
        let insns: usize = chain.blocks.iter().map(|&b| natural.icfg.blocks()[b].len).sum();
        println!(
            "  #{rank:<2} weight {:>10}  {:>4} blocks {:>5} insns  head `{label}` @ {:#x} -> {:#x}",
            chain.weight,
            chain.blocks.len(),
            insns,
            natural.block_final_addr(head.natural_id),
            optimised.block_final_addr(head.natural_id),
        );
    }

    println!("\n-- start of the way-placement area (optimised layout) --");
    for line in optimised.image.disassemble().iter().take(12) {
        for label in &line.labels {
            println!("{label}:");
        }
        match &line.target {
            Some(target) => println!("  {:#010x}  {:<28} ; -> {target}", line.addr, line.text),
            None => println!("  {:#010x}  {}", line.addr, line.text),
        }
    }

    println!("\n-- dynamic-fetch coverage of a prefix of the binary --");
    println!("{:>8} | {:>8} | {:>13} | {:>8}", "prefix", "natural", "way-placement", "pessimal");
    let pessimal = workbench.link(Layout::Pessimal, InputSet::Large)?;
    for kb in [1u32, 2, 4, 8, 16, 32] {
        println!(
            "{:>6}KB | {:>7.1}% | {:>12.1}% | {:>7.1}%",
            kb,
            natural.coverage_of_prefix(profile, kb * 1024) * 100.0,
            optimised.coverage_of_prefix(profile, kb * 1024) * 100.0,
            pessimal.coverage_of_prefix(profile, kb * 1024) * 100.0,
        );
    }
    Ok(())
}
