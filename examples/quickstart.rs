//! Quickstart: reproduce the paper's headline claim on one benchmark.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Profiles `sha` on its training input, relinks it hottest-chain-first,
//! and compares the three schemes of the paper's initial evaluation on
//! the XScale's 32 KB, 32-way instruction cache — all through the
//! shared experiment engine, so the profile is gathered exactly once
//! and the baseline measurement is shared by both comparisons.

use wp_bench::{Engine, SharedError};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::Scheme;

fn main() -> Result<(), SharedError> {
    let engine = Engine::global();
    let benchmark = Benchmark::Sha;
    println!("profiling `{benchmark}` on the small input set...");
    let workbench = engine.workbench(benchmark)?;
    println!(
        "  {} training instructions, {} basic blocks profiled\n",
        workbench.profiling_instructions(),
        workbench.profile().len(),
    );

    let geom = CacheGeometry::xscale_icache();
    let baseline = engine.baseline(benchmark, geom, InputSet::Large)?;
    println!("running the large-input measurement on {geom}:");
    println!(
        "  {:<24} {:>12} cycles | I-cache {:>7.1} uJ",
        "baseline",
        baseline.run.cycles,
        baseline.energy.icache_pj() / 1e6,
    );
    for scheme in [Scheme::WayMemoization, Scheme::WayPlacement { area_bytes: 32 * 1024 }] {
        let m = engine.measure(benchmark, geom, scheme, InputSet::Large)?;
        println!(
            "  {:<24} {:>12} cycles | I-cache {:>7.1} uJ | energy x{:.3} | ED {:.3}",
            m.scheme.label(),
            m.run.cycles,
            m.energy.icache_pj() / 1e6,
            m.normalized_icache_energy(&baseline),
            m.ed_product(&baseline),
        );
    }
    println!();
    println!("paper (figure 4 averages): way-memoization ~0.68x, way-placement ~0.50x, ED ~0.93");
    eprintln!("{}", engine.stats());
    Ok(())
}
