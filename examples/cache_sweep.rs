//! Sweep cache geometry and way-placement area size for one benchmark.
//!
//! ```text
//! cargo run --release --example cache_sweep [benchmark]
//! ```
//!
//! The per-benchmark version of figures 5 and 6: how the savings move
//! with cache size, associativity and the OS's choice of area size —
//! all from one profile and one relink (the paper's "no recompilation"
//! property). On the engine, that property is enforced by the caches:
//! the final stats line proves one workbench build served the whole
//! sweep.

use wp_bench::{Engine, SharedError};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::Scheme;

fn main() -> Result<(), SharedError> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cjpeg".into());
    let benchmark =
        Benchmark::by_name(&name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    let engine = Engine::global();
    let workbench = engine.workbench(benchmark)?;
    println!(
        "== {benchmark}: text {} KB, profile {} blocks ==\n",
        workbench.text_bytes()? / 1024,
        workbench.profile().len()
    );

    println!("-- way-placement area sweep on the 32KB, 32-way cache --");
    let geom = CacheGeometry::xscale_icache();
    let baseline = engine.baseline(benchmark, geom, InputSet::Large)?;
    for area_kb in [32u32, 16, 8, 4, 2, 1] {
        let scheme = Scheme::WayPlacement { area_bytes: area_kb * 1024 };
        let m = engine.measure(benchmark, geom, scheme, InputSet::Large)?;
        println!(
            "  area {:>2} KB: energy x{:.3}, ED {:.3}",
            area_kb,
            m.normalized_icache_energy(&baseline),
            m.ed_product(&baseline),
        );
    }

    println!("\n-- geometry grid (8KB area) --");
    for size_kb in [16u32, 32, 64] {
        for ways in [8u32, 16, 32] {
            let geom = CacheGeometry::new(size_kb * 1024, ways, 32);
            let baseline = engine.baseline(benchmark, geom, InputSet::Large)?;
            let wp = engine.measure(
                benchmark,
                geom,
                Scheme::WayPlacement { area_bytes: 8 * 1024 },
                InputSet::Large,
            )?;
            let memo = engine.measure(benchmark, geom, Scheme::WayMemoization, InputSet::Large)?;
            println!(
                "  {:<32} wp x{:.3} (ED {:.3}) | memo x{:.3} (ED {:.3})",
                geom.to_string(),
                wp.normalized_icache_energy(&baseline),
                wp.ed_product(&baseline),
                memo.normalized_icache_energy(&baseline),
                memo.ed_product(&baseline),
            );
        }
    }
    eprintln!("{}", engine.stats());
    Ok(())
}
