//! Per-structure energy breakdown for one benchmark under each scheme.
//!
//! ```text
//! cargo run --release --example benchmark_energy [benchmark]
//! ```
//!
//! Shows *where* the joules go — CAM tag searches vs data array vs
//! fills vs link maintenance — which is the mechanism behind every
//! figure in the paper: way-placement removes tag energy; way-
//! memoization removes tag energy but widens the data array.

use wp_bench::{Engine, SharedError};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{Measurement, Scheme};

fn breakdown(m: &Measurement) {
    let e = &m.energy.icache;
    println!("{:<24}", m.scheme.label());
    println!("    tag (CAM search)   {:>10.2} uJ", e.tag_pj / 1e6);
    println!("    data array reads   {:>10.2} uJ", e.data_pj / 1e6);
    println!("    line fills         {:>10.2} uJ", e.fill_pj / 1e6);
    if e.link_pj > 0.0 {
        println!("    link maintenance   {:>10.2} uJ", e.link_pj / 1e6);
    }
    if e.hint_pj > 0.0 {
        println!("    way-hint bit       {:>10.2} uJ", e.hint_pj / 1e6);
    }
    println!("    I-cache total      {:>10.2} uJ", m.energy.icache_pj() / 1e6);
    println!(
        "    whole processor    {:>10.2} uJ ({:.1}% I-cache)",
        m.energy.total_pj() / 1e6,
        m.energy.icache_share() * 100.0,
    );
    println!(
        "    fetch events: {} fetches, {:.2} tags/fetch, {} same-line elisions, {} link hits",
        m.run.fetch.fetches,
        m.run.fetch.tags_per_fetch(),
        m.run.fetch.same_line_elisions,
        m.run.fetch.link_hits,
    );
}

fn main() -> Result<(), SharedError> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "rijndael_e".into());
    let benchmark = Benchmark::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`; see `Benchmark::ALL`"));
    let engine = Engine::global();
    let geom = CacheGeometry::xscale_icache();
    println!("== {benchmark} on {geom} ==\n");
    for scheme in
        [Scheme::Baseline, Scheme::WayMemoization, Scheme::WayPlacement { area_bytes: 32 * 1024 }]
    {
        let m = engine.measure(benchmark, geom, scheme, InputSet::Large)?;
        breakdown(&m);
        println!();
    }
    Ok(())
}
