//! Print a benchmark's full linked disassembly under a chosen layout.
//!
//! ```text
//! cargo run --release --example disassemble [benchmark] [natural|way-placement|pessimal]
//! ```

use wp_bench::{Engine, SharedError};
use wp_core::wp_linker::Layout;
use wp_core::wp_workloads::{Benchmark, InputSet};

fn main() -> Result<(), SharedError> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "bitcount".into());
    let layout = match args.next().as_deref() {
        None | Some("way-placement") => Layout::WayPlacement,
        Some("natural") => Layout::Natural,
        Some("pessimal") => Layout::Pessimal,
        Some(other) => panic!("unknown layout `{other}`"),
    };
    let benchmark =
        Benchmark::by_name(&name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    let workbench = Engine::global().workbench(benchmark)?;
    let output = workbench.link(layout, InputSet::Small)?;
    print!("{}", output.image.disassembly());
    Ok(())
}
