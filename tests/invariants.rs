//! Property-based tests of the core data-structure invariants, driven
//! by proptest.

use proptest::prelude::*;

use wp_core::wp_isa::{
    canonical, AddrMode, Address, AluOp, Cond, Insn, MemOffset, MemWidth, Op, Operand, Reg,
    RegList, ShiftAmount, ShiftKind,
};
use wp_core::wp_mem::{
    CacheGeometry, FetchScheme, ICacheConfig, InstructionCache, MemoryConfig, Tlb, TlbConfig,
};

// ---------- strategies ------------------------------------------------

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn any_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn any_shift_kind() -> impl Strategy<Value = ShiftKind> {
    prop::sample::select(ShiftKind::ALL.to_vec())
}

fn any_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u32..=Operand::MAX_IMM).prop_map(Operand::Imm),
        (any_reg(), any_shift_kind(), 0u8..32).prop_map(|(rm, kind, amt)| Operand::Reg {
            rm,
            kind,
            amount: ShiftAmount::Imm(amt),
        }),
        (any_reg(), any_shift_kind(), any_reg()).prop_map(|(rm, kind, rs)| Operand::Reg {
            rm,
            kind,
            amount: ShiftAmount::Reg(rs),
        }),
    ]
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            prop::sample::select(AluOp::ALL.to_vec()),
            any::<bool>(),
            any_reg(),
            any_reg(),
            any_operand()
        )
            .prop_map(|(op, s, rd, rn, op2)| Op::Alu { op, s, rd, rn, op2 }),
        (any::<bool>(), any_reg(), any::<u16>())
            .prop_map(|(top, rd, imm)| Op::Mov16 { top, rd, imm }),
        (
            any::<bool>(),
            prop::sample::select(vec![MemWidth::Word, MemWidth::Byte, MemWidth::Half]),
            any::<bool>(),
            any_reg(),
            any_reg(),
            -511i32..=511,
            prop::sample::select(vec![AddrMode::Offset, AddrMode::PreIndex, AddrMode::PostIndex]),
        )
            .prop_map(|(load, width, signed, rd, base, imm, mode)| Op::Mem {
                load,
                width,
                signed: signed && load && width != MemWidth::Word,
                rd,
                addr: Address { base, offset: MemOffset::Imm(imm), mode },
            }),
        (-(1 << 23)..(1 << 23), any::<bool>())
            .prop_map(|(offset, link)| Op::Branch { link, offset }),
        any_reg().prop_map(|rm| Op::BranchReg { rm }),
        (1u16..=0xffff).prop_map(|mask| Op::Push {
            list: RegList::from_mask(mask & 0x7fff) // pc cannot be pushed
        }),
        (1u16..=0xffff).prop_map(|mask| Op::Pop { list: RegList::from_mask(mask) }),
        (0u32..1 << 24).prop_map(|imm| Op::Swi { imm }),
        Just(Op::Nop),
    ]
}

fn any_insn() -> impl Strategy<Value = Insn> {
    (any_cond(), any_op()).prop_map(|(cond, op)| Insn { cond, op })
}

// ---------- ISA properties --------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every encodable instruction round-trips through its word,
    /// modulo canonicalisation of don't-care fields.
    #[test]
    fn encode_decode_round_trip(insn in any_insn()) {
        let expected = canonical(insn);
        let word = expected.encode();
        let decoded = Insn::decode(word).expect("generated instructions decode");
        prop_assert_eq!(decoded, expected);
    }

    /// The barrel shifter never panics and zero-amount shifts are
    /// identity with carry pass-through.
    #[test]
    fn shifter_total(value in any::<u32>(), amount in 0u32..256, carry in any::<bool>()) {
        for kind in ShiftKind::ALL {
            let (result, _c) = kind.apply(value, amount, carry);
            if amount == 0 {
                prop_assert_eq!(result, value);
            }
            // Shifts of 32+ collapse to fills for non-rotates.
            if amount >= 32 && kind == ShiftKind::Lsl {
                prop_assert_eq!(result, 0);
            }
        }
    }

    /// Condition codes and their inverses partition the flag space.
    #[test]
    fn cond_inverse_partitions(bits in 0u8..16) {
        let flags = wp_core::wp_isa::Flags {
            n: bits & 8 != 0,
            z: bits & 4 != 0,
            c: bits & 2 != 0,
            v: bits & 1 != 0,
        };
        for cond in Cond::ALL {
            if cond != Cond::Al {
                prop_assert_ne!(cond.holds(flags), cond.inverse().holds(flags));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The assembler parses everything the disassembler prints (for the
    /// non-branch instruction classes — branch displacements print as
    /// relative annotations, not as parseable labels).
    #[test]
    fn display_is_assemblable(insn in any_insn()) {
        let insn = canonical(insn);
        prop_assume!(!matches!(insn.op, Op::Branch { .. }));
        // `swi` with condition suffixes collides with nothing; `push`
        // never contains pc (guaranteed by the strategy).
        let source = format!("    .text\n    {insn}\n");
        let module = wp_core::wp_isa::assemble("roundtrip", &source)
            .map_err(|e| TestCaseError::fail(format!("{insn}: {e}")))?;
        prop_assert_eq!(module.text.len(), 1, "{} should be one instruction", insn);
        prop_assert_eq!(module.text[0].insn, insn, "{}", insn);
    }
}

// ---------- cache properties -------------------------------------------

/// A reference set model: a cache of capacity sets*ways must never
/// report a hit for a line it has not admitted.
#[derive(Default)]
struct SetModel {
    admitted: std::collections::HashSet<u32>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Way-placement invariant: lines from the WP region only ever
    /// reside in their mapped way, for arbitrary interleavings of WP
    /// and normal fetches.
    #[test]
    fn way_placed_lines_stay_in_their_way(
        accesses in prop::collection::vec((any::<u16>(), any::<bool>()), 1..600)
    ) {
        let geom = CacheGeometry::new(2048, 4, 32);
        let wp_limit = 2048u32;
        let mut cache = InstructionCache::new(ICacheConfig::way_placement(geom));
        for (raw, in_wp) in accesses {
            // WP accesses land below the limit, normal ones above it.
            let addr = if in_wp {
                u32::from(raw) % wp_limit
            } else {
                wp_limit + u32::from(raw)
            };
            cache.fetch(addr & !3, in_wp);
            prop_assert!(cache.way_placement_invariant_holds(wp_limit));
        }
    }

    /// Cache hits are sound: a hit implies the line was fetched before
    /// (no line materialises from nowhere), under every scheme.
    #[test]
    fn hits_are_sound(
        addrs in prop::collection::vec(any::<u16>(), 1..400),
        scheme_pick in 0u8..3
    ) {
        let geom = CacheGeometry::new(1024, 4, 32);
        let config = match scheme_pick {
            0 => ICacheConfig::baseline(geom),
            1 => ICacheConfig::way_placement(geom),
            _ => ICacheConfig::way_memoization(geom),
        };
        let mut cache = InstructionCache::new(config);
        let mut model = SetModel::default();
        for raw in addrs {
            let addr = u32::from(raw) & !3;
            let line = geom.line_addr(addr);
            let outcome = cache.fetch(addr, addr < 512);
            if outcome.hit {
                prop_assert!(
                    model.admitted.contains(&line),
                    "hit on never-fetched line {line:#x}"
                );
            }
            model.admitted.insert(line);
        }
    }

    /// The TLB's way-placement bit is exactly `page entirely below the
    /// limit`, across random lookups and page sizes.
    #[test]
    fn tlb_wp_bit_matches_limit(
        addrs in prop::collection::vec(any::<u32>(), 1..200),
        pages in 1u32..16,
        page_shift in 10u32..13
    ) {
        let page_bytes = 1 << page_shift;
        let limit = pages * page_bytes;
        let mut tlb = Tlb::new(
            TlbConfig { entries: 8, page_bytes, miss_penalty: 10 },
            limit,
        );
        for addr in addrs {
            let outcome = tlb.lookup(addr);
            let page_base = addr & !(page_bytes - 1);
            let expected = page_base.saturating_add(page_bytes) <= limit;
            prop_assert_eq!(outcome.wp, expected, "addr {:#x}", addr);
        }
    }

    /// Fetch stats identities hold for arbitrary access streams:
    /// fetches = hits + misses, and data reads cover every fetch.
    #[test]
    fn fetch_stats_identities(
        addrs in prop::collection::vec(any::<u16>(), 1..500),
        scheme_pick in 0u8..3
    ) {
        let geom = CacheGeometry::new(1024, 4, 32);
        let config = match scheme_pick {
            0 => ICacheConfig::baseline(geom),
            1 => ICacheConfig::way_placement(geom),
            _ => ICacheConfig::way_memoization(geom),
        };
        let mut cache = InstructionCache::new(config);
        for raw in &addrs {
            let addr = u32::from(*raw) & !3;
            cache.fetch(addr, addr < 512);
        }
        let s = cache.stats();
        prop_assert_eq!(s.fetches, addrs.len() as u64);
        prop_assert_eq!(s.hits + s.misses, s.fetches);
        // Every fetch reads the data array at least once; hint
        // mispredictions re-read.
        prop_assert!(s.data_reads >= s.fetches);
        prop_assert_eq!(s.matchline_precharges, s.tag_comparisons);
    }
}

// ---------- layout properties ------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any profile drives a valid relink: the permutation maps are
    /// mutually inverse, chains stay contiguous, and the entry point
    /// still exists.
    #[test]
    fn relink_is_a_permutation(counts in prop::collection::vec(0u64..1000, 64)) {
        use wp_core::wp_linker::{Layout, Linker, Profile};
        let module = wp_core::wp_isa::assemble(
            "p",
            "
            _start:
                mov r4, #3
            .La: subs r4, r4, #1
                bne .La
                bl f
                bl g
                swi #0
            f:  mov r0, #1
                bx lr
            g:  cmp r0, #2
                beq .Lg1
                mov r0, #2
            .Lg1:
                bx lr
            h:  mov r0, #9
                bx lr
            ",
        ).expect("asm");
        let linker = Linker::new().with_module(module);
        let natural = linker.link(Layout::Natural, &Profile::empty()).expect("link");
        let profile = Profile::from_counts(
            counts[..natural.icfg.len().min(counts.len())].to_vec(),
        );
        for layout in [Layout::WayPlacement, Layout::Random(9), Layout::Pessimal] {
            let out = linker.link(layout, &profile).expect("relink");
            prop_assert_eq!(out.image.text.len(), natural.image.text.len());
            for (final_idx, &nat) in out.natural_of_final.iter().enumerate() {
                prop_assert_eq!(out.final_of_natural[nat], final_idx);
            }
            // Blocks of one chain remain contiguous in the final order.
            for chain in &out.chains {
                for pair in chain.blocks.windows(2) {
                    let a = &out.icfg.blocks()[pair[0]];
                    let b = &out.icfg.blocks()[pair[1]];
                    prop_assert_eq!(
                        out.final_of_natural[a.start] + a.len,
                        out.final_of_natural[b.start]
                    );
                }
            }
            prop_assert!(out.image.symbol("_start").is_ok());
        }
    }
}

// ---------- memory-config properties ------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Memory configs are constructible for every legal geometry and the
    /// fetch scheme matches the constructor.
    #[test]
    fn memory_config_constructors(size_log in 12u32..17, ways_log in 1u32..6) {
        let size = 1u32 << size_log;
        let ways = 1u32 << ways_log;
        prop_assume!(size >= ways * 32);
        let geom = CacheGeometry::new(size, ways, 32);
        prop_assert_eq!(
            MemoryConfig::baseline(geom).icache.scheme,
            FetchScheme::Baseline
        );
        prop_assert_eq!(
            MemoryConfig::way_memoization(geom).icache.scheme,
            FetchScheme::WayMemoization
        );
        let wp = MemoryConfig::way_placement(geom, 0x8000, 4096);
        prop_assert_eq!(wp.icache.scheme, FetchScheme::WayPlacement);
        prop_assert_eq!(wp.wp_limit, 0x8000 + 4096);
    }
}
