//! Property-based tests of the core data-structure invariants.
//!
//! The offline build cannot fetch `proptest`, so these properties run
//! on a dependency-free sampler: each test draws its cases from a
//! seeded [`SplitMix64`] stream, so every run checks the same cases and
//! a failure message pins down the reproducing case index.

use wp_core::wp_isa::{
    canonical, AddrMode, Address, AluOp, Cond, Flags, Insn, MemOffset, MemWidth, Op, Operand, Reg,
    RegList, ShiftAmount, ShiftKind,
};
use wp_core::wp_mem::rng::SplitMix64;
use wp_core::wp_mem::{
    CacheGeometry, FetchScheme, ICacheConfig, InstructionCache, MemoryConfig, Tlb, TlbConfig,
};

// ---------- samplers ---------------------------------------------------

fn any_reg(rng: &mut SplitMix64) -> Reg {
    Reg::new(rng.below(16) as u8)
}

fn pick<T: Copy>(rng: &mut SplitMix64, items: &[T]) -> T {
    items[rng.index(items.len())]
}

fn any_operand(rng: &mut SplitMix64) -> Operand {
    match rng.below(3) {
        0 => Operand::Imm(rng.below(u64::from(Operand::MAX_IMM) + 1) as u32),
        1 => Operand::Reg {
            rm: any_reg(rng),
            kind: pick(rng, &ShiftKind::ALL),
            amount: ShiftAmount::Imm(rng.below(32) as u8),
        },
        _ => Operand::Reg {
            rm: any_reg(rng),
            kind: pick(rng, &ShiftKind::ALL),
            amount: ShiftAmount::Reg(any_reg(rng)),
        },
    }
}

fn any_op(rng: &mut SplitMix64) -> Op {
    match rng.below(10) {
        0 | 1 => Op::Alu {
            op: pick(rng, &AluOp::ALL),
            s: rng.flip(),
            rd: any_reg(rng),
            rn: any_reg(rng),
            op2: any_operand(rng),
        },
        2 => Op::Mov16 { top: rng.flip(), rd: any_reg(rng), imm: rng.next_u64() as u16 },
        3 | 4 => {
            let load = rng.flip();
            let width = pick(rng, &[MemWidth::Word, MemWidth::Byte, MemWidth::Half]);
            let signed = rng.flip();
            Op::Mem {
                load,
                width,
                signed: signed && load && width != MemWidth::Word,
                rd: any_reg(rng),
                addr: Address {
                    base: any_reg(rng),
                    offset: MemOffset::Imm(rng.range_u64(0, 1022) as i32 - 511),
                    mode: pick(rng, &[AddrMode::Offset, AddrMode::PreIndex, AddrMode::PostIndex]),
                },
            }
        }
        5 => Op::Branch { link: rng.flip(), offset: rng.below(1 << 24) as i32 - (1 << 23) },
        6 => Op::BranchReg { rm: any_reg(rng) },
        7 => {
            // pc cannot be pushed; make the mask non-empty.
            let mask = (rng.next_u64() as u16 & 0x7fff).max(1);
            if rng.flip() {
                Op::Push { list: RegList::from_mask(mask) }
            } else {
                Op::Pop { list: RegList::from_mask((rng.next_u64() as u16).max(1)) }
            }
        }
        8 => Op::Swi { imm: rng.below(1 << 24) as u32 },
        _ => Op::Nop,
    }
}

fn any_insn(rng: &mut SplitMix64) -> Insn {
    Insn { cond: pick(rng, &Cond::ALL), op: any_op(rng) }
}

// ---------- ISA properties --------------------------------------------

/// Every encodable instruction round-trips through its word, modulo
/// canonicalisation of don't-care fields.
#[test]
fn encode_decode_round_trip() {
    let mut rng = SplitMix64::new(0x5eed_0001);
    for case in 0..512 {
        let expected = canonical(any_insn(&mut rng));
        let word = expected.encode();
        let decoded = Insn::decode(word).unwrap_or_else(|e| {
            panic!("case {case}: {expected} ({word:#010x}) must decode: {e:?}")
        });
        assert_eq!(decoded, expected, "case {case}: word {word:#010x}");
    }
}

/// The barrel shifter never panics and zero-amount shifts are identity.
#[test]
fn shifter_total() {
    let mut rng = SplitMix64::new(0x5eed_0002);
    for case in 0..512 {
        let value = rng.next_u32();
        let amount = rng.below(256) as u32;
        let carry = rng.flip();
        for kind in ShiftKind::ALL {
            let (result, _c) = kind.apply(value, amount, carry);
            if amount == 0 {
                assert_eq!(result, value, "case {case}: {kind:?} by 0");
            }
            if amount >= 32 && kind == ShiftKind::Lsl {
                assert_eq!(result, 0, "case {case}: lsl by {amount}");
            }
        }
    }
}

/// Condition codes and their inverses partition the flag space
/// (exhaustive — there are only 16 flag states).
#[test]
fn cond_inverse_partitions() {
    for bits in 0u8..16 {
        let flags =
            Flags { n: bits & 8 != 0, z: bits & 4 != 0, c: bits & 2 != 0, v: bits & 1 != 0 };
        for cond in Cond::ALL {
            if cond != Cond::Al {
                assert_ne!(
                    cond.holds(flags),
                    cond.inverse().holds(flags),
                    "{cond:?} on flags {bits:04b}"
                );
            }
        }
    }
}

/// The assembler parses everything the disassembler prints (for the
/// non-branch instruction classes — branch displacements print as
/// relative annotations, not as parseable labels).
#[test]
fn display_is_assemblable() {
    let mut rng = SplitMix64::new(0x5eed_0003);
    let mut checked = 0;
    while checked < 256 {
        let insn = canonical(any_insn(&mut rng));
        if matches!(insn.op, Op::Branch { .. }) {
            continue;
        }
        checked += 1;
        let source = format!("    .text\n    {insn}\n");
        let module = wp_core::wp_isa::assemble("roundtrip", &source)
            .unwrap_or_else(|e| panic!("{insn}: {e}"));
        assert_eq!(module.text.len(), 1, "{insn} should be one instruction");
        assert_eq!(module.text[0].insn, insn, "{insn}");
    }
}

// ---------- cache properties -------------------------------------------

/// Way-placement invariant: lines from the WP region only ever reside
/// in their mapped way, for arbitrary interleavings of WP and normal
/// fetches.
#[test]
fn way_placed_lines_stay_in_their_way() {
    let mut rng = SplitMix64::new(0x5eed_0004);
    for case in 0..64 {
        let geom = CacheGeometry::new(2048, 4, 32);
        let wp_limit = 2048u32;
        let mut cache = InstructionCache::new(ICacheConfig::way_placement(geom));
        let accesses = rng.range_u64(1, 600);
        for _ in 0..accesses {
            let raw = rng.next_u64() as u16;
            let in_wp = rng.flip();
            // WP accesses land below the limit, normal ones above it.
            let addr = if in_wp { u32::from(raw) % wp_limit } else { wp_limit + u32::from(raw) };
            cache.fetch(addr & !3, in_wp);
            assert!(
                cache.way_placement_invariant_holds(wp_limit),
                "case {case}: invariant broken at addr {addr:#x}"
            );
        }
    }
}

/// Cache hits are sound: a hit implies the line was fetched before (no
/// line materialises from nowhere), under every scheme.
#[test]
fn hits_are_sound() {
    let mut rng = SplitMix64::new(0x5eed_0005);
    for case in 0..64 {
        let geom = CacheGeometry::new(1024, 4, 32);
        let config = match case % 3 {
            0 => ICacheConfig::baseline(geom),
            1 => ICacheConfig::way_placement(geom),
            _ => ICacheConfig::way_memoization(geom),
        };
        let mut cache = InstructionCache::new(config);
        let mut admitted = std::collections::HashSet::new();
        for _ in 0..rng.range_u64(1, 400) {
            let addr = u32::from(rng.next_u64() as u16) & !3;
            let line = geom.line_addr(addr);
            let outcome = cache.fetch(addr, addr < 512);
            if outcome.hit {
                assert!(
                    admitted.contains(&line),
                    "case {case}: hit on never-fetched line {line:#x}"
                );
            }
            admitted.insert(line);
        }
    }
}

/// The TLB's way-placement bit is exactly `page entirely below the
/// limit`, across random lookups and page sizes.
#[test]
fn tlb_wp_bit_matches_limit() {
    let mut rng = SplitMix64::new(0x5eed_0006);
    for case in 0..64 {
        let page_bytes = 1u32 << rng.range_u64(10, 12);
        let pages = rng.range_u64(1, 15) as u32;
        let limit = pages * page_bytes;
        let mut tlb = Tlb::new(TlbConfig { entries: 8, page_bytes, miss_penalty: 10 }, limit);
        for _ in 0..rng.range_u64(1, 200) {
            let addr = rng.next_u32();
            let outcome = tlb.lookup(addr);
            let page_base = addr & !(page_bytes - 1);
            let expected = page_base.saturating_add(page_bytes) <= limit;
            assert_eq!(outcome.wp, expected, "case {case}: addr {addr:#x}");
        }
    }
}

/// Fetch stats identities hold for arbitrary access streams:
/// fetches = hits + misses, and data reads cover every fetch.
#[test]
fn fetch_stats_identities() {
    let mut rng = SplitMix64::new(0x5eed_0007);
    for case in 0..64 {
        let geom = CacheGeometry::new(1024, 4, 32);
        let config = match case % 3 {
            0 => ICacheConfig::baseline(geom),
            1 => ICacheConfig::way_placement(geom),
            _ => ICacheConfig::way_memoization(geom),
        };
        let mut cache = InstructionCache::new(config);
        let count = rng.range_u64(1, 500);
        for _ in 0..count {
            let addr = u32::from(rng.next_u64() as u16) & !3;
            cache.fetch(addr, addr < 512);
        }
        let s = cache.stats();
        assert_eq!(s.fetches, count, "case {case}");
        assert_eq!(s.hits + s.misses, s.fetches, "case {case}");
        // Every fetch reads the data array at least once; hint
        // mispredictions re-read.
        assert!(s.data_reads >= s.fetches, "case {case}");
        assert_eq!(s.matchline_precharges, s.tag_comparisons, "case {case}");
    }
}

// ---------- layout properties ------------------------------------------

/// Any profile drives a valid relink: the permutation maps are mutually
/// inverse, chains stay contiguous, and the entry point still exists.
#[test]
fn relink_is_a_permutation() {
    use wp_core::wp_linker::{Layout, Linker, Profile};
    let module = wp_core::wp_isa::assemble(
        "p",
        "
        _start:
            mov r4, #3
        .La: subs r4, r4, #1
            bne .La
            bl f
            bl g
            swi #0
        f:  mov r0, #1
            bx lr
        g:  cmp r0, #2
            beq .Lg1
            mov r0, #2
        .Lg1:
            bx lr
        h:  mov r0, #9
            bx lr
        ",
    )
    .expect("asm");
    let linker = Linker::new().with_module(module);
    let natural = linker.link(Layout::Natural, &Profile::empty()).expect("link");
    let mut rng = SplitMix64::new(0x5eed_0008);
    for case in 0..32 {
        let counts: Vec<u64> = (0..natural.icfg.len()).map(|_| rng.below(1000)).collect();
        let profile = Profile::from_counts(counts);
        for layout in [Layout::WayPlacement, Layout::Random(9), Layout::Pessimal] {
            let out = linker.link(layout, &profile).expect("relink");
            assert_eq!(out.image.text.len(), natural.image.text.len(), "case {case}");
            for (final_idx, &nat) in out.natural_of_final.iter().enumerate() {
                assert_eq!(out.final_of_natural[nat], final_idx, "case {case}");
            }
            // Blocks of one chain remain contiguous in the final order.
            for chain in &out.chains {
                for pair in chain.blocks.windows(2) {
                    let a = &out.icfg.blocks()[pair[0]];
                    let b = &out.icfg.blocks()[pair[1]];
                    assert_eq!(
                        out.final_of_natural[a.start] + a.len,
                        out.final_of_natural[b.start],
                        "case {case}: chain broken under {layout:?}"
                    );
                }
            }
            assert!(out.image.symbol("_start").is_ok(), "case {case}");
        }
    }
}

// ---------- memory-config properties ------------------------------------

/// Memory configs are constructible for every legal geometry and the
/// fetch scheme matches the constructor (exhaustive over the domain the
/// proptest version sampled).
#[test]
fn memory_config_constructors() {
    for size_log in 12u32..17 {
        for ways_log in 1u32..6 {
            let size = 1u32 << size_log;
            let ways = 1u32 << ways_log;
            if size < ways * 32 {
                continue;
            }
            let geom = CacheGeometry::new(size, ways, 32);
            assert_eq!(MemoryConfig::baseline(geom).icache.scheme, FetchScheme::Baseline);
            assert_eq!(
                MemoryConfig::way_memoization(geom).icache.scheme,
                FetchScheme::WayMemoization
            );
            let wp = MemoryConfig::way_placement(geom, 0x8000, 4096);
            assert_eq!(wp.icache.scheme, FetchScheme::WayPlacement);
            assert_eq!(wp.wp_limit, 0x8000 + 4096);
        }
    }
}
