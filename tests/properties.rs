//! Property tests for the end-to-end API surface: `align_area`
//! arithmetic and the layout-invariance of `Workbench::link`.
//!
//! Runs on the dependency-free seeded sampler (`wp_mem::rng`) because
//! `proptest` is unavailable offline; the seeds are fixed so every run
//! exercises identical cases.

use wp_core::wp_linker::Layout;
use wp_core::wp_mem::rng::SplitMix64;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{align_area, Workbench};

/// `align_area` is idempotent: aligning an aligned size is a no-op.
#[test]
fn align_area_is_idempotent() {
    let mut rng = SplitMix64::new(0xa11e_0001);
    for _ in 0..512 {
        let page = 1u32 << rng.range_u64(4, 16);
        let bytes = rng.next_u32() >> rng.below(16);
        let once = align_area(bytes, page);
        assert_eq!(align_area(once, page), once, "align({bytes}, {page})");
        // The result is aligned, covers the request, and overshoots by
        // less than one page.
        assert_eq!(once % page, 0, "align({bytes}, {page}) = {once}");
        assert!(once >= bytes);
        assert!(u64::from(once) < u64::from(bytes) + u64::from(page));
    }
}

/// `align_area` is monotone in the requested size.
#[test]
fn align_area_is_monotone() {
    let mut rng = SplitMix64::new(0xa11e_0002);
    for _ in 0..512 {
        let page = 1u32 << rng.range_u64(4, 16);
        let a = (rng.next_u32() >> 8).min(1 << 22);
        let b = (rng.next_u32() >> 8).min(1 << 22);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            align_area(lo, page) <= align_area(hi, page),
            "align({lo}, {page}) > align({hi}, {page})"
        );
    }
}

/// Relinking never changes the text size: every layout of every
/// benchmark emits exactly as many instructions as the natural link —
/// layout moves code, it must not add or drop any.
#[test]
fn link_preserves_text_length_across_layouts() {
    // Three PRNG-sampled benchmarks keep the test fast while still
    // rotating real programs through the property.
    let mut rng = SplitMix64::new(0xa11e_0003);
    let mut sampled = Vec::new();
    while sampled.len() < 3 {
        let candidate = Benchmark::ALL[rng.index(Benchmark::ALL.len())];
        if !sampled.contains(&candidate) {
            sampled.push(candidate);
        }
    }
    for benchmark in sampled {
        let workbench = Workbench::new(benchmark).expect("workbench");
        for set in [InputSet::Small, InputSet::Large] {
            let natural = workbench.link(Layout::Natural, set).expect("natural link");
            for layout in [
                Layout::WayPlacement,
                Layout::Pessimal,
                Layout::Random(rng.next_u64()),
                Layout::Random(rng.next_u64()),
            ] {
                let relinked = workbench.link(layout, set).expect("relink");
                assert_eq!(
                    relinked.image.text.len(),
                    natural.image.text.len(),
                    "{benchmark} {set:?} under {layout:?}"
                );
            }
        }
    }
}
