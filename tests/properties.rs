//! Property tests for the end-to-end API surface (`align_area`
//! arithmetic, layout-invariance of `Workbench::link`), for the
//! structure-of-arrays fetch-core invariants: the valid bitset's
//! popcount matches the resident-line enumeration, no set holds two
//! valid lines with one tag, way-hint slab entries stay below the
//! associativity, and LRU eviction follows true recency order — and
//! for the `wp-obs` histogram (bucket totals partition the sample
//! count, quantile readout is monotone and brackets the exact sample,
//! merge is associative/commutative and agrees with concatenation).
//!
//! Runs on the dependency-free seeded sampler (`wp_mem::rng`) because
//! `proptest` is unavailable offline; the seeds are fixed so every run
//! exercises identical cases. Failures shrink: the failing op sequence
//! is greedily delta-reduced and the minimal repro is printed.

use std::collections::HashSet;

use wp_core::wp_linker::Layout;
use wp_core::wp_mem::rng::SplitMix64;
use wp_core::wp_mem::{CacheGeometry, CamArray, ICacheConfig, InstructionCache, ReplacementPolicy};
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{align_area, Workbench};

/// `align_area` is idempotent: aligning an aligned size is a no-op.
#[test]
fn align_area_is_idempotent() {
    let mut rng = SplitMix64::new(0xa11e_0001);
    for _ in 0..512 {
        let page = 1u32 << rng.range_u64(4, 16);
        let bytes = rng.next_u32() >> rng.below(16);
        let once = align_area(bytes, page);
        assert_eq!(align_area(once, page), once, "align({bytes}, {page})");
        // The result is aligned, covers the request, and overshoots by
        // less than one page.
        assert_eq!(once % page, 0, "align({bytes}, {page}) = {once}");
        assert!(once >= bytes);
        assert!(u64::from(once) < u64::from(bytes) + u64::from(page));
    }
}

/// `align_area` is monotone in the requested size.
#[test]
fn align_area_is_monotone() {
    let mut rng = SplitMix64::new(0xa11e_0002);
    for _ in 0..512 {
        let page = 1u32 << rng.range_u64(4, 16);
        let a = (rng.next_u32() >> 8).min(1 << 22);
        let b = (rng.next_u32() >> 8).min(1 << 22);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            align_area(lo, page) <= align_area(hi, page),
            "align({lo}, {page}) > align({hi}, {page})"
        );
    }
}

/// One operation against a [`CamArray`] under test.
#[derive(Clone, Copy, Debug)]
enum CamOp {
    /// Fill `addr` into its victim way (skipped when already resident,
    /// matching how the fetch cores only fill on a miss).
    Fill(u32),
    /// Touch `addr`'s way if resident (an LRU-visible hit).
    Touch(u32),
    /// A pure lookup.
    Lookup(u32),
    /// Invalidate the whole array.
    InvalidateAll,
    /// A fault-injection tag corruption.
    FlipTagBit { set: u32, way: u32, bit: u32 },
}

/// Runs `check` on `ops`; on failure, greedily delta-reduces the
/// sequence while it still fails and panics with the minimal repro.
fn assert_shrunk(ops: Vec<CamOp>, check: impl Fn(&[CamOp]) -> Result<(), String>) {
    let Err(first) = check(&ops) else { return };
    let mut minimal = ops;
    let mut i = 0;
    while i < minimal.len() {
        let mut candidate = minimal.clone();
        candidate.remove(i);
        if check(&candidate).is_err() {
            minimal = candidate;
        } else {
            i += 1;
        }
    }
    let message = check(&minimal).err().unwrap_or(first);
    panic!("property failed: {message}\nminimal repro ({} ops): {minimal:?}", minimal.len());
}

/// Samples an op sequence; `faults` admits tag-bit corruptions.
fn sample_cam_ops(
    rng: &mut SplitMix64,
    geom: CacheGeometry,
    len: usize,
    faults: bool,
) -> Vec<CamOp> {
    let span = u64::from(geom.size_bytes()) * 2;
    let addr = move |rng: &mut SplitMix64| (rng.below(span) as u32) & !3;
    (0..len)
        .map(|_| match rng.below(if faults { 16 } else { 14 }) {
            0..=6 => CamOp::Fill(addr(rng)),
            7..=10 => CamOp::Touch(addr(rng)),
            11..=12 => CamOp::Lookup(addr(rng)),
            13 => CamOp::InvalidateAll,
            _ => CamOp::FlipTagBit {
                set: rng.below(u64::from(geom.sets())) as u32,
                way: rng.below(u64::from(geom.ways())) as u32,
                bit: rng.below(u64::from(geom.tag_bits())) as u32,
            },
        })
        .collect()
}

/// Replays `ops` against a fresh array, checking the bitset-popcount
/// invariant after every op and (for fault-free streams) per-set tag
/// uniqueness.
fn check_cam_invariants(
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    ops: &[CamOp],
    check_tags: bool,
) -> Result<(), String> {
    let mut cam = CamArray::new(geom, policy, 0x9e37_79b9);
    for (i, &op) in ops.iter().enumerate() {
        match op {
            CamOp::Fill(addr) => {
                if cam.lookup(addr).is_none() {
                    let way = cam.pick_victim(addr);
                    cam.fill(addr, way);
                }
            }
            CamOp::Touch(addr) => {
                if let Some(way) = cam.lookup(addr) {
                    cam.touch(addr, way);
                }
            }
            CamOp::Lookup(addr) => {
                let _ = cam.lookup(addr);
            }
            CamOp::InvalidateAll => cam.invalidate_all(),
            CamOp::FlipTagBit { set, way, bit } => {
                let _ = cam.flip_tag_bit(set, way, bit);
            }
        }
        let popcount = cam.valid_popcount();
        let resident = cam.resident_lines().count();
        if popcount != resident {
            return Err(format!(
                "{geom} after op {i} ({op:?}): popcount {popcount} != {resident} resident lines"
            ));
        }
        if popcount > (geom.sets() * geom.ways()) as usize {
            return Err(format!("{geom} after op {i}: popcount {popcount} exceeds capacity"));
        }
        if check_tags {
            let mut seen = HashSet::new();
            for (addr, set, _) in cam.resident_lines() {
                if !seen.insert((set, geom.tag_of(addr))) {
                    return Err(format!(
                        "{geom} after op {i} ({op:?}): duplicate tag {:#x} in set {set}",
                        geom.tag_of(addr)
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Valid-bitset popcount equals the resident-line enumeration — under
/// every replacement policy, with fault corruptions woven in.
#[test]
fn cam_popcount_matches_resident_enumeration() {
    let mut rng = SplitMix64::new(0x50a0_0001);
    for geom in [CacheGeometry::new(256, 4, 32), CacheGeometry::new(8 * 1024, 16, 32)] {
        for policy in
            [ReplacementPolicy::Lru, ReplacementPolicy::RoundRobin, ReplacementPolicy::Random]
        {
            let ops = sample_cam_ops(&mut rng, geom, 1_500, true);
            assert_shrunk(ops, |ops| check_cam_invariants(geom, policy, ops, false));
        }
    }
}

/// No two valid lines in one set carry the same tag (fault-free
/// streams: tag corruption may legitimately collide tags).
#[test]
fn cam_resident_tags_unique_per_set() {
    let mut rng = SplitMix64::new(0x50a0_0002);
    for geom in [CacheGeometry::new(256, 4, 32), CacheGeometry::new(4 * 1024, 32, 32)] {
        let ops = sample_cam_ops(&mut rng, geom, 1_500, false);
        assert_shrunk(ops, |ops| check_cam_invariants(geom, ReplacementPolicy::Lru, ops, true));
    }
}

/// LRU eviction follows true recency: when a full set must evict, the
/// victim is exactly the least recently filled-or-touched way.
#[test]
fn cam_lru_eviction_preserves_recency_order() {
    let geom = CacheGeometry::new(512, 4, 32);
    let mut rng = SplitMix64::new(0x50a0_0003);
    let ops = sample_cam_ops(&mut rng, geom, 2_000, false);
    assert_shrunk(ops, |ops| {
        let mut cam = CamArray::new(geom, ReplacementPolicy::Lru, 1);
        // Oracle: per-set recency order, front = least recent.
        let mut order: Vec<Vec<u32>> = vec![Vec::new(); geom.sets() as usize];
        for (i, &op) in ops.iter().enumerate() {
            match op {
                CamOp::Fill(addr) => {
                    if cam.lookup(addr).is_some() {
                        continue;
                    }
                    let set = geom.set_of(addr) as usize;
                    let victim = cam.pick_victim(addr);
                    if order[set].len() == geom.ways() as usize {
                        let expected = order[set][0];
                        if victim != expected {
                            return Err(format!(
                                "op {i} ({op:?}): evicted way {victim}, LRU way is {expected}"
                            ));
                        }
                    }
                    cam.fill(addr, victim);
                    order[set].retain(|&w| w != victim);
                    order[set].push(victim);
                }
                CamOp::Touch(addr) => {
                    if let Some(way) = cam.lookup(addr) {
                        cam.touch(addr, way);
                        let set = geom.set_of(addr) as usize;
                        order[set].retain(|&w| w != way);
                        order[set].push(way);
                    }
                }
                CamOp::Lookup(addr) => {
                    let _ = cam.lookup(addr);
                }
                CamOp::InvalidateAll => {
                    cam.invalidate_all();
                    order.iter_mut().for_each(Vec::clear);
                }
                CamOp::FlipTagBit { .. } => {}
            }
        }
        Ok(())
    });
}

/// Every way-hint slab entry stays below the associativity, whichever
/// scheme is driving it and whatever the fetch stream does.
#[test]
fn way_hint_slab_entries_stay_below_associativity() {
    let mut rng = SplitMix64::new(0x50a0_0004);
    for geom in [CacheGeometry::new(2 * 1024, 4, 32), CacheGeometry::new(8 * 1024, 16, 32)] {
        for config in [ICacheConfig::way_prediction(geom), ICacheConfig::way_placement(geom)] {
            let mut icache = InstructionCache::new(config);
            for i in 0..20_000u32 {
                let addr = (rng.below(u64::from(geom.size_bytes()) * 2) as u32) & !3;
                let wp_page = rng.below(2) == 0;
                let _ = icache.fetch(addr, wp_page);
                if let Some(&entry) =
                    icache.way_hint_slab().iter().find(|&&e| u32::from(e) >= geom.ways())
                {
                    panic!(
                        "{geom}: hint entry {entry} >= {} ways after fetch {i} ({addr:#x})",
                        geom.ways()
                    );
                }
            }
        }
    }
}

/// Runs `check` on `samples`; on failure, greedily delta-reduces the
/// stream while it still fails and panics with the minimal repro
/// (mirrors [`assert_shrunk`] for histogram sample streams).
fn assert_shrunk_samples(samples: Vec<u64>, check: impl Fn(&[u64]) -> Result<(), String>) {
    let Err(first) = check(&samples) else { return };
    let mut minimal = samples;
    let mut i = 0;
    while i < minimal.len() {
        let mut candidate = minimal.clone();
        candidate.remove(i);
        if check(&candidate).is_err() {
            minimal = candidate;
        } else {
            i += 1;
        }
    }
    let message = check(&minimal).err().unwrap_or(first);
    panic!("property failed: {message}\nminimal repro ({} samples): {minimal:?}", minimal.len());
}

/// Log-uniform sample stream: right-shifting by a sampled amount walks
/// every bucket regime (linear, log-linear, near-`u64::MAX`).
fn sample_stream(rng: &mut SplitMix64, len: usize) -> Vec<u64> {
    (0..len).map(|_| rng.next_u64() >> rng.below(64)).collect()
}

fn snapshot_of(samples: &[u64]) -> wp_core::wp_obs::metrics::HistogramSnapshot {
    let h = wp_core::wp_obs::metrics::Histogram::detached();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

/// Bucket totals partition the stream: the per-bucket counts sum to the
/// sample count, every sample lands in the bucket whose bounds admit
/// it, and count/sum/min/max agree with the stream.
#[test]
fn histogram_bucket_totals_match_sample_count() {
    use wp_core::wp_obs::metrics::{bucket_index, bucket_upper};
    let mut rng = SplitMix64::new(0x0b50_0001);
    for _ in 0..8 {
        let samples = sample_stream(&mut rng, 800);
        assert_shrunk_samples(samples, |samples| {
            let s = snapshot_of(samples);
            let bucket_total: u64 = s.buckets().iter().sum();
            if bucket_total != samples.len() as u64 || s.count() != samples.len() as u64 {
                return Err(format!(
                    "buckets sum to {bucket_total}, count reads {}, stream has {}",
                    s.count(),
                    samples.len()
                ));
            }
            let mut sum = 0u64;
            for &v in samples {
                sum = sum.wrapping_add(v);
                let i = bucket_index(v);
                if bucket_upper(i) < v || (i > 0 && bucket_upper(i - 1) >= v) {
                    return Err(format!("sample {v} misfiled into bucket {i}"));
                }
            }
            if s.sum() != sum {
                return Err(format!("sum reads {}, stream wraps to {sum}", s.sum()));
            }
            let (min, max) = (samples.iter().min(), samples.iter().max());
            if Some(&s.min()) != min.or(Some(&0)) || Some(&s.max()) != max.or(Some(&0)) {
                return Err(format!("min/max read {}/{}", s.min(), s.max()));
            }
            Ok(())
        });
    }
}

/// Quantile readout is monotone in `q`, stays inside the observed
/// range, and brackets the exact rank-order sample: the estimate is at
/// least the true sample of that rank and at most its bucket's upper
/// bound.
#[test]
fn histogram_quantiles_are_monotone_and_bracket_exact() {
    use wp_core::wp_obs::metrics::{bucket_index, bucket_upper};
    let mut rng = SplitMix64::new(0x0b50_0002);
    for _ in 0..8 {
        let samples = sample_stream(&mut rng, 600);
        assert_shrunk_samples(samples, |samples| {
            if samples.is_empty() {
                return Ok(());
            }
            let s = snapshot_of(samples);
            let mut sorted = samples.to_vec();
            sorted.sort_unstable();
            let mut previous = 0u64;
            for step in 0..=20 {
                let q = step as f64 / 20.0;
                let estimate = s.quantile(q);
                if estimate < previous {
                    return Err(format!("quantile({q}) = {estimate} < {previous}"));
                }
                if estimate < s.min() || estimate > s.max() {
                    return Err(format!("quantile({q}) = {estimate} outside observed range"));
                }
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                if estimate < exact || estimate > bucket_upper(bucket_index(exact)).max(exact) {
                    return Err(format!(
                        "quantile({q}) = {estimate} does not bracket exact sample {exact}"
                    ));
                }
                previous = estimate;
            }
            Ok(())
        });
    }
}

/// Merge is associative and commutative, the empty snapshot is its
/// identity, and merging two streams equals recording their
/// concatenation.
#[test]
fn histogram_merge_is_associative_commutative_and_exact() {
    use wp_core::wp_obs::metrics::HistogramSnapshot;
    let mut rng = SplitMix64::new(0x0b50_0003);
    for round in 0..8 {
        let (x, y, z) = (
            sample_stream(&mut rng, 200 + round),
            sample_stream(&mut rng, 300),
            sample_stream(&mut rng, 100),
        );
        let (a, b, c) = (snapshot_of(&x), snapshot_of(&y), snapshot_of(&z));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)), "associativity");
        assert_eq!(a.merge(&b), b.merge(&a), "commutativity");
        assert_eq!(a.merge(&HistogramSnapshot::default()), a, "identity");
        let concat: Vec<u64> = x.iter().chain(&y).copied().collect();
        assert_eq!(a.merge(&b), snapshot_of(&concat), "merge == concatenation");
    }
}

/// Relinking never changes the text size: every layout of every
/// benchmark emits exactly as many instructions as the natural link —
/// layout moves code, it must not add or drop any.
#[test]
fn link_preserves_text_length_across_layouts() {
    // Three PRNG-sampled benchmarks keep the test fast while still
    // rotating real programs through the property.
    let mut rng = SplitMix64::new(0xa11e_0003);
    let mut sampled = Vec::new();
    while sampled.len() < 3 {
        let candidate = Benchmark::ALL[rng.index(Benchmark::ALL.len())];
        if !sampled.contains(&candidate) {
            sampled.push(candidate);
        }
    }
    for benchmark in sampled {
        let workbench = Workbench::new(benchmark).expect("workbench");
        for set in [InputSet::Small, InputSet::Large] {
            let natural = workbench.link(Layout::Natural, set).expect("natural link");
            for layout in [
                Layout::WayPlacement,
                Layout::Pessimal,
                Layout::Random(rng.next_u64()),
                Layout::Random(rng.next_u64()),
            ] {
                let relinked = workbench.link(layout, set).expect("relink");
                assert_eq!(
                    relinked.image.text.len(),
                    natural.image.text.len(),
                    "{benchmark} {set:?} under {layout:?}"
                );
            }
        }
    }
}
