//! Cross-crate integration: the full assemble → profile → relink →
//! simulate → price pipeline, exercised beyond what any single crate
//! covers.

use wp_core::wp_linker::Layout;
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_sim::{simulate, SimConfig};
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{measure, measure_on, Scheme, Workbench};

/// A fast, representative slice of the suite for per-commit testing.
const SAMPLE: [Benchmark; 5] =
    [Benchmark::Crc, Benchmark::Sha, Benchmark::Patricia, Benchmark::Rawdaudio, Benchmark::SusanE];

#[test]
fn every_scheme_preserves_architecture() {
    // measure() verifies the checksum internally; failure = panic here.
    let geom = CacheGeometry::new(8 * 1024, 8, 32); // small: stress misses
    for benchmark in SAMPLE {
        let workbench = Workbench::new(benchmark).expect("workbench");
        for scheme in [
            Scheme::Baseline,
            Scheme::WayPlacement { area_bytes: 8 * 1024 },
            Scheme::WayPlacement { area_bytes: 1024 },
            Scheme::WayMemoization,
            Scheme::WayPlacementNaturalLayout { area_bytes: 4096 },
            Scheme::BaselineOptimisedLayout,
            Scheme::WayPlacementNoElision { area_bytes: 4096 },
        ] {
            let m = measure_on(&workbench, geom, scheme, InputSet::Small)
                .unwrap_or_else(|e| panic!("{benchmark} under {scheme:?}: {e}"));
            assert_eq!(m.run.exit_code, 0, "{benchmark} {scheme:?}");
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let workbench = Workbench::new(Benchmark::Fft).expect("workbench");
    let geom = CacheGeometry::xscale_icache();
    let scheme = Scheme::WayPlacement { area_bytes: 16 * 1024 };
    let a = measure_on(&workbench, geom, scheme, InputSet::Small).expect("run a");
    let b = measure_on(&workbench, geom, scheme, InputSet::Small).expect("run b");
    assert_eq!(a.run.cycles, b.run.cycles);
    assert_eq!(a.run.instructions, b.run.instructions);
    assert_eq!(a.run.fetch, b.run.fetch);
    assert_eq!(a.energy.total_pj().to_bits(), b.energy.total_pj().to_bits());
}

#[test]
fn layouts_do_not_change_architecture_only_timing() {
    let workbench = Workbench::new(Benchmark::Bitcount).expect("workbench");
    let geom = CacheGeometry::new(4 * 1024, 8, 32);
    let mut cycle_counts = Vec::new();
    for layout in [Layout::Natural, Layout::WayPlacement, Layout::Random(3), Layout::Pessimal] {
        let output = workbench.link(layout, InputSet::Small).expect("link");
        let run = simulate(&output.image, &SimConfig::new(Scheme::Baseline.memory_config(geom)))
            .expect("run");
        wp_core::verify(Benchmark::Bitcount, InputSet::Small, run.checksum)
            .unwrap_or_else(|e| panic!("{layout:?}: {e}"));
        cycle_counts.push((layout, run.cycles));
    }
    // Same instruction multiset, same work — but layout changes timing
    // through the cache. (Not asserting an order here, just recording
    // that the pipeline noticed the difference on a small cache.)
    let distinct: std::collections::HashSet<u64> = cycle_counts.iter().map(|&(_, c)| c).collect();
    assert!(distinct.len() > 1, "layouts should differ in timing: {cycle_counts:?}");
}

#[test]
fn profile_reuse_across_geometries() {
    // One workbench (one profiling run) must serve every geometry and
    // area size — the paper's no-recompilation property.
    let workbench = Workbench::new(Benchmark::Tiffdither).expect("workbench");
    for (size_kb, ways) in [(16u32, 8u32), (32, 32), (64, 16)] {
        let geom = CacheGeometry::new(size_kb * 1024, ways, 32);
        let baseline =
            measure_on(&workbench, geom, Scheme::Baseline, InputSet::Small).expect("baseline");
        let wp = measure_on(
            &workbench,
            geom,
            Scheme::WayPlacement { area_bytes: 2048 },
            InputSet::Small,
        )
        .expect("wp");
        assert!(
            wp.normalized_icache_energy(&baseline) < 1.0,
            "{geom}: way-placement must save energy"
        );
    }
}

#[test]
fn hint_penalty_shows_up_in_cycles_not_correctness() {
    // With a tiny way-placement area the hint flips often; cycles may
    // rise slightly but the answer cannot change.
    let workbench = Workbench::new(Benchmark::Ispell).expect("workbench");
    let geom = CacheGeometry::xscale_icache();
    let full = measure_on(
        &workbench,
        geom,
        Scheme::WayPlacement { area_bytes: 32 * 1024 },
        InputSet::Small,
    )
    .expect("full");
    let tiny =
        measure_on(&workbench, geom, Scheme::WayPlacement { area_bytes: 1024 }, InputSet::Small)
            .expect("tiny");
    assert_eq!(full.run.instructions, tiny.run.instructions);
    assert!(tiny.run.fetch.hint_false_wp >= full.run.fetch.hint_false_wp);
    // The penalty is bounded: §4.1 says the hint is very accurate.
    let penalty_rate = tiny.run.fetch.penalty_cycles as f64 / tiny.run.fetch.fetches as f64;
    assert!(penalty_rate < 0.02, "penalty rate {penalty_rate}");
}

#[test]
fn whole_suite_smoke_on_default_geometry() {
    // Every benchmark: baseline + one way-placement run on small
    // inputs, verified. (The full large-input sweep lives in
    // wp-workloads' ignored test and the experiment binaries.)
    let geom = CacheGeometry::xscale_icache();
    std::thread::scope(|scope| {
        for benchmark in Benchmark::ALL {
            scope.spawn(move || {
                let workbench = Workbench::new(benchmark).expect("workbench");
                let baseline = measure_on(&workbench, geom, Scheme::Baseline, InputSet::Small)
                    .unwrap_or_else(|e| panic!("{benchmark}: {e}"));
                let wp = measure_on(
                    &workbench,
                    geom,
                    Scheme::WayPlacement { area_bytes: 32 * 1024 },
                    InputSet::Small,
                )
                .unwrap_or_else(|e| panic!("{benchmark}: {e}"));
                assert!(
                    wp.normalized_icache_energy(&baseline) < 0.75,
                    "{benchmark}: {}",
                    wp.normalized_icache_energy(&baseline)
                );
            });
        }
    });
}

#[test]
fn measure_equals_measure_on_large() {
    let workbench = Workbench::new(Benchmark::Crc).expect("workbench");
    let geom = CacheGeometry::xscale_icache();
    let a = measure(&workbench, geom, Scheme::Baseline).expect("measure");
    let b = measure_on(&workbench, geom, Scheme::Baseline, InputSet::Large).expect("on");
    assert_eq!(a.run.cycles, b.run.cycles);
}
