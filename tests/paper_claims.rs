//! The paper's claims, as executable assertions (a fast per-commit
//! subset; the full tables come from the `wp-bench` binaries).
//!
//! Each test names the paper section it guards. "Shape" targets per
//! DESIGN.md §6: who wins, by roughly what factor, where crossovers
//! fall — not the authors' absolute testbed numbers.

use wp_core::wp_mem::{CacheGeometry, ICacheConfig, InstructionCache};
use wp_core::wp_workloads::Benchmark;
use wp_core::{measure, Comparison, Scheme, Workbench};

fn workbench(benchmark: Benchmark) -> Workbench {
    Workbench::new(benchmark).expect("workbench")
}

/// §2 / figure 1: the 12-vs-3 tag comparison example, exactly.
#[test]
fn figure1_tag_comparisons() {
    let geom = CacheGeometry::new(256, 4, 32);
    let mut baseline = InstructionCache::new(ICacheConfig::baseline(geom));
    let mut wp = InstructionCache::new(ICacheConfig {
        same_line_elision: false,
        ..ICacheConfig::way_placement(geom)
    });
    for addr in [0x04u32, 0x08, 0x20] {
        baseline.fetch(addr, false);
        wp.fetch(addr, true);
    }
    let (b0, w0) = (baseline.stats().tag_comparisons, wp.stats().tag_comparisons);
    for addr in [0x04u32, 0x08, 0x20] {
        baseline.fetch(addr, false);
        wp.fetch(addr, true);
    }
    assert_eq!(baseline.stats().tag_comparisons - b0, 12);
    assert_eq!(wp.stats().tag_comparisons - w0, 3);
}

/// §6.1: on the 32 KB, 32-way cache with a 32 KB area, way-placement
/// saves dramatically more I-cache energy than way-memoization, with
/// no performance change.
#[test]
fn section_6_1_initial_evaluation() {
    let geom = CacheGeometry::xscale_icache();
    for benchmark in [Benchmark::Sha, Benchmark::RijndaelE, Benchmark::Tiffdither] {
        let wb = workbench(benchmark);
        let comparison = Comparison::run(
            &wb,
            geom,
            &[Scheme::WayPlacement { area_bytes: 32 * 1024 }, Scheme::WayMemoization],
        )
        .expect("measure");
        let rows = comparison.rows();
        let (wp_e, wp_ed) = (rows[0].1, rows[0].2);
        let memo_e = rows[1].1;
        assert!(
            (0.40..0.60).contains(&wp_e),
            "{benchmark}: way-placement energy {wp_e:.3} (paper ~0.50)"
        );
        assert!(wp_e < memo_e, "{benchmark}: {wp_e:.3} !< {memo_e:.3}");
        assert!((0.85..0.97).contains(&wp_ed), "{benchmark}: ED {wp_ed:.3} (paper ~0.93)");
        // "There is no change in performance" (§6.1).
        let slowdown =
            comparison.subjects[0].run.cycles as f64 / comparison.baseline.run.cycles as f64;
        assert!((0.99..1.01).contains(&slowdown), "{benchmark}: slowdown {slowdown}");
    }
}

/// §6.2: shrinking the way-placement area degrades the savings
/// gracefully and never below profitability.
#[test]
fn section_6_2_area_sweep_degrades_gracefully() {
    let geom = CacheGeometry::xscale_icache();
    // rijndael_e has the biggest hot footprint — the clearest sweep.
    let wb = workbench(Benchmark::RijndaelE);
    let baseline = measure(&wb, geom, Scheme::Baseline).expect("baseline");
    let energy = |area_kb: u32| {
        measure(&wb, geom, Scheme::WayPlacement { area_bytes: area_kb * 1024 })
            .expect("wp")
            .normalized_icache_energy(&baseline)
    };
    let e32 = energy(32);
    let e4 = energy(4);
    let e1 = energy(1);
    assert!(e32 < e4 && e4 < e1, "not graceful: {e32:.3} {e4:.3} {e1:.3}");
    assert!(e1 < 1.0, "1KB area must still save energy: {e1:.3}");
}

/// §4.1: the OS can change the area size with no relink — the same
/// image must run (and verify) under every area size.
#[test]
fn section_4_1_no_recompilation() {
    let wb = workbench(Benchmark::Crc);
    let geom = CacheGeometry::xscale_icache();
    let image_32 = wb
        .link(wp_core::wp_linker::Layout::WayPlacement, wp_core::wp_workloads::InputSet::Large)
        .expect("link")
        .image;
    for area in [32 * 1024, 8 * 1024, 1024] {
        let output = wb
            .link(wp_core::wp_linker::Layout::WayPlacement, wp_core::wp_workloads::InputSet::Large)
            .expect("link");
        // Identical binary regardless of the area choice.
        assert_eq!(output.image.text, image_32.text);
        let m = measure(&wb, geom, Scheme::WayPlacement { area_bytes: area }).expect("run");
        assert_eq!(m.run.exit_code, 0);
    }
}

/// §6.3: associativity scaling — way-placement's savings grow with
/// ways (more tag energy to recover), and it wins at every point
/// including where way-memoization's advantage collapses.
#[test]
fn section_6_3_associativity_scaling() {
    let wb = workbench(Benchmark::BlowfishE);
    let area = Scheme::WayPlacement { area_bytes: 8 * 1024 };
    let mut previous = f64::INFINITY;
    for ways in [8u32, 16, 32] {
        let geom = CacheGeometry::new(16 * 1024, ways, 32);
        let baseline = measure(&wb, geom, Scheme::Baseline).expect("baseline");
        let wp = measure(&wb, geom, area).expect("wp");
        let memo = measure(&wb, geom, Scheme::WayMemoization).expect("memo");
        let wp_e = wp.normalized_icache_energy(&baseline);
        let memo_e = memo.normalized_icache_energy(&baseline);
        assert!(wp_e < 1.0, "{ways}-way: wp must save ({wp_e:.3})");
        assert!(wp_e < memo_e, "{ways}-way: wp {wp_e:.3} !< memo {memo_e:.3}");
        assert!(wp_e < previous, "{ways}-way: savings must grow with ways");
        previous = wp_e;
    }
}

/// Ablation (DESIGN.md §10): both halves of the technique matter —
/// hardware-without-compiler and compiler-without-hardware each do
/// worse than the combination.
#[test]
fn ablation_both_halves_matter() {
    let wb = workbench(Benchmark::Sha);
    let geom = CacheGeometry::xscale_icache();
    let baseline = measure(&wb, geom, Scheme::Baseline).expect("baseline");
    let combined = measure(&wb, geom, Scheme::WayPlacement { area_bytes: 4096 })
        .expect("wp")
        .normalized_icache_energy(&baseline);
    let hw_only = measure(&wb, geom, Scheme::WayPlacementNaturalLayout { area_bytes: 4096 })
        .expect("hw")
        .normalized_icache_energy(&baseline);
    let sw_only = measure(&wb, geom, Scheme::BaselineOptimisedLayout)
        .expect("sw")
        .normalized_icache_energy(&baseline);
    assert!(combined < hw_only, "layout pass must add value: {combined:.3} !< {hw_only:.3}");
    assert!(combined < sw_only, "hardware must add value: {combined:.3} !< {sw_only:.3}");
}
