//! End-to-end fault-injection invariants.
//!
//! The paper's §4 trust boundary: everything the way-placement
//! machinery adds — per-page WP bits in the I-TLB, the global way
//! hint, the tag CAM, the training profile, the chain layout — is
//! *performance speculation*, not architectural state. A fault in any
//! of it may cost cycles and energy; it must never change what the
//! program computes. These tests drive the seeded injector through
//! the full measure path and assert the trichotomy: graceful
//! degradation or a typed error, never silent corruption.

use wp_core::wp_linker::LinkError;
use wp_core::wp_mem::rng::SplitMix64;
use wp_core::wp_mem::{CacheGeometry, FaultConfig, MemoryConfig, MemorySystem};
use wp_core::wp_sim::SimError;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{
    fault_trial, measure_on, CoreError, FaultOutcome, FaultSpec, Measurement, Scheme, Workbench,
};

fn clean(workbench: &Workbench, scheme: Scheme) -> Measurement {
    measure_on(workbench, CacheGeometry::xscale_icache(), scheme, InputSet::Small)
        .expect("clean measurement")
}

/// Aggressive hardware fault rates (10% of fetches have a fault
/// opportunity per kind) degrade both way-aware schemes gracefully:
/// faults demonstrably land, cycles/energy may rise, and the
/// architectural checksum always survives.
#[test]
fn hardware_faults_degrade_gracefully_on_both_schemes() {
    let workbench = Workbench::new(Benchmark::Crc).expect("workbench");
    let geometry = CacheGeometry::xscale_icache();
    for scheme in [Scheme::WayPlacement { area_bytes: 32 * 1024 }, Scheme::WayMemoization] {
        let clean = clean(&workbench, scheme);
        let spec = FaultSpec::Hardware(FaultConfig::all(7, 100_000));
        let trial = fault_trial(&workbench, geometry, scheme, InputSet::Small, spec, &clean);
        assert!(!trial.outcome.is_silent_corruption(), "{:?}", trial.outcome);
        match trial.outcome {
            FaultOutcome::Graceful { cycle_ratio, energy_ratio, faults_injected } => {
                assert!(faults_injected > 0, "faults must actually land at 10%/kind");
                assert!(cycle_ratio.is_finite() && cycle_ratio > 0.5, "{cycle_ratio}");
                assert!(energy_ratio.is_finite() && energy_ratio > 0.5, "{energy_ratio}");
            }
            other => panic!("{}: expected graceful degradation, got {other:?}", scheme.label()),
        }
    }
}

/// The compiler-side trust boundary: a corrupted training profile and
/// a randomly permuted chain layout both still compute the right
/// answer — a bad layout can only cost energy.
#[test]
fn compiler_side_faults_are_graceful() {
    let workbench = Workbench::new(Benchmark::Sha).expect("workbench");
    let geometry = CacheGeometry::xscale_icache();
    let scheme = Scheme::WayPlacement { area_bytes: 32 * 1024 };
    let clean = clean(&workbench, scheme);
    for spec in
        [FaultSpec::CorruptProfile { seed: 11, flips: 64 }, FaultSpec::PermuteChains { seed: 13 }]
    {
        let trial = fault_trial(&workbench, geometry, scheme, InputSet::Small, spec, &clean);
        match trial.outcome {
            FaultOutcome::Graceful { cycle_ratio, energy_ratio, faults_injected } => {
                assert_eq!(faults_injected, 0, "compiler faults inject no hardware faults");
                assert!(cycle_ratio.is_finite() && cycle_ratio > 0.0);
                assert!(energy_ratio.is_finite() && energy_ratio > 0.0);
            }
            other => panic!("{}: expected graceful, got {other:?}", spec.label()),
        }
    }
}

/// The same seed reproduces the same faulted run bit-for-bit: fault
/// campaigns are deterministic, so any corruption they ever find is
/// replayable.
#[test]
fn fault_trials_are_deterministic_per_seed() {
    let workbench = Workbench::new(Benchmark::Crc).expect("workbench");
    let geometry = CacheGeometry::xscale_icache();
    let scheme = Scheme::WayPlacement { area_bytes: 32 * 1024 };
    let clean = clean(&workbench, scheme);
    let spec = FaultSpec::Hardware(FaultConfig::all(42, 50_000));
    let run = || fault_trial(&workbench, geometry, scheme, InputSet::Small, spec, &clean);
    match (run().outcome, run().outcome) {
        (
            FaultOutcome::Graceful { cycle_ratio: c1, energy_ratio: e1, faults_injected: f1 },
            FaultOutcome::Graceful { cycle_ratio: c2, energy_ratio: e2, faults_injected: f2 },
        ) => {
            assert_eq!(f1, f2);
            assert_eq!(c1.to_bits(), c2.to_bits());
            assert_eq!(e1.to_bits(), e2.to_bits());
        }
        (a, b) => panic!("expected two graceful runs, got {a:?} / {b:?}"),
    }
}

/// Detection coverage at the weave points: with the parity/duplication
/// checks armed, every injected way-hint inversion and WP-bit flip is
/// caught exactly (counter-for-counter against the injector), tag
/// flips are caught unless a refill silently absorbed the corrupted
/// line first, and every detection is paired with a priced recovery.
/// Two armed runs on the same seed agree bit-for-bit, so any coverage
/// gap this ever finds is replayable.
#[test]
fn fault_weave_points_are_detected_and_recovered() {
    let geometry = CacheGeometry::xscale_icache();
    for (seed, config) in [
        (21u64, MemoryConfig::way_placement(geometry, 0, 32 * 1024)),
        (22, MemoryConfig::way_memoization(geometry)),
        (23, MemoryConfig::baseline(geometry)),
    ] {
        let config = config.with_fault(FaultConfig::all(seed, 100_000)).with_detection();
        let run = || {
            let mut armed = MemorySystem::new(config);
            let mut rng = SplitMix64::new(0xFA_0000 + seed);
            let mut pc: u32 = 0;
            for _ in 0..30_000 {
                // Loopy fetch stream: short straight runs, local jumps.
                pc = if rng.below(6) == 0 {
                    (rng.below(48 * 1024) as u32) & !3
                } else {
                    pc.wrapping_add(4) % (48 * 1024)
                };
                armed.fetch(pc);
            }
            (armed.fault_stats(), armed.detection_stats(), *armed.fetch_stats())
        };
        let (faults, detect, fetch) = run();
        assert!(faults.total() > 0, "seed {seed}: faults must land at 10%/kind");
        assert_eq!(
            detect.hint_mismatches, faults.hint_inversions,
            "seed {seed}: every hint inversion is caught at the next fetch"
        );
        assert_eq!(
            detect.wp_bit_mismatches, faults.wp_bit_flips,
            "seed {seed}: every WP-bit flip is caught by the duplicate bit"
        );
        assert!(
            detect.tag_parity_faults <= faults.tag_bit_flips,
            "seed {seed}: parity can't detect more flips than were injected"
        );
        assert_eq!(
            detect.lines_invalidated, detect.tag_parity_faults,
            "seed {seed}: every parity hit is scrubbed by invalidate-and-refill"
        );
        if detect.total_detected() > 0 {
            assert!(detect.recovery_cycles > 0, "seed {seed}: recovery is never free");
        }
        let (faults2, detect2, fetch2) = run();
        assert_eq!(faults, faults2, "seed {seed}: fault counters not deterministic");
        assert_eq!(detect, detect2, "seed {seed}: detection not deterministic");
        assert_eq!(fetch, fetch2, "seed {seed}: fetch counters not deterministic");
    }
}

/// The transiency taxonomy retry policies key off: host-side I/O and
/// watchdog timeouts retry; deterministic failures never do.
#[test]
fn error_transiency_taxonomy() {
    let io = CoreError::Io { context: "checkpoint".to_string(), message: "EIO".to_string() };
    assert!(io.is_transient());
    let timeout = CoreError::Sim(SimError::Timeout { limit: std::time::Duration::from_secs(1) });
    assert!(timeout.is_transient());
    assert!(timeout.to_string().contains("watchdog"));

    let panic = CoreError::Panic { message: "boom".to_string() };
    assert!(!panic.is_transient());
    let checksum =
        CoreError::ChecksumMismatch { benchmark: Benchmark::Crc, expected: 1, actual: 2 };
    assert!(!checksum.is_transient());
    let link = CoreError::Link(LinkError::MalformedModule("bad symbol".to_string()));
    assert!(!link.is_transient());
}
