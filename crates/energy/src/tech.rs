//! Technology parameters: per-event energies and their scaling with
//! cache geometry.
//!
//! The constants are calibrated to land in the ranges published for
//! CAM-tag caches in 180 nm-class embedded processors (Zhang et al.,
//! "Highly-associative caches for low-power processors"; the XScale and
//! StrongARM papers cited by the way-placement study). Absolute joules
//! are *not* the point — every result the harness reports is normalised
//! to an equally-configured baseline, exactly as the paper reports —
//! but the relative weights (CAM search vs data array vs fill) are what
//! make the three schemes order the way the paper's figure 4–6 do.

use wp_mem::CacheGeometry;

/// Per-event energy constants, in picojoules.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TechnologyParams {
    /// Energy per CAM cell comparison (one tag bit in one way).
    pub cam_bit_pj: f64,
    /// Energy to precharge and (mostly) discharge one match line.
    pub matchline_pj: f64,
    /// Energy per data-array bit precharged on a read, at the reference
    /// cache size.
    pub bitline_read_pj: f64,
    /// Energy per data-array bit driven on a write/fill.
    pub bitline_write_pj: f64,
    /// Fixed decode/wordline energy per data-array activation.
    pub decode_pj: f64,
    /// Sense-amp energy per bit actually read out.
    pub senseamp_pj: f64,
    /// Match-line energy per TLB entry searched.
    pub tlb_matchline_pj: f64,
    /// CAM-bit energy per TLB tag bit.
    pub tlb_cam_bit_pj: f64,
    /// Energy to read the global way-hint bit (way-placement only).
    pub way_hint_pj: f64,
    /// Reference cache size for the wire-length scaling laws.
    pub reference_bytes: f64,
    /// Exponent of the CAM tag-side size scaling (wire load grows with
    /// bank span; super-linear for highly-associative CAM banks).
    pub tag_scale_exponent: f64,
    /// Exponent of the data-array size scaling (classic sqrt law).
    pub data_scale_exponent: f64,
}

impl TechnologyParams {
    /// The calibrated default technology point.
    #[must_use]
    pub fn embedded_180nm() -> TechnologyParams {
        TechnologyParams {
            cam_bit_pj: 0.015,
            matchline_pj: 0.50,
            bitline_read_pj: 0.080,
            bitline_write_pj: 0.110,
            decode_pj: 2.0,
            senseamp_pj: 0.10,
            tlb_matchline_pj: 0.12,
            tlb_cam_bit_pj: 0.008,
            way_hint_pj: 0.01,
            reference_bytes: 32.0 * 1024.0,
            tag_scale_exponent: 0.80,
            data_scale_exponent: 0.50,
        }
    }

    /// Wire-load scale factor for the tag side of a cache of this size.
    #[must_use]
    pub fn tag_scale(&self, geom: CacheGeometry) -> f64 {
        (f64::from(geom.size_bytes()) / self.reference_bytes).powf(self.tag_scale_exponent)
    }

    /// Wire-load scale factor for the data side.
    #[must_use]
    pub fn data_scale(&self, geom: CacheGeometry) -> f64 {
        (f64::from(geom.size_bytes()) / self.reference_bytes).powf(self.data_scale_exponent)
    }
}

impl Default for TechnologyParams {
    fn default() -> TechnologyParams {
        TechnologyParams::embedded_180nm()
    }
}

/// Rest-of-core energy constants (everything that is not a cache or
/// TLB): these set the instruction cache's share of total processor
/// energy, which is what the ED product measures.
///
/// Calibrated so the 32 KB, 32-way I-cache is ~15% of total energy —
/// consistent with the StrongARM's 27% for its smaller total budget and
/// with the paper's average ED product of 0.93 at ~50% I-cache saving.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CoreEnergyParams {
    /// Picojoules per committed instruction (decode, register file,
    /// ALU/MAC/LSU mix).
    pub per_instruction_pj: f64,
    /// Picojoules per clock cycle (clock tree, leakage, idle units).
    pub per_cycle_pj: f64,
}

impl CoreEnergyParams {
    /// The calibrated default.
    #[must_use]
    pub fn xscale_class() -> CoreEnergyParams {
        CoreEnergyParams { per_instruction_pj: 140.0, per_cycle_pj: 90.0 }
    }
}

impl Default for CoreEnergyParams {
    fn default() -> CoreEnergyParams {
        CoreEnergyParams::xscale_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_one_at_reference() {
        let tech = TechnologyParams::default();
        let geom = CacheGeometry::new(32 * 1024, 32, 32);
        assert!((tech.tag_scale(geom) - 1.0).abs() < 1e-12);
        assert!((tech.data_scale(geom) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_monotone_in_size() {
        let tech = TechnologyParams::default();
        let small = CacheGeometry::new(16 * 1024, 32, 32);
        let large = CacheGeometry::new(64 * 1024, 32, 32);
        assert!(tech.tag_scale(small) < 1.0);
        assert!(tech.tag_scale(large) > 1.0);
        assert!(tech.data_scale(small) < tech.data_scale(large));
        // The tag side scales faster than the data side (CAM banks).
        assert!(tech.tag_scale(large) > tech.data_scale(large));
    }
}
