//! Whole-run energy assembly and the paper's two headline metrics:
//! normalised instruction-cache energy and the energy-delay product.

use wp_mem::{DCacheStats, DetectionStats, FetchScheme, FetchStats, MemoryConfig, TlbStats};

use crate::model::{CacheEnergyModel, FetchEnergy, RecoveryCosts, TlbEnergyModel};
use crate::tech::{CoreEnergyParams, TechnologyParams};

/// Everything a simulation run produces that the energy model needs.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SystemActivity {
    /// Instruction-fetch counters.
    pub fetch: FetchStats,
    /// Data-cache counters.
    pub dcache: DCacheStats,
    /// I-TLB counters.
    pub itlb: TlbStats,
    /// D-TLB counters.
    pub dtlb: TlbStats,
    /// Total cycles executed.
    pub cycles: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// Detection/recovery counters (all zero with detection off).
    pub detection: DetectionStats,
}

/// A priced run: per-structure picojoules plus the cycle count.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EnergyReport {
    /// Instruction-cache energy breakdown.
    pub icache: FetchEnergy,
    /// I-TLB energy.
    pub itlb_pj: f64,
    /// Data-cache energy.
    pub dcache_pj: f64,
    /// D-TLB energy.
    pub dtlb_pj: f64,
    /// Rest-of-core energy (per-instruction + per-cycle).
    pub core_pj: f64,
    /// Fault-detection checks and recovery actions (zero with
    /// detection off).
    pub recovery_pj: f64,
    /// Cycles the run took.
    pub cycles: u64,
}

impl EnergyReport {
    /// Total instruction-cache energy (the paper's figure 4a/5a/6a axis).
    #[must_use]
    pub fn icache_pj(&self) -> f64 {
        self.icache.total_pj()
    }

    /// Total processor energy.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.icache_pj()
            + self.itlb_pj
            + self.dcache_pj
            + self.dtlb_pj
            + self.core_pj
            + self.recovery_pj
    }

    /// The instruction cache's share of total energy; `0.0` for an
    /// idle (zero-energy) run rather than `NaN`.
    #[must_use]
    pub fn icache_share(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.icache_pj() / total
        }
    }

    /// Normalised I-cache energy against a baseline run (1.0 = equal,
    /// lower is better; the paper's ~0.50 for way-placement). An idle
    /// baseline compares as equal (`1.0`) when this run is idle too,
    /// and as infinitely worse (`+∞`) otherwise — never `NaN`.
    #[must_use]
    pub fn normalized_icache_energy(&self, baseline: &EnergyReport) -> f64 {
        ratio(self.icache_pj(), baseline.icache_pj())
    }

    /// The energy-delay product against a baseline run: total energy
    /// ratio times cycle ratio (lower is better; §5 of the paper).
    /// Zero-energy or zero-cycle baselines follow the same idle-run
    /// convention as [`EnergyReport::normalized_icache_energy`].
    #[must_use]
    pub fn ed_product(&self, baseline: &EnergyReport) -> f64 {
        let energy_ratio = ratio(self.total_pj(), baseline.total_pj());
        let delay_ratio = ratio(self.cycles as f64, baseline.cycles as f64);
        energy_ratio * delay_ratio
    }
}

/// Baseline-relative ratio with idle-run semantics: `0 / 0` is `1.0`
/// (an idle run equals an idle baseline), `x / 0` for positive `x` is
/// `+∞` (strictly worse than any finite ratio, and it propagates
/// through comparisons instead of poisoning them the way `NaN` would).
///
/// Public because the same semantics matter anywhere two measurements
/// are compared — `wp-tune`'s trace differ uses it so zero-energy runs
/// diff clean instead of producing `NaN` shifts.
#[must_use]
pub fn ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator == 0.0 {
        if numerator == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        numerator / denominator
    }
}

/// The full pricing model: technology + core parameters, applied to a
/// memory configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EnergyModel {
    tech: TechnologyParams,
    core: CoreEnergyParams,
}

impl EnergyModel {
    /// The calibrated default model.
    #[must_use]
    pub fn new() -> EnergyModel {
        EnergyModel { tech: TechnologyParams::default(), core: CoreEnergyParams::default() }
    }

    /// Overrides the technology parameters.
    #[must_use]
    pub fn with_technology(mut self, tech: TechnologyParams) -> EnergyModel {
        self.tech = tech;
        self
    }

    /// Overrides the core parameters.
    #[must_use]
    pub fn with_core(mut self, core: CoreEnergyParams) -> EnergyModel {
        self.core = core;
        self
    }

    /// Prices one run executed on `config`.
    #[must_use]
    pub fn price(&self, config: &MemoryConfig, activity: &SystemActivity) -> EnergyReport {
        let icache_model = CacheEnergyModel::with_technology(
            config.icache.geometry,
            config.icache.scheme,
            self.tech,
        );
        let dcache_model = CacheEnergyModel::with_technology(
            config.dcache.geometry,
            FetchScheme::Baseline,
            self.tech,
        );
        let itlb_model = TlbEnergyModel::new(
            config.itlb.entries,
            config.itlb.page_bytes,
            config.icache.scheme == FetchScheme::WayPlacement,
        );
        let dtlb_model = TlbEnergyModel::new(config.dtlb.entries, config.dtlb.page_bytes, false);
        let recovery = RecoveryCosts::derive(&icache_model, &itlb_model);
        EnergyReport {
            icache: icache_model.fetch_energy(&activity.fetch),
            itlb_pj: itlb_model.energy_pj(&activity.itlb),
            dcache_pj: dcache_model.dcache_energy_pj(&activity.dcache),
            dtlb_pj: dtlb_model.energy_pj(&activity.dtlb),
            core_pj: activity.instructions as f64 * self.core.per_instruction_pj
                + activity.cycles as f64 * self.core.per_cycle_pj,
            recovery_pj: recovery.recovery_pj(&activity.detection),
            cycles: activity.cycles,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_mem::CacheGeometry;

    fn activity(tags_per_fetch: u64) -> SystemActivity {
        let fetches = 1_000_000u64;
        SystemActivity {
            fetch: FetchStats {
                fetches,
                hits: fetches - 100,
                misses: 100,
                tag_comparisons: fetches * tags_per_fetch,
                matchline_precharges: fetches * tags_per_fetch,
                data_reads: fetches,
                line_fills: 100,
                ..FetchStats::new()
            },
            dcache: DCacheStats {
                reads: fetches / 4,
                writes: fetches / 10,
                hits: fetches / 4 + fetches / 10 - 50,
                misses: 50,
                tag_comparisons: (fetches / 4 + fetches / 10) * 32,
                data_accesses: fetches / 4 + fetches / 10,
                line_fills: 50,
                ..DCacheStats::new()
            },
            itlb: TlbStats { lookups: fetches, misses: 30, ..TlbStats::new() },
            dtlb: TlbStats { lookups: fetches / 3, misses: 30, ..TlbStats::new() },
            cycles: fetches * 3 / 2,
            instructions: fetches,
            detection: DetectionStats::new(),
        }
    }

    #[test]
    fn icache_share_in_calibration_band() {
        let geom = CacheGeometry::xscale_icache();
        let config = MemoryConfig::baseline(geom);
        let report = EnergyModel::new().price(&config, &activity(32));
        let share = report.icache_share();
        assert!(
            (0.10..0.22).contains(&share),
            "32KB/32-way I-cache share {share:.3} outside calibration band"
        );
    }

    #[test]
    fn way_placement_halves_icache_energy() {
        let geom = CacheGeometry::xscale_icache();
        let model = EnergyModel::new();
        let base = model.price(&MemoryConfig::baseline(geom), &activity(32));
        // Way-placement run: ~1 tag per fetch.
        let wp_cfg = MemoryConfig::way_placement(geom, 0x8000, 32 * 1024);
        let wp = model.price(&wp_cfg, &activity(1));
        let ratio = wp.normalized_icache_energy(&base);
        assert!((0.35..0.60).contains(&ratio), "normalised way-placement energy {ratio:.3}");
        // ED product improves but by less (I-cache is a slice of total).
        let ed = wp.ed_product(&base);
        assert!((0.88..0.99).contains(&ed), "ED {ed:.3}");
    }

    #[test]
    fn ed_product_penalises_slowdown() {
        let geom = CacheGeometry::xscale_icache();
        let config = MemoryConfig::baseline(geom);
        let model = EnergyModel::new();
        let base = model.price(&config, &activity(32));
        let mut slow = activity(32);
        slow.cycles = slow.cycles * 11 / 10;
        let slow_report = model.price(&config, &slow);
        assert!(slow_report.ed_product(&base) > 1.10);
    }

    #[test]
    fn idle_runs_never_produce_nan() {
        let idle = EnergyReport {
            icache: FetchEnergy::default(),
            itlb_pj: 0.0,
            dcache_pj: 0.0,
            dtlb_pj: 0.0,
            core_pj: 0.0,
            recovery_pj: 0.0,
            cycles: 0,
        };
        // An idle run against an idle baseline: equal, not NaN.
        assert_eq!(idle.icache_share(), 0.0);
        assert_eq!(idle.normalized_icache_energy(&idle), 1.0);
        assert_eq!(idle.ed_product(&idle), 1.0);
        // A real run against an idle baseline: infinitely worse, and
        // the ordering against finite ratios still works.
        let geom = CacheGeometry::xscale_icache();
        let busy = EnergyModel::new().price(&MemoryConfig::baseline(geom), &activity(32));
        assert_eq!(busy.normalized_icache_energy(&idle), f64::INFINITY);
        assert_eq!(busy.ed_product(&idle), f64::INFINITY);
        assert!(busy.normalized_icache_energy(&idle) > 1.0);
        // And the idle run against a real baseline is a perfect 0.
        assert_eq!(idle.normalized_icache_energy(&busy), 0.0);
        assert!(!idle.ed_product(&busy).is_nan());
    }

    #[test]
    fn total_is_sum_of_parts() {
        let geom = CacheGeometry::xscale_icache();
        let report = EnergyModel::new().price(&MemoryConfig::baseline(geom), &activity(32));
        let sum = report.icache_pj()
            + report.itlb_pj
            + report.dcache_pj
            + report.dtlb_pj
            + report.core_pj
            + report.recovery_pj;
        assert!((report.total_pj() - sum).abs() < 1e-6);
        assert!(report.total_pj() > 0.0);
    }

    #[test]
    fn detection_overhead_is_priced_and_bounded() {
        let geom = CacheGeometry::xscale_icache();
        let config = MemoryConfig::way_placement(geom, 0x8000, 32 * 1024);
        let model = EnergyModel::new();
        let clean = model.price(&config, &activity(1));
        assert_eq!(clean.recovery_pj, 0.0, "no detection, no recovery energy");
        // An armed clean run: one parity check and one WP check per
        // fetch, nothing detected. The overhead must stay marginal —
        // the chaos campaign's ≤5% clean-run bound starts here.
        let mut armed = activity(1);
        armed.detection = DetectionStats {
            parity_checks: armed.fetch.fetches,
            wp_bit_checks: armed.fetch.fetches,
            ..DetectionStats::new()
        };
        let priced = model.price(&config, &armed);
        assert!(priced.recovery_pj > 0.0);
        let overhead = priced.total_pj() / clean.total_pj();
        assert!(overhead < 1.05, "clean-run detection overhead {overhead:.4}");
        // Actual recoveries add real energy on top.
        let mut recovering = armed;
        recovering.detection.lines_invalidated = 500;
        recovering.detection.hint_resets = 500;
        recovering.detection.wp_rederivations = 500;
        assert!(model.price(&config, &recovering).recovery_pj > priced.recovery_pj);
    }
}
