//! # wp-energy — the analytic energy model
//!
//! Prices the micro-events recorded by `wp-mem` into picojoules and
//! computes the paper's two headline metrics: **normalised instruction
//! cache energy** and the **energy-delay (ED) product**.
//!
//! The model is deliberately analytic (CACTI-style first-order physics)
//! rather than a table of magic numbers, so the effects that drive the
//! paper's results fall out structurally:
//!
//! * CAM tag-search energy grows with the number of ways armed — the
//!   energy way-placement recovers by arming exactly one way;
//! * way-memoization's link fields widen the data array (the 21%
//!   overhead of §5), taxing *every* data-side access and fill;
//! * tag energy dominates on big, highly-associative caches and
//!   dwindles on small, low-associativity ones — which is why
//!   way-memoization flips from a win to a loss across figure 6 while
//!   way-placement never does.
//!
//! Absolute joules are not claimed; everything the harness reports is
//! normalised against an equally-configured baseline, exactly as the
//! paper reports it (see DESIGN.md §4 for the calibration notes).
//!
//! ## Example
//!
//! ```
//! use wp_energy::{EnergyModel, SystemActivity};
//! use wp_mem::{CacheGeometry, FetchStats, DCacheStats, DetectionStats, TlbStats, MemoryConfig};
//!
//! let geom = CacheGeometry::xscale_icache();
//! let activity = SystemActivity {
//!     fetch: FetchStats { fetches: 1000, hits: 1000, data_reads: 1000,
//!                         tag_comparisons: 32_000, matchline_precharges: 32_000,
//!                         ..FetchStats::new() },
//!     dcache: DCacheStats::new(),
//!     itlb: TlbStats::new(),
//!     dtlb: TlbStats::new(),
//!     cycles: 1500,
//!     instructions: 1000,
//!     detection: DetectionStats::new(),
//! };
//! let report = EnergyModel::new().price(&MemoryConfig::baseline(geom), &activity);
//! assert!(report.icache_share() > 0.05);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod model;
mod report;
mod tech;

pub use model::{CacheEnergyModel, FetchEnergy, RecoveryCosts, TlbEnergyModel};
pub use report::{ratio, EnergyModel, EnergyReport, SystemActivity};
pub use tech::{CoreEnergyParams, TechnologyParams};
