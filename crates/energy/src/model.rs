//! Per-structure energy models: pricing the event counters recorded by
//! `wp-mem` into picojoules.

use wp_mem::{CacheGeometry, DCacheStats, DetectionStats, FetchScheme, FetchStats, TlbStats};

use crate::tech::TechnologyParams;

/// Energy breakdown of the instruction-fetch path, in picojoules.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct FetchEnergy {
    /// CAM tag-side energy (match lines + cell comparisons).
    pub tag_pj: f64,
    /// Data-array read energy (including any link-bit widening).
    pub data_pj: f64,
    /// Line-fill write energy.
    pub fill_pj: f64,
    /// Way-memoization link maintenance (updates + invalidation sweeps).
    pub link_pj: f64,
    /// Way-hint bit accesses (way-placement only).
    pub hint_pj: f64,
}

impl FetchEnergy {
    /// Total fetch-path energy.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.tag_pj + self.data_pj + self.fill_pj + self.link_pj + self.hint_pj
    }
}

/// Energy model for one instruction cache configuration.
///
/// # Examples
///
/// ```
/// use wp_energy::CacheEnergyModel;
/// use wp_mem::{CacheGeometry, FetchScheme};
///
/// let geom = CacheGeometry::xscale_icache();
/// let model = CacheEnergyModel::for_scheme(geom, FetchScheme::Baseline);
/// // A full 32-way search costs far more than a single-way probe.
/// assert!(model.tag_search_pj(32) > 20.0 * model.tag_search_pj(1) * 0.9);
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CacheEnergyModel {
    geom: CacheGeometry,
    tech: TechnologyParams,
    scheme: FetchScheme,
    /// Extra bits per line stored in the data array (way-memoization
    /// links); 0 for the other schemes.
    extra_line_bits: u32,
}

impl CacheEnergyModel {
    /// Builds the model for a fetch scheme on a geometry, with default
    /// technology parameters.
    #[must_use]
    pub fn for_scheme(geom: CacheGeometry, scheme: FetchScheme) -> CacheEnergyModel {
        CacheEnergyModel::with_technology(geom, scheme, TechnologyParams::default())
    }

    /// Builds the model with explicit technology parameters.
    #[must_use]
    pub fn with_technology(
        geom: CacheGeometry,
        scheme: FetchScheme,
        tech: TechnologyParams,
    ) -> CacheEnergyModel {
        let extra_line_bits = if scheme == FetchScheme::WayMemoization {
            // 9 links per 32 B line, each ceil(log2 ways) + 1 valid bit:
            // the paper's 21% data-side overhead on the 32-way cache.
            (geom.words_per_line() + 1) * (Self::way_bits(geom) + 1)
        } else {
            0
        };
        CacheEnergyModel { geom, tech, scheme, extra_line_bits }
    }

    fn way_bits(geom: CacheGeometry) -> u32 {
        geom.ways().trailing_zeros().max(1)
    }

    /// The geometry the model prices.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Extra data-array bits per line (way-memoization links).
    #[must_use]
    pub fn extra_line_bits(&self) -> u32 {
        self.extra_line_bits
    }

    /// The data-side widening factor the links impose — 1.21 for the
    /// paper's 32 KB, 32-way configuration.
    #[must_use]
    pub fn data_width_factor(&self) -> f64 {
        let line_bits = f64::from(self.geom.line_bytes() * 8);
        (line_bits + f64::from(self.extra_line_bits)) / line_bits
    }

    fn line_bits_total(&self) -> f64 {
        f64::from(self.geom.line_bytes() * 8 + self.extra_line_bits)
    }

    /// Energy of one CAM tag search arming `ways_searched` ways.
    #[must_use]
    pub fn tag_search_pj(&self, ways_searched: u64) -> f64 {
        let scale = self.tech.tag_scale(self.geom);
        let per_way =
            self.tech.matchline_pj + f64::from(self.geom.tag_bits()) * self.tech.cam_bit_pj;
        ways_searched as f64 * per_way * scale
    }

    /// Energy of one data-array read (one fetch word out of the line,
    /// whole row precharged).
    #[must_use]
    pub fn data_read_pj(&self) -> f64 {
        let scale = self.tech.data_scale(self.geom);
        self.tech.decode_pj
            + self.line_bits_total() * self.tech.bitline_read_pj * scale
            + 32.0 * self.tech.senseamp_pj
    }

    /// Energy of one whole-line fill.
    #[must_use]
    pub fn line_fill_pj(&self) -> f64 {
        let scale = self.tech.data_scale(self.geom);
        self.tech.decode_pj + self.line_bits_total() * self.tech.bitline_write_pj * scale
    }

    /// Energy of one link-field update: a row activation plus the write
    /// of the link bits (way-memoization).
    #[must_use]
    pub fn link_update_pj(&self) -> f64 {
        let link_bits = f64::from(Self::way_bits(self.geom) + 1);
        self.data_read_pj() + link_bits * self.tech.bitline_write_pj
    }

    /// Energy of one link-invalidation sweep (valid-bit clears across
    /// the set on an eviction).
    #[must_use]
    pub fn link_invalidation_pj(&self) -> f64 {
        f64::from(self.geom.ways()) * 0.05
    }

    /// The average energy of one *baseline-style* access (full search +
    /// one data read) — the figure-of-merit used in reports.
    #[must_use]
    pub fn baseline_access_pj(&self) -> f64 {
        self.tag_search_pj(u64::from(self.geom.ways())) + self.data_read_pj()
    }

    /// Prices a run's fetch-side counters.
    #[must_use]
    pub fn fetch_energy(&self, stats: &FetchStats) -> FetchEnergy {
        let scale = self.tech.tag_scale(self.geom);
        let tag_pj = stats.matchline_precharges as f64 * self.tech.matchline_pj * scale
            + stats.tag_comparisons as f64
                * f64::from(self.geom.tag_bits())
                * self.tech.cam_bit_pj
                * scale;
        let data_pj = stats.data_reads as f64 * self.data_read_pj();
        let fill_pj = stats.line_fills as f64 * self.line_fill_pj();
        let link_pj = stats.link_updates as f64 * self.link_update_pj()
            + stats.link_invalidations as f64 * self.link_invalidation_pj();
        let hint_pj = if self.scheme == FetchScheme::WayPlacement {
            stats.fetches as f64 * self.tech.way_hint_pj
        } else {
            0.0
        };
        FetchEnergy { tag_pj, data_pj, fill_pj, link_pj, hint_pj }
    }

    /// Prices a run's data-cache counters (the data cache always does a
    /// full CAM search).
    #[must_use]
    pub fn dcache_energy_pj(&self, stats: &DCacheStats) -> f64 {
        let scale = self.tech.tag_scale(self.geom);
        // Each comparison arms one match line and compares one tag.
        let tag = stats.tag_comparisons as f64
            * (self.tech.matchline_pj + f64::from(self.geom.tag_bits()) * self.tech.cam_bit_pj)
            * scale;
        let data = stats.data_accesses as f64 * self.data_read_pj();
        let fills = (stats.line_fills + stats.writebacks) as f64 * self.line_fill_pj();
        tag + data + fills
    }
}

/// Energy prices of the fetch core's fault-detection checks and
/// recovery actions, in picojoules per event.
///
/// Detection is deliberately cheap per event — a parity bit rides the
/// tag compare that was happening anyway, the duplicate WP bit rides
/// the I-TLB payload read — while recovery actions (scrubbing a line,
/// re-deriving a WP bit through a modeled refill) cost real work.
/// [`RecoveryCosts::recovery_pj`] prices a run's [`DetectionStats`]
/// so resilience overhead lands in the energy report instead of being
/// silently free.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RecoveryCosts {
    /// One tag-parity check: a single extra CAM bit compared alongside
    /// the armed way's tag.
    pub parity_check_pj: f64,
    /// One WP-bit cross-check: reading the duplicate payload bit.
    pub wp_check_pj: f64,
    /// Scrubbing one corrupted line: clearing its valid/dirty/parity
    /// bits (the refill itself is priced by the normal miss path).
    pub line_invalidate_pj: f64,
    /// Resetting the global way-hint bit from its shadow.
    pub hint_reset_pj: f64,
    /// Re-deriving a corrupted WP bit via a modeled I-TLB refill.
    pub wp_rederive_pj: f64,
}

impl RecoveryCosts {
    /// Derives the costs from the cache and I-TLB models the run is
    /// priced with.
    #[must_use]
    pub fn derive(cache: &CacheEnergyModel, itlb: &TlbEnergyModel) -> RecoveryCosts {
        // One parity bit alongside the `tag_bits`-wide compare.
        let parity_check_pj = cache.tag_search_pj(1) / f64::from(cache.geom.tag_bits());
        RecoveryCosts {
            parity_check_pj,
            // Same class of event as the TLB's WP payload-bit read.
            wp_check_pj: 0.02,
            // Clearing three state bits of one slot.
            line_invalidate_pj: 3.0 * cache.tech.bitline_write_pj,
            // One hint-bit write.
            hint_reset_pj: cache.tech.way_hint_pj,
            // The fill write of a TLB miss.
            wp_rederive_pj: 2.0 * itlb.lookup_pj(),
        }
    }

    /// Prices a run's detection/recovery counters.
    #[must_use]
    pub fn recovery_pj(&self, detect: &DetectionStats) -> f64 {
        detect.parity_checks as f64 * self.parity_check_pj
            + detect.wp_bit_checks as f64 * self.wp_check_pj
            + detect.lines_invalidated as f64 * self.line_invalidate_pj
            + detect.hint_resets as f64 * self.hint_reset_pj
            + detect.wp_rederivations as f64 * self.wp_rederive_pj
    }
}

/// Energy model of a fully-associative TLB.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TlbEnergyModel {
    entries: u32,
    vpn_bits: u32,
    /// The extra way-placement bit per entry (read on each lookup).
    wp_bit: bool,
    tech: TechnologyParams,
}

impl TlbEnergyModel {
    /// Builds the model. `page_bytes` sizes the VPN field; `wp_bit`
    /// adds the way-placement bit's read energy.
    #[must_use]
    pub fn new(entries: u32, page_bytes: u32, wp_bit: bool) -> TlbEnergyModel {
        TlbEnergyModel {
            entries,
            vpn_bits: 32 - page_bytes.trailing_zeros(),
            wp_bit,
            tech: TechnologyParams::default(),
        }
    }

    /// Energy of one lookup.
    #[must_use]
    pub fn lookup_pj(&self) -> f64 {
        let search = f64::from(self.entries)
            * (self.tech.tlb_matchline_pj + f64::from(self.vpn_bits) * self.tech.tlb_cam_bit_pj);
        // One extra payload bit read on the hit entry: tiny, but the
        // paper insists all overheads are accounted.
        search + if self.wp_bit { 0.02 } else { 0.0 }
    }

    /// Prices a run's TLB counters (fills cost roughly two lookups'
    /// worth of write energy).
    #[must_use]
    pub fn energy_pj(&self, stats: &TlbStats) -> f64 {
        stats.lookups as f64 * self.lookup_pj() + stats.misses as f64 * 2.0 * self.lookup_pj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xscale() -> CacheGeometry {
        CacheGeometry::xscale_icache()
    }

    #[test]
    fn memoization_width_factor_matches_paper() {
        let model = CacheEnergyModel::for_scheme(xscale(), FetchScheme::WayMemoization);
        // 9 links x 6 bits = 54 extra bits on a 256-bit line: 21%.
        assert_eq!(model.extra_line_bits(), 54);
        assert!((model.data_width_factor() - 1.21).abs() < 0.005);
        // The other schemes are unwidened.
        let base = CacheEnergyModel::for_scheme(xscale(), FetchScheme::Baseline);
        assert_eq!(base.extra_line_bits(), 0);
        assert_eq!(base.data_width_factor(), 1.0);
    }

    #[test]
    fn tag_share_is_majority_at_xscale_point() {
        // The first-order fact behind the paper's ~50% saving: on the
        // 32 KB, 32-way CAM cache the full tag search costs about as
        // much as (or more than) the data read.
        let model = CacheEnergyModel::for_scheme(xscale(), FetchScheme::Baseline);
        let tag = model.tag_search_pj(32);
        let data = model.data_read_pj();
        let share = tag / (tag + data);
        assert!((0.45..0.65).contains(&share), "tag share {share:.2} out of calibration band");
    }

    #[test]
    fn tag_share_is_small_on_low_associativity() {
        // ...and the reason way-memoization *loses* on a 16 KB, 8-way
        // cache: there is hardly any tag energy left to recover.
        let geom = CacheGeometry::new(16 * 1024, 8, 32);
        let model = CacheEnergyModel::for_scheme(geom, FetchScheme::Baseline);
        let tag = model.tag_search_pj(8);
        let data = model.data_read_pj();
        let share = tag / (tag + data);
        assert!(share < 0.25, "tag share {share:.2} should be small");
    }

    #[test]
    fn fetch_energy_prices_counters() {
        let model = CacheEnergyModel::for_scheme(xscale(), FetchScheme::Baseline);
        let stats = FetchStats {
            fetches: 100,
            hits: 99,
            misses: 1,
            tag_comparisons: 3200,
            matchline_precharges: 3200,
            data_reads: 100,
            line_fills: 1,
            ..FetchStats::new()
        };
        let energy = model.fetch_energy(&stats);
        assert!(energy.tag_pj > 0.0);
        assert!(energy.data_pj > 0.0);
        assert!(energy.fill_pj > 0.0);
        assert_eq!(energy.link_pj, 0.0);
        assert_eq!(energy.hint_pj, 0.0, "baseline has no hint bit");
        let per_access = energy.total_pj() / 100.0;
        // Sanity band: tens of pJ per access for this class of cache.
        assert!((20.0..120.0).contains(&per_access), "{per_access}");
    }

    #[test]
    fn way_placement_single_probe_is_much_cheaper() {
        let model = CacheEnergyModel::for_scheme(xscale(), FetchScheme::WayPlacement);
        let full = model.tag_search_pj(32) + model.data_read_pj();
        let single = model.tag_search_pj(1) + model.data_read_pj();
        let saving = 1.0 - single / full;
        assert!(saving > 0.40, "single-way probe saves {saving:.2}");
    }

    #[test]
    fn hint_energy_counted_for_way_placement_only() {
        let stats = FetchStats { fetches: 1000, ..FetchStats::new() };
        let wp = CacheEnergyModel::for_scheme(xscale(), FetchScheme::WayPlacement);
        let base = CacheEnergyModel::for_scheme(xscale(), FetchScheme::Baseline);
        assert!(wp.fetch_energy(&stats).hint_pj > 0.0);
        assert_eq!(base.fetch_energy(&stats).hint_pj, 0.0);
    }

    #[test]
    fn link_maintenance_costs() {
        let model = CacheEnergyModel::for_scheme(xscale(), FetchScheme::WayMemoization);
        let stats =
            FetchStats { fetches: 10, link_updates: 5, link_invalidations: 2, ..FetchStats::new() };
        let energy = model.fetch_energy(&stats);
        assert!(energy.link_pj > 5.0 * model.data_read_pj() * 0.9);
    }

    #[test]
    fn tlb_lookup_is_cheap_relative_to_cache() {
        let tlb = TlbEnergyModel::new(32, 1024, true);
        let cache = CacheEnergyModel::for_scheme(xscale(), FetchScheme::Baseline);
        assert!(tlb.lookup_pj() < cache.baseline_access_pj() / 2.0);
        let stats = TlbStats { lookups: 100, misses: 2, ..TlbStats::new() };
        assert!(tlb.energy_pj(&stats) > 100.0 * tlb.lookup_pj());
    }

    #[test]
    fn fetch_energy_is_monotone_in_events() {
        // More of any counted event can never cost less energy.
        let model = CacheEnergyModel::for_scheme(xscale(), FetchScheme::WayMemoization);
        let base = FetchStats {
            fetches: 100,
            tag_comparisons: 50,
            matchline_precharges: 50,
            data_reads: 100,
            line_fills: 3,
            link_updates: 5,
            link_invalidations: 2,
            ..FetchStats::new()
        };
        let total = model.fetch_energy(&base).total_pj();
        for bump in [
            FetchStats { tag_comparisons: 51, matchline_precharges: 51, ..base },
            FetchStats { data_reads: 101, ..base },
            FetchStats { line_fills: 4, ..base },
            FetchStats { link_updates: 6, ..base },
            FetchStats { link_invalidations: 3, ..base },
        ] {
            assert!(model.fetch_energy(&bump).total_pj() > total, "{bump:?} should cost more");
        }
    }

    #[test]
    fn detection_checks_are_cheap_and_recovery_is_priced() {
        let cache = CacheEnergyModel::for_scheme(xscale(), FetchScheme::WayPlacement);
        let itlb = TlbEnergyModel::new(32, 1024, true);
        let costs = RecoveryCosts::derive(&cache, &itlb);
        // A parity check rides the tag compare: well under one
        // single-way probe.
        assert!(costs.parity_check_pj < cache.tag_search_pj(1) / 4.0);
        assert!(costs.parity_check_pj > 0.0);
        // Recovery actions cost more than the checks that trigger them.
        assert!(costs.wp_rederive_pj > costs.wp_check_pj);
        assert!(costs.line_invalidate_pj > 0.0 && costs.hint_reset_pj > 0.0);
        // Pricing is linear in the counters and zero on a zero run.
        assert_eq!(costs.recovery_pj(&DetectionStats::new()), 0.0);
        let detect = DetectionStats {
            parity_checks: 1_000,
            wp_bit_checks: 1_000,
            lines_invalidated: 3,
            hint_resets: 2,
            wp_rederivations: 1,
            ..DetectionStats::new()
        };
        let pj = costs.recovery_pj(&detect);
        assert!(pj > 0.0);
        let double = DetectionStats {
            parity_checks: 2_000,
            wp_bit_checks: 2_000,
            lines_invalidated: 6,
            hint_resets: 4,
            wp_rederivations: 2,
            ..DetectionStats::new()
        };
        assert!((costs.recovery_pj(&double) - 2.0 * pj).abs() < 1e-9);
    }

    #[test]
    fn more_associativity_means_costlier_full_search() {
        let mut previous = 0.0;
        for ways in [4u32, 8, 16, 32] {
            let geom = CacheGeometry::new(32 * 1024, ways, 32);
            let model = CacheEnergyModel::for_scheme(geom, FetchScheme::Baseline);
            let search = model.tag_search_pj(u64::from(ways));
            assert!(search > previous, "{ways}-way: {search}");
            previous = search;
        }
    }

    #[test]
    fn bigger_caches_cost_more_per_access() {
        let small = CacheEnergyModel::for_scheme(
            CacheGeometry::new(16 * 1024, 32, 32),
            FetchScheme::Baseline,
        );
        let large = CacheEnergyModel::for_scheme(
            CacheGeometry::new(64 * 1024, 32, 32),
            FetchScheme::Baseline,
        );
        assert!(large.baseline_access_pj() > small.baseline_access_pj() * 1.5);
    }
}
