//! Cross-scheme and golden-stream invariants of the SoA fetch core.
//!
//! The per-line reference model that held the PR-6 rewrite together is
//! gone (its evidence served); these checks replace it with oracles the
//! core carries within itself:
//!
//! * **traced twin** — `fetch_traced` must be counter- and
//!   timing-identical to `fetch` on every stream;
//! * **detection twin** — arming the detection checks on a fault-free
//!   run must not change a single fetch counter or cycle (protection is
//!   observation-only until something is actually wrong);
//! * **batch twin** — `fetch_block` must equal the per-fetch loop,
//!   including under an armed fault injector (the bulk PRNG path);
//! * **golden fingerprints** — fixed seeded streams over the XScale
//!   geometry must reproduce baked-in counter/energy fingerprints
//!   bit-for-bit, pinning the core's behaviour against silent drift.
//!
//! All of it runs across every fetch scheme and every figure-6
//! geometry. Set `WP_QUICK=1` to run a trimmed sweep (CI's quick lane).

use wp_core::wp_isa::Image;
use wp_core::wp_linker::{Layout, Linker, Profile};
use wp_core::wp_sim::{simulate_traced, SimConfig};
use wp_core::wp_trace::TraceRecorder;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_energy::CacheEnergyModel;
use wp_mem::rng::SplitMix64;
use wp_mem::{CacheGeometry, FaultConfig, MemoryConfig, MemorySystem};

fn quick() -> bool {
    // The unified env gate: WP_QUICK set, non-empty and not "0".
    wp_core::env::quick()
}

/// The figure-6 geometry grid (16/32/64 KB × 8/16/32 ways, 32 B lines).
fn figure6_geometries() -> Vec<CacheGeometry> {
    let mut geometries = Vec::new();
    for size_kb in [16u32, 32, 64] {
        for ways in [8u32, 16, 32] {
            geometries.push(CacheGeometry::new(size_kb * 1024, ways, 32));
        }
    }
    geometries
}

/// All four fetch schemes around one geometry. The way-placement area
/// is half the cache rounded to pages, anchored at `base`.
fn scheme_configs(geom: CacheGeometry, base: u32) -> Vec<(&'static str, MemoryConfig)> {
    let area = (geom.size_bytes() / 2) & !1023;
    vec![
        ("baseline", MemoryConfig::baseline(geom)),
        ("way-placement", MemoryConfig::way_placement(geom, base, area.max(1024))),
        ("way-memoization", MemoryConfig::way_memoization(geom)),
        ("way-prediction", MemoryConfig::way_prediction(geom)),
    ]
}

/// A compact, order-sensitive digest of a run: total cycles plus the
/// energy-relevant counters and the priced energy, fold-mixed so any
/// single-counter drift changes the value.
fn fingerprint(mem: &MemorySystem, cycles: u64) -> u64 {
    let s = mem.fetch_stats();
    let model =
        CacheEnergyModel::for_scheme(mem.config().icache.geometry, mem.config().icache.scheme);
    let pj_bits = model.fetch_energy(s).total_pj().to_bits();
    [
        cycles,
        s.fetches,
        s.hits,
        s.misses,
        s.tag_comparisons,
        s.matchline_precharges,
        s.data_reads,
        s.line_fills,
        s.same_line_elisions,
        s.wp_accesses,
        s.hint_false_wp,
        s.hint_false_normal,
        s.link_hits,
        s.link_updates,
        s.link_invalidations,
        s.penalty_cycles,
        mem.itlb_stats().lookups,
        mem.itlb_stats().misses,
        pj_bits,
    ]
    .iter()
    .fold(0xcbf2_9ce4_8422_2325u64, |acc, &v| (acc ^ v).wrapping_mul(0x0000_0100_0000_01b3))
}

/// Drives one config over `addrs` four ways — per-fetch untraced,
/// per-fetch traced, detection-armed, and (fault-free only) asserting
/// the detection twin changes nothing — and returns the untraced run's
/// fingerprint.
fn assert_invariants(scheme: &str, config: MemoryConfig, addrs: &[u32]) -> u64 {
    let mut plain = MemorySystem::new(config);
    let mut traced = MemorySystem::new(config);
    let mut cycles = 0u64;
    for (i, &addr) in addrs.iter().enumerate() {
        let untraced = plain.fetch(addr);
        let (timing, event) = traced.fetch_traced(addr);
        assert_eq!(
            timing, untraced,
            "{scheme} {}: traced timing diverged at fetch {i} ({addr:#x})",
            config.icache.geometry
        );
        assert_eq!(event.pc, addr);
        assert_eq!(event.hit, timing.hit);
        cycles += u64::from(untraced.cycles);
    }
    assert_eq!(plain.fetch_stats(), traced.fetch_stats(), "{scheme}: fetch stats");
    assert_eq!(plain.itlb_stats(), traced.itlb_stats(), "{scheme}: I-TLB stats");
    assert_eq!(plain.fault_stats(), traced.fault_stats(), "{scheme}: fault stats");

    if config.fault.is_none() {
        // Protection must be observation-only on a clean machine.
        let mut armed = MemorySystem::new(config.with_detection());
        let mut armed_cycles = 0u64;
        for &addr in addrs {
            armed_cycles += u64::from(armed.fetch(addr).cycles);
        }
        assert_eq!(armed_cycles, cycles, "{scheme}: detection twin cycles");
        assert_eq!(armed.fetch_stats(), plain.fetch_stats(), "{scheme}: detection twin stats");
        let detect = armed.detection_stats();
        assert_eq!(detect.total_detected(), 0, "{scheme}: clean run detected faults: {detect:?}");
        assert_eq!(detect.recovery_cycles, 0, "{scheme}: clean run charged recovery");
        assert!(
            detect.parity_checks > 0
                || config.icache.scheme == wp_mem::FetchScheme::Baseline
                || detect.wp_bit_checks > 0
        );
    }

    fingerprint(&plain, cycles)
}

/// A loopy instruction-like address stream: straight-line runs broken
/// by mostly-backward branches with occasional far jumps, spanning
/// several pages so the I-TLB churns too.
fn synthetic_stream(seed: u64, len: usize, span: u32) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    let mut addrs = Vec::with_capacity(len);
    let mut pc = (rng.below(u64::from(span / 4)) as u32) * 4;
    while addrs.len() < len {
        for _ in 0..rng.range_u64(1, 24) {
            addrs.push(pc % span);
            pc = pc.wrapping_add(4);
        }
        pc = if rng.below(4) == 0 {
            (rng.below(u64::from(span / 4)) as u32) * 4
        } else {
            pc.wrapping_sub(rng.range_u64(0, 64) as u32 * 4) % span
        };
    }
    addrs.truncate(len);
    addrs
}

/// Captures the fetch-pc stream of a benchmark's natural-layout binary
/// on the small input (run capped, stream capped at `cap` fetches).
fn capture_fetch_pcs(benchmark: Benchmark, cap: usize) -> Vec<u32> {
    let linked = Linker::new()
        .with_modules(benchmark.modules(InputSet::Small))
        .link(Layout::Natural, &Profile::empty())
        .expect("link");
    let mut config = SimConfig::new(MemoryConfig::baseline(CacheGeometry::xscale_icache()));
    config.max_instructions = 40_000;
    let mut recorder = TraceRecorder::new().with_capacity(cap);
    // InstructionLimit on long benchmarks is expected: the recorded
    // prefix is the stream under test either way.
    let _ = simulate_traced(&linked.image, &config, &mut recorder);
    recorder.events().iter().map(|e| e.pc).collect()
}

#[test]
fn synthetic_streams_agree_across_schemes_and_geometries() {
    let len = if quick() { 4_000 } else { 30_000 };
    for geom in figure6_geometries() {
        // A span a little past the cache size exercises conflict misses
        // and way-placement wrap-around; several pages exercise the TLB.
        let span = geom.size_bytes() + geom.size_bytes() / 2;
        for (i, (scheme, config)) in scheme_configs(geom, 0).into_iter().enumerate() {
            let seed = 0x50a0_0000 + u64::from(geom.size_bytes()) + i as u64;
            assert_invariants(scheme, config, &synthetic_stream(seed, len, span));
        }
    }
}

#[test]
fn benchmark_fetch_streams_agree_across_schemes() {
    let (benchmarks, cap): (&[Benchmark], usize) =
        if quick() { (&Benchmark::ALL[..4], 2_048) } else { (&Benchmark::ALL, 8_192) };
    let geom = CacheGeometry::xscale_icache();
    for &benchmark in benchmarks {
        let pcs = capture_fetch_pcs(benchmark, cap);
        assert!(!pcs.is_empty(), "{benchmark}: captured no fetches");
        for (scheme, config) in scheme_configs(geom, Image::TEXT_BASE) {
            assert_invariants(scheme, config, &pcs);
        }
    }
}

#[test]
fn fault_injected_streams_agree_across_schemes() {
    let len = if quick() { 4_000 } else { 20_000 };
    let geom = CacheGeometry::xscale_icache();
    for (i, (scheme, config)) in scheme_configs(geom, 0).into_iter().enumerate() {
        // A hot rate so every weave point (stale WP bits, hint
        // inversions, CAM tag flips) fires many times in the stream.
        let config = config.with_fault(FaultConfig::all(0xFA_017 + i as u64, 50_000));
        let stream = synthetic_stream(0xDEAD_0000 + i as u64, len, 96 * 1024);
        assert_invariants(scheme, config, &stream);
    }
}

#[test]
fn small_geometries_agree_too() {
    // Below-figure-6 corners: minimum sets, high associativity relative
    // to size, and the 64-way single-word valid-mask edge.
    for geom in [
        CacheGeometry::new(2 * 1024, 4, 32),
        CacheGeometry::new(4 * 1024, 32, 32),
        CacheGeometry::new(64 * 1024, 64, 32),
    ] {
        let len = if quick() { 2_000 } else { 10_000 };
        for (i, (scheme, config)) in scheme_configs(geom, 0).into_iter().enumerate() {
            let seed = 0x5311_0000 + u64::from(geom.ways()) + i as u64;
            let stream = synthetic_stream(seed, len, geom.size_bytes() * 2);
            assert_invariants(scheme, config, &stream);
        }
    }
}

/// Golden-stream pinning: the XScale geometry driven over one fixed
/// seeded stream must reproduce these fingerprints bit-for-bit. Any
/// intentional change to fetch semantics, counter accounting or energy
/// pricing shows up here as a fingerprint mismatch and must be
/// re-blessed consciously (regenerate with `WP_PRINT_GOLDEN=1`).
#[test]
fn golden_stream_fingerprints_are_stable() {
    let geom = CacheGeometry::xscale_icache();
    let stream = synthetic_stream(0x601D, 12_000, geom.size_bytes() + geom.size_bytes() / 2);
    let mut got = Vec::new();
    for (scheme, config) in scheme_configs(geom, 0) {
        got.push((scheme, assert_invariants(scheme, config, &stream)));
    }
    if wp_core::env::print_golden() {
        for (scheme, print) in &got {
            println!("    (\"{scheme}\", {print:#018x}),");
        }
    }
    let golden: [(&str, u64); 4] = [
        ("baseline", 0x348c7991bb70af30),
        ("way-placement", 0x497cf6d386703d27),
        ("way-memoization", 0xccf21bc007589521),
        ("way-prediction", 0xe672da2e59ee6edf),
    ];
    for ((scheme, got), (gscheme, want)) in got.iter().zip(golden.iter()) {
        assert_eq!(scheme, gscheme);
        assert_eq!(
            got, want,
            "{scheme}: golden fingerprint drifted (run with WP_PRINT_GOLDEN=1 to regenerate)"
        );
    }
}
