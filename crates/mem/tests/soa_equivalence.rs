//! Differential equivalence: the structure-of-arrays fetch core against
//! the frozen per-line reference model ([`wp_mem::refmodel`]).
//!
//! Both cores are driven lock-step over the same address streams —
//! seeded synthetic streams, real benchmark fetch traces, and
//! fault-injected runs — across every fetch scheme and every figure-6
//! geometry, asserting identical timing, trace events, counters and
//! priced energy *per fetch*. Any SoA rewrite bug that changes a hit,
//! a way, a penalty cycle or a counter shows up here with the exact
//! fetch index that diverged.
//!
//! Set `WP_QUICK=1` to run a trimmed sweep (CI's quick lane).

use wp_core::wp_isa::Image;
use wp_core::wp_linker::{Layout, Linker, Profile};
use wp_core::wp_sim::{simulate_traced, SimConfig};
use wp_core::wp_trace::TraceRecorder;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_energy::CacheEnergyModel;
use wp_mem::refmodel::RefMemorySystem;
use wp_mem::rng::SplitMix64;
use wp_mem::{CacheGeometry, FaultConfig, MemoryConfig, MemorySystem};

fn quick() -> bool {
    std::env::var_os("WP_QUICK").is_some()
}

/// The figure-6 geometry grid (16/32/64 KB × 8/16/32 ways, 32 B lines).
fn figure6_geometries() -> Vec<CacheGeometry> {
    let mut geometries = Vec::new();
    for size_kb in [16u32, 32, 64] {
        for ways in [8u32, 16, 32] {
            geometries.push(CacheGeometry::new(size_kb * 1024, ways, 32));
        }
    }
    geometries
}

/// All four fetch schemes around one geometry. The way-placement area
/// is half the cache rounded to pages, anchored at `base`.
fn scheme_configs(geom: CacheGeometry, base: u32) -> Vec<(&'static str, MemoryConfig)> {
    let area = (geom.size_bytes() / 2) & !1023;
    vec![
        ("baseline", MemoryConfig::baseline(geom)),
        ("way-placement", MemoryConfig::way_placement(geom, base, area.max(1024))),
        ("way-memoization", MemoryConfig::way_memoization(geom)),
        ("way-prediction", MemoryConfig::way_prediction(geom)),
    ]
}

/// Drives both cores lock-step over `addrs`, asserting equality per
/// fetch and over the final counters and priced energy.
fn assert_lockstep(scheme: &str, config: MemoryConfig, addrs: &[u32]) {
    let mut live = MemorySystem::new(config);
    let mut reference = RefMemorySystem::new(config);
    for (i, &addr) in addrs.iter().enumerate() {
        let (live_timing, live_event) = live.fetch_traced(addr);
        let (ref_timing, ref_event) = reference.fetch_traced(addr);
        assert_eq!(
            live_timing, ref_timing,
            "{scheme} {}: timing diverged at fetch {i} ({addr:#x})",
            config.icache.geometry
        );
        assert_eq!(
            live_event, ref_event,
            "{scheme} {}: event diverged at fetch {i} ({addr:#x})",
            config.icache.geometry
        );
    }
    assert_eq!(live.fetch_stats(), reference.fetch_stats(), "{scheme}: fetch stats");
    assert_eq!(live.itlb_stats(), reference.itlb_stats(), "{scheme}: I-TLB stats");
    assert_eq!(live.fault_stats(), reference.fault_stats(), "{scheme}: fault stats");
    let model = CacheEnergyModel::for_scheme(config.icache.geometry, config.icache.scheme);
    let live_pj = model.fetch_energy(live.fetch_stats()).total_pj();
    let ref_pj = model.fetch_energy(reference.fetch_stats()).total_pj();
    assert_eq!(live_pj.to_bits(), ref_pj.to_bits(), "{scheme}: priced energy");
}

/// A loopy instruction-like address stream: straight-line runs broken
/// by mostly-backward branches with occasional far jumps, spanning
/// several pages so the I-TLB churns too.
fn synthetic_stream(seed: u64, len: usize, span: u32) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    let mut addrs = Vec::with_capacity(len);
    let mut pc = (rng.below(u64::from(span / 4)) as u32) * 4;
    while addrs.len() < len {
        for _ in 0..rng.range_u64(1, 24) {
            addrs.push(pc % span);
            pc = pc.wrapping_add(4);
        }
        pc = if rng.below(4) == 0 {
            (rng.below(u64::from(span / 4)) as u32) * 4
        } else {
            pc.wrapping_sub(rng.range_u64(0, 64) as u32 * 4) % span
        };
    }
    addrs.truncate(len);
    addrs
}

/// Captures the fetch-pc stream of a benchmark's natural-layout binary
/// on the small input (run capped, stream capped at `cap` fetches).
fn capture_fetch_pcs(benchmark: Benchmark, cap: usize) -> Vec<u32> {
    let linked = Linker::new()
        .with_modules(benchmark.modules(InputSet::Small))
        .link(Layout::Natural, &Profile::empty())
        .expect("link");
    let mut config = SimConfig::new(MemoryConfig::baseline(CacheGeometry::xscale_icache()));
    config.max_instructions = 40_000;
    let mut recorder = TraceRecorder::new().with_capacity(cap);
    // InstructionLimit on long benchmarks is expected: the recorded
    // prefix is the stream under test either way.
    let _ = simulate_traced(&linked.image, &config, &mut recorder);
    recorder.events().iter().map(|e| e.pc).collect()
}

#[test]
fn synthetic_streams_agree_across_schemes_and_geometries() {
    let len = if quick() { 4_000 } else { 30_000 };
    for geom in figure6_geometries() {
        // A span a little past the cache size exercises conflict misses
        // and way-placement wrap-around; several pages exercise the TLB.
        let span = geom.size_bytes() + geom.size_bytes() / 2;
        for (i, (scheme, config)) in scheme_configs(geom, 0).into_iter().enumerate() {
            let seed = 0x50a0_0000 + u64::from(geom.size_bytes()) + i as u64;
            assert_lockstep(scheme, config, &synthetic_stream(seed, len, span));
        }
    }
}

#[test]
fn benchmark_fetch_streams_agree_across_schemes() {
    let (benchmarks, cap): (&[Benchmark], usize) =
        if quick() { (&Benchmark::ALL[..4], 2_048) } else { (&Benchmark::ALL, 8_192) };
    let geom = CacheGeometry::xscale_icache();
    for &benchmark in benchmarks {
        let pcs = capture_fetch_pcs(benchmark, cap);
        assert!(!pcs.is_empty(), "{benchmark}: captured no fetches");
        for (scheme, config) in scheme_configs(geom, Image::TEXT_BASE) {
            assert_lockstep(scheme, config, &pcs);
        }
    }
}

#[test]
fn fault_injected_streams_agree_across_schemes() {
    let len = if quick() { 4_000 } else { 20_000 };
    let geom = CacheGeometry::xscale_icache();
    for (i, (scheme, config)) in scheme_configs(geom, 0).into_iter().enumerate() {
        // A hot rate so every weave point (stale WP bits, hint
        // inversions, CAM tag flips) fires many times in the stream.
        let config = config.with_fault(FaultConfig::all(0xFA_017 + i as u64, 50_000));
        let stream = synthetic_stream(0xDEAD_0000 + i as u64, len, 96 * 1024);
        assert_lockstep(scheme, config, &stream);
    }
}

#[test]
fn small_geometries_agree_too() {
    // Below-figure-6 corners: minimum sets, high associativity relative
    // to size, and the 64-way single-word valid-mask edge.
    for geom in [
        CacheGeometry::new(2 * 1024, 4, 32),
        CacheGeometry::new(4 * 1024, 32, 32),
        CacheGeometry::new(64 * 1024, 64, 32),
    ] {
        let len = if quick() { 2_000 } else { 10_000 };
        for (i, (scheme, config)) in scheme_configs(geom, 0).into_iter().enumerate() {
            let seed = 0x5311_0000 + u64::from(geom.ways()) + i as u64;
            let stream = synthetic_stream(seed, len, geom.size_bytes() * 2);
            assert_lockstep(scheme, config, &stream);
        }
    }
}
