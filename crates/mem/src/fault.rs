//! Deterministic, seeded hardware fault injection for the memory
//! hierarchy — the robustness campaign's perturbation engine.
//!
//! The paper's safety argument (§4) is that the way-placement hardware
//! sits entirely on the *timing/energy* side of the machine: a stale
//! per-page WP bit in the I-TLB or an inverted global way-hint costs an
//! extra access and a cycle, never correctness. This module makes that
//! claim testable by flipping exactly those bits — plus the CAM tags
//! both comparison schemes rely on — at a configurable rate, driven by
//! a seeded [`SplitMix64`](crate::rng::SplitMix64) stream so every
//! campaign is reproducible.
//!
//! Fault kinds (one opportunity of each enabled kind per fetch):
//!
//! * **Stale WP bit** — the I-TLB outcome's way-placement bit is
//!   inverted before the cache sees it, modelling a corrupted or stale
//!   TLB entry (the OS model wrote the wrong bit).
//! * **Way-hint inversion** — the global way-hint flip-flop of §4.1 is
//!   toggled, modelling an upset of the single-bit predictor.
//! * **Tag bit flip** — one bit of one resident CAM tag is inverted,
//!   modelling a soft error in the tag array. Because the cache models
//!   *placement only* (data lives in the simulator's flat memory), a
//!   flipped tag perturbs hit/miss behaviour, never the fetched bits.
//!
//! Every injected fault is counted in [`FaultStats`]; `wp-sim` surfaces
//! the counters so a campaign can prove faults actually landed.

use crate::rng::SplitMix64;

/// Which hardware fault kinds an injector may fire.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// Invert the I-TLB outcome's per-page way-placement bit.
    StaleWpBit,
    /// Toggle the global way-hint bit (§4.1).
    HintInversion,
    /// Flip one bit of one resident CAM tag.
    TagBitFlip,
}

impl FaultKind {
    /// All kinds, in presentation order.
    pub const ALL: [FaultKind; 3] =
        [FaultKind::StaleWpBit, FaultKind::HintInversion, FaultKind::TagBitFlip];

    /// Short label used in manifests.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            FaultKind::StaleWpBit => "stale-wp-bit",
            FaultKind::HintInversion => "hint-inversion",
            FaultKind::TagBitFlip => "tag-bit-flip",
        }
    }
}

/// Configuration of the hardware fault injector.
///
/// Each enabled kind gets one firing opportunity per instruction fetch;
/// it fires with probability `rate_ppm / 1_000_000`, decided by a
/// seeded PRNG draw, so equal configs produce byte-identical campaigns.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FaultConfig {
    /// PRNG seed; equal seeds yield equal fault streams.
    pub seed: u64,
    /// Per-opportunity firing probability in parts per million.
    pub rate_ppm: u32,
    /// Enable stale-WP-bit faults.
    pub stale_wp_bits: bool,
    /// Enable way-hint inversions.
    pub hint_inversions: bool,
    /// Enable CAM tag bit flips.
    pub tag_bit_flips: bool,
}

impl FaultConfig {
    /// A config with every fault kind enabled.
    #[must_use]
    pub fn all(seed: u64, rate_ppm: u32) -> FaultConfig {
        FaultConfig {
            seed,
            rate_ppm,
            stale_wp_bits: true,
            hint_inversions: true,
            tag_bit_flips: true,
        }
    }

    /// A config with exactly one fault kind enabled.
    #[must_use]
    pub fn only(kind: FaultKind, seed: u64, rate_ppm: u32) -> FaultConfig {
        FaultConfig {
            seed,
            rate_ppm,
            stale_wp_bits: kind == FaultKind::StaleWpBit,
            hint_inversions: kind == FaultKind::HintInversion,
            tag_bit_flips: kind == FaultKind::TagBitFlip,
        }
    }

    /// Whether `kind` is enabled.
    #[must_use]
    pub fn enables(&self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::StaleWpBit => self.stale_wp_bits,
            FaultKind::HintInversion => self.hint_inversions,
            FaultKind::TagBitFlip => self.tag_bit_flips,
        }
    }
}

/// Counters of injected faults (and the opportunities they drew from).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultStats {
    /// Firing opportunities evaluated (one per enabled kind per fetch).
    pub opportunities: u64,
    /// Stale-WP-bit faults injected.
    pub wp_bit_flips: u64,
    /// Way-hint inversions injected.
    pub hint_inversions: u64,
    /// CAM tag bits flipped (only counted when a valid line was hit).
    pub tag_bit_flips: u64,
}

impl FaultStats {
    /// Total faults injected across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.wp_bit_flips + self.hint_inversions + self.tag_bit_flips
    }

    /// Accumulates another set of counters.
    pub fn merge(&mut self, other: &FaultStats) {
        self.opportunities += other.opportunities;
        self.wp_bit_flips += other.wp_bit_flips;
        self.hint_inversions += other.hint_inversions;
        self.tag_bit_flips += other.tag_bit_flips;
    }
}

/// The stateful injector: a seeded PRNG plus fault counters.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SplitMix64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector from its configuration.
    #[must_use]
    pub fn new(config: FaultConfig) -> FaultInjector {
        FaultInjector { config, rng: SplitMix64::new(config.seed), stats: FaultStats::default() }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Accumulated fault counters.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Draws one firing decision for `kind`; returns `true` when the
    /// fault should be injected. Returns `false` without consuming
    /// randomness when `kind` is disabled, so enabling an extra kind
    /// never perturbs the other kinds' streams within a fetch ordering.
    pub fn fires(&mut self, kind: FaultKind) -> bool {
        if !self.config.enables(kind) || self.config.rate_ppm == 0 {
            return false;
        }
        self.stats.opportunities += 1;
        self.rng.below(1_000_000) < u64::from(self.config.rate_ppm)
    }

    /// A uniform draw from `0..bound` for picking fault sites.
    pub fn draw(&mut self, bound: u32) -> u32 {
        self.rng.below(u64::from(bound.max(1))) as u32
    }

    /// Evaluates the firing decisions for `fetches` whole fetches in
    /// bulk — the batched half of `MemorySystem::fetch_block`. When no
    /// opportunity fires, the PRNG stream and opportunity counter end
    /// up exactly where `fetches` sequential per-fetch evaluations
    /// would leave them, and the call returns `true`. When any
    /// opportunity *would* fire, the PRNG is rewound to its state
    /// before the call and `false` is returned: the caller replays the
    /// same fetches one at a time, and the per-fetch path re-draws the
    /// identical stream, landing the fault on exactly the fetch it
    /// would have hit unbatched.
    pub fn try_clean_run(&mut self, fetches: u64) -> bool {
        if self.config.rate_ppm == 0 {
            return true;
        }
        let kinds = FaultKind::ALL.iter().filter(|&&k| self.config.enables(k)).count() as u64;
        if kinds == 0 {
            return true;
        }
        // Only the number of draws matters for stream position, not
        // which kind each draw belongs to.
        let snapshot = self.rng;
        let draws = kinds * fetches;
        for _ in 0..draws {
            if self.rng.below(1_000_000) < u64::from(self.config.rate_ppm) {
                self.rng = snapshot;
                return false;
            }
        }
        self.stats.opportunities += draws;
        true
    }

    /// Records an injected stale-WP-bit fault.
    pub fn note_wp_bit_flip(&mut self) {
        self.stats.wp_bit_flips += 1;
    }

    /// Records an injected way-hint inversion.
    pub fn note_hint_inversion(&mut self) {
        self.stats.hint_inversions += 1;
    }

    /// Records an injected tag bit flip.
    pub fn note_tag_bit_flip(&mut self) {
        self.stats.tag_bit_flips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let mut inj = FaultInjector::new(FaultConfig::all(1, 0));
        for _ in 0..1000 {
            for kind in FaultKind::ALL {
                assert!(!inj.fires(kind));
            }
        }
        assert_eq!(inj.stats().total(), 0);
        assert_eq!(inj.stats().opportunities, 0);
    }

    #[test]
    fn full_rate_always_fires() {
        let mut inj = FaultInjector::new(FaultConfig::all(1, 1_000_000));
        for _ in 0..100 {
            assert!(inj.fires(FaultKind::StaleWpBit));
        }
        assert_eq!(inj.stats().opportunities, 100);
    }

    #[test]
    fn disabled_kind_never_fires_and_draws_nothing() {
        let config = FaultConfig::only(FaultKind::StaleWpBit, 9, 1_000_000);
        let mut inj = FaultInjector::new(config);
        assert!(!inj.fires(FaultKind::TagBitFlip));
        assert!(!inj.fires(FaultKind::HintInversion));
        assert!(inj.fires(FaultKind::StaleWpBit));
        assert_eq!(inj.stats().opportunities, 1);
    }

    #[test]
    fn firing_stream_is_deterministic_per_seed() {
        let stream = |seed| {
            let mut inj = FaultInjector::new(FaultConfig::all(seed, 250_000));
            (0..256).map(|_| inj.fires(FaultKind::StaleWpBit)).collect::<Vec<bool>>()
        };
        assert_eq!(stream(5), stream(5));
        assert_ne!(stream(5), stream(6));
    }

    #[test]
    fn rate_is_roughly_honoured() {
        let mut inj = FaultInjector::new(FaultConfig::all(3, 100_000)); // 10%
        let fired = (0..10_000).filter(|_| inj.fires(FaultKind::TagBitFlip)).count();
        assert!((800..1200).contains(&fired), "10% of 10k draws, got {fired}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::StaleWpBit.label(), "stale-wp-bit");
        assert_eq!(FaultKind::HintInversion.label(), "hint-inversion");
        assert_eq!(FaultKind::TagBitFlip.label(), "tag-bit-flip");
    }

    #[test]
    fn try_clean_run_matches_sequential_draws() {
        // A committed clean run must leave the injector exactly where
        // per-fetch evaluation of the same fetches would.
        let config = FaultConfig::all(0xC1EA, 40_000);
        let mut bulk = FaultInjector::new(config);
        let mut seq = FaultInjector::new(config);
        let mut fetches_until_fire = 0u64;
        'outer: loop {
            fetches_until_fire += 1;
            for kind in FaultKind::ALL {
                if seq.fires(kind) {
                    break 'outer;
                }
            }
        }
        // The clean prefix commits…
        assert!(bulk.try_clean_run(fetches_until_fire - 1));
        assert_eq!(bulk.stats().opportunities, 3 * (fetches_until_fire - 1));
        // …and the firing fetch is refused and rewound: replaying it
        // per-fetch fires exactly as the sequential injector did.
        assert!(!bulk.try_clean_run(1));
        let fired = FaultKind::ALL.iter().any(|&k| bulk.fires(k) || !bulk.config.enables(k));
        assert!(fired, "rewound stream must fire on replay");
    }

    #[test]
    fn try_clean_run_is_free_when_disarmed() {
        let mut inj = FaultInjector::new(FaultConfig::all(5, 0));
        assert!(inj.try_clean_run(1_000_000));
        assert_eq!(inj.stats().opportunities, 0);
        let mut none = FaultConfig::all(5, 500_000);
        none.stale_wp_bits = false;
        none.hint_inversions = false;
        none.tag_bit_flips = false;
        let mut inj = FaultInjector::new(none);
        assert!(inj.try_clean_run(1_000_000));
        assert_eq!(inj.stats().opportunities, 0);
    }
}
