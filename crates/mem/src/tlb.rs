//! Fully-associative translation lookaside buffers.
//!
//! The guest runs identity-mapped (no paging is needed for the study),
//! but the I-TLB is architecturally essential to way-placement: it holds
//! the per-page **way-placement bit** that the OS writes on each fill
//! (§4.1 of the paper). The bit marks pages whose instructions are
//! mapped to explicit cache ways.
//!
//! The paper makes the way-placement area "a multiple of the memory page
//! size" yet evaluates 1 KB and 2 KB areas; we reconcile this with 1 KB
//! pages (common in embedded MMUs) — see DESIGN.md §3 for the
//! substitution note.
//!
//! Storage is structure-of-arrays: a contiguous `vpns` slab plus
//! `present` and `wp` bitsets (the WP bits in a parallel slab, one bit
//! per entry), with a last-hit index checked before the CAM scan.
//! Because a fill only ever happens after a whole-TLB miss, present
//! VPNs are unique, so answering from the last-hit entry — or scanning
//! in any order — is equivalent to a full sequential probe, and the
//! hit path carries no recency state to update.
//!
//! The WP bit is the single most safety-critical bit in the design — a
//! stale 1 sends fetches down the unchecked way-placement path — so it
//! is stored twice: the `wp_check` bitset duplicates every bit written
//! at fill time. [`scrub_wp`](Tlb::scrub_wp) compares the copies and,
//! on a mismatch, re-derives the bit from the OS boundary exactly as a
//! fill would (a modeled I-TLB refill, priced at the miss penalty).

use crate::TlbStats;

/// TLB configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TlbConfig {
    /// Number of entries (Table 1: 32, fully associative).
    pub entries: u32,
    /// Page size in bytes (power of two).
    pub page_bytes: u32,
    /// Cycles to fill an entry on a miss (the OS walk).
    pub miss_penalty: u32,
}

impl TlbConfig {
    /// The reproduction's default: 32 entries, 1 KB pages, 20-cycle fill.
    #[must_use]
    pub fn default_itlb() -> TlbConfig {
        TlbConfig { entries: 32, page_bytes: 1024, miss_penalty: 20 }
    }

    /// Number of page-offset bits.
    #[must_use]
    pub fn page_bits(&self) -> u32 {
        self.page_bytes.trailing_zeros()
    }
}

/// Result of a TLB lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbOutcome {
    /// The page's way-placement bit.
    pub wp: bool,
    /// Whether the lookup missed (entry was filled by the OS model).
    pub miss: bool,
    /// Stall cycles charged for the fill.
    pub stall_cycles: u32,
}

/// A fully-associative TLB with round-robin replacement.
///
/// `wp_limit` is the OS model's way-placement boundary: pages that lie
/// entirely below it get their way-placement bit set when the OS writes
/// the entry. Because the boundary is only consulted on *fills*, changing
/// it mid-run models the paper's "even adjusting it during program
/// execution" only after a TLB flush — exactly the hardware's behaviour.
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    page_bits: u32,
    /// Stored virtual page numbers, indexed by entry.
    vpns: Vec<u32>,
    /// Presence bits, one per entry, packed 64 to a word.
    present: Vec<u64>,
    /// Way-placement bits, one per entry, in a parallel slab.
    wp: Vec<u64>,
    /// Duplicate WP bits written at fill time; [`Tlb::scrub_wp`]
    /// cross-checks them against `wp` to catch stale-bit faults.
    wp_check: Vec<u64>,
    /// The entry the last hit resolved to — fetch streams are heavily
    /// page-local, so this answers most lookups without a scan.
    last_hit: usize,
    next_victim: usize,
    wp_limit: u32,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB. Addresses in `[0, wp_limit)` are
    /// way-placement pages; pass 0 for none.
    ///
    /// # Panics
    ///
    /// Panics if `wp_limit` is not page-aligned (the paper requires the
    /// area to be a whole number of pages).
    #[must_use]
    pub fn new(config: TlbConfig, wp_limit: u32) -> Tlb {
        assert!(
            wp_limit.is_multiple_of(config.page_bytes),
            "way-placement limit {wp_limit:#x} is not page-aligned"
        );
        let words = (config.entries as usize).div_ceil(64);
        Tlb {
            config,
            page_bits: config.page_bits(),
            vpns: vec![0; config.entries as usize],
            present: vec![0; words],
            wp: vec![0; words],
            wp_check: vec![0; words],
            last_hit: 0,
            next_victim: 0,
            wp_limit,
            stats: TlbStats::new(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// The way-placement boundary this TLB fills entries against.
    #[must_use]
    pub fn wp_limit(&self) -> u32 {
        self.wp_limit
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Flushes all entries (e.g. when the OS resizes the area).
    pub fn flush(&mut self) {
        self.present.fill(0);
        self.wp.fill(0);
        self.wp_check.fill(0);
        self.last_hit = 0;
        self.next_victim = 0;
    }

    /// Resets entries and counters.
    pub fn reset(&mut self) {
        self.flush();
        self.stats = TlbStats::new();
    }

    #[inline]
    fn is_present(&self, entry: usize) -> bool {
        self.present[entry >> 6] & (1u64 << (entry & 63)) != 0
    }

    #[inline]
    fn wp_bit(&self, entry: usize) -> bool {
        self.wp[entry >> 6] & (1u64 << (entry & 63)) != 0
    }

    /// Looks up `addr`, filling on a miss.
    pub fn lookup(&mut self, addr: u32) -> TlbOutcome {
        self.stats.lookups += 1;
        let vpn = addr >> self.page_bits;
        // Same-page fast path: no scan when the last hit still matches.
        let last = self.last_hit;
        if self.vpns[last] == vpn && self.is_present(last) {
            return TlbOutcome { wp: self.wp_bit(last), miss: false, stall_cycles: 0 };
        }
        if let Some(entry) =
            (0..self.vpns.len()).find(|&e| self.is_present(e) && self.vpns[e] == vpn)
        {
            self.last_hit = entry;
            return TlbOutcome { wp: self.wp_bit(entry), miss: false, stall_cycles: 0 };
        }
        // Miss: the OS writes the entry, deriving the way-placement bit
        // from the page's position relative to the configured area.
        self.stats.misses += 1;
        self.stats.miss_stall_cycles += u64::from(self.config.miss_penalty);
        let page_base = vpn << self.page_bits;
        let wp = page_base.saturating_add(self.config.page_bytes) <= self.wp_limit;
        let victim = self.next_victim;
        self.next_victim = (self.next_victim + 1) % self.vpns.len();
        self.vpns[victim] = vpn;
        self.present[victim >> 6] |= 1u64 << (victim & 63);
        self.write_wp_bits(victim, wp);
        self.last_hit = victim;
        TlbOutcome { wp, miss: true, stall_cycles: self.config.miss_penalty }
    }

    /// Writes both copies of an entry's WP bit (a fill or a repair).
    #[inline]
    fn write_wp_bits(&mut self, entry: usize, wp: bool) {
        let mask = 1u64 << (entry & 63);
        if wp {
            self.wp[entry >> 6] |= mask;
            self.wp_check[entry >> 6] |= mask;
        } else {
            self.wp[entry >> 6] &= !mask;
            self.wp_check[entry >> 6] &= !mask;
        }
    }

    #[inline]
    fn wp_check_bit(&self, entry: usize) -> bool {
        self.wp_check[entry >> 6] & (1u64 << (entry & 63)) != 0
    }

    #[inline]
    fn entry_of(&self, addr: u32) -> Option<usize> {
        let vpn = addr >> self.page_bits;
        let last = self.last_hit;
        if self.vpns[last] == vpn && self.is_present(last) {
            return Some(last);
        }
        (0..self.vpns.len()).find(|&e| self.is_present(e) && self.vpns[e] == vpn)
    }

    /// Flips the *primary* WP bit of `addr`'s entry, leaving the
    /// duplicate untouched — the fault injector's stale-WP-bit model
    /// against protected state. Returns `false` when the page is not
    /// resident (nothing to corrupt).
    pub fn corrupt_wp_bit(&mut self, addr: u32) -> bool {
        match self.entry_of(addr) {
            Some(entry) => {
                self.wp[entry >> 6] ^= 1u64 << (entry & 63);
                true
            }
            None => false,
        }
    }

    /// Cross-checks the two copies of `addr`'s WP bit and repairs a
    /// mismatch by re-deriving the bit from the OS boundary, exactly as
    /// a fill would. Returns `None` when the page is not resident, and
    /// otherwise `(repaired, wp)` where `wp` is the (now trustworthy)
    /// way-placement bit. Pure check on the match path; a repair is a
    /// modeled refill the caller prices at the miss penalty.
    pub fn scrub_wp(&mut self, addr: u32) -> Option<(bool, bool)> {
        let entry = self.entry_of(addr)?;
        if self.wp_bit(entry) == self.wp_check_bit(entry) {
            return Some((false, self.wp_bit(entry)));
        }
        let page_base = (addr >> self.page_bits) << self.page_bits;
        let wp = page_base.saturating_add(self.config.page_bytes) <= self.wp_limit;
        self.write_wp_bits(entry, wp);
        Some((true, wp))
    }

    /// Records `count` additional lookups that are guaranteed hits on
    /// the page the immediately preceding lookup resolved (the batched
    /// same-line path of `MemorySystem::fetch_block`). Pure counter
    /// bulk-update: per-fetch lookups of a resident page have no other
    /// side effects.
    pub fn note_repeat_hits(&mut self, count: u64) {
        debug_assert!(self.is_present(self.last_hit), "repeat hits need a resident page");
        self.stats.lookups += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(wp_limit: u32) -> Tlb {
        Tlb::new(TlbConfig { entries: 4, page_bytes: 1024, miss_penalty: 20 }, wp_limit)
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tlb(0);
        let first = t.lookup(0x8000);
        assert!(first.miss);
        assert_eq!(first.stall_cycles, 20);
        let second = t.lookup(0x8123);
        assert!(!second.miss, "same page");
        assert_eq!(second.stall_cycles, 0);
        assert_eq!(t.stats().lookups, 2);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn wp_bit_follows_limit() {
        let mut t = tlb(0x0800); // 2 KB area: pages 0 and 1
        assert!(t.lookup(0x0000).wp);
        assert!(t.lookup(0x0400).wp);
        assert!(!t.lookup(0x0800).wp, "first page past the limit");
        assert!(!t.lookup(0x9000).wp);
    }

    #[test]
    fn capacity_eviction_round_robin() {
        let mut t = tlb(0);
        for page in 0..4u32 {
            t.lookup(page * 1024);
        }
        assert_eq!(t.stats().misses, 4);
        // A fifth page evicts the first.
        t.lookup(4 * 1024);
        let out = t.lookup(0);
        assert!(out.miss, "page 0 was evicted");
    }

    #[test]
    fn flush_forces_refills_with_new_limit() {
        let mut t = tlb(0x0400);
        assert!(t.lookup(0x0000).wp);
        assert!(!t.lookup(0x0400).wp, "page 1 is outside the 1 KB area");
        // Model the OS growing the area at run time: new limit, but the
        // stale cached entry still answers until flushed
        // (hardware-faithful: the bit is written only on fills).
        t.wp_limit = 0x0800;
        assert!(!t.lookup(0x0400).wp);
        t.flush();
        assert!(t.lookup(0x0400).wp);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_limit_rejected() {
        let _ = tlb(0x0401);
    }

    #[test]
    fn reset_zeroes_stats() {
        let mut t = tlb(0);
        t.lookup(0);
        t.reset();
        assert_eq!(t.stats().lookups, 0);
        assert!(t.lookup(0).miss);
    }

    #[test]
    fn last_hit_survives_unrelated_evictions() {
        let mut t = tlb(0x0400);
        // Fill all 4 entries; keep hitting page 3 while pages rotate in.
        for page in 0..4u32 {
            t.lookup(page * 1024);
        }
        assert!(!t.lookup(3 * 1024).miss);
        // Entry 0 (page 0) is the round-robin victim for page 4; page 3
        // must still hit afterwards with the correct wp bit.
        assert!(t.lookup(4 * 1024).miss);
        let out = t.lookup(3 * 1024);
        assert!(!out.miss);
        assert!(!out.wp);
        let out = t.lookup(0x0000);
        assert!(out.miss, "page 0 evicted");
        assert!(out.wp, "page 0 is inside the 1 KB area");
    }

    #[test]
    fn scrub_detects_and_rederives_corrupt_wp_bit() {
        let mut t = tlb(0x0400);
        assert!(t.lookup(0x0000).wp);
        assert!(!t.lookup(0x0800).wp);
        // Clean entries scrub clean.
        assert_eq!(t.scrub_wp(0x0000), Some((false, true)));
        assert_eq!(t.scrub_wp(0x0800), Some((false, false)));
        assert_eq!(t.scrub_wp(0x4000), None, "page not resident");
        // Corrupt both directions; scrub must re-derive the OS truth.
        assert!(t.corrupt_wp_bit(0x0000));
        assert!(t.corrupt_wp_bit(0x0800));
        assert_eq!(t.scrub_wp(0x0123), Some((true, true)));
        assert_eq!(t.scrub_wp(0x0933), Some((true, false)));
        // Repair is durable: the next lookup hits with the right bit.
        assert!(t.lookup(0x0000).wp);
        assert!(!t.lookup(0x0800).wp);
        assert_eq!(t.scrub_wp(0x0000), Some((false, true)));
    }

    #[test]
    fn corrupt_wp_bit_misses_nonresident_pages() {
        let mut t = tlb(0);
        assert!(!t.corrupt_wp_bit(0x8000));
        t.lookup(0x8000);
        assert!(t.corrupt_wp_bit(0x8000));
    }

    #[test]
    fn note_repeat_hits_only_bumps_lookups() {
        let mut t = tlb(0);
        t.lookup(0x8000);
        let misses = t.stats().misses;
        t.note_repeat_hits(7);
        assert_eq!(t.stats().lookups, 8);
        assert_eq!(t.stats().misses, misses);
        assert!(!t.lookup(0x8004).miss);
    }
}
