//! The assembled memory hierarchy: I-cache + I-TLB on the fetch side,
//! D-cache + D-TLB on the data side. This is the component the `wp-sim`
//! pipeline talks to.

use crate::dcache::{DCacheConfig, DataCache};
use crate::detect::{DetectedFault, DetectionStats};
use crate::fault::{FaultConfig, FaultInjector, FaultKind, FaultStats};
use crate::icache::{FetchScheme, ICacheConfig, InstructionCache};
use crate::tlb::{Tlb, TlbConfig};
use crate::{CacheGeometry, DCacheStats, FetchStats, TlbStats};
use wp_trace::FetchEvent;

/// Full memory-hierarchy configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MemoryConfig {
    /// Instruction cache.
    pub icache: ICacheConfig,
    /// Data cache.
    pub dcache: DCacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Upper bound of the way-placement area (`0` disables it). The
    /// region `[0, wp_limit)` is way-placed; code is linked at
    /// `wp_isa::Image::TEXT_BASE`, so the effective area is
    /// `[TEXT_BASE, wp_limit)`.
    pub wp_limit: u32,
    /// Optional hardware fault injection (`None` = fault-free machine).
    pub fault: Option<FaultConfig>,
    /// Arm the in-array detection-and-recovery checks (tag parity,
    /// way-hint shadow, WP-bit duplication). Off by default: the
    /// unprotected hierarchy behaves byte-identically to the
    /// pre-detection core.
    pub detection: bool,
}

impl MemoryConfig {
    /// The paper's Table 1 baseline around a given I-cache geometry.
    #[must_use]
    pub fn baseline(icache_geometry: CacheGeometry) -> MemoryConfig {
        MemoryConfig {
            icache: ICacheConfig::baseline(icache_geometry),
            dcache: DCacheConfig::xscale(),
            itlb: TlbConfig::default_itlb(),
            dtlb: TlbConfig::default_itlb(),
            wp_limit: 0,
            fault: None,
            detection: false,
        }
    }

    /// The same configuration with hardware fault injection enabled.
    #[must_use]
    pub fn with_fault(self, fault: FaultConfig) -> MemoryConfig {
        MemoryConfig { fault: Some(fault), ..self }
    }

    /// The same configuration with detection-and-recovery armed.
    #[must_use]
    pub fn with_detection(self) -> MemoryConfig {
        MemoryConfig { detection: true, ..self }
    }

    /// A way-placement configuration: `wp_area_bytes` of code starting
    /// at `text_base` are way-placed.
    ///
    /// # Panics
    ///
    /// Panics if the resulting limit is not page-aligned.
    #[must_use]
    pub fn way_placement(
        icache_geometry: CacheGeometry,
        text_base: u32,
        wp_area_bytes: u32,
    ) -> MemoryConfig {
        MemoryConfig {
            icache: ICacheConfig::way_placement(icache_geometry),
            wp_limit: text_base + wp_area_bytes,
            ..MemoryConfig::baseline(icache_geometry)
        }
    }

    /// The way-memoization comparison configuration.
    #[must_use]
    pub fn way_memoization(icache_geometry: CacheGeometry) -> MemoryConfig {
        MemoryConfig {
            icache: ICacheConfig::way_memoization(icache_geometry),
            ..MemoryConfig::baseline(icache_geometry)
        }
    }

    /// The MRU way-prediction comparison configuration (extension).
    #[must_use]
    pub fn way_prediction(icache_geometry: CacheGeometry) -> MemoryConfig {
        MemoryConfig {
            icache: ICacheConfig::way_prediction(icache_geometry),
            ..MemoryConfig::baseline(icache_geometry)
        }
    }
}

/// Combined timing result of a fetch through I-TLB and I-cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FetchTiming {
    /// Whether the I-cache hit.
    pub hit: bool,
    /// Total fetch cycles including TLB fill stalls and hint penalties.
    pub cycles: u32,
}

/// The memory system handed to the pipeline model.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    config: MemoryConfig,
    icache: InstructionCache,
    dcache: DataCache,
    itlb: Tlb,
    dtlb: Tlb,
    fault: Option<FaultInjector>,
    /// TLB-side detection counters (the I-cache keeps its own).
    detect: DetectionStats,
}

impl MemorySystem {
    /// Builds the hierarchy from a configuration.
    #[must_use]
    pub fn new(config: MemoryConfig) -> MemorySystem {
        let wp_limit =
            if config.icache.scheme == FetchScheme::WayPlacement { config.wp_limit } else { 0 };
        let mut icache = InstructionCache::new(config.icache);
        icache.set_detection(config.detection);
        MemorySystem {
            config,
            icache,
            dcache: DataCache::new(config.dcache),
            itlb: Tlb::new(config.itlb, wp_limit),
            dtlb: Tlb::new(config.dtlb, 0),
            fault: config.fault.map(FaultInjector::new),
            detect: DetectionStats::new(),
        }
    }

    /// Switches the fetch scheme at run time (the degradation
    /// controller's lever); see
    /// [`InstructionCache::set_scheme`] for the flush semantics. The
    /// constructed `config` keeps the *preferred* scheme;
    /// [`current_scheme`](MemorySystem::current_scheme) reports what is
    /// actually running.
    pub fn set_fetch_scheme(&mut self, scheme: FetchScheme) {
        self.icache.set_scheme(scheme);
    }

    /// The fetch scheme currently running (differs from the configured
    /// scheme only after a runtime switch).
    #[must_use]
    pub fn current_scheme(&self) -> FetchScheme {
        self.icache.config().scheme
    }

    /// Merged detection-and-recovery counters from the I-cache checks
    /// and the I-TLB WP-bit scrubber. All zero when detection is off.
    #[must_use]
    pub fn detection_stats(&self) -> DetectionStats {
        let mut stats = self.detect;
        stats.merge(self.icache.detect_stats());
        stats
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// The fault-injection and I-TLB half of a fetch, shared by the
    /// traced and untraced paths.
    fn pre_fetch(&mut self, addr: u32) -> crate::TlbOutcome {
        // Hardware fault injection happens at the trust boundaries the
        // paper's §4 argues are timing-only: the tag array, the global
        // way-hint bit, and the I-TLB's per-page WP bit.
        if let Some(injector) = self.fault.as_mut() {
            if injector.fires(FaultKind::TagBitFlip) {
                let geom = self.icache.config().geometry;
                let set = injector.draw(geom.sets());
                let way = injector.draw(geom.ways());
                let bit = injector.draw(geom.tag_bits());
                if self.icache.corrupt_tag_bit(set, way, bit) {
                    injector.note_tag_bit_flip();
                }
            }
            if injector.fires(FaultKind::HintInversion) {
                self.icache.invert_way_hint();
                injector.note_hint_inversion();
            }
        }
        let mut tlb = self.itlb.lookup(addr);
        if let Some(injector) = self.fault.as_mut() {
            if injector.fires(FaultKind::StaleWpBit) {
                if self.config.detection {
                    // Against protected state the fault corrupts the
                    // *stored* entry (the lookup just made it
                    // resident), leaving the duplicate stale; the
                    // scrub below is what decides the delivered bit.
                    self.itlb.corrupt_wp_bit(addr);
                } else {
                    tlb.wp = !tlb.wp;
                }
                injector.note_wp_bit_flip();
            }
        }
        if self.config.detection {
            // Cross-check the WP bit the cache is about to trust; a
            // mismatch is repaired by a modeled I-TLB refill, priced
            // at the miss penalty.
            if let Some((repaired, wp)) = self.itlb.scrub_wp(addr) {
                self.detect.wp_bit_checks += 1;
                if repaired {
                    let vpn = addr >> self.config.itlb.page_bits();
                    self.detect.record(DetectedFault::WpBitMismatch { vpn });
                    self.detect.wp_rederivations += 1;
                    let stall = self.config.itlb.miss_penalty;
                    self.detect.recovery_cycles += u64::from(stall);
                    tlb.stall_cycles += stall;
                }
                tlb.wp = wp;
            }
        }
        tlb
    }

    /// Folds an I-cache outcome and the parallel I-TLB outcome into one
    /// timing result — the single place the TLB-fill stall is charged,
    /// shared by [`fetch`](MemorySystem::fetch),
    /// [`fetch_traced`](MemorySystem::fetch_traced) and
    /// [`fetch_block`](MemorySystem::fetch_block) so the accounting
    /// cannot drift between them.
    fn compose_timing(fetch: crate::FetchOutcome, tlb: crate::TlbOutcome) -> FetchTiming {
        FetchTiming { hit: fetch.hit, cycles: fetch.cycles + tlb.stall_cycles }
    }

    /// Fetches the instruction at `addr`: I-TLB and I-cache are accessed
    /// in parallel (§4.1), so a TLB hit adds no cycles; a TLB miss
    /// stalls for the fill.
    pub fn fetch(&mut self, addr: u32) -> FetchTiming {
        let tlb = self.pre_fetch(addr);
        let fetch = self.icache.fetch(addr, tlb.wp);
        MemorySystem::compose_timing(fetch, tlb)
    }

    /// [`fetch`](MemorySystem::fetch) plus a classified telemetry
    /// event. Behaviour and counters are identical to `fetch`; the
    /// event's `cycle` field is left 0 for the simulator to stamp.
    pub fn fetch_traced(&mut self, addr: u32) -> (FetchTiming, FetchEvent) {
        let tlb = self.pre_fetch(addr);
        let (fetch, event) = self.icache.fetch_traced(addr, tlb.wp);
        (MemorySystem::compose_timing(fetch, tlb), event)
    }

    /// Fetches `words` consecutive instruction words starting at
    /// `addr`, all within one cache line: exactly equivalent — counter
    /// for counter, cycle for cycle — to `words` sequential calls to
    /// [`fetch`](MemorySystem::fetch), but the trailing same-line
    /// elided fetches are accounted in bulk instead of one at a time.
    ///
    /// The returned timing sums the cycles of every fetch in the run;
    /// `hit` is the conjunction of the per-fetch hits (in the batched
    /// path only the leading fetch can miss).
    ///
    /// The bulk path requires same-line elision (after the leading
    /// fetch establishes the line, the rest elide by construction) and
    /// the run not to straddle a page. An armed fault injector no
    /// longer forces per-fetch fallback: the leading fetch runs its
    /// weave points normally, then
    /// [`FaultInjector::try_clean_run`] evaluates the elided
    /// remainder's firing decisions in bulk — only a run that *would*
    /// fire is replayed fetch-by-fetch, so the fault lands exactly
    /// where it would unbatched.
    pub fn fetch_block(&mut self, addr: u32, words: u32) -> FetchTiming {
        let line_mask = !(self.config.icache.geometry.line_bytes() - 1);
        let last = addr + 4 * words.saturating_sub(1);
        debug_assert!(words >= 1, "fetch_block needs at least one word");
        debug_assert_eq!(addr & line_mask, last & line_mask, "run must stay within one line");
        let page_mask = !(self.config.itlb.page_bytes - 1);
        // The *live* icache config, not the preferred one: a degraded
        // scheme (runtime `set_fetch_scheme`) may have elision off
        // while `self.config` still records the configured scheme.
        let batchable = words > 1
            && self.icache.config().same_line_elision
            && (addr & page_mask) == (last & page_mask);
        if !batchable {
            let mut timing = self.fetch(addr);
            for i in 1..words {
                let next = self.fetch(addr + 4 * i);
                timing.cycles += next.cycles;
                timing.hit = timing.hit && next.hit;
            }
            return timing;
        }
        let mut first = self.fetch(addr);
        let rest = u64::from(words - 1);
        if let Some(injector) = self.fault.as_mut() {
            if !injector.try_clean_run(rest) {
                // A weave point lands inside the run: replay the
                // remainder per-fetch against the rewound PRNG.
                for i in 1..words {
                    let next = self.fetch(addr + 4 * i);
                    first.cycles += next.cycles;
                    first.hit = first.hit && next.hit;
                }
                return first;
            }
        }
        // The leading fetch resolved (and if necessary filled) the TLB
        // entry and established `last_line`; the remaining same-line,
        // same-page fetches are elided hits of one cycle each.
        self.itlb.note_repeat_hits(rest);
        if self.config.detection {
            // Per-fetch, each elided fetch would still scrub the WP
            // bit; no fault fired in the run, so the checks are pure
            // counts (they feed the energy pricing of detection).
            self.detect.wp_bit_checks += rest;
        }
        self.icache.elide_run(last, rest);
        FetchTiming { hit: first.hit, cycles: first.cycles + words - 1 }
    }

    /// A data load at `addr` during pipeline cycle `now`; returns stall
    /// cycles beyond the pipeline's base load latency.
    pub fn load(&mut self, addr: u32, now: u64) -> u32 {
        let tlb = self.dtlb.lookup(addr);
        let access = self.dcache.access_at(addr, false, now);
        tlb.stall_cycles + access.stall_cycles
    }

    /// A data store at `addr` during pipeline cycle `now`; returns stall
    /// cycles.
    pub fn store(&mut self, addr: u32, now: u64) -> u32 {
        let tlb = self.dtlb.lookup(addr);
        let access = self.dcache.access_at(addr, true, now);
        tlb.stall_cycles + access.stall_cycles
    }

    /// Instruction-fetch counters.
    #[must_use]
    pub fn fetch_stats(&self) -> &FetchStats {
        self.icache.stats()
    }

    /// Data-cache counters.
    #[must_use]
    pub fn dcache_stats(&self) -> &DCacheStats {
        self.dcache.stats()
    }

    /// I-TLB counters.
    #[must_use]
    pub fn itlb_stats(&self) -> &TlbStats {
        self.itlb.stats()
    }

    /// D-TLB counters.
    #[must_use]
    pub fn dtlb_stats(&self) -> &TlbStats {
        self.dtlb.stats()
    }

    /// Injected-fault counters (all zero when injection is disabled).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| *f.stats()).unwrap_or_default()
    }

    /// The instruction cache (diagnostics / invariant checks).
    #[must_use]
    pub fn icache(&self) -> &InstructionCache {
        &self.icache
    }

    /// Resets all state and counters, including the fault injector's
    /// PRNG stream, and restores the configured fetch scheme if a
    /// runtime switch had demoted it.
    pub fn reset(&mut self) {
        if self.icache.config() != &self.config.icache {
            self.icache = InstructionCache::new(self.config.icache);
            self.icache.set_detection(self.config.detection);
        } else {
            self.icache.reset();
        }
        self.dcache.reset();
        self.itlb.reset();
        self.dtlb.reset();
        self.fault = self.config.fault.map(FaultInjector::new);
        self.detect = DetectionStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_charges_tlb_fill_once() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let mut mem = MemorySystem::new(MemoryConfig::baseline(geom));
        let first = mem.fetch(0x8000);
        assert!(!first.hit);
        assert!(first.cycles > 50, "miss fill + TLB fill");
        let second = mem.fetch(0x8000);
        assert!(second.hit);
        assert_eq!(second.cycles, 1);
        assert_eq!(mem.itlb_stats().misses, 1);
    }

    #[test]
    fn wp_limit_only_applies_to_way_placement() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let cfg = MemoryConfig { wp_limit: 0x8000 + 1024, ..MemoryConfig::baseline(geom) };
        let mem = MemorySystem::new(cfg);
        assert_eq!(mem.itlb.wp_limit(), 0, "baseline ignores wp_limit");

        let cfg = MemoryConfig::way_placement(geom, 0x8000, 1024);
        let mem = MemorySystem::new(cfg);
        assert_eq!(mem.itlb.wp_limit(), 0x8000 + 1024);
    }

    #[test]
    fn way_placement_fetches_are_single_tag() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let mut mem = MemorySystem::new(MemoryConfig::way_placement(geom, 0x8000, 2048));
        // Warm TLB, hint and cache on a two-line loop.
        for _ in 0..4 {
            mem.fetch(0x8000);
            mem.fetch(0x8020);
        }
        let tags = mem.fetch_stats().tag_comparisons;
        for _ in 0..10 {
            mem.fetch(0x8000);
            mem.fetch(0x8020);
        }
        // 20 fetches, all way-placement hits: 1 tag each.
        assert_eq!(mem.fetch_stats().tag_comparisons - tags, 20);
        assert!(mem.icache().way_placement_invariant_holds(0x8000 + 2048));
    }

    #[test]
    fn loads_and_stores_hit_dcache() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let mut mem = MemorySystem::new(MemoryConfig::baseline(geom));
        assert!(mem.load(0x10_0000, 0) > 0, "cold miss stalls");
        assert_eq!(mem.load(0x10_0000, 60), 0, "warm hit");
        assert_eq!(mem.store(0x10_0004, 61), 0, "same line");
        assert_eq!(mem.dcache_stats().writes, 1);
    }

    #[test]
    fn fault_injection_perturbs_timing_deterministically() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let run = |fault: Option<FaultConfig>| {
            let mut cfg = MemoryConfig::way_placement(geom, 0x8000, 2048);
            cfg.fault = fault;
            let mut mem = MemorySystem::new(cfg);
            let mut cycles = 0u64;
            for i in 0..4000u32 {
                cycles += u64::from(mem.fetch(0x8000 + (i % 64) * 4).cycles);
            }
            (cycles, mem.fault_stats())
        };

        let (clean_cycles, clean_faults) = run(None);
        assert_eq!(clean_faults.total(), 0);

        let faulty = FaultConfig::all(0xF00D, 50_000); // 5% per kind
        let (faulty_cycles, faults) = run(Some(faulty));
        assert!(faults.total() > 0, "faults must land: {faults:?}");
        assert!(faults.opportunities >= 3 * 4000);
        // Graceful degradation: fetch timing worsens (or at worst is
        // unchanged), and the run is reproducible bit-for-bit.
        assert!(faulty_cycles >= clean_cycles, "{faulty_cycles} vs {clean_cycles}");
        assert_eq!(run(Some(faulty)), (faulty_cycles, faults));
    }

    #[test]
    fn reset_restores_fault_stream() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let cfg = MemoryConfig::way_placement(geom, 0x8000, 2048)
            .with_fault(FaultConfig::all(7, 100_000));
        let mut mem = MemorySystem::new(cfg);
        for i in 0..500u32 {
            mem.fetch(0x8000 + (i % 32) * 4);
        }
        let first = mem.fault_stats();
        mem.reset();
        assert_eq!(mem.fault_stats().total(), 0);
        for i in 0..500u32 {
            mem.fetch(0x8000 + (i % 32) * 4);
        }
        assert_eq!(mem.fault_stats(), first, "reset replays the same stream");
    }

    fn stream(seed: u64, len: usize) -> Vec<u32> {
        // A loopy, multi-page fetch stream with sequential runs.
        let mut rng = crate::rng::SplitMix64::new(seed);
        let mut pc = 0x8000u32;
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let run = rng.range_u64(1, 12) as u32;
            for i in 0..run {
                out.push(pc + 4 * i);
            }
            pc = if rng.below(3) == 0 {
                0x8000 + (rng.next_u32() & 0x3FFF & !3)
            } else {
                pc + 4 * run
            };
        }
        out.truncate(len);
        out
    }

    /// Satellite: the traced and untraced paths share one accounting
    /// helper — equal streams must produce equal `FetchStats`, TLB
    /// stats and timings.
    #[test]
    fn traced_and_untraced_fetch_cannot_drift() {
        let geom = CacheGeometry::new(2048, 4, 32);
        for config in [
            MemoryConfig::baseline(geom),
            MemoryConfig::way_placement(geom, 0x8000, 2048),
            MemoryConfig::way_memoization(geom),
            MemoryConfig::way_prediction(geom),
        ] {
            let mut plain = MemorySystem::new(config);
            let mut traced = MemorySystem::new(config);
            for addr in stream(0xD1FF, 4000) {
                let untraced = plain.fetch(addr);
                let (timing, event) = traced.fetch_traced(addr);
                assert_eq!(timing, untraced, "addr {addr:#x}");
                assert_eq!(event.pc, addr);
                assert_eq!(event.hit, timing.hit);
            }
            assert_eq!(plain.fetch_stats(), traced.fetch_stats());
            assert_eq!(plain.itlb_stats(), traced.itlb_stats());
        }
    }

    /// `fetch_block` is cycle- and counter-identical to the per-fetch
    /// loop for every scheme, including the baseline fallback (no
    /// elision) and armed fault injectors — batched clean runs and the
    /// rewind-and-replay fallback must both reproduce the sequential
    /// stream exactly, with and without detection armed.
    #[test]
    fn fetch_block_matches_sequential_fetches() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let faulted =
            MemoryConfig::way_placement(geom, 0x8000, 2048).with_fault(FaultConfig::all(3, 80_000));
        for config in [
            MemoryConfig::baseline(geom),
            MemoryConfig::way_placement(geom, 0x8000, 2048),
            MemoryConfig::way_memoization(geom),
            MemoryConfig::way_prediction(geom),
            faulted,
            faulted.with_detection(),
        ] {
            let mut looped = MemorySystem::new(config);
            let mut blocked = MemorySystem::new(config);
            let mut rng = crate::rng::SplitMix64::new(0xB10C);
            let mut pc = 0x8000u32;
            for _ in 0..3000 {
                let words_left = (geom.line_bytes() - (pc & (geom.line_bytes() - 1))) / 4;
                let words = rng.range_u64(1, u64::from(words_left)) as u32;
                let mut loop_timing = looped.fetch(pc);
                for i in 1..words {
                    let t = looped.fetch(pc + 4 * i);
                    loop_timing.cycles += t.cycles;
                    loop_timing.hit = loop_timing.hit && t.hit;
                }
                let block_timing = blocked.fetch_block(pc, words);
                assert_eq!(block_timing, loop_timing, "pc {pc:#x} words {words}");
                pc = if rng.below(4) == 0 {
                    0x8000 + (rng.next_u32() & 0x7FFF & !3)
                } else {
                    pc + 4 * words
                };
            }
            assert_eq!(looped.fetch_stats(), blocked.fetch_stats());
            assert_eq!(looped.itlb_stats(), blocked.itlb_stats());
            assert_eq!(looped.fault_stats(), blocked.fault_stats());
            assert_eq!(looped.detection_stats(), blocked.detection_stats());
            if config.fault.is_some() {
                assert!(looped.fault_stats().total() > 0, "faults must land in this stream");
            }
        }
    }

    /// Each injected fault kind is caught by its matching check: hint
    /// inversions and stale WP bits immediately (shadow copies are
    /// scrubbed on the very next fetch), tag flips when the poisoned
    /// way is next armed (some are absorbed by unrelated refills
    /// first — never more detections than injections).
    #[test]
    fn detection_catches_and_recovers_injected_faults() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let config = MemoryConfig::way_placement(geom, 0x8000, 2048)
            .with_fault(FaultConfig::all(0xDE7EC7, 30_000))
            .with_detection();
        let mut mem = MemorySystem::new(config);
        for addr in stream(0x5EED, 6000) {
            mem.fetch(0x8000 + (addr & 0x3FFF));
        }
        let faults = mem.fault_stats();
        let detect = mem.detection_stats();
        assert!(faults.total() > 0, "faults must land: {faults:?}");
        assert_eq!(detect.hint_mismatches, faults.hint_inversions, "hint inversions: {detect:?}");
        assert_eq!(detect.hint_resets, faults.hint_inversions);
        assert_eq!(detect.wp_bit_mismatches, faults.wp_bit_flips, "stale WP bits: {detect:?}");
        assert_eq!(detect.wp_rederivations, faults.wp_bit_flips);
        assert!(detect.tag_parity_faults <= faults.tag_bit_flips, "{detect:?} vs {faults:?}");
        assert_eq!(detect.lines_invalidated, detect.tag_parity_faults);
        assert!(detect.recovery_cycles > 0);
        assert!(detect.parity_checks > 0 && detect.wp_bit_checks > 0);

        // The repaired machine keeps its way-placement invariant.
        assert!(mem.icache().way_placement_invariant_holds(0x8000 + 2048));
    }

    /// Detection on a fault-free machine is free: identical counters
    /// and cycles, zero detections, zero recovery.
    #[test]
    fn detection_is_observation_only_when_clean() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let base = MemoryConfig::way_placement(geom, 0x8000, 2048);
        let mut off = MemorySystem::new(base);
        let mut on = MemorySystem::new(base.with_detection());
        let mut off_cycles = 0u64;
        let mut on_cycles = 0u64;
        for addr in stream(0xC1EA2, 4000) {
            off_cycles += u64::from(off.fetch(addr).cycles);
            on_cycles += u64::from(on.fetch(addr).cycles);
        }
        assert_eq!(on_cycles, off_cycles);
        assert_eq!(on.fetch_stats(), off.fetch_stats());
        assert_eq!(off.detection_stats(), DetectionStats::new(), "disarmed counts nothing");
        let detect = on.detection_stats();
        assert_eq!(detect.total_detected(), 0);
        assert_eq!(detect.recovery_cycles, 0);
        assert!(detect.parity_checks > 0, "checks must actually run: {detect:?}");
        assert!(detect.wp_bit_checks > 0);
    }

    /// Runtime scheme switching (the degradation controller's lever)
    /// flushes the array so the new scheme starts invariant-clean, and
    /// `reset` restores the configured scheme.
    #[test]
    fn runtime_scheme_switch_flushes_and_reset_restores() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let mut mem = MemorySystem::new(MemoryConfig::way_placement(geom, 0x8000, 2048));
        for i in 0..64u32 {
            mem.fetch(0x8000 + i * 4);
        }
        assert!(mem.icache().array().valid_lines() > 0);
        assert_eq!(mem.current_scheme(), FetchScheme::WayPlacement);

        mem.set_fetch_scheme(FetchScheme::WayMemoization);
        assert_eq!(mem.current_scheme(), FetchScheme::WayMemoization);
        assert_eq!(mem.icache().array().valid_lines(), 0, "switch flushes the array");
        for i in 0..64u32 {
            assert!(mem.fetch(0x8000 + i * 4).cycles >= 1);
        }

        // Demote further to the serial full-CAM probe, then promote
        // back; the way-placement invariant must hold on refilled state.
        mem.set_fetch_scheme(FetchScheme::Baseline);
        assert_eq!(mem.current_scheme(), FetchScheme::Baseline);
        mem.set_fetch_scheme(FetchScheme::WayPlacement);
        for i in 0..64u32 {
            mem.fetch(0x8000 + i * 4);
        }
        assert!(mem.icache().way_placement_invariant_holds(0x8000 + 2048));

        mem.set_fetch_scheme(FetchScheme::Baseline);
        mem.reset();
        assert_eq!(mem.current_scheme(), FetchScheme::WayPlacement, "reset restores config");
        assert_eq!(mem.fetch_stats().fetches, 0);
    }

    #[test]
    fn reset_restores_cold_state() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let mut mem = MemorySystem::new(MemoryConfig::baseline(geom));
        mem.fetch(0x8000);
        mem.load(0x10_0000, 2);
        mem.reset();
        assert_eq!(mem.fetch_stats().fetches, 0);
        assert!(!mem.fetch(0x8000).hit);
    }
}
