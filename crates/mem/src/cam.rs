//! The tag array shared by both caches: a CAM-tagged, set-associative
//! line store with pluggable replacement.
//!
//! This models *placement* only — which line lives in which (set, way)
//! slot. Data contents live in the functional simulator's flat memory;
//! splitting the two keeps the cache model reusable for timing and
//! energy studies, which is exactly how XTREM structures its caches.

use crate::rng::SplitMix64;
use crate::CacheGeometry;

/// Replacement policy for non-way-placed fills.
///
/// The XScale uses round-robin; LRU and random are provided for the
/// sensitivity ablation in `wp-bench`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ReplacementPolicy {
    /// Per-set rotating counter (the XScale's policy).
    #[default]
    RoundRobin,
    /// Least recently used.
    Lru,
    /// Uniformly random victim (deterministically seeded).
    Random,
}

#[derive(Clone, Copy, Debug, Default)]
struct LineState {
    valid: bool,
    tag: u32,
    dirty: bool,
    last_use: u64,
}

/// The outcome of a fill: which way was used and which line (by base
/// address) was evicted, if any.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FillOutcome {
    /// The way the new line was placed in.
    pub way: u32,
    /// Base address of the evicted line, if a valid line was displaced.
    pub evicted: Option<u32>,
    /// Whether the evicted line was dirty (needs writeback).
    pub evicted_dirty: bool,
}

/// A set-associative tag array.
#[derive(Clone, Debug)]
pub struct CamArray {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    lines: Vec<LineState>,
    round_robin: Vec<u32>,
    rng: SplitMix64,
    tick: u64,
}

impl CamArray {
    /// Creates an empty array. `seed` only matters for
    /// [`ReplacementPolicy::Random`].
    #[must_use]
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy, seed: u64) -> CamArray {
        let slots = (geom.sets() * geom.ways()) as usize;
        CamArray {
            geom,
            policy,
            lines: vec![LineState::default(); slots],
            round_robin: vec![0; geom.sets() as usize],
            rng: SplitMix64::new(seed),
            tick: 0,
        }
    }

    /// The geometry this array was built with.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn slot(&self, set: u32, way: u32) -> usize {
        (set * self.geom.ways() + way) as usize
    }

    /// Searches the set for `addr`'s tag; returns the way on a hit.
    /// Pure lookup — does not touch recency state.
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        (0..self.geom.ways()).find(|&way| {
            let line = &self.lines[self.slot(set, way)];
            line.valid && line.tag == tag
        })
    }

    /// Whether `addr`'s specific way holds `addr`'s line — the one-tag
    /// probe a way-placement access performs.
    #[must_use]
    pub fn probe_way(&self, addr: u32, way: u32) -> bool {
        let set = self.geom.set_of(addr);
        let line = &self.lines[self.slot(set, way)];
        line.valid && line.tag == self.geom.tag_of(addr)
    }

    /// Records a use of (set, way) for LRU bookkeeping.
    pub fn touch(&mut self, addr: u32, way: u32) {
        self.tick += 1;
        let set = self.geom.set_of(addr);
        let slot = self.slot(set, way);
        self.lines[slot].last_use = self.tick;
    }

    /// Marks the line holding `addr` in `way` dirty (write-back caches).
    pub fn mark_dirty(&mut self, addr: u32, way: u32) {
        let set = self.geom.set_of(addr);
        let slot = self.slot(set, way);
        self.lines[slot].dirty = true;
    }

    /// Picks a victim way in `addr`'s set according to the policy,
    /// preferring invalid ways.
    pub fn pick_victim(&mut self, addr: u32) -> u32 {
        let set = self.geom.set_of(addr);
        let ways = self.geom.ways();
        if let Some(way) = (0..ways).find(|&w| !self.lines[self.slot(set, w)].valid) {
            return way;
        }
        match self.policy {
            ReplacementPolicy::RoundRobin => {
                let way = self.round_robin[set as usize];
                self.round_robin[set as usize] = (way + 1) % ways;
                way
            }
            ReplacementPolicy::Lru => {
                (0..ways).min_by_key(|&w| self.lines[self.slot(set, w)].last_use).unwrap_or(0)
            }
            ReplacementPolicy::Random => self.rng.below(u64::from(ways)) as u32,
        }
    }

    /// Installs `addr`'s line into `way`, returning what was evicted.
    pub fn fill(&mut self, addr: u32, way: u32) -> FillOutcome {
        self.tick += 1;
        let set = self.geom.set_of(addr);
        let slot = self.slot(set, way);
        let old = self.lines[slot];
        let evicted = old.valid.then(|| self.geom.addr_of(old.tag, set));
        self.lines[slot] = LineState {
            valid: true,
            tag: self.geom.tag_of(addr),
            dirty: false,
            last_use: self.tick,
        };
        FillOutcome { way, evicted, evicted_dirty: old.valid && old.dirty }
    }

    /// Flips one bit of the tag stored at (`set`, `way`) — the fault
    /// injector's soft-error model. Returns `true` when a valid line
    /// was actually corrupted; invalid slots are left untouched (there
    /// is no tag to corrupt).
    pub fn flip_tag_bit(&mut self, set: u32, way: u32, bit: u32) -> bool {
        let slot = self.slot(set % self.geom.sets(), way % self.geom.ways());
        let line = &mut self.lines[slot];
        if !line.valid {
            return false;
        }
        line.tag ^= 1 << (bit % self.geom.tag_bits());
        true
    }

    /// Invalidates every line (e.g. between benchmark runs).
    pub fn invalidate_all(&mut self) {
        for line in &mut self.lines {
            *line = LineState::default();
        }
        self.round_robin.fill(0);
        self.tick = 0;
    }

    /// Number of currently valid lines.
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Iterates over the base addresses of all resident lines, with
    /// their (set, way) position — used by invariant checks.
    pub fn resident_lines(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        let geom = self.geom;
        let ways = geom.ways();
        self.lines.iter().enumerate().filter(|(_, l)| l.valid).map(move |(i, l)| {
            let set = i as u32 / ways;
            let way = i as u32 % ways;
            (geom.addr_of(l.tag, set), set, way)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheGeometry {
        // 2 sets, 4 ways, 32 B lines = 256 B (figure 1's example cache).
        CacheGeometry::new(256, 4, 32)
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        assert_eq!(cam.lookup(0x1000), None);
        let way = cam.pick_victim(0x1000);
        cam.fill(0x1000, way);
        assert_eq!(cam.lookup(0x1000), Some(way));
        assert_eq!(cam.lookup(0x1004), Some(way), "same line");
        assert_eq!(cam.lookup(0x1040), None, "other set");
        assert_eq!(cam.valid_lines(), 1);
    }

    #[test]
    fn round_robin_cycles_through_ways() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        // Fill the whole set, then observe the rotation.
        let set_stride = 64; // 2 sets * 32 B
        for i in 0..4u32 {
            let addr = 0x1000 + i * set_stride;
            let way = cam.pick_victim(addr);
            assert_eq!(way, i, "invalid ways first");
            cam.fill(addr, way);
        }
        let victims: Vec<u32> = (0..6).map(|_| cam.pick_victim(0x1000)).collect();
        assert_eq!(victims, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::Lru, 0);
        let set_stride = 64;
        for i in 0..4u32 {
            let addr = 0x1000 + i * set_stride;
            cam.fill(addr, i);
        }
        // Touch ways 0, 2, 3 — way 1 becomes LRU.
        cam.touch(0x1000, 0);
        cam.touch(0x1000 + 2 * set_stride, 2);
        cam.touch(0x1000 + 3 * set_stride, 3);
        assert_eq!(cam.pick_victim(0x1000), 1);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let picks = |seed| {
            let mut cam = CamArray::new(tiny(), ReplacementPolicy::Random, seed);
            for i in 0..4u32 {
                cam.fill(0x1000 + i * 64, i);
            }
            (0..8).map(|_| cam.pick_victim(0x1000)).collect::<Vec<u32>>()
        };
        assert_eq!(picks(7), picks(7));
    }

    #[test]
    fn fill_reports_eviction() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 2);
        let out = cam.fill(0x2000, 2);
        assert_eq!(out.evicted, Some(0x1000));
        assert!(!out.evicted_dirty);
        assert_eq!(cam.lookup(0x1000), None);
        assert_eq!(cam.lookup(0x2000), Some(2));
    }

    #[test]
    fn dirty_eviction() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 0);
        cam.mark_dirty(0x1000, 0);
        let out = cam.fill(0x2000, 0);
        assert!(out.evicted_dirty);
        // A refill of the same address is clean again.
        cam.fill(0x1000, 0);
        let out = cam.fill(0x2000, 0);
        assert!(!out.evicted_dirty);
    }

    #[test]
    fn probe_way_is_single_way() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 3);
        assert!(cam.probe_way(0x1000, 3));
        assert!(!cam.probe_way(0x1000, 0));
        assert!(!cam.probe_way(0x2000, 3));
    }

    #[test]
    fn invalidate_all_clears() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 0);
        cam.invalidate_all();
        assert_eq!(cam.valid_lines(), 0);
        assert_eq!(cam.lookup(0x1000), None);
    }

    #[test]
    fn resident_lines_enumerates() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 1);
        cam.fill(0x1020, 2); // other set (bit 5 is the index bit)
        let mut lines: Vec<(u32, u32, u32)> = cam.resident_lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![(0x1000, 0, 1), (0x1020, 1, 2)]);
    }
}
