//! The tag array shared by both caches: a CAM-tagged, set-associative
//! line store with pluggable replacement.
//!
//! This models *placement* only — which line lives in which (set, way)
//! slot. Data contents live in the functional simulator's flat memory;
//! splitting the two keeps the cache model reusable for timing and
//! energy studies, which is exactly how XTREM structures its caches.
//!
//! Storage is structure-of-arrays, mirroring the parallel
//! tag/valid/data RAMs of a hardware cache (and of the SNIPPETS
//! Verilog models): one contiguous `tags` slab, one `valid` bitset and
//! one `dirty` bitset, all indexed `set * ways + way`. A set's ways
//! are consecutive slab entries, so a full CAM search touches one or
//! two cache lines of host memory instead of chasing per-line structs,
//! and the valid bits of a whole set land in a single `u64` word
//! (ways is a power of two ≤ 64 per set-word by construction of the
//! bitset indexing).
//!
//! Each slot also carries a **tag parity bit**, written on every fill.
//! The fault injector's [`flip_tag_bit`](CamArray::flip_tag_bit)
//! deliberately leaves the parity bit stale, so a single-bit tag flip
//! is always caught by [`tag_parity_ok`](CamArray::tag_parity_ok) the
//! next time a protected access scrubs the way it is about to trust.

use crate::geometry::GeometryShifts;
use crate::rng::SplitMix64;
use crate::CacheGeometry;

/// Replacement policy for non-way-placed fills.
///
/// The XScale uses round-robin; LRU and random are provided for the
/// sensitivity ablation in `wp-bench`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ReplacementPolicy {
    /// Per-set rotating counter (the XScale's policy).
    #[default]
    RoundRobin,
    /// Least recently used.
    Lru,
    /// Uniformly random victim (deterministically seeded).
    Random,
}

/// The outcome of a fill: which way was used and which line (by base
/// address) was evicted, if any.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FillOutcome {
    /// The way the new line was placed in.
    pub way: u32,
    /// Base address of the evicted line, if a valid line was displaced.
    pub evicted: Option<u32>,
    /// Whether the evicted line was dirty (needs writeback).
    pub evicted_dirty: bool,
}

/// A set-associative tag array in structure-of-arrays layout.
#[derive(Clone, Debug)]
pub struct CamArray {
    geom: CacheGeometry,
    shifts: GeometryShifts,
    policy: ReplacementPolicy,
    /// Stored tags, indexed `set * ways + way`.
    tags: Vec<u32>,
    /// Valid bits, one per slot, packed 64 to a word.
    valid: Vec<u64>,
    /// Dirty bits, one per slot, packed 64 to a word.
    dirty: Vec<u64>,
    /// Tag parity check bits, one per slot, written at fill time.
    parity: Vec<u64>,
    /// LRU timestamps, indexed `set * ways + way`.
    last_use: Vec<u64>,
    round_robin: Vec<u32>,
    rng: SplitMix64,
    tick: u64,
}

#[inline]
fn bitset_words(slots: usize) -> usize {
    slots.div_ceil(64)
}

impl CamArray {
    /// Creates an empty array. `seed` only matters for
    /// [`ReplacementPolicy::Random`].
    #[must_use]
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy, seed: u64) -> CamArray {
        let slots = (geom.sets() * geom.ways()) as usize;
        CamArray {
            geom,
            shifts: geom.shifts(),
            policy,
            tags: vec![0; slots],
            valid: vec![0; bitset_words(slots)],
            dirty: vec![0; bitset_words(slots)],
            parity: vec![0; bitset_words(slots)],
            last_use: vec![0; slots],
            round_robin: vec![0; geom.sets() as usize],
            rng: SplitMix64::new(seed),
            tick: 0,
        }
    }

    /// The geometry this array was built with.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    #[inline]
    fn slot(&self, set: u32, way: u32) -> usize {
        (set * self.shifts.ways + way) as usize
    }

    #[inline]
    fn is_valid(&self, slot: usize) -> bool {
        self.valid[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    #[inline]
    fn set_valid(&mut self, slot: usize) {
        self.valid[slot >> 6] |= 1u64 << (slot & 63);
    }

    #[inline]
    fn is_dirty(&self, slot: usize) -> bool {
        self.dirty[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    #[inline]
    fn set_dirty_bit(&mut self, slot: usize) {
        self.dirty[slot >> 6] |= 1u64 << (slot & 63);
    }

    #[inline]
    fn clear_dirty_bit(&mut self, slot: usize) {
        self.dirty[slot >> 6] &= !(1u64 << (slot & 63));
    }

    /// The valid bits of `set`'s ways as the low bits of a word.
    ///
    /// A set's `ways` slots start at `set * ways`; because `ways` is a
    /// power of two, for `ways <= 64` that aligned run never straddles
    /// a bitset word, and for wider sets the caller-visible semantics
    /// fall back to per-slot tests.
    #[inline]
    fn set_valid_bits(&self, set: u32) -> u64 {
        let base = self.slot(set, 0);
        let ways = self.shifts.ways;
        if ways <= 64 {
            let word = self.valid[base >> 6];
            let lane = (base & 63) as u32;
            let mask = if ways == 64 { u64::MAX } else { (1u64 << ways) - 1 };
            (word >> lane) & mask
        } else {
            // Degenerate ultra-wide sets: assemble the mask slot by slot.
            (0..ways).fold(0u64, |acc, w| {
                acc | (u64::from(self.is_valid(base + w as usize)) << w.min(63))
            })
        }
    }

    /// Searches the set for `addr`'s tag; returns the way on a hit.
    /// Pure lookup — does not touch recency state.
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        let set = self.shifts.set_of(addr);
        let tag = self.shifts.tag_of(addr);
        let base = self.slot(set, 0);
        if self.shifts.ways <= 64 {
            // Scan only the valid ways, lowest way first — identical
            // first-way-wins order to a sequential probe.
            let mut live = self.set_valid_bits(set);
            while live != 0 {
                let way = live.trailing_zeros();
                if self.tags[base + way as usize] == tag {
                    return Some(way);
                }
                live &= live - 1;
            }
            None
        } else {
            (0..self.shifts.ways).find(|&way| {
                self.is_valid(base + way as usize) && self.tags[base + way as usize] == tag
            })
        }
    }

    /// Whether `addr`'s specific way holds `addr`'s line — the one-tag
    /// probe a way-placement access performs.
    #[must_use]
    pub fn probe_way(&self, addr: u32, way: u32) -> bool {
        let set = self.shifts.set_of(addr);
        let slot = self.slot(set, way);
        self.is_valid(slot) && self.tags[slot] == self.shifts.tag_of(addr)
    }

    /// Records a use of (set, way) for LRU bookkeeping.
    pub fn touch(&mut self, addr: u32, way: u32) {
        self.tick += 1;
        let set = self.shifts.set_of(addr);
        let slot = self.slot(set, way);
        self.last_use[slot] = self.tick;
    }

    /// Marks the line holding `addr` in `way` dirty (write-back caches).
    pub fn mark_dirty(&mut self, addr: u32, way: u32) {
        let set = self.shifts.set_of(addr);
        let slot = self.slot(set, way);
        self.set_dirty_bit(slot);
    }

    /// Picks a victim way in `addr`'s set according to the policy,
    /// preferring invalid ways.
    pub fn pick_victim(&mut self, addr: u32) -> u32 {
        let set = self.shifts.set_of(addr);
        let ways = self.shifts.ways;
        if ways <= 64 {
            let mask = if ways == 64 { u64::MAX } else { (1u64 << ways) - 1 };
            let free = !self.set_valid_bits(set) & mask;
            if free != 0 {
                return free.trailing_zeros();
            }
        } else {
            let base = self.slot(set, 0);
            if let Some(way) = (0..ways).find(|&w| !self.is_valid(base + w as usize)) {
                return way;
            }
        }
        match self.policy {
            ReplacementPolicy::RoundRobin => {
                let way = self.round_robin[set as usize];
                self.round_robin[set as usize] = (way + 1) % ways;
                way
            }
            ReplacementPolicy::Lru => {
                let base = self.slot(set, 0);
                (0..ways).min_by_key(|&w| self.last_use[base + w as usize]).unwrap_or(0)
            }
            ReplacementPolicy::Random => self.rng.below(u64::from(ways)) as u32,
        }
    }

    /// Installs `addr`'s line into `way`, returning what was evicted.
    pub fn fill(&mut self, addr: u32, way: u32) -> FillOutcome {
        self.tick += 1;
        let set = self.shifts.set_of(addr);
        let slot = self.slot(set, way);
        let was_valid = self.is_valid(slot);
        let evicted = was_valid.then(|| self.geom.addr_of(self.tags[slot], set));
        let evicted_dirty = was_valid && self.is_dirty(slot);
        let tag = self.shifts.tag_of(addr);
        self.tags[slot] = tag;
        self.set_valid(slot);
        self.clear_dirty_bit(slot);
        self.write_parity_bit(slot, tag);
        self.last_use[slot] = self.tick;
        FillOutcome { way, evicted, evicted_dirty }
    }

    #[inline]
    fn write_parity_bit(&mut self, slot: usize, tag: u32) {
        let bit = u64::from(tag.count_ones() & 1);
        let word = &mut self.parity[slot >> 6];
        *word = (*word & !(1u64 << (slot & 63))) | (bit << (slot & 63));
    }

    #[inline]
    fn parity_bit(&self, slot: usize) -> bool {
        self.parity[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    /// Compares the stored parity check bit of (`set`, `way`) against
    /// the parity of the stored tag. Returns `None` for invalid slots
    /// (nothing to check), `Some(true)` when the check passes and
    /// `Some(false)` on a mismatch — i.e. the tag was corrupted after
    /// its fill.
    #[must_use]
    pub fn tag_parity_ok(&self, set: u32, way: u32) -> Option<bool> {
        let slot = self.slot(set, way);
        if !self.is_valid(slot) {
            return None;
        }
        Some(self.parity_bit(slot) == (self.tags[slot].count_ones() & 1 == 1))
    }

    /// Invalidates a single slot — the recovery action for a detected
    /// tag-parity fault. The line refills through the normal miss path
    /// on its next access, which is what prices the recovery honestly.
    pub fn invalidate_slot(&mut self, set: u32, way: u32) {
        let slot = self.slot(set, way);
        self.valid[slot >> 6] &= !(1u64 << (slot & 63));
        self.dirty[slot >> 6] &= !(1u64 << (slot & 63));
        self.parity[slot >> 6] &= !(1u64 << (slot & 63));
        self.tags[slot] = 0;
        self.last_use[slot] = 0;
    }

    /// Flips one bit of the tag stored at (`set`, `way`) — the fault
    /// injector's soft-error model. Returns `true` when a valid line
    /// was actually corrupted; invalid slots are left untouched (there
    /// is no tag to corrupt).
    pub fn flip_tag_bit(&mut self, set: u32, way: u32, bit: u32) -> bool {
        let slot = self.slot(set % self.shifts.sets, way % self.shifts.ways);
        if !self.is_valid(slot) {
            return false;
        }
        self.tags[slot] ^= 1 << (bit % self.shifts.tag_bits);
        true
    }

    /// Invalidates every line (e.g. between benchmark runs).
    pub fn invalidate_all(&mut self) {
        self.tags.fill(0);
        self.valid.fill(0);
        self.dirty.fill(0);
        self.parity.fill(0);
        self.last_use.fill(0);
        self.round_robin.fill(0);
        self.tick = 0;
    }

    /// Number of currently valid lines (a popcount over the bitset).
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.valid_popcount()
    }

    /// Popcount of the valid bitset — by construction equal to
    /// [`valid_lines`](CamArray::valid_lines); exposed separately so
    /// invariant tests can compare it against an enumeration.
    #[must_use]
    pub fn valid_popcount(&self) -> usize {
        self.valid.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the base addresses of all resident lines, with
    /// their (set, way) position — used by invariant checks.
    pub fn resident_lines(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        let geom = self.geom;
        let ways = self.shifts.ways;
        (0..self.tags.len()).filter(|&slot| self.is_valid(slot)).map(move |slot| {
            let set = slot as u32 / ways;
            let way = slot as u32 % ways;
            (geom.addr_of(self.tags[slot], set), set, way)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheGeometry {
        // 2 sets, 4 ways, 32 B lines = 256 B (figure 1's example cache).
        CacheGeometry::new(256, 4, 32)
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        assert_eq!(cam.lookup(0x1000), None);
        let way = cam.pick_victim(0x1000);
        cam.fill(0x1000, way);
        assert_eq!(cam.lookup(0x1000), Some(way));
        assert_eq!(cam.lookup(0x1004), Some(way), "same line");
        assert_eq!(cam.lookup(0x1040), None, "other set");
        assert_eq!(cam.valid_lines(), 1);
    }

    #[test]
    fn round_robin_cycles_through_ways() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        // Fill the whole set, then observe the rotation.
        let set_stride = 64; // 2 sets * 32 B
        for i in 0..4u32 {
            let addr = 0x1000 + i * set_stride;
            let way = cam.pick_victim(addr);
            assert_eq!(way, i, "invalid ways first");
            cam.fill(addr, way);
        }
        let victims: Vec<u32> = (0..6).map(|_| cam.pick_victim(0x1000)).collect();
        assert_eq!(victims, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::Lru, 0);
        let set_stride = 64;
        for i in 0..4u32 {
            let addr = 0x1000 + i * set_stride;
            cam.fill(addr, i);
        }
        // Touch ways 0, 2, 3 — way 1 becomes LRU.
        cam.touch(0x1000, 0);
        cam.touch(0x1000 + 2 * set_stride, 2);
        cam.touch(0x1000 + 3 * set_stride, 3);
        assert_eq!(cam.pick_victim(0x1000), 1);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let picks = |seed| {
            let mut cam = CamArray::new(tiny(), ReplacementPolicy::Random, seed);
            for i in 0..4u32 {
                cam.fill(0x1000 + i * 64, i);
            }
            (0..8).map(|_| cam.pick_victim(0x1000)).collect::<Vec<u32>>()
        };
        assert_eq!(picks(7), picks(7));
    }

    #[test]
    fn fill_reports_eviction() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 2);
        let out = cam.fill(0x2000, 2);
        assert_eq!(out.evicted, Some(0x1000));
        assert!(!out.evicted_dirty);
        assert_eq!(cam.lookup(0x1000), None);
        assert_eq!(cam.lookup(0x2000), Some(2));
    }

    #[test]
    fn dirty_eviction() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 0);
        cam.mark_dirty(0x1000, 0);
        let out = cam.fill(0x2000, 0);
        assert!(out.evicted_dirty);
        // A refill of the same address is clean again.
        cam.fill(0x1000, 0);
        let out = cam.fill(0x2000, 0);
        assert!(!out.evicted_dirty);
    }

    #[test]
    fn probe_way_is_single_way() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 3);
        assert!(cam.probe_way(0x1000, 3));
        assert!(!cam.probe_way(0x1000, 0));
        assert!(!cam.probe_way(0x2000, 3));
    }

    #[test]
    fn invalidate_all_clears() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 0);
        cam.invalidate_all();
        assert_eq!(cam.valid_lines(), 0);
        assert_eq!(cam.lookup(0x1000), None);
    }

    #[test]
    fn resident_lines_enumerates() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 1);
        cam.fill(0x1020, 2); // other set (bit 5 is the index bit)
        let mut lines: Vec<(u32, u32, u32)> = cam.resident_lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![(0x1000, 0, 1), (0x1020, 1, 2)]);
    }

    #[test]
    fn popcount_tracks_enumeration() {
        let mut cam = CamArray::new(CacheGeometry::xscale_icache(), ReplacementPolicy::Lru, 3);
        let mut rng = SplitMix64::new(0x50a);
        for _ in 0..2000 {
            let addr = (rng.next_u32() >> 4) & !3;
            let way = cam.lookup(addr).unwrap_or_else(|| cam.pick_victim(addr));
            cam.fill(addr, way);
            assert_eq!(cam.valid_popcount(), cam.resident_lines().count());
        }
    }

    #[test]
    fn parity_catches_any_single_bit_flip() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 2);
        assert_eq!(cam.tag_parity_ok(0, 2), Some(true));
        assert_eq!(cam.tag_parity_ok(0, 0), None, "invalid slot has no check");
        for bit in 0..tiny().tag_bits() {
            assert!(cam.flip_tag_bit(0, 2, bit));
            assert_eq!(cam.tag_parity_ok(0, 2), Some(false), "bit {bit}");
            assert!(cam.flip_tag_bit(0, 2, bit), "flip back");
            assert_eq!(cam.tag_parity_ok(0, 2), Some(true));
        }
    }

    #[test]
    fn refill_restores_parity() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 1);
        cam.flip_tag_bit(0, 1, 3);
        assert_eq!(cam.tag_parity_ok(0, 1), Some(false));
        cam.fill(0x3000, 1);
        assert_eq!(cam.tag_parity_ok(0, 1), Some(true), "fill rewrites the check bit");
    }

    #[test]
    fn invalidate_slot_clears_one_line() {
        let mut cam = CamArray::new(tiny(), ReplacementPolicy::RoundRobin, 0);
        cam.fill(0x1000, 1);
        cam.fill(0x1020, 2);
        cam.mark_dirty(0x1000, 1);
        cam.invalidate_slot(0, 1);
        assert_eq!(cam.lookup(0x1000), None);
        assert_eq!(cam.lookup(0x1020), Some(2), "other set untouched");
        assert_eq!(cam.valid_lines(), 1);
        assert_eq!(cam.tag_parity_ok(0, 1), None);
        // Refilling the invalidated slot reports no (stale dirty) eviction.
        let out = cam.fill(0x2000, 1);
        assert_eq!(out.evicted, None);
        assert!(!out.evicted_dirty);
    }

    #[test]
    fn sixty_four_way_set_valid_bits() {
        // ways == 64 exercises the full-word mask path.
        let geom = CacheGeometry::new(64 * 32, 64, 32);
        let mut cam = CamArray::new(geom, ReplacementPolicy::RoundRobin, 0);
        for i in 0..64u32 {
            let addr = i * geom.way_span_bytes();
            let way = cam.pick_victim(addr);
            assert_eq!(way, i);
            cam.fill(addr, way);
        }
        assert_eq!(cam.valid_lines(), 64);
        for i in 0..64u32 {
            assert_eq!(cam.lookup(i * geom.way_span_bytes()), Some(i));
        }
    }
}
