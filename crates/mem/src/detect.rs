//! Typed fault-detection events and counters for the protected fetch
//! core.
//!
//! PR 2's injector flips real state — stored tags, the latched way
//! hint, cached I-TLB WP bits — and until now those flips were only
//! *classified* after the run by comparing against a clean twin. This
//! module is the vocabulary for catching them **at fetch time**: the
//! slabs carry check bits (per-slot tag parity in [`crate::CamArray`],
//! a duplicated WP bitset in [`crate::Tlb`], a shadow copy of the
//! way-placement hint in [`crate::InstructionCache`]), every armed
//! access scrubs the state it is about to trust, and a mismatch
//! surfaces as a [`DetectedFault`] plus a priced recovery action.
//!
//! Detection is opt-in (`MemoryConfig::detection`); with the flag off
//! the protected paths compile to the exact pre-existing behaviour, so
//! blessed baselines stay byte-identical.

/// A fault caught by an in-array check at fetch time.
///
/// Each variant corresponds to one protected structure and names the
/// recovery action its handler performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DetectedFault {
    /// A stored tag failed its parity check; the slot is invalidated
    /// and the line refills on the next natural miss.
    TagParity {
        /// Set holding the poisoned slot.
        set: u32,
        /// Way holding the poisoned slot.
        way: u32,
    },
    /// The latched way-placement hint disagreed with its shadow copy;
    /// the hint is reset from the shadow.
    WayHintMismatch,
    /// A cached I-TLB WP bit disagreed with its duplicate; the entry
    /// is re-derived from the OS way-placement boundary (a modeled
    /// refill).
    WpBitMismatch {
        /// Virtual page number of the repaired entry.
        vpn: u32,
    },
    /// An MRU way predictor entry pointed outside the set's ways; the
    /// predictor is reset to way 0.
    WayHintBounds {
        /// Set whose predictor entry was out of range.
        set: u32,
    },
}

impl DetectedFault {
    /// Stable label for reports and manifests.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DetectedFault::TagParity { .. } => "tag-parity",
            DetectedFault::WayHintMismatch => "way-hint-mismatch",
            DetectedFault::WpBitMismatch { .. } => "wp-bit-mismatch",
            DetectedFault::WayHintBounds { .. } => "way-hint-bounds",
        }
    }
}

/// Counters for the detection-and-recovery subsystem.
///
/// Deliberately separate from [`crate::FetchStats`]: the fetch counters
/// mirror `wp_trace::FetchCounters` field-for-field and feed blessed
/// manifests, while these exist only when detection is armed. Recovery
/// *cycles* flow into fetch/TLB outcome timing; recovery *energy* is
/// priced from these counts by `wp-energy`'s `RecoveryCosts`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DetectionStats {
    /// Tag-parity comparisons performed (one per scrubbed way).
    pub parity_checks: u64,
    /// WP-bit duplicate comparisons performed.
    pub wp_bit_checks: u64,
    /// Tag-parity mismatches detected.
    pub tag_parity_faults: u64,
    /// Way-hint shadow mismatches detected.
    pub hint_mismatches: u64,
    /// WP-bit duplicate mismatches detected.
    pub wp_bit_mismatches: u64,
    /// Out-of-range MRU predictor entries detected.
    pub hint_bounds_faults: u64,
    /// Lines invalidated to recover from tag-parity faults.
    pub lines_invalidated: u64,
    /// Way-hint resets performed.
    pub hint_resets: u64,
    /// WP-bit re-derivations (modeled I-TLB refills) performed.
    pub wp_rederivations: u64,
    /// Total stall cycles charged to recovery actions.
    pub recovery_cycles: u64,
}

impl DetectionStats {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> DetectionStats {
        DetectionStats::default()
    }

    /// Total faults detected across all check kinds.
    #[must_use]
    pub fn total_detected(&self) -> u64 {
        self.tag_parity_faults
            + self.hint_mismatches
            + self.wp_bit_mismatches
            + self.hint_bounds_faults
    }

    /// Accumulates `other` into `self` (worker-shard merging).
    pub fn merge(&mut self, other: &DetectionStats) {
        self.parity_checks += other.parity_checks;
        self.wp_bit_checks += other.wp_bit_checks;
        self.tag_parity_faults += other.tag_parity_faults;
        self.hint_mismatches += other.hint_mismatches;
        self.wp_bit_mismatches += other.wp_bit_mismatches;
        self.hint_bounds_faults += other.hint_bounds_faults;
        self.lines_invalidated += other.lines_invalidated;
        self.hint_resets += other.hint_resets;
        self.wp_rederivations += other.wp_rederivations;
        self.recovery_cycles += other.recovery_cycles;
    }

    /// Bumps the detection counter matching `fault`.
    pub fn record(&mut self, fault: DetectedFault) {
        match fault {
            DetectedFault::TagParity { .. } => self.tag_parity_faults += 1,
            DetectedFault::WayHintMismatch => self.hint_mismatches += 1,
            DetectedFault::WpBitMismatch { .. } => self.wp_bit_mismatches += 1,
            DetectedFault::WayHintBounds { .. } => self.hint_bounds_faults += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_matching_counter() {
        let mut stats = DetectionStats::new();
        stats.record(DetectedFault::TagParity { set: 1, way: 2 });
        stats.record(DetectedFault::WayHintMismatch);
        stats.record(DetectedFault::WpBitMismatch { vpn: 9 });
        stats.record(DetectedFault::WayHintBounds { set: 3 });
        stats.record(DetectedFault::WayHintMismatch);
        assert_eq!(stats.tag_parity_faults, 1);
        assert_eq!(stats.hint_mismatches, 2);
        assert_eq!(stats.wp_bit_mismatches, 1);
        assert_eq!(stats.hint_bounds_faults, 1);
        assert_eq!(stats.total_detected(), 5);
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = DetectionStats {
            parity_checks: 1,
            wp_bit_checks: 2,
            tag_parity_faults: 3,
            hint_mismatches: 4,
            wp_bit_mismatches: 5,
            hint_bounds_faults: 6,
            lines_invalidated: 7,
            hint_resets: 8,
            wp_rederivations: 9,
            recovery_cycles: 10,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.parity_checks, 2);
        assert_eq!(a.wp_bit_checks, 4);
        assert_eq!(a.tag_parity_faults, 6);
        assert_eq!(a.hint_mismatches, 8);
        assert_eq!(a.wp_bit_mismatches, 10);
        assert_eq!(a.hint_bounds_faults, 12);
        assert_eq!(a.lines_invalidated, 14);
        assert_eq!(a.hint_resets, 16);
        assert_eq!(a.wp_rederivations, 18);
        assert_eq!(a.recovery_cycles, 20);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DetectedFault::TagParity { set: 0, way: 0 }.label(), "tag-parity");
        assert_eq!(DetectedFault::WayHintMismatch.label(), "way-hint-mismatch");
        assert_eq!(DetectedFault::WpBitMismatch { vpn: 0 }.label(), "wp-bit-mismatch");
        assert_eq!(DetectedFault::WayHintBounds { set: 0 }.label(), "way-hint-bounds");
    }
}
