//! The instruction cache fetch engine: baseline CAM access,
//! compiler way-placement (the paper's contribution), and the
//! way-memoization comparison scheme (Ma et al., WCED'01).
//!
//! All three schemes share the same tag array and replacement machinery;
//! they differ only in how many CAM ways a fetch arms and in the extra
//! state they keep (the global way-hint bit for way-placement, per-line
//! link fields for way-memoization). Every energy-relevant event is
//! recorded in [`FetchStats`].

use crate::cam::{CamArray, ReplacementPolicy};
use crate::detect::{DetectedFault, DetectionStats};
use crate::geometry::GeometryShifts;
use crate::{CacheGeometry, FetchStats};
use wp_trace::{AccessKind, FetchEvent};

/// Which fetch-energy scheme the instruction cache runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FetchScheme {
    /// Unmodified CAM cache: every fetch searches all ways.
    #[default]
    Baseline,
    /// Compiler way-placement with the way-hint bit and same-line
    /// elision (§3–4 of the paper).
    WayPlacement,
    /// Way-memoization: per-line link fields skip tag checks entirely
    /// when valid (Ma et al.).
    WayMemoization,
    /// MRU way prediction (Inoue et al., ISLPED'99): probe the set's
    /// most-recently-used way first; a wrong prediction costs a second,
    /// full-width access and a cycle. Implemented as a comparison point
    /// beyond the paper (its related-work §7 discusses it).
    WayPrediction,
}

impl FetchScheme {
    /// All schemes, in presentation order.
    pub const ALL: [FetchScheme; 4] = [
        FetchScheme::Baseline,
        FetchScheme::WayPlacement,
        FetchScheme::WayMemoization,
        FetchScheme::WayPrediction,
    ];

    /// Short label used in reports.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            FetchScheme::Baseline => "baseline",
            FetchScheme::WayPlacement => "way-placement",
            FetchScheme::WayMemoization => "way-memoization",
            FetchScheme::WayPrediction => "way-prediction",
        }
    }
}

/// Instruction cache configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ICacheConfig {
    /// Geometry of the cache.
    pub geometry: CacheGeometry,
    /// Fetch-energy scheme.
    pub scheme: FetchScheme,
    /// Replacement policy for non-way-placed fills.
    pub replacement: ReplacementPolicy,
    /// Whether consecutive fetches from one line skip the tag check.
    /// Way-placement and way-memoization both use this (§4.2); the
    /// baseline does not. Exposed for the ablation study.
    pub same_line_elision: bool,
    /// Cycles to fill a line from memory on a miss (Table 1: 50).
    pub miss_latency: u32,
}

impl ICacheConfig {
    /// The paper's baseline: XScale geometry, full-search CAM fetches.
    #[must_use]
    pub fn baseline(geometry: CacheGeometry) -> ICacheConfig {
        ICacheConfig {
            geometry,
            scheme: FetchScheme::Baseline,
            replacement: ReplacementPolicy::RoundRobin,
            same_line_elision: false,
            miss_latency: 50,
        }
    }

    /// The paper's way-placement configuration.
    #[must_use]
    pub fn way_placement(geometry: CacheGeometry) -> ICacheConfig {
        ICacheConfig {
            scheme: FetchScheme::WayPlacement,
            same_line_elision: true,
            ..ICacheConfig::baseline(geometry)
        }
    }

    /// The way-memoization comparison configuration.
    #[must_use]
    pub fn way_memoization(geometry: CacheGeometry) -> ICacheConfig {
        ICacheConfig {
            scheme: FetchScheme::WayMemoization,
            same_line_elision: true,
            ..ICacheConfig::baseline(geometry)
        }
    }

    /// The MRU way-prediction comparison configuration.
    #[must_use]
    pub fn way_prediction(geometry: CacheGeometry) -> ICacheConfig {
        ICacheConfig {
            scheme: FetchScheme::WayPrediction,
            same_line_elision: true,
            ..ICacheConfig::baseline(geometry)
        }
    }
}

/// The outcome of one instruction fetch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FetchOutcome {
    /// Whether the fetch hit in the cache.
    pub hit: bool,
    /// Total cycles the fetch occupied (1 for a clean hit; includes the
    /// miss fill and any hint-misprediction penalty).
    pub cycles: u32,
}

#[derive(Clone, Copy, Debug)]
struct PrevFetch {
    addr: u32,
    set: u32,
    way: u32,
    slot: u32,
}

/// The instruction cache.
///
/// All per-line state lives in flat structure-of-arrays slabs: the tag
/// array is the SoA [`CamArray`], the way-memoization links are three
/// parallel slabs (`link_target` / `link_way` / a validity bitset)
/// indexed `(set * ways + way) * links_per_line + slot`, and the MRU
/// way-prediction table is a `u8` slab. The fetch scheme is resolved
/// to a function pointer at construction, so the per-fetch hot path
/// never matches on the scheme enum.
#[derive(Clone, Debug)]
pub struct InstructionCache {
    config: ICacheConfig,
    /// Precomputed address-slicing constants (hot path).
    shifts: GeometryShifts,
    array: CamArray,
    stats: FetchStats,
    /// Line base of the previous fetch, for same-line elision. Cleared
    /// whenever the line could have moved (any fill).
    last_line: Option<u32>,
    /// The global way-hint bit (§4.1): was the previous fetch a
    /// way-placement access?
    way_hint: bool,
    /// Shadow copy of the way-hint bit, written on every normal hint
    /// update but not by fault injection; with detection on, a
    /// disagreement at the top of [`fetch`](InstructionCache::fetch)
    /// is a detected hint inversion, recovered by a reset from the
    /// shadow.
    way_hint_check: bool,
    /// Whether in-array checks (tag parity, hint shadow, MRU bounds)
    /// are armed. Off by default: the unprotected paths are
    /// byte-identical to the pre-detection core.
    detection: bool,
    /// Detection/recovery counters (separate from `FetchStats`, which
    /// mirrors `wp_trace::FetchCounters` field-for-field).
    detect: DetectionStats,
    /// Recovery stall cycles accrued by scrubs during the current
    /// fetch, drained into the outcome's cycle count.
    pending_recovery_cycles: u32,
    /// Way-memoization link targets (line base addresses), indexed
    /// `(set * ways + way) * links_per_line + slot`.
    link_target: Vec<u32>,
    /// Way-memoization link ways, parallel to `link_target`.
    link_way: Vec<u8>,
    /// Link validity bits, packed 64 to a word, parallel to the slabs.
    link_valid: Vec<u64>,
    /// Links per line (`words_per_line + 1`), hoisted for indexing.
    links_per_line: u32,
    prev_fetch: Option<PrevFetch>,
    /// Way-prediction MRU table: predicted way per set (the way-hint
    /// slab — one `u8` per set, always `< ways`).
    mru_way: Vec<u8>,
    /// Scheme dispatch, resolved once at construction.
    scheme_fetch: fn(&mut InstructionCache, u32, bool) -> FetchOutcome,
    /// Whether `record_prev` has work to do (way-memoization only).
    track_prev: bool,
}

impl InstructionCache {
    /// Creates an empty instruction cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than 256 ways — the `u8` way
    /// slabs cover every geometry the paper, fig6 and the autotuner
    /// sweep (max 32 ways), with 8× headroom.
    #[must_use]
    pub fn new(config: ICacheConfig) -> InstructionCache {
        let geom = config.geometry;
        assert!(geom.ways() <= 256, "u8 way slabs support at most 256 ways");
        let slots = (geom.sets() * geom.ways()) as usize;
        let links_per_line = geom.words_per_line() + 1;
        let link_slots = slots * links_per_line as usize;
        InstructionCache {
            config,
            shifts: geom.shifts(),
            array: CamArray::new(geom, config.replacement, 0x1cac4e),
            stats: FetchStats::new(),
            last_line: None,
            way_hint: false,
            way_hint_check: false,
            detection: false,
            detect: DetectionStats::new(),
            pending_recovery_cycles: 0,
            link_target: vec![0; link_slots],
            link_way: vec![0; link_slots],
            link_valid: vec![0; link_slots.div_ceil(64)],
            links_per_line,
            prev_fetch: None,
            mru_way: vec![0; geom.sets() as usize],
            scheme_fetch: Self::dispatch_for(config.scheme),
            track_prev: config.scheme == FetchScheme::WayMemoization,
        }
    }

    fn dispatch_for(scheme: FetchScheme) -> fn(&mut InstructionCache, u32, bool) -> FetchOutcome {
        match scheme {
            FetchScheme::Baseline => Self::fetch_baseline_dispatch,
            FetchScheme::WayPlacement => Self::fetch_way_placement,
            FetchScheme::WayMemoization => Self::fetch_way_memoization_dispatch,
            FetchScheme::WayPrediction => Self::fetch_way_prediction_dispatch,
        }
    }

    /// Switches the fetch scheme at run time — the degradation
    /// controller's demote/promote lever. The tag array and all
    /// scheme-private state (links, hints, MRU table) are flushed so
    /// the new scheme starts from invariant-clean state: lines filled
    /// under a demoted scheme may violate the way-placement invariant,
    /// and the refill cost of the flush is exactly the honest price of
    /// a mode switch. Elision follows the scheme's canonical setting
    /// (off for the baseline full-CAM probe). Counters persist; a
    /// no-op when `scheme` is already active.
    pub fn set_scheme(&mut self, scheme: FetchScheme) {
        if scheme == self.config.scheme {
            return;
        }
        self.config.scheme = scheme;
        self.config.same_line_elision = scheme != FetchScheme::Baseline;
        self.scheme_fetch = Self::dispatch_for(scheme);
        self.track_prev = scheme == FetchScheme::WayMemoization;
        self.array.invalidate_all();
        self.link_valid.fill(0);
        self.last_line = None;
        self.way_hint = false;
        self.way_hint_check = false;
        self.prev_fetch = None;
        self.mru_way.fill(0);
    }

    /// Arms or disarms the in-array detection checks.
    pub fn set_detection(&mut self, on: bool) {
        self.detection = on;
    }

    /// Whether detection checks are armed.
    #[must_use]
    pub fn detection(&self) -> bool {
        self.detection
    }

    /// Detection and recovery counters.
    #[must_use]
    pub fn detect_stats(&self) -> &DetectionStats {
        &self.detect
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ICacheConfig {
        &self.config
    }

    /// Accumulated event counters.
    #[must_use]
    pub fn stats(&self) -> &FetchStats {
        &self.stats
    }

    /// Number of links per line (the paper's 9 for 32-byte lines) —
    /// used by the energy model to size the data-array widening.
    #[must_use]
    pub fn links_per_line(&self) -> u32 {
        self.config.geometry.words_per_line() + 1
    }

    /// Resets all state (tags, links, hint, stats).
    pub fn reset(&mut self) {
        self.array.invalidate_all();
        self.stats = FetchStats::new();
        self.last_line = None;
        self.way_hint = false;
        self.way_hint_check = false;
        self.detect = DetectionStats::new();
        self.pending_recovery_cycles = 0;
        self.link_valid.fill(0);
        self.prev_fetch = None;
        self.mru_way.fill(0);
    }

    /// Fetches the instruction at `addr`. `wp_page` is the I-TLB's
    /// way-placement bit for the page — ground truth that, per the
    /// parallel-access constraint of §4.1, is only available *after* the
    /// cache access, which is why the way-hint bit exists.
    pub fn fetch(&mut self, addr: u32, wp_page: bool) -> FetchOutcome {
        self.stats.fetches += 1;
        // Scrub the way-hint bit before anything trusts it — including
        // the elision shortcut, so an inversion injected before this
        // fetch is caught on this very fetch.
        if self.detection && self.way_hint != self.way_hint_check {
            self.detect.record(DetectedFault::WayHintMismatch);
            self.detect.hint_resets += 1;
            self.way_hint = self.way_hint_check;
            self.pending_recovery_cycles += 1;
        }
        let line = self.shifts.line_addr(addr);

        // Same-line elision: no tag check at all when fetching from the
        // line the previous fetch used (§4.2, shared with [12]).
        if self.config.same_line_elision && self.last_line == Some(line) {
            self.stats.same_line_elisions += 1;
            self.stats.hits += 1;
            self.stats.data_reads += 1;
            // The hint tracks the *previous access*; a same-line fetch
            // keeps it unchanged (same page, same answer).
            self.record_prev(addr);
            return FetchOutcome { hit: true, cycles: 1 + self.take_recovery_cycles() };
        }

        let mut outcome = (self.scheme_fetch)(self, addr, wp_page);
        outcome.cycles += self.take_recovery_cycles();
        self.last_line = Some(line);
        self.record_prev(addr);
        outcome
    }

    /// Drains the recovery stall cycles accrued during this fetch into
    /// the outcome, recording them in the detection counters. Always 0
    /// with detection off.
    #[inline]
    fn take_recovery_cycles(&mut self) -> u32 {
        let cycles = self.pending_recovery_cycles;
        if cycles != 0 {
            self.pending_recovery_cycles = 0;
            self.detect.recovery_cycles += u64::from(cycles);
        }
        cycles
    }

    /// Parity-scrubs one way of `addr`'s set before an access arms it.
    /// A mismatch invalidates the slot (the line refills through the
    /// normal miss path) and charges one recovery cycle.
    #[inline]
    fn scrub_tag_way(&mut self, addr: u32, way: u32) {
        let set = self.shifts.set_of(addr);
        if let Some(ok) = self.array.tag_parity_ok(set, way) {
            self.detect.parity_checks += 1;
            if !ok {
                self.detect.record(DetectedFault::TagParity { set, way });
                self.detect.lines_invalidated += 1;
                self.array.invalidate_slot(set, way);
                self.pending_recovery_cycles += 1;
            }
        }
    }

    /// Parity-scrubs every way a full-width search is about to arm.
    fn scrub_full_set(&mut self, addr: u32) {
        for way in 0..self.shifts.ways {
            self.scrub_tag_way(addr, way);
        }
    }

    /// Records `count` additional same-line elided fetches after a
    /// fetch of an earlier word of the same line — the bulk half of
    /// `MemorySystem::fetch_block`. `last_addr` is the final fetched
    /// address; counter-for-counter this equals `count` sequential
    /// calls to [`fetch`](InstructionCache::fetch) that all take the
    /// elision path (intermediate `prev_fetch` values are overwritten
    /// before anything can observe them).
    pub(crate) fn elide_run(&mut self, last_addr: u32, count: u64) {
        debug_assert!(self.config.same_line_elision);
        debug_assert_eq!(self.last_line, Some(self.shifts.line_addr(last_addr)));
        self.stats.fetches += count;
        self.stats.same_line_elisions += count;
        self.stats.hits += count;
        self.stats.data_reads += count;
        self.record_prev(last_addr);
    }

    /// [`fetch`](InstructionCache::fetch) plus a fully-classified
    /// telemetry event for the access.
    ///
    /// Identical cache behaviour and counter accounting to `fetch` —
    /// the event is derived from the counter delta the fetch produced,
    /// so the traced path cannot drift from the untraced one. The
    /// event's `cycle` is left 0 for the simulator to stamp.
    pub fn fetch_traced(&mut self, addr: u32, wp_page: bool) -> (FetchOutcome, FetchEvent) {
        let before = self.stats;
        let outcome = self.fetch(addr, wp_page);
        let delta = self.stats.delta(&before);
        let event = FetchEvent {
            pc: addr,
            cycle: 0,
            kind: access_kind_of(&delta),
            way: self.resolved_way(addr),
            hit: outcome.hit,
            tags: delta.tag_comparisons.min(u64::from(u16::MAX)) as u16,
            fill: delta.line_fills > 0,
            link_update: delta.link_updates > 0,
            link_invalidation: delta.link_invalidations > 0,
        };
        (outcome, event)
    }

    /// The way `addr`'s line currently resides in, if resident. Pure
    /// CAM lookup with no counter or replacement side effects; right
    /// after a fetch of `addr` this is the way the access resolved to
    /// (hits find the line, misses just filled it).
    #[must_use]
    pub fn resolved_way(&self, addr: u32) -> Option<u8> {
        self.array.lookup(addr).map(|way| way.min(u32::from(u8::MAX)) as u8)
    }

    fn record_prev(&mut self, addr: u32) {
        // Only way-memoization consults the previous fetch's position;
        // skip the bookkeeping (and its way scan) for the other schemes.
        if !self.track_prev {
            return;
        }
        let geom = self.config.geometry;
        let way = self.array.lookup(addr).unwrap_or(0);
        self.prev_fetch =
            Some(PrevFetch { addr, set: geom.set_of(addr), way, slot: geom.slot_of(addr) });
    }

    // ----- baseline ---------------------------------------------------

    fn full_search(&mut self, addr: u32) -> Option<u32> {
        if self.detection {
            self.scrub_full_set(addr);
        }
        let ways = u64::from(self.shifts.ways);
        self.stats.tag_comparisons += ways;
        self.stats.matchline_precharges += ways;
        self.array.lookup(addr)
    }

    fn fetch_baseline_dispatch(&mut self, addr: u32, _wp_page: bool) -> FetchOutcome {
        self.fetch_baseline(addr)
    }

    fn fetch_baseline(&mut self, addr: u32) -> FetchOutcome {
        match self.full_search(addr) {
            Some(way) => {
                self.hit(addr, way);
                FetchOutcome { hit: true, cycles: 1 }
            }
            None => {
                let way = self.array.pick_victim(addr);
                self.miss_fill(addr, way);
                FetchOutcome { hit: false, cycles: 1 + self.config.miss_latency }
            }
        }
    }

    fn hit(&mut self, addr: u32, way: u32) {
        self.stats.hits += 1;
        self.stats.data_reads += 1;
        self.array.touch(addr, way);
    }

    fn miss_fill(&mut self, addr: u32, way: u32) {
        self.stats.misses += 1;
        self.stats.line_fills += 1;
        self.stats.data_reads += 1;
        self.stats.miss_stall_cycles += u64::from(self.config.miss_latency);
        let outcome = self.array.fill(addr, way);
        // A fill resets the filled line's links and conceptually sweeps
        // links that pointed at the evicted line (the invalidation cost
        // way-memoization pays; see DESIGN.md §4).
        if self.track_prev {
            let slot = self.shifts.slab_index(self.shifts.set_of(addr), way);
            self.clear_line_links(slot);
            if outcome.evicted.is_some() {
                self.stats.link_invalidations += 1;
            }
        }
        // The previous line's identity is stale after any fill: the
        // same-line shortcut must re-establish itself.
        self.last_line = None;
    }

    // ----- way-placement ------------------------------------------------

    fn fetch_way_placement(&mut self, addr: u32, wp_page: bool) -> FetchOutcome {
        let hint_wp = self.way_hint;
        self.way_hint = wp_page;
        self.way_hint_check = wp_page;

        if hint_wp {
            // Predicted way-placement: arm exactly one way.
            self.stats.tag_comparisons += 1;
            self.stats.matchline_precharges += 1;
            let way = self.shifts.placement_way(addr);
            if self.detection {
                self.scrub_tag_way(addr, way);
            }
            if wp_page {
                self.stats.wp_accesses += 1;
                if self.array.probe_way(addr, way) {
                    self.hit(addr, way);
                    FetchOutcome { hit: true, cycles: 1 }
                } else {
                    // Way-placed lines live only in their mapped way, so
                    // a one-way probe miss is a true miss.
                    self.miss_fill(addr, way);
                    FetchOutcome { hit: false, cycles: 1 + self.config.miss_latency }
                }
            } else {
                // The hint was wrong: this is a normal page, the line may
                // sit in any way, so the access is re-issued full-width —
                // an extra cycle and a full access of energy (§4.1).
                self.stats.hint_false_wp += 1;
                self.stats.penalty_cycles += 1;
                let mut outcome = match self.full_search(addr) {
                    Some(way) => {
                        self.hit(addr, way);
                        FetchOutcome { hit: true, cycles: 1 }
                    }
                    None => {
                        let way = self.array.pick_victim(addr);
                        self.miss_fill(addr, way);
                        FetchOutcome { hit: false, cycles: 1 + self.config.miss_latency }
                    }
                };
                outcome.cycles += 1;
                outcome
            }
        } else {
            // Predicted normal: a full-width access. Correct data either
            // way; if the page was actually way-placed we merely missed
            // a saving.
            if wp_page {
                self.stats.hint_false_normal += 1;
            }
            match self.full_search(addr) {
                Some(way) => {
                    self.hit(addr, way);
                    FetchOutcome { hit: true, cycles: 1 }
                }
                None => {
                    // The fill way is chosen from the TLB's wp bit
                    // (ground truth by fill time), preserving the
                    // invariant that way-placed lines only ever occupy
                    // their mapped way.
                    let way = if wp_page {
                        self.shifts.placement_way(addr)
                    } else {
                        self.array.pick_victim(addr)
                    };
                    self.miss_fill(addr, way);
                    FetchOutcome { hit: false, cycles: 1 + self.config.miss_latency }
                }
            }
        }
    }

    // ----- way-memoization ----------------------------------------------

    /// The flat slab index of one link: line slot `(set, way)`, link
    /// slot `slot` within that line.
    #[inline]
    fn link_index(&self, set: u32, way: u32, slot: u32) -> usize {
        (self.shifts.slab_index(set, way) as u32 * self.links_per_line + slot) as usize
    }

    #[inline]
    fn link_is_valid(&self, index: usize) -> bool {
        self.link_valid[index >> 6] & (1u64 << (index & 63)) != 0
    }

    #[inline]
    fn set_link(&mut self, index: usize, target_line: u32, way: u32) {
        self.link_target[index] = target_line;
        self.link_way[index] = way.min(u32::from(u8::MAX)) as u8;
        self.link_valid[index >> 6] |= 1u64 << (index & 63);
    }

    /// Clears every link of the line at slab slot `slot`.
    fn clear_line_links(&mut self, slot: usize) {
        let base = slot * self.links_per_line as usize;
        for index in base..base + self.links_per_line as usize {
            self.link_valid[index >> 6] &= !(1u64 << (index & 63));
        }
    }

    /// The link the previous fetch latched for this transition: the
    /// next-line link for sequential line crossings, the instruction's
    /// own link otherwise.
    fn latched_link(&self, prev: &PrevFetch, addr: u32) -> usize {
        let sequential = addr == prev.addr.wrapping_add(4);
        let slot = if sequential {
            self.config.geometry.words_per_line() // next-line link
        } else {
            prev.slot
        };
        self.link_index(prev.set, prev.way, slot)
    }

    fn fetch_way_memoization_dispatch(&mut self, addr: u32, _wp_page: bool) -> FetchOutcome {
        self.fetch_way_memoization(addr)
    }

    fn fetch_way_memoization(&mut self, addr: u32) -> FetchOutcome {
        let line = self.shifts.line_addr(addr);

        // Try the link latched by the previous fetch.
        if let Some(prev) = self.prev_fetch {
            // The link is only meaningful if the previous line is still
            // resident where we read it from (fills clear links).
            if self.detection {
                self.scrub_tag_way(prev.addr, prev.way);
            }
            if self.array.probe_way(prev.addr, prev.way) {
                let index = self.latched_link(&prev, addr);
                if self.link_is_valid(index) {
                    let link_way = u32::from(self.link_way[index]);
                    if self.detection {
                        self.scrub_tag_way(addr, link_way);
                    }
                    // The stored valid bit is cleared on eviction: model
                    // by checking the target still holds the line.
                    if self.link_target[index] == line && self.array.probe_way(addr, link_way) {
                        self.stats.link_hits += 1;
                        self.hit(addr, link_way);
                        return FetchOutcome { hit: true, cycles: 1 };
                    }
                }
            }
        }

        // No valid link: full search, then teach the previous line.
        let (hit, way, cycles) = match self.full_search(addr) {
            Some(way) => {
                self.hit(addr, way);
                (true, way, 1)
            }
            None => {
                let way = self.array.pick_victim(addr);
                self.miss_fill(addr, way);
                (false, way, 1 + self.config.miss_latency)
            }
        };
        if let Some(prev) = self.prev_fetch {
            if self.array.probe_way(prev.addr, prev.way) {
                let index = self.latched_link(&prev, addr);
                self.set_link(index, line, way);
                self.stats.link_updates += 1;
            }
        }
        FetchOutcome { hit, cycles }
    }

    // ----- way prediction (extension) -----------------------------------

    /// MRU way prediction: probe the set's most-recently-used way
    /// first. A hit there costs one tag comparison; a miss re-issues a
    /// full-width access with a cycle penalty (the recovery cost §7 of
    /// the paper attributes to prediction schemes).
    fn fetch_way_prediction_dispatch(&mut self, addr: u32, _wp_page: bool) -> FetchOutcome {
        self.fetch_way_prediction(addr)
    }

    fn fetch_way_prediction(&mut self, addr: u32) -> FetchOutcome {
        let set = self.shifts.set_of(addr) as usize;
        if self.detection {
            // Bounds-check the MRU slab entry before trusting it as a
            // way index — pure armor (no injector targets it today).
            if u32::from(self.mru_way[set]) >= self.shifts.ways {
                self.detect.record(DetectedFault::WayHintBounds { set: set as u32 });
                self.detect.hint_resets += 1;
                self.mru_way[set] = 0;
                self.pending_recovery_cycles += 1;
            }
            self.scrub_tag_way(addr, u32::from(self.mru_way[set]));
        }
        let predicted = u32::from(self.mru_way[set]);
        self.stats.tag_comparisons += 1;
        self.stats.matchline_precharges += 1;
        if self.array.probe_way(addr, predicted) {
            self.stats.wp_accesses += 1; // counted as single-probe accesses
            self.hit(addr, predicted);
            return FetchOutcome { hit: true, cycles: 1 };
        }
        // Mispredicted: full access, one extra cycle.
        self.stats.hint_false_wp += 1;
        self.stats.penalty_cycles += 1;
        let mut outcome = match self.full_search(addr) {
            Some(way) => {
                self.mru_way[set] = way.min(u32::from(u8::MAX)) as u8;
                self.hit(addr, way);
                FetchOutcome { hit: true, cycles: 1 }
            }
            None => {
                let way = self.array.pick_victim(addr);
                self.miss_fill(addr, way);
                self.mru_way[set] = way.min(u32::from(u8::MAX)) as u8;
                FetchOutcome { hit: false, cycles: 1 + self.config.miss_latency }
            }
        };
        outcome.cycles += 1;
        outcome
    }

    /// Invariant check used by tests: in the way-placement scheme, every
    /// resident line whose address lies inside the way-placement area
    /// (`addr < wp_limit`) sits in its mapped way.
    #[must_use]
    pub fn way_placement_invariant_holds(&self, wp_limit: u32) -> bool {
        let geom = self.config.geometry;
        self.array
            .resident_lines()
            .filter(|&(addr, _, _)| addr < wp_limit)
            .all(|(addr, _, way)| geom.placement_way(addr) == way)
    }

    /// Read-only view of the tag array (tests and diagnostics).
    #[must_use]
    pub fn array(&self) -> &CamArray {
        &self.array
    }

    /// The way-hint slab: the per-set MRU predicted way. Every entry is
    /// `< ways` by construction — the invariant `tests/properties.rs`
    /// checks.
    #[must_use]
    pub fn way_hint_slab(&self) -> &[u8] {
        &self.mru_way
    }

    /// Toggles the global way-hint bit (fault injection: an upset of
    /// the §4.1 single-bit predictor).
    pub fn invert_way_hint(&mut self) {
        self.way_hint = !self.way_hint;
    }

    /// Flips one stored tag bit (fault injection). Returns `true` when
    /// a valid line was corrupted. Also forgets the same-line shortcut
    /// and the memoization anchor: the corrupted slot may be the very
    /// line they vouch for, and a real tag upset gives the elision
    /// logic no notice either — but those shortcuts bypass the tag
    /// array entirely, so modelling them as unaffected would just hide
    /// the fault rather than exercise it.
    pub fn corrupt_tag_bit(&mut self, set: u32, way: u32, bit: u32) -> bool {
        let corrupted = self.array.flip_tag_bit(set, way, bit);
        if corrupted {
            self.last_line = None;
            self.prev_fetch = None;
        }
        corrupted
    }
}

/// Classifies one fetch from the counter delta it produced. Exactly
/// one of the special counters can tick per fetch (same-line elisions
/// and link hits short-circuit; a hint mispredict subsumes the full
/// re-issue that follows it), so the order below is a priority, not a
/// heuristic.
fn access_kind_of(delta: &FetchStats) -> AccessKind {
    if delta.same_line_elisions > 0 {
        AccessKind::SameLine
    } else if delta.link_hits > 0 {
        AccessKind::LinkHit
    } else if delta.hint_false_wp > 0 {
        AccessKind::HintMispredict
    } else if delta.wp_accesses > 0 {
        AccessKind::Wp
    } else {
        AccessKind::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geom() -> CacheGeometry {
        // 2 KB, 4-way, 32 B lines: 16 sets, way span 512 B.
        CacheGeometry::new(2048, 4, 32)
    }

    fn baseline_cache() -> InstructionCache {
        InstructionCache::new(ICacheConfig::baseline(small_geom()))
    }

    #[test]
    fn traced_fetch_matches_untraced_and_classifies() {
        // Two caches, same stream: one traced, one not. Counters must
        // stay identical and the events must classify each access.
        let mut plain = InstructionCache::new(ICacheConfig::way_placement(small_geom()));
        let mut traced = InstructionCache::new(ICacheConfig::way_placement(small_geom()));
        let stream = [(0x1000u32, true), (0x1004, true), (0x1040, true), (0x1000, false)];
        let mut kinds = Vec::new();
        for &(addr, wp) in &stream {
            let untraced = plain.fetch(addr, wp);
            let (outcome, event) = traced.fetch_traced(addr, wp);
            assert_eq!(outcome, untraced);
            assert_eq!(event.pc, addr);
            assert_eq!(event.hit, outcome.hit);
            assert!(event.way.is_some(), "line resident after fetch");
            kinds.push(event.kind);
        }
        assert_eq!(plain.stats(), traced.stats(), "tracing is observation-only");
        // The cold fetch goes full-width (the way-hint starts
        // "normal"); the next fetch elides (same line); a new line
        // with the hint now set is a wp access; the final fetch hits a
        // non-WP page with the hint still set: mispredict.
        assert_eq!(
            kinds,
            vec![
                AccessKind::Full,
                AccessKind::SameLine,
                AccessKind::Wp,
                AccessKind::HintMispredict
            ]
        );
        // The event's tag count carries the energy-relevant quantity:
        // once the hint re-learns "wp", a wp access arms one tag.
        let (_, warm) = traced.fetch_traced(0x1080, true);
        assert_eq!(warm.kind, AccessKind::Full, "hint still says normal");
        let (_, event) = traced.fetch_traced(0x10C0, true);
        assert_eq!(event.kind, AccessKind::Wp);
        assert_eq!(event.tags, 1, "wp access arms one tag");
    }

    #[test]
    fn baseline_counts_full_searches() {
        let mut cache = baseline_cache();
        let miss = cache.fetch(0x1000, false);
        assert!(!miss.hit);
        assert_eq!(miss.cycles, 51);
        let hit = cache.fetch(0x1000, false);
        assert!(hit.hit);
        assert_eq!(hit.cycles, 1);
        let s = cache.stats();
        assert_eq!(s.fetches, 2);
        assert_eq!(s.tag_comparisons, 8, "4 ways on each of 2 accesses");
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.same_line_elisions, 0, "baseline has no elision");
    }

    #[test]
    fn figure_1_tag_comparison_counts() {
        // The paper's figure 1: a 2-set, 4-way cache, three fetches
        // (add @0x04, br @0x08, mul @0x20). Baseline: 12 comparisons.
        let geom = CacheGeometry::new(256, 4, 32);
        let mut base = InstructionCache::new(ICacheConfig::baseline(geom));
        // Pre-warm so all three fetches hit, as in the figure.
        for addr in [0x04, 0x08, 0x20] {
            base.fetch(addr, false);
        }
        let warm_tags = base.stats().tag_comparisons;
        for addr in [0x04, 0x08, 0x20] {
            base.fetch(addr, false);
        }
        assert_eq!(base.stats().tag_comparisons - warm_tags, 12);

        // Way-placement: 3 comparisons (one per fetch).
        let mut wp = InstructionCache::new(ICacheConfig {
            same_line_elision: false, // isolate the way effect, as the figure does
            ..ICacheConfig::way_placement(geom)
        });
        for addr in [0x04, 0x08, 0x20] {
            wp.fetch(addr, true);
        }
        let warm_tags = wp.stats().tag_comparisons;
        for addr in [0x04, 0x08, 0x20] {
            wp.fetch(addr, true);
        }
        assert_eq!(wp.stats().tag_comparisons - warm_tags, 3);
    }

    #[test]
    fn same_line_elision_skips_tags() {
        let mut cache = InstructionCache::new(ICacheConfig::way_placement(small_geom()));
        cache.fetch(0x1000, true); // miss
        cache.fetch(0x1004, true); // same line: elided
        cache.fetch(0x1008, true); // same line: elided
        let s = cache.stats();
        assert_eq!(s.same_line_elisions, 2);
        // Only the first fetch armed the CAM at all.
        assert!(s.tag_comparisons <= small_geom().ways() as u64);
    }

    #[test]
    fn way_placement_uses_single_tag_once_hint_warm() {
        let mut cache = InstructionCache::new(ICacheConfig {
            same_line_elision: false,
            ..ICacheConfig::way_placement(small_geom())
        });
        // First fetch: hint cold (predicts normal), full search, miss.
        cache.fetch(0x1000, true);
        let t0 = cache.stats().tag_comparisons;
        assert_eq!(t0, 4);
        assert_eq!(cache.stats().hint_false_normal, 1);
        // Second fetch to a different line in the WP area: hint warm.
        cache.fetch(0x1000 + 32, true);
        assert_eq!(cache.stats().tag_comparisons - t0, 1);
        assert_eq!(cache.stats().wp_accesses, 1);
    }

    #[test]
    fn wp_lines_fill_into_mapped_way() {
        let geom = small_geom();
        let mut cache = InstructionCache::new(ICacheConfig::way_placement(geom));
        // Fetch lines across the whole WP area (== cache size).
        let mut addr = 0;
        while addr < geom.size_bytes() {
            cache.fetch(addr, true);
            addr += geom.line_bytes();
        }
        assert!(cache.way_placement_invariant_holds(geom.size_bytes()));
        // All lines coexist: a cache-sized WP area is conflict-free.
        assert_eq!(cache.array().valid_lines() as u32, geom.sets() * geom.ways());
        // Re-fetching them all is all hits.
        let misses_before = cache.stats().misses;
        let mut addr = 0;
        while addr < geom.size_bytes() {
            cache.fetch(addr, true);
            addr += geom.line_bytes();
        }
        assert_eq!(cache.stats().misses, misses_before);
    }

    #[test]
    fn hint_false_wp_costs_a_cycle_and_full_access() {
        let mut cache = InstructionCache::new(ICacheConfig {
            same_line_elision: false,
            ..ICacheConfig::way_placement(small_geom())
        });
        cache.fetch(0x1000, true); // wp fetch, warms hint to "wp"
        cache.fetch(0x1000, true); // single-tag wp hit
        let tags = cache.stats().tag_comparisons;
        // Now a non-WP fetch arrives while the hint still says "wp".
        let out = cache.fetch(0x700, false);
        assert_eq!(cache.stats().hint_false_wp, 1);
        assert_eq!(cache.stats().penalty_cycles, 1);
        // 1 (speculative single way) + 4 (full re-access).
        assert_eq!(cache.stats().tag_comparisons - tags, 5);
        assert_eq!(out.cycles, 1 + 50 + 1, "miss + penalty cycle");
    }

    #[test]
    fn non_wp_fill_uses_replacement_policy() {
        let geom = small_geom();
        let mut cache = InstructionCache::new(ICacheConfig::way_placement(geom));
        // Non-WP lines mapping to one set fill successive ways.
        let stride = geom.way_span_bytes();
        for i in 0..4 {
            cache.fetch(0x10_0000 + i * stride, false);
        }
        assert_eq!(cache.array().valid_lines(), 4);
        // They all landed in the same set but different ways, so they
        // all still hit.
        let misses = cache.stats().misses;
        for i in 0..4 {
            cache.fetch(0x10_0000 + i * stride, false);
        }
        assert_eq!(cache.stats().misses, misses);
    }

    #[test]
    fn way_memoization_links_skip_tags() {
        let geom = small_geom();
        let mut cache = InstructionCache::new(ICacheConfig {
            same_line_elision: false, // isolate link behaviour
            ..ICacheConfig::way_memoization(geom)
        });
        // A two-line loop: A(last word) -> B(first word) -> A ...
        let a = 0x1000 + geom.line_bytes() - 4;
        let b = 0x1000 + geom.line_bytes();
        // Iteration 1: both miss, links get trained.
        cache.fetch(a, false);
        cache.fetch(b, false); // sequential crossing: trains next-line link of A
        cache.fetch(a, false); // non-sequential: trains slot link of B
        let tags_before = cache.stats().tag_comparisons;
        // Iteration 2+: links are valid, zero tag comparisons.
        for _ in 0..10 {
            cache.fetch(b, false);
            cache.fetch(a, false);
        }
        assert_eq!(cache.stats().tag_comparisons, tags_before);
        assert_eq!(cache.stats().link_hits, 20);
        assert!(cache.stats().link_updates >= 2);
    }

    #[test]
    fn way_memoization_links_die_with_eviction() {
        let geom = small_geom();
        let mut cache = InstructionCache::new(ICacheConfig {
            same_line_elision: false,
            ..ICacheConfig::way_memoization(geom)
        });
        let a = 0x1000 + geom.line_bytes() - 4;
        let b = 0x1000 + geom.line_bytes();
        cache.fetch(a, false);
        cache.fetch(b, false);
        cache.fetch(a, false);
        cache.fetch(b, false); // link hit
        let hits = cache.stats().link_hits;
        assert!(hits >= 1);
        // Evict b's set by filling 4 conflicting lines.
        let stride = geom.way_span_bytes();
        for i in 1..=4 {
            cache.fetch(b + i * stride, false);
        }
        // b may have been evicted; the a->b link must not fire stale.
        cache.fetch(a, false);
        let before = *cache.stats();
        let link_hits_before = before.link_hits;
        let out = cache.fetch(b, false);
        let after = cache.stats();
        if cache.array().lookup(b).is_none() {
            panic!("b should have been re-fetched");
        }
        // Either the fetch missed (b evicted, link dead) or it hit via
        // full search; it must never claim a link hit on a stale way.
        assert!(out.hit || after.misses > before.misses);
        if after.link_hits > link_hits_before {
            // A link hit is only legal if b was genuinely resident in
            // the linked way — which the probe guarantees.
            assert!(out.hit);
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut cache = baseline_cache();
        cache.fetch(0x1000, false);
        cache.reset();
        assert_eq!(cache.stats().fetches, 0);
        assert_eq!(cache.array().valid_lines(), 0);
        let out = cache.fetch(0x1000, false);
        assert!(!out.hit);
    }

    #[test]
    fn way_prediction_mru_hits_after_training() {
        let mut cache = InstructionCache::new(ICacheConfig {
            same_line_elision: false,
            ..ICacheConfig::way_prediction(small_geom())
        });
        // First access: mispredicts (cold), fills, learns the way.
        let first = cache.fetch(0x1000, false);
        assert!(!first.hit);
        assert_eq!(cache.stats().hint_false_wp, 1);
        let tags = cache.stats().tag_comparisons;
        // Repeats to the same set hit the MRU way with one comparison.
        for _ in 0..10 {
            assert!(cache.fetch(0x1000, false).hit);
        }
        assert_eq!(cache.stats().tag_comparisons - tags, 10);
        // A conflicting line in the same set retrains the predictor.
        let stride = small_geom().way_span_bytes();
        cache.fetch(0x1000 + stride, false);
        assert_eq!(cache.stats().hint_false_wp, 2);
        let tags = cache.stats().tag_comparisons;
        assert!(cache.fetch(0x1000 + stride, false).hit);
        assert_eq!(cache.stats().tag_comparisons - tags, 1, "retrained");
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(FetchScheme::Baseline.label(), "baseline");
        assert_eq!(FetchScheme::WayPlacement.label(), "way-placement");
        assert_eq!(FetchScheme::WayMemoization.label(), "way-memoization");
        assert_eq!(FetchScheme::WayPrediction.label(), "way-prediction");
    }
}
