//! The per-line reference fetch core, frozen for one PR.
//!
//! The live hierarchy ([`crate::MemorySystem`]) stores its cache and
//! TLB state in flat structure-of-arrays slabs for speed. This module
//! keeps the previous per-line-struct implementation alive, verbatim,
//! so the differential-equivalence harness
//! (`crates/mem/tests/soa_equivalence.rs`, `tests/fault_injection.rs`)
//! can drive both cores lock-step and assert bit-identical
//! [`FetchOutcome`]s, [`FetchStats`], energy and trace events across
//! every scheme, geometry and fault weave.
//!
//! **Lifetime: one PR.** Once the SoA core has shipped with a blessed
//! baseline regenerated on top of it, this module and the tests that
//! name it should be deleted; it is a migration scaffold, not an API.
//! It is `pub` (not `#[cfg(test)]`) only because integration tests and
//! the `perf_fetch` benchmark live outside the crate and cannot see
//! test-gated items.

use crate::fault::{FaultInjector, FaultKind, FaultStats};
use crate::icache::{FetchOutcome, FetchScheme, ICacheConfig};
use crate::rng::SplitMix64;
use crate::tlb::{TlbConfig, TlbOutcome};
use crate::{CacheGeometry, FetchStats, FetchTiming, MemoryConfig, ReplacementPolicy, TlbStats};
use wp_trace::{AccessKind, FetchEvent};

// ----- per-line CAM array (pre-SoA CamArray) ---------------------------

#[derive(Clone, Copy, Debug, Default)]
struct LineState {
    valid: bool,
    tag: u32,
    dirty: bool,
    last_use: u64,
}

/// Outcome of a reference-model fill (mirrors [`crate::FillOutcome`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RefFillOutcome {
    /// The way the new line was placed in.
    pub way: u32,
    /// Base address of the evicted line, if a valid line was displaced.
    pub evicted: Option<u32>,
    /// Whether the evicted line was dirty.
    pub evicted_dirty: bool,
}

/// The pre-SoA tag array: one `LineState` struct per (set, way) slot.
#[derive(Clone, Debug)]
pub struct RefCamArray {
    geom: CacheGeometry,
    policy: ReplacementPolicy,
    lines: Vec<LineState>,
    round_robin: Vec<u32>,
    rng: SplitMix64,
    tick: u64,
}

impl RefCamArray {
    /// Creates an empty array; `seed` only matters for
    /// [`ReplacementPolicy::Random`].
    #[must_use]
    pub fn new(geom: CacheGeometry, policy: ReplacementPolicy, seed: u64) -> RefCamArray {
        let slots = (geom.sets() * geom.ways()) as usize;
        RefCamArray {
            geom,
            policy,
            lines: vec![LineState::default(); slots],
            round_robin: vec![0; geom.sets() as usize],
            rng: SplitMix64::new(seed),
            tick: 0,
        }
    }

    /// The geometry this array was built with.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn slot(&self, set: u32, way: u32) -> usize {
        (set * self.geom.ways() + way) as usize
    }

    /// First-way-wins tag search; pure, no recency side effects.
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        (0..self.geom.ways()).find(|&way| {
            let line = &self.lines[self.slot(set, way)];
            line.valid && line.tag == tag
        })
    }

    /// Single-way probe: does `way` hold `addr`'s line?
    #[must_use]
    pub fn probe_way(&self, addr: u32, way: u32) -> bool {
        let set = self.geom.set_of(addr);
        let line = &self.lines[self.slot(set, way)];
        line.valid && line.tag == self.geom.tag_of(addr)
    }

    /// Records a use of (set, way) for LRU bookkeeping.
    pub fn touch(&mut self, addr: u32, way: u32) {
        self.tick += 1;
        let set = self.geom.set_of(addr);
        let slot = self.slot(set, way);
        self.lines[slot].last_use = self.tick;
    }

    /// Marks the line holding `addr` in `way` dirty.
    pub fn mark_dirty(&mut self, addr: u32, way: u32) {
        let set = self.geom.set_of(addr);
        let slot = self.slot(set, way);
        self.lines[slot].dirty = true;
    }

    /// Picks a victim way in `addr`'s set, preferring invalid ways.
    pub fn pick_victim(&mut self, addr: u32) -> u32 {
        let set = self.geom.set_of(addr);
        let ways = self.geom.ways();
        if let Some(way) = (0..ways).find(|&w| !self.lines[self.slot(set, w)].valid) {
            return way;
        }
        match self.policy {
            ReplacementPolicy::RoundRobin => {
                let way = self.round_robin[set as usize];
                self.round_robin[set as usize] = (way + 1) % ways;
                way
            }
            ReplacementPolicy::Lru => {
                (0..ways).min_by_key(|&w| self.lines[self.slot(set, w)].last_use).unwrap_or(0)
            }
            ReplacementPolicy::Random => self.rng.below(u64::from(ways)) as u32,
        }
    }

    /// Installs `addr`'s line into `way`, returning what was evicted.
    pub fn fill(&mut self, addr: u32, way: u32) -> RefFillOutcome {
        self.tick += 1;
        let set = self.geom.set_of(addr);
        let slot = self.slot(set, way);
        let old = self.lines[slot];
        let evicted = old.valid.then(|| self.geom.addr_of(old.tag, set));
        self.lines[slot] = LineState {
            valid: true,
            tag: self.geom.tag_of(addr),
            dirty: false,
            last_use: self.tick,
        };
        RefFillOutcome { way, evicted, evicted_dirty: old.valid && old.dirty }
    }

    /// Flips one stored tag bit; `true` when a valid line was corrupted.
    pub fn flip_tag_bit(&mut self, set: u32, way: u32, bit: u32) -> bool {
        let slot = self.slot(set % self.geom.sets(), way % self.geom.ways());
        let line = &mut self.lines[slot];
        if !line.valid {
            return false;
        }
        line.tag ^= 1 << (bit % self.geom.tag_bits());
        true
    }

    /// Invalidates every line.
    pub fn invalidate_all(&mut self) {
        for line in &mut self.lines {
            *line = LineState::default();
        }
        self.round_robin.fill(0);
        self.tick = 0;
    }

    /// Number of currently valid lines.
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Base address and (set, way) of every resident line.
    pub fn resident_lines(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        let geom = self.geom;
        let ways = geom.ways();
        self.lines.iter().enumerate().filter(|(_, l)| l.valid).map(move |(i, l)| {
            let set = i as u32 / ways;
            let way = i as u32 % ways;
            (geom.addr_of(l.tag, set), set, way)
        })
    }
}

// ----- per-line instruction cache (pre-SoA InstructionCache) -----------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Link {
    target_line: u32,
    way: u32,
}

type LineLinks = Vec<Option<Link>>;

#[derive(Clone, Copy, Debug)]
struct PrevFetch {
    addr: u32,
    set: u32,
    way: u32,
    slot: u32,
}

/// The pre-SoA instruction cache: nested `Vec<Vec<Option<Link>>>` link
/// storage and per-line structs in the tag array.
#[derive(Clone, Debug)]
pub struct RefInstructionCache {
    config: ICacheConfig,
    array: RefCamArray,
    stats: FetchStats,
    last_line: Option<u32>,
    way_hint: bool,
    links: Vec<LineLinks>,
    prev_fetch: Option<PrevFetch>,
    mru_way: Vec<u32>,
}

impl RefInstructionCache {
    /// Creates an empty reference instruction cache.
    #[must_use]
    pub fn new(config: ICacheConfig) -> RefInstructionCache {
        let geom = config.geometry;
        let slots = (geom.sets() * geom.ways()) as usize;
        let links_per_line = geom.words_per_line() as usize + 1;
        RefInstructionCache {
            config,
            array: RefCamArray::new(geom, config.replacement, 0x1cac4e),
            stats: FetchStats::new(),
            last_line: None,
            way_hint: false,
            links: vec![vec![None; links_per_line]; slots],
            prev_fetch: None,
            mru_way: vec![0; geom.sets() as usize],
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ICacheConfig {
        &self.config
    }

    /// Accumulated event counters.
    #[must_use]
    pub fn stats(&self) -> &FetchStats {
        &self.stats
    }

    /// Resets all state (tags, links, hint, stats).
    pub fn reset(&mut self) {
        self.array.invalidate_all();
        self.stats = FetchStats::new();
        self.last_line = None;
        self.way_hint = false;
        for line in &mut self.links {
            line.fill(None);
        }
        self.prev_fetch = None;
        self.mru_way.fill(0);
    }

    /// Fetches the instruction at `addr` (see
    /// [`crate::InstructionCache::fetch`]).
    pub fn fetch(&mut self, addr: u32, wp_page: bool) -> FetchOutcome {
        let geom = self.config.geometry;
        self.stats.fetches += 1;
        let line = geom.line_addr(addr);

        if self.config.same_line_elision && self.last_line == Some(line) {
            self.stats.same_line_elisions += 1;
            self.stats.hits += 1;
            self.stats.data_reads += 1;
            self.record_prev(addr);
            return FetchOutcome { hit: true, cycles: 1 };
        }

        let outcome = match self.config.scheme {
            FetchScheme::Baseline => self.fetch_baseline(addr),
            FetchScheme::WayPlacement => self.fetch_way_placement(addr, wp_page),
            FetchScheme::WayMemoization => self.fetch_way_memoization(addr),
            FetchScheme::WayPrediction => self.fetch_way_prediction(addr),
        };
        self.last_line = Some(line);
        self.record_prev(addr);
        outcome
    }

    /// [`fetch`](RefInstructionCache::fetch) plus the classified event.
    pub fn fetch_traced(&mut self, addr: u32, wp_page: bool) -> (FetchOutcome, FetchEvent) {
        let before = self.stats;
        let outcome = self.fetch(addr, wp_page);
        let delta = self.stats.delta(&before);
        let event = FetchEvent {
            pc: addr,
            cycle: 0,
            kind: ref_access_kind_of(&delta),
            way: self.resolved_way(addr),
            hit: outcome.hit,
            tags: delta.tag_comparisons.min(u64::from(u16::MAX)) as u16,
            fill: delta.line_fills > 0,
            link_update: delta.link_updates > 0,
            link_invalidation: delta.link_invalidations > 0,
        };
        (outcome, event)
    }

    /// The way `addr`'s line currently resides in, if resident.
    #[must_use]
    pub fn resolved_way(&self, addr: u32) -> Option<u8> {
        self.array.lookup(addr).map(|way| way.min(u32::from(u8::MAX)) as u8)
    }

    fn record_prev(&mut self, addr: u32) {
        if self.config.scheme != FetchScheme::WayMemoization {
            return;
        }
        let geom = self.config.geometry;
        let way = self.array.lookup(addr).unwrap_or(0);
        self.prev_fetch =
            Some(PrevFetch { addr, set: geom.set_of(addr), way, slot: geom.slot_of(addr) });
    }

    fn full_search(&mut self, addr: u32) -> Option<u32> {
        let ways = self.config.geometry.ways() as u64;
        self.stats.tag_comparisons += ways;
        self.stats.matchline_precharges += ways;
        self.array.lookup(addr)
    }

    fn fetch_baseline(&mut self, addr: u32) -> FetchOutcome {
        match self.full_search(addr) {
            Some(way) => {
                self.hit(addr, way);
                FetchOutcome { hit: true, cycles: 1 }
            }
            None => {
                let way = self.array.pick_victim(addr);
                self.miss_fill(addr, way);
                FetchOutcome { hit: false, cycles: 1 + self.config.miss_latency }
            }
        }
    }

    fn hit(&mut self, addr: u32, way: u32) {
        self.stats.hits += 1;
        self.stats.data_reads += 1;
        self.array.touch(addr, way);
    }

    fn miss_fill(&mut self, addr: u32, way: u32) {
        self.stats.misses += 1;
        self.stats.line_fills += 1;
        self.stats.data_reads += 1;
        self.stats.miss_stall_cycles += u64::from(self.config.miss_latency);
        let outcome = self.array.fill(addr, way);
        if self.config.scheme == FetchScheme::WayMemoization {
            let slot =
                (self.config.geometry.set_of(addr) * self.config.geometry.ways() + way) as usize;
            self.links[slot].fill(None);
            if outcome.evicted.is_some() {
                self.stats.link_invalidations += 1;
            }
        }
        self.last_line = None;
    }

    fn fetch_way_placement(&mut self, addr: u32, wp_page: bool) -> FetchOutcome {
        let geom = self.config.geometry;
        let hint_wp = self.way_hint;
        self.way_hint = wp_page;

        if hint_wp {
            self.stats.tag_comparisons += 1;
            self.stats.matchline_precharges += 1;
            let way = geom.placement_way(addr);
            if wp_page {
                self.stats.wp_accesses += 1;
                if self.array.probe_way(addr, way) {
                    self.hit(addr, way);
                    FetchOutcome { hit: true, cycles: 1 }
                } else {
                    self.miss_fill(addr, way);
                    FetchOutcome { hit: false, cycles: 1 + self.config.miss_latency }
                }
            } else {
                self.stats.hint_false_wp += 1;
                self.stats.penalty_cycles += 1;
                let mut outcome = match self.full_search(addr) {
                    Some(way) => {
                        self.hit(addr, way);
                        FetchOutcome { hit: true, cycles: 1 }
                    }
                    None => {
                        let way = self.array.pick_victim(addr);
                        self.miss_fill(addr, way);
                        FetchOutcome { hit: false, cycles: 1 + self.config.miss_latency }
                    }
                };
                outcome.cycles += 1;
                outcome
            }
        } else {
            if wp_page {
                self.stats.hint_false_normal += 1;
            }
            match self.full_search(addr) {
                Some(way) => {
                    self.hit(addr, way);
                    FetchOutcome { hit: true, cycles: 1 }
                }
                None => {
                    let way = if wp_page {
                        geom.placement_way(addr)
                    } else {
                        self.array.pick_victim(addr)
                    };
                    self.miss_fill(addr, way);
                    FetchOutcome { hit: false, cycles: 1 + self.config.miss_latency }
                }
            }
        }
    }

    fn link_index(&self, set: u32, way: u32) -> usize {
        (set * self.config.geometry.ways() + way) as usize
    }

    fn latched_link(&self, prev: &PrevFetch, addr: u32) -> (usize, usize) {
        let sequential = addr == prev.addr.wrapping_add(4);
        let slot = if sequential {
            self.config.geometry.words_per_line() as usize
        } else {
            prev.slot as usize
        };
        (self.link_index(prev.set, prev.way), slot)
    }

    fn fetch_way_memoization(&mut self, addr: u32) -> FetchOutcome {
        let geom = self.config.geometry;
        let line = geom.line_addr(addr);

        if let Some(prev) = self.prev_fetch {
            if self.array.probe_way(prev.addr, prev.way) {
                let (index, slot) = self.latched_link(&prev, addr);
                if let Some(link) = self.links[index][slot] {
                    if link.target_line == line && self.array.probe_way(addr, link.way) {
                        self.stats.link_hits += 1;
                        self.hit(addr, link.way);
                        return FetchOutcome { hit: true, cycles: 1 };
                    }
                }
            }
        }

        let (hit, way, cycles) = match self.full_search(addr) {
            Some(way) => {
                self.hit(addr, way);
                (true, way, 1)
            }
            None => {
                let way = self.array.pick_victim(addr);
                self.miss_fill(addr, way);
                (false, way, 1 + self.config.miss_latency)
            }
        };
        if let Some(prev) = self.prev_fetch {
            if self.array.probe_way(prev.addr, prev.way) {
                let (index, slot) = self.latched_link(&prev, addr);
                self.links[index][slot] = Some(Link { target_line: line, way });
                self.stats.link_updates += 1;
            }
        }
        FetchOutcome { hit, cycles }
    }

    fn fetch_way_prediction(&mut self, addr: u32) -> FetchOutcome {
        let set = self.config.geometry.set_of(addr) as usize;
        let predicted = self.mru_way[set];
        self.stats.tag_comparisons += 1;
        self.stats.matchline_precharges += 1;
        if self.array.probe_way(addr, predicted) {
            self.stats.wp_accesses += 1;
            self.hit(addr, predicted);
            return FetchOutcome { hit: true, cycles: 1 };
        }
        self.stats.hint_false_wp += 1;
        self.stats.penalty_cycles += 1;
        let mut outcome = match self.full_search(addr) {
            Some(way) => {
                self.mru_way[set] = way;
                self.hit(addr, way);
                FetchOutcome { hit: true, cycles: 1 }
            }
            None => {
                let way = self.array.pick_victim(addr);
                self.miss_fill(addr, way);
                self.mru_way[set] = way;
                FetchOutcome { hit: false, cycles: 1 + self.config.miss_latency }
            }
        };
        outcome.cycles += 1;
        outcome
    }

    /// Way-placement residency invariant (tests).
    #[must_use]
    pub fn way_placement_invariant_holds(&self, wp_limit: u32) -> bool {
        let geom = self.config.geometry;
        self.array
            .resident_lines()
            .filter(|&(addr, _, _)| addr < wp_limit)
            .all(|(addr, _, way)| geom.placement_way(addr) == way)
    }

    /// Read-only view of the tag array.
    #[must_use]
    pub fn array(&self) -> &RefCamArray {
        &self.array
    }

    /// Toggles the global way-hint bit (fault injection).
    pub fn invert_way_hint(&mut self) {
        self.way_hint = !self.way_hint;
    }

    /// Flips one stored tag bit (fault injection); also forgets the
    /// same-line shortcut and the memoization anchor.
    pub fn corrupt_tag_bit(&mut self, set: u32, way: u32, bit: u32) -> bool {
        let corrupted = self.array.flip_tag_bit(set, way, bit);
        if corrupted {
            self.last_line = None;
            self.prev_fetch = None;
        }
        corrupted
    }
}

fn ref_access_kind_of(delta: &FetchStats) -> AccessKind {
    if delta.same_line_elisions > 0 {
        AccessKind::SameLine
    } else if delta.link_hits > 0 {
        AccessKind::LinkHit
    } else if delta.hint_false_wp > 0 {
        AccessKind::HintMispredict
    } else if delta.wp_accesses > 0 {
        AccessKind::Wp
    } else {
        AccessKind::Full
    }
}

// ----- per-line TLB (pre-SoA Tlb) --------------------------------------

#[derive(Clone, Copy, Debug)]
struct RefTlbEntry {
    vpn: u32,
    wp: bool,
}

/// The pre-SoA fully-associative TLB: `Vec<Option<Entry>>` storage with
/// a linear scan per lookup.
#[derive(Clone, Debug)]
pub struct RefTlb {
    config: TlbConfig,
    entries: Vec<Option<RefTlbEntry>>,
    next_victim: usize,
    wp_limit: u32,
    stats: TlbStats,
}

impl RefTlb {
    /// Creates an empty TLB; see [`crate::Tlb::new`].
    ///
    /// # Panics
    ///
    /// Panics if `wp_limit` is not page-aligned.
    #[must_use]
    pub fn new(config: TlbConfig, wp_limit: u32) -> RefTlb {
        assert!(
            wp_limit.is_multiple_of(config.page_bytes),
            "way-placement limit {wp_limit:#x} is not page-aligned"
        );
        RefTlb {
            config,
            entries: vec![None; config.entries as usize],
            next_victim: 0,
            wp_limit,
            stats: TlbStats::new(),
        }
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Flushes all entries.
    pub fn flush(&mut self) {
        self.entries.fill(None);
        self.next_victim = 0;
    }

    /// Resets entries and counters.
    pub fn reset(&mut self) {
        self.flush();
        self.stats = TlbStats::new();
    }

    /// Looks up `addr`, filling on a miss.
    pub fn lookup(&mut self, addr: u32) -> TlbOutcome {
        self.stats.lookups += 1;
        let vpn = addr >> self.config.page_bits();
        if let Some(entry) = self.entries.iter().flatten().find(|e| e.vpn == vpn) {
            return TlbOutcome { wp: entry.wp, miss: false, stall_cycles: 0 };
        }
        self.stats.misses += 1;
        self.stats.miss_stall_cycles += u64::from(self.config.miss_penalty);
        let page_base = vpn << self.config.page_bits();
        let wp = page_base.saturating_add(self.config.page_bytes) <= self.wp_limit;
        let victim = self.next_victim;
        self.next_victim = (self.next_victim + 1) % self.entries.len();
        self.entries[victim] = Some(RefTlbEntry { vpn, wp });
        TlbOutcome { wp, miss: true, stall_cycles: self.config.miss_penalty }
    }
}

// ----- fetch-side hierarchy (pre-SoA MemorySystem) ---------------------

/// The fetch side of the pre-SoA [`crate::MemorySystem`]: I-cache,
/// I-TLB and the fault weave, with the same `fetch` / `fetch_traced`
/// accounting. The data side is untouched by the SoA rewrite's fetch
/// path and is not mirrored here.
#[derive(Clone, Debug)]
pub struct RefMemorySystem {
    config: MemoryConfig,
    icache: RefInstructionCache,
    itlb: RefTlb,
    fault: Option<FaultInjector>,
}

impl RefMemorySystem {
    /// Builds the reference fetch hierarchy from a configuration.
    #[must_use]
    pub fn new(config: MemoryConfig) -> RefMemorySystem {
        let wp_limit =
            if config.icache.scheme == FetchScheme::WayPlacement { config.wp_limit } else { 0 };
        RefMemorySystem {
            config,
            icache: RefInstructionCache::new(config.icache),
            itlb: RefTlb::new(config.itlb, wp_limit),
            fault: config.fault.map(FaultInjector::new),
        }
    }

    /// The fault-injection and I-TLB half of a fetch — the exact weave
    /// order of the live core's `pre_fetch`.
    fn pre_fetch(&mut self, addr: u32) -> TlbOutcome {
        if let Some(injector) = self.fault.as_mut() {
            if injector.fires(FaultKind::TagBitFlip) {
                let geom = self.icache.config().geometry;
                let set = injector.draw(geom.sets());
                let way = injector.draw(geom.ways());
                let bit = injector.draw(geom.tag_bits());
                if self.icache.corrupt_tag_bit(set, way, bit) {
                    injector.note_tag_bit_flip();
                }
            }
            if injector.fires(FaultKind::HintInversion) {
                self.icache.invert_way_hint();
                injector.note_hint_inversion();
            }
        }
        let mut tlb = self.itlb.lookup(addr);
        if let Some(injector) = self.fault.as_mut() {
            if injector.fires(FaultKind::StaleWpBit) {
                tlb.wp = !tlb.wp;
                injector.note_wp_bit_flip();
            }
        }
        tlb
    }

    /// Fetches the instruction at `addr` (see
    /// [`crate::MemorySystem::fetch`]).
    pub fn fetch(&mut self, addr: u32) -> FetchTiming {
        let tlb = self.pre_fetch(addr);
        let fetch = self.icache.fetch(addr, tlb.wp);
        FetchTiming { hit: fetch.hit, cycles: fetch.cycles + tlb.stall_cycles }
    }

    /// [`fetch`](RefMemorySystem::fetch) plus a classified event.
    pub fn fetch_traced(&mut self, addr: u32) -> (FetchTiming, FetchEvent) {
        let tlb = self.pre_fetch(addr);
        let (fetch, event) = self.icache.fetch_traced(addr, tlb.wp);
        (FetchTiming { hit: fetch.hit, cycles: fetch.cycles + tlb.stall_cycles }, event)
    }

    /// Instruction-fetch counters.
    #[must_use]
    pub fn fetch_stats(&self) -> &FetchStats {
        self.icache.stats()
    }

    /// I-TLB counters.
    #[must_use]
    pub fn itlb_stats(&self) -> &TlbStats {
        self.itlb.stats()
    }

    /// Injected-fault counters.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| *f.stats()).unwrap_or_default()
    }

    /// The reference instruction cache (invariant checks).
    #[must_use]
    pub fn icache(&self) -> &RefInstructionCache {
        &self.icache
    }

    /// Resets all fetch-side state, counters and the fault stream.
    pub fn reset(&mut self) {
        self.icache.reset();
        self.itlb.reset();
        self.fault = self.config.fault.map(FaultInjector::new);
    }
}

// Keep the frozen core honest: the unit tests below pin the handful of
// behaviours the differential harness leans on hardest.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    #[test]
    fn ref_core_matches_paper_figure_1_counts() {
        let geom = CacheGeometry::new(256, 4, 32);
        let mut cache = RefInstructionCache::new(ICacheConfig::baseline(geom));
        for addr in [0x04, 0x08, 0x20] {
            cache.fetch(addr, false);
        }
        let warm = cache.stats().tag_comparisons;
        for addr in [0x04, 0x08, 0x20] {
            cache.fetch(addr, false);
        }
        assert_eq!(cache.stats().tag_comparisons - warm, 12);
    }

    #[test]
    fn ref_fetch_charges_tlb_fill_once() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let mut mem = RefMemorySystem::new(MemoryConfig::baseline(geom));
        let first = mem.fetch(0x8000);
        assert!(!first.hit);
        assert!(first.cycles > 50);
        let second = mem.fetch(0x8000);
        assert!(second.hit);
        assert_eq!(second.cycles, 1);
        assert_eq!(mem.itlb_stats().misses, 1);
    }

    #[test]
    fn ref_fault_stream_is_deterministic() {
        let geom = CacheGeometry::new(2048, 4, 32);
        let run = || {
            let cfg = MemoryConfig::way_placement(geom, 0x8000, 2048)
                .with_fault(FaultConfig::all(7, 100_000));
            let mut mem = RefMemorySystem::new(cfg);
            let mut cycles = 0u64;
            for i in 0..2000u32 {
                cycles += u64::from(mem.fetch(0x8000 + (i % 64) * 4).cycles);
            }
            (cycles, mem.fault_stats())
        };
        assert_eq!(run(), run());
        assert!(run().1.total() > 0);
    }
}
