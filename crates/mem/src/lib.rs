//! # wp-mem — the XScale-style memory hierarchy
//!
//! Cache, TLB and way-placement hardware models for the *compiler
//! way-placement* reproduction (Jones et al., DATE 2008).
//!
//! The crate models the energy-relevant microarchitecture of an Intel
//! XScale-class embedded core:
//!
//! * [`CacheGeometry`] — sizes, associativity and the tag-bit way mapping
//!   of figure 3;
//! * [`CamArray`] — the CAM-tagged, set-per-sub-bank line store shared by
//!   both caches, with round-robin / LRU / random replacement;
//! * [`InstructionCache`] — the fetch engine, switchable between the
//!   [`FetchScheme::Baseline`] full search, the paper's
//!   [`FetchScheme::WayPlacement`] (one tag comparison per fetch, global
//!   way-hint bit, same-line elision) and the
//!   [`FetchScheme::WayMemoization`] comparison scheme of Ma et al.;
//! * [`DataCache`] — write-back, write-allocate data side;
//! * [`Tlb`] — fully-associative TLBs; the I-TLB carries the per-page
//!   **way-placement bit** that the OS model writes on each fill;
//! * [`MemorySystem`] — the assembled hierarchy the pipeline simulator
//!   drives.
//!
//! Every energy-relevant micro-event (tag comparisons, match-line
//! precharges, data reads, line fills, link updates, ...) is counted in
//! [`FetchStats`] / [`DCacheStats`] / [`TlbStats`]; the `wp-energy` crate
//! prices those events.
//!
//! ## Example
//!
//! ```
//! use wp_mem::{CacheGeometry, MemoryConfig, MemorySystem};
//!
//! // The paper's initial evaluation: 32 KB, 32-way cache, 32 KB WP area.
//! let geom = CacheGeometry::xscale_icache();
//! let mut mem = MemorySystem::new(MemoryConfig::way_placement(geom, 0x8000, 32 * 1024));
//! for _ in 0..100 {
//!     mem.fetch(0x8000);
//!     mem.fetch(0x8004);
//! }
//! // Way-placed, same-line and hinted fetches need far fewer than
//! // `ways` tag comparisons per fetch.
//! assert!(mem.fetch_stats().tags_per_fetch() < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod cam;
mod dcache;
mod detect;
mod fault;
mod geometry;
mod hierarchy;
mod icache;
pub mod rng;
mod stats;
mod tlb;

pub use cam::{CamArray, FillOutcome, ReplacementPolicy};
pub use dcache::{DCacheConfig, DataCache, DataOutcome};
pub use detect::{DetectedFault, DetectionStats};
pub use fault::{FaultConfig, FaultInjector, FaultKind, FaultStats};
pub use geometry::{CacheGeometry, GeometryShifts};
pub use hierarchy::{FetchTiming, MemoryConfig, MemorySystem};
pub use icache::{FetchOutcome, FetchScheme, ICacheConfig, InstructionCache};
pub use stats::{DCacheStats, FetchStats, TlbStats};
pub use tlb::{Tlb, TlbConfig, TlbOutcome};
// Telemetry vocabulary (re-exported so cache users need not name
// `wp-trace` directly for the common case).
pub use wp_trace::{AccessKind, FetchEvent};
