//! The data cache: a write-back, write-allocate CAM cache in the XScale
//! style, with the write buffer of the paper's Table 1 — dirty evictions
//! drain to memory in the background and only stall the pipeline when
//! the buffer is full. (The read-side fill buffer is subsumed by the
//! fixed miss latency in this blocking model.) The data side is
//! untouched by way-placement (the technique is I-cache only), but its
//! accesses contribute to total processor energy and therefore to the
//! ED product.

use std::collections::VecDeque;

use crate::cam::{CamArray, ReplacementPolicy};
use crate::{CacheGeometry, DCacheStats};

/// Data cache configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DCacheConfig {
    /// Geometry of the cache.
    pub geometry: CacheGeometry,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Cycles to fill a line from memory on a miss (Table 1: 50).
    pub miss_latency: u32,
    /// Extra cycles when the victim is dirty and must be written back
    /// through the write buffer before the fill completes.
    pub writeback_latency: u32,
    /// Write-buffer entries (Table 1); dirty evictions only stall when
    /// all entries are draining.
    pub write_buffer_entries: u32,
}

impl DCacheConfig {
    /// The XScale's 32 KB, 32-way data cache.
    #[must_use]
    pub fn xscale() -> DCacheConfig {
        DCacheConfig {
            geometry: CacheGeometry::new(32 * 1024, 32, 32),
            replacement: ReplacementPolicy::RoundRobin,
            miss_latency: 50,
            writeback_latency: 8,
            write_buffer_entries: 4,
        }
    }
}

/// Outcome of a data access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DataOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Cycles beyond the pipeline's base load-use latency.
    pub stall_cycles: u32,
}

/// The data cache model (placement and timing; contents live in the
/// functional memory).
#[derive(Clone, Debug)]
pub struct DataCache {
    config: DCacheConfig,
    array: CamArray,
    stats: DCacheStats,
    /// Cycle numbers at which in-flight writebacks finish draining.
    write_buffer: VecDeque<u64>,
}

impl DataCache {
    /// Creates an empty data cache.
    #[must_use]
    pub fn new(config: DCacheConfig) -> DataCache {
        DataCache {
            config,
            array: CamArray::new(config.geometry, config.replacement, 0xdca4e),
            stats: DCacheStats::new(),
            write_buffer: VecDeque::new(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DCacheConfig {
        &self.config
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> &DCacheStats {
        &self.stats
    }

    /// Resets tags, counters and the write buffer.
    pub fn reset(&mut self) {
        self.array.invalidate_all();
        self.stats = DCacheStats::new();
        self.write_buffer.clear();
    }

    /// Enqueues a writeback at cycle `now`; returns the stall, which is
    /// zero unless every write-buffer entry is still draining.
    fn enqueue_writeback(&mut self, now: u64) -> u32 {
        while self.write_buffer.front().is_some_and(|&done| done <= now) {
            self.write_buffer.pop_front();
        }
        let mut stall = 0u32;
        let mut start = now;
        if self.write_buffer.len() >= self.config.write_buffer_entries as usize {
            if let Some(front) = self.write_buffer.pop_front() {
                stall = (front - now) as u32;
                start = front;
            }
        }
        let last = self.write_buffer.back().copied().unwrap_or(start).max(start);
        self.write_buffer.push_back(last + u64::from(self.config.writeback_latency));
        stall
    }

    /// [`DataCache::access_at`] with an ever-advancing internal clock —
    /// for tests and trace tools that have no pipeline clock.
    pub fn access(&mut self, addr: u32, write: bool) -> DataOutcome {
        let now = self.stats.miss_stall_cycles + self.stats.accesses();
        self.access_at(addr, write, now)
    }

    /// Performs a load (`write == false`) or store (`write == true`) of
    /// any width at `addr`, at pipeline cycle `now` (which paces the
    /// write buffer's background drain).
    pub fn access_at(&mut self, addr: u32, write: bool, now: u64) -> DataOutcome {
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.stats.tag_comparisons += u64::from(self.config.geometry.ways());
        self.stats.data_accesses += 1;
        match self.array.lookup(addr) {
            Some(way) => {
                self.stats.hits += 1;
                self.array.touch(addr, way);
                if write {
                    self.array.mark_dirty(addr, way);
                }
                DataOutcome { hit: true, stall_cycles: 0 }
            }
            None => {
                self.stats.misses += 1;
                self.stats.line_fills += 1;
                let way = self.array.pick_victim(addr);
                let outcome = self.array.fill(addr, way);
                let mut stall = self.config.miss_latency;
                if outcome.evicted_dirty {
                    self.stats.writebacks += 1;
                    stall += self.enqueue_writeback(now + u64::from(stall));
                }
                if write {
                    // Write-allocate: the line is filled then written.
                    self.array.mark_dirty(addr, way);
                }
                self.stats.miss_stall_cycles += u64::from(stall);
                DataOutcome { hit: false, stall_cycles: stall }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DCacheConfig {
        DCacheConfig {
            geometry: CacheGeometry::new(1024, 4, 32),
            replacement: ReplacementPolicy::RoundRobin,
            miss_latency: 50,
            writeback_latency: 8,
            write_buffer_entries: 2,
        }
    }

    #[test]
    fn read_miss_then_hit() {
        let mut cache = DataCache::new(small());
        let miss = cache.access(0x2000, false);
        assert!(!miss.hit);
        assert_eq!(miss.stall_cycles, 50);
        let hit = cache.access(0x2000, false);
        assert!(hit.hit);
        assert_eq!(hit.stall_cycles, 0);
        assert_eq!(cache.stats().reads, 2);
        assert_eq!(cache.stats().line_fills, 1);
    }

    #[test]
    fn write_buffer_absorbs_isolated_writebacks() {
        let mut cache = DataCache::new(small());
        cache.access_at(0x2000, true, 0);
        assert_eq!(cache.stats().writebacks, 0);
        // Evict the dirty line: the buffer has room, so the fill pays
        // only the miss latency.
        let stride = 8 * 32; // sets * line = 256 B
        let mut max_stall = 0;
        for i in 1..=4u32 {
            let out = cache.access_at(0x2000 + i * stride, false, 1000 + u64::from(i));
            max_stall = max_stall.max(out.stall_cycles);
        }
        assert_eq!(cache.stats().writebacks, 1);
        assert_eq!(max_stall, 50, "buffered writeback must not stall");
        // Clean evictions don't write back.
        for i in 5..=8u32 {
            cache.access_at(0x2000 + i * stride, false, 2000 + u64::from(i));
        }
        assert_eq!(cache.stats().writebacks, 1);
    }

    #[test]
    fn write_buffer_stalls_when_full() {
        let mut cache = DataCache::new(small());
        let stride = 8 * 32;
        // Dirty many lines in one set (the second four evict the dirty
        // first four), then evict back-to-back at one instant: two
        // writebacks buffer for free, later ones must wait.
        for i in 0..8u32 {
            cache.access_at(0x2000 + i * stride, true, u64::from(i));
        }
        assert_eq!(cache.stats().writebacks, 4);
        let mut stalls = Vec::new();
        for i in 8..16u32 {
            let out = cache.access_at(0x2000 + i * stride, true, 100);
            stalls.push(out.stall_cycles);
        }
        assert_eq!(cache.stats().writebacks, 12);
        assert!(stalls.iter().take(2).all(|&s| s == 50), "{stalls:?}");
        assert!(stalls.iter().skip(2).any(|&s| s > 50), "{stalls:?}");
    }

    #[test]
    fn stats_track_tag_energy() {
        let mut cache = DataCache::new(small());
        cache.access(0x2000, false);
        cache.access(0x2000, true);
        assert_eq!(cache.stats().tag_comparisons, 8, "4 ways x 2 accesses");
        assert_eq!(cache.stats().data_accesses, 2);
    }

    #[test]
    fn reset_clears() {
        let mut cache = DataCache::new(small());
        cache.access(0x2000, true);
        cache.reset();
        assert_eq!(cache.stats().accesses(), 0);
        assert!(!cache.access(0x2000, false).hit);
        // The re-filled line is clean: no writeback on later eviction.
        assert_eq!(cache.stats().writebacks, 0);
    }
}
