//! Cache geometry: sizes, associativity and address slicing.
//!
//! The XScale organises its caches as CAM-tagged sub-banks, one per set,
//! each holding all the ways of that set (Zhang et al., Koolchips 2000).
//! Way-placement exploits that organisation: for code inside the
//! way-placement area, the way index is simply the low bits of the
//! address *tag* (figure 3 of the paper), so one address maps to exactly
//! one (set, way) slot.

use std::fmt;

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use wp_mem::CacheGeometry;
/// let geom = CacheGeometry::new(32 * 1024, 32, 32); // the XScale I-cache
/// assert_eq!(geom.sets(), 32);
/// assert_eq!(geom.tag_bits(), 32 - 5 - 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheGeometry {
    size_bytes: u32,
    ways: u32,
    line_bytes: u32,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes`, `ways` and `line_bytes` are powers of
    /// two with `size_bytes >= ways * line_bytes`.
    #[must_use]
    pub fn new(size_bytes: u32, ways: u32, line_bytes: u32) -> CacheGeometry {
        assert!(size_bytes.is_power_of_two(), "cache size must be a power of two");
        assert!(ways.is_power_of_two(), "associativity must be a power of two");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(
            size_bytes >= ways * line_bytes,
            "cache of {size_bytes} B cannot hold {ways} ways of {line_bytes} B lines"
        );
        CacheGeometry { size_bytes, ways, line_bytes }
    }

    /// The XScale's 32 KB, 32-way, 32 B-line instruction cache (Table 1).
    #[must_use]
    pub fn xscale_icache() -> CacheGeometry {
        CacheGeometry::new(32 * 1024, 32, 32)
    }

    /// Total capacity in bytes.
    #[must_use]
    pub const fn size_bytes(self) -> u32 {
        self.size_bytes
    }

    /// Associativity.
    #[must_use]
    pub const fn ways(self) -> u32 {
        self.ways
    }

    /// Line size in bytes.
    #[must_use]
    pub const fn line_bytes(self) -> u32 {
        self.line_bytes
    }

    /// Number of sets.
    #[must_use]
    pub const fn sets(self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// log2 of the line size (the byte-offset field width).
    #[must_use]
    pub fn offset_bits(self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// log2 of the set count (the index field width).
    #[must_use]
    pub fn index_bits(self) -> u32 {
        self.sets().trailing_zeros()
    }

    /// Width of the stored tag.
    #[must_use]
    pub fn tag_bits(self) -> u32 {
        32 - self.index_bits() - self.offset_bits()
    }

    /// The set index of an address.
    #[must_use]
    pub fn set_of(self, addr: u32) -> u32 {
        (addr >> self.offset_bits()) & (self.sets() - 1)
    }

    /// The tag of an address.
    #[must_use]
    pub fn tag_of(self, addr: u32) -> u32 {
        addr >> (self.offset_bits() + self.index_bits())
    }

    /// The line-aligned base address.
    #[must_use]
    pub fn line_addr(self, addr: u32) -> u32 {
        addr & !(self.line_bytes - 1)
    }

    /// The word slot within the line (instruction fetch granularity).
    #[must_use]
    pub fn slot_of(self, addr: u32) -> u32 {
        (addr & (self.line_bytes - 1)) / 4
    }

    /// Instructions (32-bit words) per line.
    #[must_use]
    pub const fn words_per_line(self) -> u32 {
        self.line_bytes / 4
    }

    /// Bytes covered by one way across all sets — the granularity at
    /// which the way-placement area fills successive ways.
    #[must_use]
    pub const fn way_span_bytes(self) -> u32 {
        self.sets() * self.line_bytes
    }

    /// The way-placement way of an address: the least significant bits of
    /// the tag select the way (figure 3 of the paper).
    #[must_use]
    pub fn placement_way(self, addr: u32) -> u32 {
        self.tag_of(addr) & (self.ways - 1)
    }

    /// Reconstructs the line base address from a (tag, set) pair.
    #[must_use]
    pub fn addr_of(self, tag: u32, set: u32) -> u32 {
        (tag << (self.offset_bits() + self.index_bits())) | (set << self.offset_bits())
    }

    /// Precomputes the address-slicing constants for a hot loop.
    ///
    /// Every accessor on [`CacheGeometry`] re-derives its shift or mask
    /// (including a division for [`sets`](CacheGeometry::sets)); the
    /// fetch cores instead hoist this struct once at construction so
    /// the per-fetch path is pure shift/mask arithmetic.
    #[must_use]
    pub fn shifts(self) -> GeometryShifts {
        GeometryShifts {
            offset_bits: self.offset_bits(),
            tag_shift: self.offset_bits() + self.index_bits(),
            set_mask: self.sets() - 1,
            line_mask: !(self.line_bytes - 1),
            way_mask: self.ways - 1,
            ways: self.ways,
            sets: self.sets(),
            tag_bits: self.tag_bits(),
        }
    }
}

/// Precomputed address-slicing constants (see [`CacheGeometry::shifts`]).
///
/// All fields are derived; the struct exists so the per-fetch hot path
/// never recomputes a shift, mask or set count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GeometryShifts {
    /// log2 of the line size.
    pub offset_bits: u32,
    /// Right-shift that yields the tag (`offset_bits + index_bits`).
    pub tag_shift: u32,
    /// `sets - 1` (sets are a power of two).
    pub set_mask: u32,
    /// AND-mask that yields the line base address.
    pub line_mask: u32,
    /// `ways - 1` (the placement-way mask of figure 3).
    pub way_mask: u32,
    /// Associativity.
    pub ways: u32,
    /// Number of sets.
    pub sets: u32,
    /// Width of the stored tag.
    pub tag_bits: u32,
}

impl GeometryShifts {
    /// The set index of an address.
    #[inline]
    #[must_use]
    pub fn set_of(&self, addr: u32) -> u32 {
        (addr >> self.offset_bits) & self.set_mask
    }

    /// The tag of an address.
    #[inline]
    #[must_use]
    pub fn tag_of(&self, addr: u32) -> u32 {
        addr >> self.tag_shift
    }

    /// The line-aligned base address.
    #[inline]
    #[must_use]
    pub fn line_addr(&self, addr: u32) -> u32 {
        addr & self.line_mask
    }

    /// The way-placement way of an address (low tag bits, figure 3).
    #[inline]
    #[must_use]
    pub fn placement_way(&self, addr: u32) -> u32 {
        self.tag_of(addr) & self.way_mask
    }

    /// The flat slab index of a (set, way) slot.
    #[inline]
    #[must_use]
    pub fn slab_index(&self, set: u32, way: u32) -> usize {
        (set * self.ways + way) as usize
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way {}B-line ({} sets)",
            self.size_bytes / 1024,
            self.ways,
            self.line_bytes,
            self.sets()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xscale_geometry() {
        let g = CacheGeometry::xscale_icache();
        assert_eq!(g.sets(), 32);
        assert_eq!(g.offset_bits(), 5);
        assert_eq!(g.index_bits(), 5);
        assert_eq!(g.tag_bits(), 22);
        assert_eq!(g.words_per_line(), 8);
        assert_eq!(g.way_span_bytes(), 1024);
        assert_eq!(g.to_string(), "32KB 32-way 32B-line (32 sets)");
    }

    #[test]
    fn address_slicing() {
        let g = CacheGeometry::new(16 * 1024, 8, 32);
        assert_eq!(g.sets(), 64);
        let addr = 0x0001_2345;
        let rebuilt = g.addr_of(g.tag_of(addr), g.set_of(addr)) + (addr & 31);
        assert_eq!(rebuilt, addr);
        assert_eq!(g.line_addr(addr), addr & !31);
        assert_eq!(g.slot_of(addr), (addr & 31) / 4);
    }

    #[test]
    fn placement_way_walks_ways_per_span() {
        let g = CacheGeometry::xscale_icache();
        // Addresses 0..1KB map to way 0, 1..2KB to way 1, etc.
        for way in 0..32u32 {
            let addr = way * g.way_span_bytes() + 0x10;
            assert_eq!(g.placement_way(addr), way, "addr {addr:#x}");
        }
        // The 33rd kilobyte wraps back to way 0.
        assert_eq!(g.placement_way(32 * g.way_span_bytes()), 0);
    }

    #[test]
    fn placement_way_is_injective_within_cache_sized_area() {
        let g = CacheGeometry::new(4 * 1024, 4, 32);
        // Within one cache-sized region every line maps to a distinct
        // (set, way) pair — the conflict-free property way-placement
        // relies on for a cache-sized placement area.
        let mut seen = std::collections::HashSet::new();
        let mut addr = 0;
        while addr < g.size_bytes() {
            assert!(seen.insert((g.set_of(addr), g.placement_way(addr))));
            addr += g.line_bytes();
        }
        assert_eq!(seen.len() as u32, g.sets() * g.ways());
    }

    #[test]
    fn shifts_agree_with_accessors() {
        for geom in [
            CacheGeometry::xscale_icache(),
            CacheGeometry::new(16 * 1024, 8, 32),
            CacheGeometry::new(64 * 1024, 32, 64),
            CacheGeometry::new(256, 4, 32),
        ] {
            let s = geom.shifts();
            assert_eq!(s.ways, geom.ways());
            assert_eq!(s.sets, geom.sets());
            assert_eq!(s.tag_bits, geom.tag_bits());
            for addr in [0u32, 0x04, 0x1234_5678, 0xFFFF_FFFC, 0x8000] {
                assert_eq!(s.set_of(addr), geom.set_of(addr), "{geom} set_of {addr:#x}");
                assert_eq!(s.tag_of(addr), geom.tag_of(addr), "{geom} tag_of {addr:#x}");
                assert_eq!(s.line_addr(addr), geom.line_addr(addr));
                assert_eq!(s.placement_way(addr), geom.placement_way(addr));
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = CacheGeometry::new(3000, 4, 32);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn rejects_undersized_cache() {
        let _ = CacheGeometry::new(128, 8, 32);
    }
}
