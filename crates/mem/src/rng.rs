//! A tiny, deterministic, dependency-free PRNG.
//!
//! The repository runs fully offline, so the external `rand` crate is
//! unavailable; every stochastic component (random replacement, random
//! layout shuffles, property-test sampling) draws from this generator
//! instead. It is **not** cryptographic — it exists purely to make
//! randomised behaviour reproducible from a `u64` seed.
//!
//! The core is SplitMix64 (Steele, Lea & Flood, *Fast Splittable
//! Pseudorandom Number Generators*): a 64-bit counter hashed through a
//! finalising mixer. Every seed, including 0, yields a full-period,
//! well-distributed stream.

/// A SplitMix64 pseudorandom number generator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `0..bound` (`bound > 0`), via rejection
    /// sampling so small bounds are exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Rejection zone keeps the draw unbiased.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let draw = self.next_u64();
            if draw < zone {
                return draw % bound;
            }
        }
    }

    /// A uniform draw from the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// A uniform `usize` draw from `0..bound` (`bound > 0`).
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle, deterministic in the generator state.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = SplitMix64::new(seed);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<u64>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the published
        // SplitMix64 algorithm (as used by e.g. the xoshiro seeders).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn range_is_inclusive() {
        let mut rng = SplitMix64::new(9);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..500 {
            let v = rng.range_u64(3, 6);
            assert!((3..=6).contains(&v));
            hit_lo |= v == 3;
            hit_hi |= v == 6;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(11);
        let mut items: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
        // And deterministic per seed.
        let mut again: Vec<u32> = (0..32).collect();
        SplitMix64::new(11).shuffle(&mut again);
        assert_eq!(items, again);
    }
}
