//! Event counters for the memory hierarchy.
//!
//! Every energy-relevant micro-event is counted here; the `wp-energy`
//! crate turns counts into joules. Keeping raw events (rather than
//! pre-baked energies) lets the same simulation be re-priced under
//! different technology assumptions.

use wp_trace::FetchCounters;

/// Instruction-fetch-side event counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FetchStats {
    /// Total instruction fetch requests.
    pub fetches: u64,
    /// Fetches that hit in the I-cache.
    pub hits: u64,
    /// Fetches that missed and triggered a line fill.
    pub misses: u64,
    /// Individual CAM tag comparisons performed (the headline quantity
    /// of figure 1: the baseline does `ways` of these per access).
    pub tag_comparisons: u64,
    /// CAM match-line precharge events, one per way armed for a search.
    pub matchline_precharges: u64,
    /// Data-array word reads.
    pub data_reads: u64,
    /// Whole-line fills written into the data array.
    pub line_fills: u64,
    /// Fetches satisfied with zero tag checks because they hit the same
    /// line as the previous fetch (the same-line elision shared with
    /// way-memoization).
    pub same_line_elisions: u64,
    /// Fetches performed as way-placement accesses (one tag comparison).
    pub wp_accesses: u64,
    /// Fetches whose way-hint predicted "way-placement" but the I-TLB
    /// said otherwise: the access is re-issued full-width, costing a
    /// cycle and the extra energy (§4.1 of the paper).
    pub hint_false_wp: u64,
    /// Fetches whose way-hint predicted "normal" for a way-placement
    /// address: a pure missed saving, no penalty.
    pub hint_false_normal: u64,
    /// Way-memoization: fetches satisfied through a valid link (zero tag
    /// comparisons).
    pub link_hits: u64,
    /// Way-memoization: link fields written back into the data array.
    pub link_updates: u64,
    /// Way-memoization: link-invalidation sweeps caused by line fills.
    pub link_invalidations: u64,
    /// Extra fetch cycles spent on hint mispredictions.
    pub penalty_cycles: u64,
    /// Cycles stalled waiting for I-cache miss fills.
    pub miss_stall_cycles: u64,
}

impl FetchStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> FetchStats {
        FetchStats::default()
    }

    /// Hit rate in `[0, 1]`; 1.0 for an idle cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.fetches == 0 {
            1.0
        } else {
            self.hits as f64 / self.fetches as f64
        }
    }

    /// Average tag comparisons per fetch — the quantity way-placement
    /// drives towards 1 and way-memoization towards 0.
    #[must_use]
    pub fn tags_per_fetch(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.tag_comparisons as f64 / self.fetches as f64
        }
    }

    /// Counter deltas since `earlier`, an older snapshot of the same
    /// monotone stream (interval sampling). Saturating, so a stale or
    /// mismatched snapshot yields zeros rather than wrapping.
    #[must_use]
    pub fn delta(&self, earlier: &FetchStats) -> FetchStats {
        FetchStats {
            fetches: self.fetches.saturating_sub(earlier.fetches),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            tag_comparisons: self.tag_comparisons.saturating_sub(earlier.tag_comparisons),
            matchline_precharges: self
                .matchline_precharges
                .saturating_sub(earlier.matchline_precharges),
            data_reads: self.data_reads.saturating_sub(earlier.data_reads),
            line_fills: self.line_fills.saturating_sub(earlier.line_fills),
            same_line_elisions: self.same_line_elisions.saturating_sub(earlier.same_line_elisions),
            wp_accesses: self.wp_accesses.saturating_sub(earlier.wp_accesses),
            hint_false_wp: self.hint_false_wp.saturating_sub(earlier.hint_false_wp),
            hint_false_normal: self.hint_false_normal.saturating_sub(earlier.hint_false_normal),
            link_hits: self.link_hits.saturating_sub(earlier.link_hits),
            link_updates: self.link_updates.saturating_sub(earlier.link_updates),
            link_invalidations: self.link_invalidations.saturating_sub(earlier.link_invalidations),
            penalty_cycles: self.penalty_cycles.saturating_sub(earlier.penalty_cycles),
            miss_stall_cycles: self.miss_stall_cycles.saturating_sub(earlier.miss_stall_cycles),
        }
    }

    /// Accumulates another set of counters.
    pub fn merge(&mut self, other: &FetchStats) {
        self.fetches += other.fetches;
        self.hits += other.hits;
        self.misses += other.misses;
        self.tag_comparisons += other.tag_comparisons;
        self.matchline_precharges += other.matchline_precharges;
        self.data_reads += other.data_reads;
        self.line_fills += other.line_fills;
        self.same_line_elisions += other.same_line_elisions;
        self.wp_accesses += other.wp_accesses;
        self.hint_false_wp += other.hint_false_wp;
        self.hint_false_normal += other.hint_false_normal;
        self.link_hits += other.link_hits;
        self.link_updates += other.link_updates;
        self.link_invalidations += other.link_invalidations;
        self.penalty_cycles += other.penalty_cycles;
        self.miss_stall_cycles += other.miss_stall_cycles;
    }
}

/// `wp-trace`'s counter mirror is field-for-field identical; the
/// conversions are lossless in both directions so interval deltas and
/// per-chain roll-ups can be re-priced through the energy model.
impl From<&FetchStats> for FetchCounters {
    fn from(s: &FetchStats) -> FetchCounters {
        FetchCounters {
            fetches: s.fetches,
            hits: s.hits,
            misses: s.misses,
            tag_comparisons: s.tag_comparisons,
            matchline_precharges: s.matchline_precharges,
            data_reads: s.data_reads,
            line_fills: s.line_fills,
            same_line_elisions: s.same_line_elisions,
            wp_accesses: s.wp_accesses,
            hint_false_wp: s.hint_false_wp,
            hint_false_normal: s.hint_false_normal,
            link_hits: s.link_hits,
            link_updates: s.link_updates,
            link_invalidations: s.link_invalidations,
            penalty_cycles: s.penalty_cycles,
            miss_stall_cycles: s.miss_stall_cycles,
        }
    }
}

impl From<&FetchCounters> for FetchStats {
    fn from(c: &FetchCounters) -> FetchStats {
        FetchStats {
            fetches: c.fetches,
            hits: c.hits,
            misses: c.misses,
            tag_comparisons: c.tag_comparisons,
            matchline_precharges: c.matchline_precharges,
            data_reads: c.data_reads,
            line_fills: c.line_fills,
            same_line_elisions: c.same_line_elisions,
            wp_accesses: c.wp_accesses,
            hint_false_wp: c.hint_false_wp,
            hint_false_normal: c.hint_false_normal,
            link_hits: c.link_hits,
            link_updates: c.link_updates,
            link_invalidations: c.link_invalidations,
            penalty_cycles: c.penalty_cycles,
            miss_stall_cycles: c.miss_stall_cycles,
        }
    }
}

/// Data-cache event counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DCacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Hits (reads + writes).
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Tag comparisons.
    pub tag_comparisons: u64,
    /// Data-array accesses (word granularity).
    pub data_accesses: u64,
    /// Line fills from memory.
    pub line_fills: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
    /// Cycles stalled on misses.
    pub miss_stall_cycles: u64,
}

impl DCacheStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> DCacheStats {
        DCacheStats::default()
    }

    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Hit rate in `[0, 1]`; 1.0 for an idle cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// TLB event counters (one instance each for the I- and D-TLB).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TlbStats {
    /// Lookups.
    pub lookups: u64,
    /// Misses (entry filled by the OS model).
    pub misses: u64,
    /// Cycles stalled on TLB fills.
    pub miss_stall_cycles: u64,
}

impl TlbStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> TlbStats {
        TlbStats::default()
    }

    /// Miss rate in `[0, 1]`; 0.0 for an idle TLB.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_rates() {
        let mut s = FetchStats::new();
        assert_eq!(s.hit_rate(), 1.0);
        assert_eq!(s.tags_per_fetch(), 0.0);
        s.fetches = 10;
        s.hits = 9;
        s.tag_comparisons = 320;
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.tags_per_fetch() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FetchStats { fetches: 1, tag_comparisons: 32, ..FetchStats::new() };
        let b = FetchStats { fetches: 2, tag_comparisons: 1, link_hits: 2, ..FetchStats::new() };
        a.merge(&b);
        assert_eq!(a.fetches, 3);
        assert_eq!(a.tag_comparisons, 33);
        assert_eq!(a.link_hits, 2);
    }

    #[test]
    fn delta_subtracts_and_saturates() {
        let earlier = FetchStats { fetches: 10, tag_comparisons: 320, ..FetchStats::new() };
        let later = FetchStats { fetches: 15, tag_comparisons: 325, hits: 4, ..FetchStats::new() };
        let delta = later.delta(&earlier);
        assert_eq!(delta.fetches, 5);
        assert_eq!(delta.tag_comparisons, 5);
        assert_eq!(delta.hits, 4);
        // A mismatched (newer) snapshot saturates to zero, never wraps.
        assert_eq!(earlier.delta(&later).fetches, 0);
    }

    #[test]
    fn trace_counter_conversions_round_trip() {
        let stats = FetchStats {
            fetches: 7,
            hits: 6,
            misses: 1,
            tag_comparisons: 64,
            matchline_precharges: 64,
            data_reads: 7,
            line_fills: 1,
            same_line_elisions: 2,
            wp_accesses: 3,
            hint_false_wp: 1,
            hint_false_normal: 1,
            link_hits: 1,
            link_updates: 1,
            link_invalidations: 1,
            penalty_cycles: 1,
            miss_stall_cycles: 50,
        };
        let counters = FetchCounters::from(&stats);
        assert_eq!(FetchStats::from(&counters), stats, "lossless both ways");
    }

    #[test]
    fn dcache_rates() {
        let mut s = DCacheStats::new();
        assert_eq!(s.hit_rate(), 1.0);
        s.reads = 6;
        s.writes = 4;
        s.hits = 5;
        assert_eq!(s.accesses(), 10);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tlb_rates() {
        let mut s = TlbStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        s.lookups = 4;
        s.misses = 1;
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }
}
