//! Integration tests for the autotuning pipeline: determinism of the
//! tuned-areas manifest, agreement between the tuner's choice and the
//! sweep-optimal area, and schema round-tripping into the validator.

use wp_bench::autotune::tune_suite;
use wp_bench::engine::Engine;
use wp_bench::FIGURE5_AREAS;
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::Scheme;
use wp_tune::{knee_index, TunedManifest, DEFAULT_TOLERANCE};

#[test]
fn tuned_manifests_are_byte_identical() {
    let geom = CacheGeometry::xscale_icache();
    let run = || {
        let (_, manifest) =
            tune_suite(&[Benchmark::Crc], geom, &FIGURE5_AREAS, DEFAULT_TOLERANCE, InputSet::Small)
                .expect("tune_suite");
        manifest.to_pretty()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "two independent tune runs must render identical manifests");
    assert!(first.contains("tuned_areas/v1"));
}

#[test]
fn tuned_area_is_within_one_grid_step_of_sweep_optimal() {
    let geom = CacheGeometry::xscale_icache();
    let set = InputSet::Small;
    let engine = Engine::global();
    let (tunings, _) = tune_suite(
        &[Benchmark::Crc, Benchmark::Sha, Benchmark::Bitcount],
        geom,
        &FIGURE5_AREAS,
        DEFAULT_TOLERANCE,
        set,
    )
    .expect("tune_suite");
    for tuning in &tunings {
        // The exhaustive sweep the tuner is meant to replace.
        let energies: Vec<f64> = FIGURE5_AREAS
            .iter()
            .map(|&area_bytes| {
                engine
                    .measure(tuning.benchmark, geom, Scheme::WayPlacement { area_bytes }, set)
                    .expect("sweep measurement")
                    .energy
                    .icache
                    .total_pj()
            })
            .collect();
        let optimal = knee_index(&energies, DEFAULT_TOLERANCE).expect("sweep knee");
        let chosen = tuning.refinement.chosen_index;
        assert!(
            chosen.abs_diff(optimal) <= 1,
            "{}: tuned index {chosen} ({} B) vs sweep-optimal {optimal} ({} B); curve {energies:?}",
            tuning.benchmark.name(),
            FIGURE5_AREAS[chosen],
            FIGURE5_AREAS[optimal],
        );
        // The search must have measured strictly fewer points than the
        // sweep it replaces (that is its reason to exist).
        assert!(tuning.refinement.steps.len() < FIGURE5_AREAS.len());
        // The prediction at the chosen area should be close to the
        // measurement — the covered/uncovered split is the only model.
        let ratio = tuning.predicted_measured_ratio();
        assert!(
            (0.8..=1.2).contains(&ratio),
            "{}: predicted/measured {ratio}",
            tuning.benchmark.name()
        );
    }
}

#[test]
fn tune_binary_exit_codes_distinguish_usage_from_failure() {
    use std::process::Command;
    // A malformed argument is a usage mistake: exit 2.
    let out = Command::new(env!("CARGO_BIN_EXE_tune"))
        .args(["--tolerance", "nope"])
        .output()
        .expect("run tune");
    assert_eq!(out.status.code(), Some(2), "bad threshold token must exit 2");
    let out = Command::new(env!("CARGO_BIN_EXE_tune"))
        .args(["--quick", "--all"])
        .output()
        .expect("run tune");
    assert_eq!(out.status.code(), Some(2), "conflicting flags must exit 2");
    // A pipeline failure (here: the manifest directory cannot be
    // created because a file is in the way) is a genuine tuning-run
    // failure: exit 1, not the old blanket 2.
    let blocker = std::env::temp_dir().join(format!("wp-tune-notadir-{}", std::process::id()));
    std::fs::write(&blocker, b"in the way").expect("write blocker");
    let out = Command::new(env!("CARGO_BIN_EXE_tune"))
        .arg("--quick")
        .env("WP_BENCH_DIR", blocker.join("sub"))
        .output()
        .expect("run tune");
    let _ = std::fs::remove_file(&blocker);
    assert_eq!(
        out.status.code(),
        Some(1),
        "pipeline failure must exit 1; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn fig5_rejects_tuned_manifest_with_mismatched_grid() {
    use std::process::Command;
    // A tuned manifest from a non-sweep grid must be refused before
    // the sweep even starts — checking "within one grid step" against
    // the wrong neighbors proves nothing.
    let manifest = r#"{
  "schema": "tuned_areas/v1",
  "tolerance": 0.02,
  "grid": [4096, 2048],
  "benchmarks": [{"benchmark": "crc", "chosen_area_bytes": 2048, "measured_pj": 1.0}]
}"#;
    let path = std::env::temp_dir().join(format!("wp-fig5-badgrid-{}.json", std::process::id()));
    std::fs::write(&path, manifest).expect("write manifest");
    let out = Command::new(env!("CARGO_BIN_EXE_fig5"))
        .args(["--areas", &path.display().to_string()])
        .output()
        .expect("run fig5");
    let _ = std::fs::remove_file(&path);
    assert_eq!(out.status.code(), Some(2), "mismatched grid must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("[4096, 2048]") && stderr.contains("32768"),
        "error must name both grids: {stderr}"
    );
}

#[test]
fn emitted_manifest_round_trips_into_the_validator() {
    let geom = CacheGeometry::xscale_icache();
    let (tunings, manifest) =
        tune_suite(&[Benchmark::Crc], geom, &FIGURE5_AREAS, DEFAULT_TOLERANCE, InputSet::Small)
            .expect("tune_suite");
    let parsed = TunedManifest::parse(&manifest.to_pretty(), "in-memory").expect("parses");
    assert_eq!(parsed.tolerance, DEFAULT_TOLERANCE);
    assert_eq!(parsed.area_for("crc"), Some(tunings[0].chosen_area_bytes));
}
