//! End-to-end tests for the campaign DAG: cold-run byte identity with
//! the standalone builders, warm-rerun purity (zero misses, identical
//! bytes), single-benchmark invalidation recomputing only its
//! dependency cone, and the store-backed gate resolving every fresh
//! manifest as a hit against a warm store.

use std::path::PathBuf;

use wp_bench::baseline::gate_via_store;
use wp_bench::campaign::{fig1_data, fig1_manifest, keys, run, CampaignConfig, Group, InputTags};
use wp_campaign::Store;
use wp_core::wp_workloads::Benchmark;
use wp_obs::Obs;
use wp_tune::DiffThresholds;

/// A fresh scratch directory under the system temp dir; any leftover
/// from a previous run is cleared first.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wp-campaign-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn hits(obs: &Obs) -> u64 {
    obs.metrics.counter_value("wp_campaign_store_hits_total").unwrap_or(0)
}

fn misses(obs: &Obs) -> u64 {
    obs.metrics.counter_value("wp_campaign_store_misses_total").unwrap_or(0)
}

#[test]
fn campaign_manifests_match_standalone_builders_and_carry_task_keys() {
    let store = Store::new(scratch("builders"));
    let config = CampaignConfig::new(true, vec![Group::Fig1, Group::Table1]);
    let run = run(&config, &store, None);
    assert!(run.report.ok(), "campaign failed: {:?}", run.report.failures());

    // The DAG nodes call the very builders the standalone binaries
    // call, so the payloads must be byte-identical to a direct render.
    let fig1 = run.manifest(Group::Fig1).expect("fig1 payload");
    assert_eq!(fig1, fig1_manifest(&fig1_data(), &keys::fig1()).to_pretty().as_bytes());
    for group in [Group::Fig1, Group::Table1] {
        let text = String::from_utf8(run.manifest(group).expect("payload").to_vec()).expect("utf8");
        assert!(text.contains("\"task_key\""), "{group:?} manifest lacks provenance.task_key");
    }

    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn warm_rerun_is_pure_hits_and_tag_flip_recomputes_only_the_cone() {
    let store = Store::new(scratch("incremental"));
    let groups = vec![Group::Fig1, Group::Table1, Group::Fig4, Group::Trace, Group::Tune];
    let config = CampaignConfig::new(true, groups.clone());

    // Cold run: every node computes. 12 nodes total — fig1, table1,
    // fig4 (2 benchmarks x 2 schemes = 4 measures + manifest), trace
    // (Crc x 2 schemes = 2 runs + manifest), tune (Crc + manifest).
    let obs1 = Obs::new();
    let run1 = run(&config, &store, Some(&obs1));
    assert!(run1.report.ok(), "cold run failed: {:?}", run1.report.failures());
    assert_eq!((misses(&obs1), hits(&obs1)), (12, 0), "cold run must compute all 12 nodes");

    // Warm rerun: the five manifest roots hit, their whole upstream
    // cones prune — nothing re-simulates, bytes identical.
    let obs2 = Obs::new();
    let run2 = run(&config, &store, Some(&obs2));
    assert!(run2.report.ok());
    assert_eq!(misses(&obs2), 0, "warm rerun must not recompute anything");
    assert_eq!(hits(&obs2), 5, "each manifest root resolves from the store");
    assert_eq!(run2.report.pruned(), 7, "upstream measure/run nodes never evaluate");
    for &group in &groups {
        assert_eq!(
            run1.manifest(group),
            run2.manifest(group),
            "{group:?} warm manifest must be byte-identical"
        );
    }

    // Flip one benchmark's input tag: only the nodes whose keys mix in
    // that benchmark recompute — fig4's two Crc measures + manifest,
    // both trace runs (trace quick is Crc-only) + manifest, tune/crc +
    // manifest. Everything else (fig1, table1, the Sha measures) hits.
    let mut flipped = config.clone();
    flipped.tags = InputTags::default().with(Benchmark::Crc, "v2");
    let obs3 = Obs::new();
    let run3 = run(&flipped, &store, Some(&obs3));
    assert!(run3.report.ok(), "flipped run failed: {:?}", run3.report.failures());
    assert_eq!(misses(&obs3), 8, "exactly the Crc-dependent cone recomputes");
    assert_eq!(hits(&obs3), 4, "fig1, table1 and the two Sha measures stay hits");
    for group in [Group::Fig1, Group::Table1] {
        assert_eq!(
            run1.manifest(group),
            run3.manifest(group),
            "{group:?} does not depend on Crc inputs"
        );
    }
    // The recomputed manifests carry the new key, so their bytes move.
    assert_ne!(run1.manifest(Group::Fig4), run3.manifest(Group::Fig4));

    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn gate_via_store_is_pure_hits_against_a_warm_store() {
    let store = Store::new(scratch("gate"));
    let config = CampaignConfig::new(true, Group::BASELINE.to_vec());
    let warm = run(&config, &store, None);
    assert!(warm.report.ok(), "warm-up run failed: {:?}", warm.report.failures());

    // Bless straight from the campaign payloads: the store-backed gate
    // must then diff clean without a single re-simulation.
    let blessed = scratch("gate-blessed");
    std::fs::create_dir_all(&blessed).expect("create blessed dir");
    for (group, bytes) in warm.manifests() {
        let name = format!("BENCH_{}.json", group.manifest_name());
        std::fs::write(blessed.join(name), bytes).expect("write blessed manifest");
    }

    let obs = Obs::new();
    let report = gate_via_store(&blessed, &store, true, DiffThresholds::default(), Some(&obs))
        .expect("gate");
    assert!(report.is_clean(), "warm gate flagged: {:?}", report.json().to_compact());
    assert_eq!(report.exit_code(), 0);
    assert_eq!(misses(&obs), 0, "a warm gate re-simulates nothing");
    assert_eq!(
        hits(&obs),
        Group::BASELINE.len() as u64,
        "every fresh manifest resolves from the store"
    );

    let _ = std::fs::remove_dir_all(store.root());
    let _ = std::fs::remove_dir_all(blessed);
}
