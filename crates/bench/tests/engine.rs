//! Integration tests for the experiment engine: exactly-once
//! workbench construction, deterministic output, and structured
//! failure reporting.

use wp_bench::{Engine, Experiment, JobPhase};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{CoreError, Scheme};

const AREA: u32 = 8 * 1024;

/// The fig6-style sweep: multiple geometries and schemes over the same
/// benchmarks must assemble and profile each benchmark exactly once —
/// the engine counter proves it, across repeated runs too.
#[test]
fn profiles_each_benchmark_exactly_once_across_a_multi_geometry_sweep() {
    let engine = Engine::with_workers(4);
    let benchmarks = [Benchmark::Crc, Benchmark::Sha];
    let geometries = [
        CacheGeometry::new(16 * 1024, 8, 32),
        CacheGeometry::new(32 * 1024, 32, 32),
        CacheGeometry::new(64 * 1024, 16, 32),
    ];
    let schemes = [Scheme::Baseline, Scheme::WayPlacement { area_bytes: AREA }];
    let experiment =
        Experiment::new(benchmarks, geometries, schemes).with_input_set(InputSet::Small);

    let report = engine.run(&experiment);
    assert!(report.is_complete(), "failures: {:?}", report.failures);
    assert_eq!(report.rows.len(), 12);

    // Exactly once per benchmark — not per geometry, not per scheme.
    assert_eq!(report.stats.workbench_builds, 2);
    // Every other job access was a cache hit (12 jobs touch the
    // workbench at least once each).
    assert!(report.stats.workbench_hits >= 10, "{:?}", report.stats);
    // One baseline measurement per (benchmark, geometry), shared by
    // both schemes.
    assert_eq!(report.stats.baseline_builds, 6);
    assert_eq!(report.stats.jobs_ok, 12);
    assert_eq!(report.stats.jobs_failed, 0);

    // A second run of the same experiment on the same engine rebuilds
    // nothing: "exactly once per process".
    let again = engine.run(&experiment);
    assert!(again.is_complete());
    assert_eq!(again.stats.workbench_builds, 2);
    assert_eq!(again.stats.baseline_builds, 6);
}

/// Baseline rows are exact unity by construction: the baseline scheme
/// resolves to the shared baseline measurement itself.
#[test]
fn baseline_rows_are_exactly_unity() {
    let engine = Engine::with_workers(2);
    let geometry = CacheGeometry::xscale_icache();
    let experiment = Experiment::new(
        [Benchmark::Crc],
        [geometry],
        [Scheme::Baseline, Scheme::WayPlacement { area_bytes: AREA }],
    )
    .with_input_set(InputSet::Small);
    let report = engine.run(&experiment);
    assert!(report.is_complete(), "failures: {:?}", report.failures);
    let baseline_row = &report.rows[0];
    assert_eq!(baseline_row.scheme, Scheme::Baseline);
    assert_eq!(baseline_row.energy, 1.0);
    assert_eq!(baseline_row.ed, 1.0);
}

/// The determinism regression (satellite): the same 3-benchmark suite
/// run on two fresh engines — at different parallelism — produces
/// byte-identical JSON and table output.
#[test]
fn suite_output_is_byte_identical_across_runs_and_worker_counts() {
    let geometry = CacheGeometry::xscale_icache();
    let run_once = |workers: usize| {
        let engine = Engine::with_workers(workers);
        let experiment = Experiment::new(
            [Benchmark::Crc, Benchmark::Sha, Benchmark::Bitcount],
            [geometry],
            [Scheme::WayMemoization, Scheme::WayPlacement { area_bytes: AREA }],
        )
        .with_input_set(InputSet::Small);
        let report = engine.run(&experiment);
        assert!(report.is_complete(), "failures: {:?}", report.failures);
        (report.results_json().to_pretty(), report.table_for(geometry))
    };

    let (json_serial, table_serial) = run_once(1);
    let (json_parallel, table_parallel) = run_once(8);
    assert_eq!(json_serial, json_parallel);
    assert_eq!(table_serial, table_parallel);
    // Sanity: the deterministic subset really is populated.
    assert!(json_serial.contains("\"rows\""));
    assert!(table_serial.contains("average"));
}

/// The failure-injection satellite: a checksum-failing job surfaces in
/// `SuiteReport::failures` with its identity and phase, while every
/// other job still completes.
#[test]
fn injected_checksum_failure_is_reported_structurally() {
    let geometry = CacheGeometry::xscale_icache();
    let engine = Engine::with_workers(4).with_fault(|benchmark, _geometry, scheme| {
        (benchmark == Benchmark::Sha && scheme == Scheme::WayMemoization)
            .then_some(CoreError::ChecksumMismatch { benchmark, expected: 0x1234, actual: 0x5678 })
    });
    let experiment = Experiment::new(
        [Benchmark::Crc, Benchmark::Sha],
        [geometry],
        [Scheme::WayMemoization, Scheme::WayPlacement { area_bytes: AREA }],
    )
    .with_input_set(InputSet::Small);
    let report = engine.run(&experiment);

    assert!(!report.is_complete());
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    assert_eq!(failure.benchmark, Benchmark::Sha);
    assert_eq!(failure.scheme, Scheme::WayMemoization);
    assert_eq!(failure.phase, JobPhase::Measure);
    assert!(
        matches!(*failure.error, CoreError::ChecksumMismatch { actual: 0x5678, .. }),
        "unexpected error {:?}",
        failure.error
    );

    // The three sibling jobs completed with real results.
    assert_eq!(report.rows.len(), 3);
    assert_eq!(report.stats.jobs_failed, 1);
    assert_eq!(report.stats.jobs_ok, 3);

    // The table omits the ragged benchmark but keeps the healthy one.
    let rows = report.rows_for(geometry);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].benchmark, Benchmark::Crc);

    // And the manifest records the failure verbatim.
    let json = report.results_json().to_compact();
    assert!(json.contains("\"phase\":\"measure\""));
    assert!(json.contains("checksum mismatch"));
}
