//! Engine resilience integration tests: panic isolation, bounded
//! retry of transient failures, watchdog timeouts, and
//! checkpoint/resume.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use wp_bench::{Engine, Experiment, JobPhase, RetryPolicy};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_sim::SimError;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{CoreError, Scheme};

const AREA: u32 = 8 * 1024;

fn scratch_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wp-resilience-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn experiment(benchmarks: impl Into<Vec<Benchmark>>) -> Experiment {
    Experiment::new(
        benchmarks,
        [CacheGeometry::xscale_icache()],
        [Scheme::WayMemoization, Scheme::WayPlacement { area_bytes: AREA }],
    )
    .with_input_set(InputSet::Small)
}

/// A job that panics during workbench construction is converted into a
/// structured `CoreError::Panic` failure while every sibling job —
/// including siblings running concurrently on the same pool —
/// completes with real results.
#[test]
fn panicking_build_is_isolated_and_siblings_complete() {
    let engine = Engine::with_workers(4).with_build_fault(|benchmark, _attempt| {
        if benchmark == Benchmark::Sha {
            panic!("injected build panic for {benchmark}");
        }
        None
    });
    let report = engine.run(&experiment([Benchmark::Crc, Benchmark::Sha]));

    // Both Sha jobs fail (the memoised build failure is shared)...
    assert_eq!(report.failures.len(), 2, "failures: {:?}", report.failures);
    for failure in &report.failures {
        assert_eq!(failure.benchmark, Benchmark::Sha);
        assert_eq!(failure.phase, JobPhase::Workbench);
        assert_eq!(failure.attempts, 1, "panics are not transient, so no retry");
        assert!(
            matches!(&*failure.error, CoreError::Panic { message }
                if message.contains("injected build panic")),
            "unexpected error {:?}",
            failure.error
        );
    }
    // ...while both Crc jobs produced rows.
    assert_eq!(report.rows.len(), 2);
    assert!(report.rows.iter().all(|r| r.benchmark == Benchmark::Crc));
    assert!(report.stats.panics >= 1, "{:?}", report.stats);
    // The failure renders into the manifest (exercises JobFailure::json).
    assert!(report.results_json().to_compact().contains("job panicked"));
}

/// A transient (I/O) failure on the first build attempt is retried
/// after the failed cache cell is evicted, and the second attempt
/// succeeds — the workbench really is built twice.
#[test]
fn transient_build_failure_is_retried_and_succeeds() {
    let engine = Engine::with_workers(2)
        .with_retry(RetryPolicy::new(3, Duration::ZERO))
        .with_build_fault(|_benchmark, attempt| {
            (attempt == 1).then(|| CoreError::Io {
                context: "injected transient fault".to_string(),
                message: "simulated EIO".to_string(),
            })
        });
    let report = engine.run(&experiment([Benchmark::Crc]));

    assert!(report.is_complete(), "failures: {:?}", report.failures);
    assert_eq!(report.rows.len(), 2);
    assert_eq!(report.stats.retries, 1, "{:?}", report.stats);
    // Attempt 1 hit the injected fault; attempt 2 built for real.
    assert_eq!(report.stats.workbench_builds, 2, "{:?}", report.stats);
}

/// Deterministic failures (wrong checksum) are not retried even under
/// a generous retry policy: the failure reports exactly one attempt.
#[test]
fn permanent_failure_is_not_retried() {
    let attempts = AtomicU32::new(0);
    let engine = Engine::with_workers(2)
        .with_retry(RetryPolicy::new(5, Duration::ZERO))
        .with_fault(move |benchmark, _geometry, scheme| {
            (benchmark == Benchmark::Crc && scheme == Scheme::WayMemoization).then(|| {
                attempts.fetch_add(1, Ordering::Relaxed);
                CoreError::ChecksumMismatch { benchmark, expected: 1, actual: 2 }
            })
        });
    let report = engine.run(&experiment([Benchmark::Crc]));

    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].attempts, 1);
    assert_eq!(report.stats.retries, 0, "{:?}", report.stats);
    assert_eq!(report.rows.len(), 1, "the sibling scheme still completed");
}

/// An immediate watchdog limit times out the profiling run; the
/// timeout is transient, so the policy retries it (uselessly here —
/// the limit still applies) and the final failure records every
/// attempt.
#[test]
fn watchdog_timeout_is_typed_transient_and_retried() {
    let engine = Engine::with_workers(1)
        .with_job_time_limit(Duration::ZERO)
        .with_retry(RetryPolicy::new(2, Duration::ZERO));
    let report = engine.run(&Experiment::new(
        [Benchmark::Crc],
        [CacheGeometry::xscale_icache()],
        [Scheme::WayMemoization],
    ));

    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    assert!(
        matches!(&*failure.error, CoreError::Sim(SimError::Timeout { .. })),
        "unexpected error {:?}",
        failure.error
    );
    assert!(failure.error.is_transient());
    assert_eq!(failure.attempts, 2, "retried once, then gave up");
    assert_eq!(report.stats.retries, 1, "{:?}", report.stats);
    assert!(report.stats.timeouts >= 2, "{:?}", report.stats);
}

/// Checkpoint/resume round trip: a partially-failed run leaves its
/// completed rows in the checkpoint; resuming replays them from disk
/// (zero re-execution), runs only the missing job, produces
/// byte-identical results to an uninterrupted run, and removes the
/// checkpoint once complete.
#[test]
fn checkpoint_resume_replays_completed_jobs_from_disk() {
    let path = scratch_path("resume.jsonl");
    let _ = std::fs::remove_file(&path);
    let experiment = experiment([Benchmark::Crc, Benchmark::Sha]);

    // First run: the last job (Sha / way-placement) fails.
    let broken = Engine::with_workers(2).with_fault(|benchmark, _geometry, scheme| {
        (benchmark == Benchmark::Sha && !matches!(scheme, Scheme::WayMemoization))
            .then_some(CoreError::ChecksumMismatch { benchmark, expected: 0xa, actual: 0xb })
    });
    let first = broken.run_checkpointed(&experiment, &path);
    assert_eq!(first.rows.len(), 3);
    assert_eq!(first.failures.len(), 1);
    let saved = std::fs::read_to_string(&path).expect("checkpoint persists after failure");
    assert_eq!(saved.lines().count(), 3, "one JSONL line per completed row:\n{saved}");

    // Resume on a fresh engine with the fault gone: the three
    // completed jobs replay from the checkpoint, only Sha/WP executes.
    let healthy = Engine::with_workers(2);
    let second = healthy.run_checkpointed(&experiment, &path);
    assert!(second.is_complete(), "failures: {:?}", second.failures);
    assert_eq!(second.stats.checkpoint_hits, 3, "{:?}", second.stats);
    assert_eq!(second.stats.jobs_ok, 1, "only the failed job re-ran");
    // Crc was never rebuilt: all its jobs came from the checkpoint.
    assert_eq!(second.stats.workbench_builds, 1, "{:?}", second.stats);
    assert!(!path.exists(), "checkpoint removed after a fully-complete run");

    // The resumed report is byte-identical to an uninterrupted run.
    let reference = Engine::with_workers(2).run(&experiment);
    assert_eq!(
        second.results_json().to_pretty(),
        reference.results_json().to_pretty(),
        "resumed rows must match a clean run exactly"
    );
}

/// Torn-write recovery: a run killed mid-campaign leaves a checkpoint
/// whose final JSONL record is then truncated mid-line (as a crash
/// inside `writeln!` would). Resuming must skip the torn record,
/// replay the intact ones, re-execute the rest, and produce a report
/// byte-identical to an uninterrupted run.
#[test]
fn torn_checkpoint_write_resumes_byte_identical() {
    let path = scratch_path("torn.jsonl");
    let _ = std::fs::remove_file(&path);
    let experiment = experiment([Benchmark::Crc, Benchmark::Sha]);
    let reference = Engine::with_workers(2).run(&experiment);
    assert!(reference.is_complete(), "failures: {:?}", reference.failures);

    // Kill the last job; the checkpoint holds the other three rows.
    let killed = Engine::with_workers(2).with_fault(|benchmark, _geometry, scheme| {
        (benchmark == Benchmark::Sha && !matches!(scheme, Scheme::WayMemoization)).then(|| {
            CoreError::Io {
                context: "injected kill".to_string(),
                message: "simulated crash".to_string(),
            }
        })
    });
    let partial = killed.run_checkpointed(&experiment, &path);
    assert_eq!(partial.failures.len(), 1);

    // Tear the final record: drop the trailing newline plus the last
    // few bytes of the line, leaving unparseable JSON.
    let text = std::fs::read_to_string(&path).expect("checkpoint after kill");
    assert_eq!(text.lines().count(), 3);
    std::fs::write(&path, &text.as_bytes()[..text.len() - 5]).expect("torn rewrite");

    let resumed = Engine::with_workers(2).run_checkpointed(&experiment, &path);
    assert!(resumed.is_complete(), "failures: {:?}", resumed.failures);
    assert_eq!(resumed.stats.checkpoint_hits, 2, "two intact lines replay; the torn one reruns");
    assert!(!path.exists(), "checkpoint removed after the complete resume");
    assert_eq!(
        resumed.results_json().to_pretty(),
        reference.results_json().to_pretty(),
        "a torn-checkpoint resume must reproduce the uninterrupted report byte for byte"
    );

    // The seeded drill the chaos campaign ships wraps exactly this
    // round trip; it must agree.
    let drill_path = scratch_path("drill.jsonl");
    let fragment = wp_bench::chaos::kill_resume_drill(0xD1BB, &drill_path).expect("drill");
    assert_eq!(
        fragment.get("byte_identical").and_then(wp_bench::Json::as_bool),
        Some(true),
        "{}",
        fragment.to_compact()
    );
}

/// Corrupt checkpoint lines (torn writes, wrong schema) are skipped:
/// the run executes everything fresh and still completes.
#[test]
fn corrupt_checkpoint_lines_are_tolerated() {
    let path = scratch_path("corrupt.jsonl");
    std::fs::write(
        &path,
        "{\"key\":\"crc|truncated...\n\
         not json at all\n\
         {\"valid\":\"json\",\"but\":\"wrong schema\"}\n",
    )
    .expect("seed corrupt checkpoint");

    let engine = Engine::with_workers(2);
    let experiment = experiment([Benchmark::Crc]);
    let report = engine.run_checkpointed(&experiment, &path);
    assert!(report.is_complete(), "failures: {:?}", report.failures);
    assert_eq!(report.stats.checkpoint_hits, 0, "no corrupt line may replay as a row");
    assert_eq!(report.stats.jobs_ok, 2);
    assert!(!path.exists(), "checkpoint removed after the complete run");
}
