//! Golden-output tests: exact-string assertions over `format_table`,
//! `describe`, and the JSON emitter, on fixed synthetic inputs. Any
//! formatting drift — padding, precision, separators, escaping — fails
//! here before it silently changes EXPERIMENTS.md or a manifest.

use wp_bench::{describe, format_table, Json, SuiteRow};
use wp_core::wp_energy::EnergyReport;
use wp_core::wp_mem::{CacheGeometry, FetchStats};
use wp_core::wp_sim::RunResult;
use wp_core::wp_workloads::Benchmark;
use wp_core::{Measurement, Scheme};

fn fixed_rows() -> Vec<SuiteRow> {
    vec![
        SuiteRow {
            benchmark: Benchmark::Crc,
            values: vec![
                ("way-memoization".to_string(), 0.68, 0.97),
                ("way-placement/32KB".to_string(), 0.50, 0.93),
            ],
        },
        SuiteRow {
            benchmark: Benchmark::Sha,
            values: vec![
                ("way-memoization".to_string(), 0.70, 1.01),
                ("way-placement/32KB".to_string(), 0.48, 0.89),
            ],
        },
    ]
}

#[test]
fn format_table_golden() {
    let expected = "\
benchmark    |            way-memoization (E%, ED) |         way-placement/32KB (E%, ED)
crc          |                       68.0%, 0.970 |                       50.0%, 0.930
sha          |                       70.0%, 1.010 |                       48.0%, 0.890
average      |                       69.0%, 0.990 |                       49.0%, 0.910
";
    assert_eq!(format_table(&fixed_rows()), expected);
}

#[test]
fn describe_golden() {
    let m = Measurement {
        scheme: Scheme::WayMemoization,
        icache: CacheGeometry::xscale_icache(),
        run: RunResult {
            exit_code: 0,
            checksum: 0,
            output: Vec::new(),
            instructions: 1000,
            cycles: 1500,
            fetch: FetchStats {
                fetches: 1000,
                hits: 990,
                misses: 10,
                tag_comparisons: 3200,
                ..Default::default()
            },
            dcache: Default::default(),
            itlb: Default::default(),
            dtlb: Default::default(),
            branch_mispredicts: 0,
            insn_counts: None,
            faults: Default::default(),
            detection: Default::default(),
            demotions: 0,
            promotions: 0,
            final_scheme: wp_core::wp_mem::FetchScheme::WayMemoization,
            transitions: Vec::new(),
        },
        energy: EnergyReport {
            icache: Default::default(),
            itlb_pj: 0.0,
            dcache_pj: 0.0,
            dtlb_pj: 0.0,
            core_pj: 0.0,
            recovery_pj: 0.0,
            cycles: 1500,
        },
    };
    assert_eq!(
        describe(&m),
        "way-memoization: 1000 insns, 1500 cycles (CPI 1.50), fetch hit 99.00%, tags/fetch 3.20"
    );
}

fn fixed_manifest() -> Json {
    Json::obj([
        ("schema", Json::from("wp-bench/suite-v1")),
        (
            "experiment",
            Json::obj([
                ("benchmarks", Json::arr([Json::from("crc"), Json::from("sha")])),
                ("geometries", Json::arr([Json::from("32KB, 32-way, 32B lines")])),
                ("input_set", Json::from("small")),
            ]),
        ),
        (
            "rows",
            Json::arr([Json::obj([
                ("benchmark", Json::from("crc")),
                ("energy", Json::from(0.5)),
                ("ed", Json::from(1.0)),
                ("cycles", Json::from(123_456u64)),
            ])]),
        ),
        ("failures", Json::arr([])),
        ("note", Json::from("tabs\tand \"quotes\" survive\n")),
    ])
}

#[test]
fn json_compact_golden() {
    assert_eq!(
        fixed_manifest().to_compact(),
        "{\"schema\":\"wp-bench/suite-v1\",\
         \"experiment\":{\"benchmarks\":[\"crc\",\"sha\"],\
         \"geometries\":[\"32KB, 32-way, 32B lines\"],\"input_set\":\"small\"},\
         \"rows\":[{\"benchmark\":\"crc\",\"energy\":0.5,\"ed\":1.0,\"cycles\":123456}],\
         \"failures\":[],\
         \"note\":\"tabs\\tand \\\"quotes\\\" survive\\n\"}"
    );
}

#[test]
fn json_pretty_golden() {
    let expected = "{\n  \"schema\": \"wp-bench/suite-v1\",\n  \"experiment\": {\n    \
\"benchmarks\": [\n      \"crc\",\n      \"sha\"\n    ],\n    \"geometries\": [\n      \
\"32KB, 32-way, 32B lines\"\n    ],\n    \"input_set\": \"small\"\n  },\n  \"rows\": [\n    \
{\n      \"benchmark\": \"crc\",\n      \"energy\": 0.5,\n      \"ed\": 1.0,\n      \
\"cycles\": 123456\n    }\n  ],\n  \"failures\": [],\n  \
\"note\": \"tabs\\tand \\\"quotes\\\" survive\\n\"\n}\n";
    assert_eq!(fixed_manifest().to_pretty(), expected);
}

#[test]
fn json_edge_cases_golden() {
    // Non-finite floats cannot appear in manifests: they become null.
    assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    // Integral floats stay visibly floats; shortest-round-trip keeps
    // the rest deterministic.
    assert_eq!(Json::Num(2.0).to_compact(), "2.0");
    assert_eq!(Json::Num(0.1 + 0.2).to_compact(), "0.30000000000000004");
    // Control characters escape as \u00XX.
    assert_eq!(Json::from("a\u{2}b").to_compact(), "\"a\\u0002b\"");
}
