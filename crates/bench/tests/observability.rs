//! Observability integration: armed runs are byte-deterministic, the
//! reconciliation checks actually fail on an injected mismatch, and
//! the worker pool's queue depth and per-worker busy time are
//! observable through both the `PoolSnapshot` API and the armed
//! gauges.

use std::sync::Arc;

use wp_bench::obs::run_pipeline;
use wp_bench::{Engine, Experiment};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::Scheme;
use wp_obs::Obs;

/// Two armed pipeline runs of the same shape serialise to
/// byte-identical journals and canonical manifests — the exclusion
/// list (the `wall` section, `wall_ns`/`wall_us` columns) is already
/// applied by the canonical export, so plain byte equality is the
/// whole assertion.
#[test]
fn armed_runs_are_byte_deterministic() {
    let first = Obs::new();
    let second = Obs::new();
    let a = run_pipeline(&first, true, false).expect("first pipeline");
    let b = run_pipeline(&second, true, false).expect("second pipeline");
    assert!(a.ok(), "first run failed checks: {:?}", a.failed_checks());
    assert!(b.ok(), "second run failed checks: {:?}", b.failed_checks());
    assert_eq!(
        first.journal.to_jsonl(),
        second.journal.to_jsonl(),
        "journals diverged across identical armed runs"
    );
    assert_eq!(
        a.canonical_manifest().to_pretty(),
        b.canonical_manifest().to_pretty(),
        "canonical manifests diverged across identical armed runs"
    );
    assert!(!first.journal.is_empty());
}

/// The sabotage hook bumps one counter before verification; the
/// reconciliation must catch exactly that and fail the run's verdict —
/// proof the checks are live, not vacuous.
#[test]
fn injected_mismatch_fails_the_verdict() {
    let obs = Obs::new();
    let report = run_pipeline(&obs, true, true).expect("sabotaged pipeline still runs");
    assert!(!report.ok(), "sabotaged run must not verify");
    let failed = report.failed_checks();
    assert!(
        failed.iter().any(|c| c.name.contains("retries counter")),
        "expected the retries counter reconciliation to fail, got: {failed:?}"
    );
    // The sabotage is one injected mismatch, not a broken pipeline:
    // journal-vs-stats checks unaffected by the counter still pass.
    assert!(
        report.checks.iter().any(|c| c.ok()),
        "every check failed — sabotage should perturb one metric only"
    );
}

/// Queue depth and per-worker busy time are observable: the snapshot
/// API reports the pool shape and nonzero busy time after a run, and
/// the armed gauges exist and read idle once the suite completes.
#[test]
fn pool_queue_depth_and_busy_time_are_observable() {
    let obs = Obs::new();
    let engine = Engine::with_workers(2).with_obs(Arc::clone(&obs));
    let experiment = Experiment::new(
        [Benchmark::Crc, Benchmark::Sha],
        [CacheGeometry::xscale_icache()],
        [Scheme::WayMemoization],
    )
    .with_input_set(InputSet::Small);
    let report = engine.run(&experiment);
    assert!(report.is_complete(), "failures: {:?}", report.failures);

    let snapshot = engine.pool_snapshot();
    assert_eq!(snapshot.workers, 2);
    assert_eq!(snapshot.busy_ns.len(), 2, "one busy counter per worker");
    assert!(
        snapshot.busy_ns.iter().sum::<u64>() > 0,
        "workers ran jobs, busy time must be nonzero"
    );
    assert_eq!(snapshot.queued, 0, "queue drains when the suite completes");
    assert_eq!(snapshot.running, 0, "no job is left running");

    // The same facts through the armed gauges.
    assert_eq!(obs.metrics.gauge_value("wp_pool_queue_depth"), Some(0));
    assert_eq!(obs.metrics.gauge_value("wp_pool_running"), Some(0));
    assert_eq!(
        obs.metrics.counter_value("wp_engine_jobs_ok_total"),
        Some(experiment.job_count() as u64)
    );
}
