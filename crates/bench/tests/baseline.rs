//! Round-trip integration tests for the stored-baseline subsystem:
//! bless → gate clean, perturb → gate flags with exit code exactly 1,
//! and two independent bless runs are byte-identical.

use std::path::PathBuf;

use wp_bench::baseline::{bless, gate, BASELINE_FILES, PERF_BASELINE_FILE};
use wp_tune::DiffThresholds;

/// A fresh scratch directory under the system temp dir; any leftover
/// from a previous run is cleared first.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wp-baseline-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn bless_gate_round_trip_and_perturbation() {
    let blessed = scratch("blessed");
    let paths = bless(&blessed, true).expect("bless");
    assert_eq!(paths.len(), BASELINE_FILES.len() + 1, "canonical pair + perf manifest");
    assert!(paths[BASELINE_FILES.len()].ends_with(PERF_BASELINE_FILE));
    for path in &paths {
        assert!(path.is_file(), "{} missing", path.display());
    }

    // A gate straight after a bless must be clean: same tree, same
    // pipelines, deterministic manifests.
    let report =
        gate(&blessed, &scratch("fresh-clean"), true, DiffThresholds::default()).expect("gate");
    assert!(report.is_clean(), "fresh gate flagged: {:?}", report.json().to_compact());
    assert_eq!(report.exit_code(), 0);

    // Perturb one blessed chain energy by far more than the 2%
    // relative gate and the 1024 pJ absolute floor (prepending a digit
    // scales the value ~10x): the gate must flag it, exit code
    // exactly 1.
    let trace_path = blessed.join(BASELINE_FILES[0]);
    let text = std::fs::read_to_string(&trace_path).expect("read blessed trace report");
    let perturbed = text.replacen("\"energy_pj\": ", "\"energy_pj\": 9", 1);
    assert_ne!(text, perturbed, "no chain energy found to perturb");
    std::fs::write(&trace_path, perturbed).expect("write perturbed baseline");

    let report =
        gate(&blessed, &scratch("fresh-perturbed"), true, DiffThresholds::default()).expect("gate");
    assert!(report.regressions() > 0);
    assert_eq!(report.exit_code(), 1, "a gated shift exits exactly 1");
    // Only the trace-report manifest was touched; the tuned-areas
    // manifest must still diff clean.
    assert_eq!(report.diffs[1].1.regressions(), 0);

    for dir in [blessed, scratch("fresh-clean"), scratch("fresh-perturbed")] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn perf_speedup_drift_gates_under_generous_thresholds() {
    let blessed = scratch("perf-blessed");
    bless(&blessed, true).expect("bless");

    // Scale every blessed speedup (the icache_pj metric slot) roughly
    // tenfold by prepending a digit: far past even the generous 75%
    // relative gate and the 1.0 absolute speedup floor. The honest
    // wall-clock wobble of the fresh re-measurement must NOT flag; the
    // fabricated speedup shift must.
    let path = blessed.join(PERF_BASELINE_FILE);
    let text = std::fs::read_to_string(&path).expect("read perf baseline");
    let perturbed = text.replace("\"icache_pj\": ", "\"icache_pj\": 9");
    assert_ne!(text, perturbed, "no speedup field found to perturb");
    std::fs::write(&path, perturbed).expect("write perturbed perf baseline");

    let report =
        gate(&blessed, &scratch("perf-fresh"), true, DiffThresholds::default()).expect("gate");
    let (name, perf_diff) = &report.diffs[BASELINE_FILES.len()];
    assert_eq!(name, PERF_BASELINE_FILE);
    assert!(perf_diff.regressions() > 0, "tenfold speedup shift must flag");
    assert_eq!(report.exit_code(), 1);
    // The byte-deterministic manifests are untouched and stay clean.
    assert_eq!(report.diffs[0].1.regressions(), 0);
    assert_eq!(report.diffs[1].1.regressions(), 0);

    for dir in [blessed, scratch("perf-fresh")] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn independent_bless_runs_are_byte_identical() {
    let first_dir = scratch("determinism-a");
    let second_dir = scratch("determinism-b");
    bless(&first_dir, true).expect("first bless");
    bless(&second_dir, true).expect("second bless");
    for name in BASELINE_FILES {
        let first = std::fs::read(first_dir.join(name)).expect("read first");
        let second = std::fs::read(second_dir.join(name)).expect("read second");
        assert_eq!(first, second, "{name} differs between two bless runs");
    }
    let _ = std::fs::remove_dir_all(first_dir);
    let _ = std::fs::remove_dir_all(second_dir);
}
