//! Layout-equivalence property suite: every [`Layout`] pass must be a
//! pure reordering of the natural program.
//!
//! For each benchmark × pass in the layout competition roster:
//!
//! * **permutation** — the emitted block order is a permutation of the
//!   natural block ids (nothing dropped, nothing duplicated);
//! * **chain contiguity** — each chain's blocks stay adjacent and in
//!   chain order (fall-through and call/return glue survives the
//!   reorder), so the binary is valid for any WP area size;
//! * **relocations resolve** — the link succeeds and the emitted image
//!   has exactly the natural text length;
//! * **architectural digest** — the relaid program computes the same
//!   checksum as the natural layout (the reorder touches *where* code
//!   sits, never *what* it computes).
//!
//! Set `WP_QUICK=1` to trim the sweep to the CI smoke subset.

use wp_bench::engine::Engine;
use wp_bench::layout_compare::compare_layouts;
use wp_core::{measure_with, MeasureOptions, Scheme};
use wp_mem::CacheGeometry;
use wp_workloads::{Benchmark, InputSet};

fn sweep_benchmarks() -> &'static [Benchmark] {
    if wp_core::env::quick() {
        &[Benchmark::Crc, Benchmark::Sha, Benchmark::Bitcount]
    } else {
        &Benchmark::ALL
    }
}

#[test]
fn every_pass_is_a_chain_contiguous_permutation() {
    let engine = Engine::global();
    for &benchmark in sweep_benchmarks() {
        let workbench = engine.workbench(benchmark).expect("workbench");
        let natural = workbench
            .link(wp_linker::Layout::Natural, InputSet::Small)
            .expect("natural link");
        for layout in compare_layouts() {
            let tag = format!("{}/{}", benchmark.name(), layout.label());
            let output = workbench.link(layout, InputSet::Small).expect("link");

            // Relocations resolved into a text of unchanged size.
            assert_eq!(
                output.image.text.len(),
                natural.image.text.len(),
                "{tag}: text length changed"
            );

            // The block order is a permutation of the natural ids.
            let n = output.icfg.len();
            assert_eq!(output.block_order.len(), n, "{tag}: block count changed");
            let mut seen = vec![false; n];
            for &id in &output.block_order {
                assert!(!seen[id], "{tag}: block {id} emitted twice");
                seen[id] = true;
            }

            // Chains stay contiguous and in order: each chain's block
            // list appears as a consecutive slice of the emitted order.
            let mut position = vec![0usize; n];
            for (at, &id) in output.block_order.iter().enumerate() {
                position[id] = at;
            }
            for (c, chain) in output.chains.iter().enumerate() {
                for pair in chain.blocks.windows(2) {
                    assert_eq!(
                        position[pair[1]],
                        position[pair[0]] + 1,
                        "{tag}: chain {c} split between blocks {} and {}",
                        pair[0],
                        pair[1]
                    );
                }
            }
        }
    }
}

/// Running the relaid binary must reproduce the natural layout's
/// architectural checksum — `measure_with` additionally verifies every
/// run against the benchmark's golden reference, so a pass that broke
/// control flow fails twice over.
#[test]
fn every_pass_preserves_the_architectural_digest() {
    let engine = Engine::global();
    let icache = CacheGeometry::xscale_icache();
    let scheme = Scheme::WayPlacement { area_bytes: 1024 };
    for &benchmark in sweep_benchmarks() {
        let workbench = engine.workbench(benchmark).expect("workbench");
        let mut checksums = Vec::new();
        for layout in compare_layouts() {
            let options = MeasureOptions::new(InputSet::Small).with_layout(layout);
            let (m, _) = measure_with(&workbench, icache, scheme, options)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", benchmark.name(), layout.label()));
            checksums.push((layout.label(), m.run.checksum));
        }
        let (_, natural) = checksums[0];
        for (label, checksum) in &checksums {
            assert_eq!(
                *checksum,
                natural,
                "{}/{label}: architectural digest diverged from natural",
                benchmark.name()
            );
        }
    }
}
