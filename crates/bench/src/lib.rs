//! # wp-bench — the experiment harness
//!
//! Regenerates every table and figure of the way-placement paper (see
//! DESIGN.md §6 for the experiment index):
//!
//! | binary   | reproduces                                        |
//! |----------|---------------------------------------------------|
//! | `table1` | Table 1 — the baseline system configuration       |
//! | `fig1`   | Figure 1 — 12 vs 3 tag comparisons                |
//! | `fig4`   | Figure 4 — per-benchmark energy and ED, 32 KB/32w |
//! | `fig5`   | Figure 5 — way-placement area size sweep          |
//! | `fig6`   | Figure 6 — cache size x associativity grid        |
//! | `ablation` | DESIGN.md §10 — layout/elision/replacement studies |
//! | `sensitivity` | energy-model perturbation study              |
//!
//! Every binary runs on the shared [`engine`]: workbenches are
//! assembled and profiled exactly once per process, baselines are
//! shared across schemes, jobs run on a bounded deterministic worker
//! pool, failures are reported structurally instead of panicking, and
//! each binary writes a `BENCH_<fig>.json` manifest (see
//! [`write_manifest`]) alongside its human-readable output.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod autotune;
pub mod baseline;
pub mod campaign;
pub mod chaos;
pub mod engine;
pub mod layout_compare;
pub mod obs;
pub mod perf;
pub mod timing;

/// The serde-free JSON module now lives in `wp-trace` (telemetry needs
/// it below the harness); re-exported here so `wp_bench::json::Json`
/// keeps working.
pub use wp_trace::json;

use std::path::PathBuf;

use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{Measurement, Scheme};

pub use engine::{
    Engine, EngineStats, Experiment, JobFailure, JobPhase, JobRow, PoolSnapshot, RetryPolicy,
    SharedError, SuiteReport,
};
pub use json::Json;

/// One benchmark's baseline-normalised results for a set of schemes.
#[derive(Clone, Debug)]
pub struct SuiteRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Per scheme: `(label, normalised I-cache energy, ED product)`.
    pub values: Vec<(String, f64, f64)>,
}

/// Measures `schemes` (plus the implicit shared baseline) for one
/// benchmark, through the process-wide [`Engine`] caches.
///
/// # Errors
///
/// Propagates any (shared) link/simulation/verification failure.
pub fn run_benchmark(
    benchmark: Benchmark,
    icache: CacheGeometry,
    schemes: &[Scheme],
) -> Result<SuiteRow, SharedError> {
    let engine = Engine::global();
    let baseline = engine.baseline(benchmark, icache, InputSet::Large)?;
    let values = schemes
        .iter()
        .map(|&scheme| -> Result<_, SharedError> {
            let m = engine.measure(benchmark, icache, scheme, InputSet::Large)?;
            Ok((scheme.label(), m.normalized_icache_energy(&baseline), m.ed_product(&baseline)))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SuiteRow { benchmark, values })
}

/// Runs the whole suite on the process-wide [`Engine`]: bounded
/// parallelism, memoised workbenches and baselines, deterministic row
/// order, and structured (panic-free) failure reporting via
/// [`SuiteReport::failures`].
#[must_use]
pub fn run_suite(
    benchmarks: &[Benchmark],
    icache: CacheGeometry,
    schemes: &[Scheme],
) -> SuiteReport {
    Engine::global().run(&Experiment::new(benchmarks, [icache], schemes))
}

/// Arithmetic mean of the `index`-th scheme's normalised energy across
/// rows (the paper's "average" bars).
#[must_use]
pub fn mean_energy(rows: &[SuiteRow], index: usize) -> f64 {
    rows.iter().map(|r| r.values[index].1).sum::<f64>() / rows.len() as f64
}

/// Arithmetic mean of the `index`-th scheme's ED product.
#[must_use]
pub fn mean_ed(rows: &[SuiteRow], index: usize) -> f64 {
    rows.iter().map(|r| r.values[index].2).sum::<f64>() / rows.len() as f64
}

/// Renders a padded table: per-benchmark rows plus the average, one
/// column pair (energy, ED) per scheme.
#[must_use]
pub fn format_table(rows: &[SuiteRow]) -> String {
    let mut out = String::new();
    let labels: Vec<&str> = rows[0].values.iter().map(|(label, _, _)| label.as_str()).collect();
    out.push_str(&format!("{:<12}", "benchmark"));
    for label in &labels {
        out.push_str(&format!(" | {label:>26} (E%, ED)"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<12}", row.benchmark.name()));
        for (_, energy, ed) in &row.values {
            out.push_str(&format!(" | {:>26.1}%, {:>5.3}", energy * 100.0, ed));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<12}", "average"));
    for index in 0..labels.len() {
        out.push_str(&format!(
            " | {:>26.1}%, {:>5.3}",
            mean_energy(rows, index) * 100.0,
            mean_ed(rows, index)
        ));
    }
    out.push('\n');
    out
}

/// Extra detail used by the figure binaries: a single measurement's
/// activity summary line.
#[must_use]
pub fn describe(m: &Measurement) -> String {
    format!(
        "{}: {} insns, {} cycles (CPI {:.2}), fetch hit {:.2}%, tags/fetch {:.2}",
        m.scheme.label(),
        m.run.instructions,
        m.run.cycles,
        m.run.cpi(),
        m.run.fetch.hit_rate() * 100.0,
        m.run.fetch.tags_per_fetch(),
    )
}

/// The paper's evaluation geometries (figure 6 grid).
#[must_use]
pub fn figure6_geometries() -> Vec<CacheGeometry> {
    let mut geometries = Vec::new();
    for size_kb in [16u32, 32, 64] {
        for ways in [8u32, 16, 32] {
            geometries.push(CacheGeometry::new(size_kb * 1024, ways, 32));
        }
    }
    geometries
}

/// The figure 5 way-placement area sizes, in bytes.
pub const FIGURE5_AREAS: [u32; 6] = [32 * 1024, 16 * 1024, 8 * 1024, 4 * 1024, 2 * 1024, 1024];

/// Where `BENCH_<fig>.json` manifests go: `$WP_BENCH_DIR` when set
/// (created if missing by [`write_manifest`]), else the working
/// directory.
#[must_use]
pub fn manifest_path(fig: &str) -> PathBuf {
    wp_core::env::bench_dir().join(format!("BENCH_{fig}.json"))
}

/// Where a figure's JSONL checkpoint lives (next to its manifest):
/// `BENCH_<fig>.checkpoint.jsonl` under `$WP_BENCH_DIR` or the working
/// directory. Present only while a [`run_suite_checkpointed`] run is
/// incomplete; removed once every job has succeeded.
#[must_use]
pub fn checkpoint_path(fig: &str) -> PathBuf {
    wp_core::env::bench_dir().join(format!("BENCH_{fig}.checkpoint.jsonl"))
}

/// [`run_suite`] with checkpoint/resume: completed rows stream to
/// [`checkpoint_path`]`(fig)` as they finish, and a rerun after an
/// interrupted or partially-failed campaign replays them from disk,
/// executing only the remainder (see [`Engine::run_checkpointed`]).
#[must_use]
pub fn run_suite_checkpointed(
    fig: &str,
    benchmarks: &[Benchmark],
    icache: CacheGeometry,
    schemes: &[Scheme],
) -> SuiteReport {
    Engine::global()
        .run_checkpointed(&Experiment::new(benchmarks, [icache], schemes), &checkpoint_path(fig))
}

/// Writes a pretty-printed manifest to [`manifest_path`] and returns
/// the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_manifest(fig: &str, manifest: &Json) -> std::io::Result<PathBuf> {
    let path = manifest_path(fig);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, manifest.to_pretty())?;
    Ok(path)
}

/// End-of-binary bookkeeping shared by the figure binaries: writes the
/// `BENCH_<fig>.json` manifest, prints the engine stats line and every
/// structured failure to stderr, and returns the process exit code
/// (`1` when any job failed, else `0`).
#[must_use = "pass the exit code to std::process::exit"]
pub fn finish(fig: &str, report: &SuiteReport, manifest: &Json) -> i32 {
    match write_manifest(fig, manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: failed to write BENCH_{fig}.json: {e}"),
    }
    eprintln!("{}", report.stats);
    if report.print_failures() > 0 {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_one_small_benchmark() {
        let geom = CacheGeometry::xscale_icache();
        let report =
            run_suite(&[Benchmark::Crc], geom, &[Scheme::WayPlacement { area_bytes: 32 * 1024 }]);
        assert!(report.is_complete(), "failures: {:?}", report.failures);
        let rows = report.rows_for(geom);
        assert_eq!(rows.len(), 1);
        let (_, energy, ed) = &rows[0].values[0];
        assert!(*energy < 1.0);
        assert!(*ed < 1.0);
        let table = format_table(&rows);
        assert!(table.contains("crc"));
        assert!(table.contains("average"));
        assert!(report.stats.workbench_builds >= 1);
    }

    #[test]
    fn figure6_grid_is_nine_points() {
        assert_eq!(figure6_geometries().len(), 9);
    }

    #[test]
    fn manifest_path_defaults_to_cwd() {
        // Mutating the process env would race other tests; only the
        // default is asserted here.
        if std::env::var_os("WP_BENCH_DIR").is_none() {
            assert_eq!(manifest_path("fig4"), PathBuf::from("./BENCH_fig4.json"));
        }
    }
}
