//! # wp-bench — the experiment harness
//!
//! Regenerates every table and figure of the way-placement paper (see
//! DESIGN.md §6 for the experiment index):
//!
//! | binary   | reproduces                                        |
//! |----------|---------------------------------------------------|
//! | `table1` | Table 1 — the baseline system configuration       |
//! | `fig1`   | Figure 1 — 12 vs 3 tag comparisons                |
//! | `fig4`   | Figure 4 — per-benchmark energy and ED, 32 KB/32w |
//! | `fig5`   | Figure 5 — way-placement area size sweep          |
//! | `fig6`   | Figure 6 — cache size x associativity grid        |
//! | `ablation` | DESIGN.md §10 — layout/elision/replacement studies |
//!
//! Each binary prints the measured series alongside the paper's
//! reported values, so EXPERIMENTS.md can be regenerated mechanically.

use std::sync::Mutex;

use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::Benchmark;
use wp_core::{measure, CoreError, Measurement, Scheme, Workbench};

/// One benchmark's baseline-normalised results for a set of schemes.
#[derive(Clone, Debug)]
pub struct SuiteRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Per scheme: `(label, normalised I-cache energy, ED product)`.
    pub values: Vec<(String, f64, f64)>,
}

/// Measures `schemes` (plus the implicit baseline) for one benchmark.
///
/// # Errors
///
/// Propagates any link/simulation/verification failure.
pub fn run_benchmark(
    benchmark: Benchmark,
    icache: CacheGeometry,
    schemes: &[Scheme],
) -> Result<SuiteRow, CoreError> {
    let workbench = Workbench::new(benchmark)?;
    let baseline = measure(&workbench, icache, Scheme::Baseline)?;
    let values = schemes
        .iter()
        .map(|&scheme| -> Result<_, CoreError> {
            let m = measure(&workbench, icache, scheme)?;
            Ok((
                scheme.label(),
                m.normalized_icache_energy(&baseline),
                m.ed_product(&baseline),
            ))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SuiteRow { benchmark, values })
}

/// Runs the whole suite in parallel (one thread per benchmark).
///
/// # Panics
///
/// Panics if any benchmark fails — experiment harnesses fail loudly.
#[must_use]
pub fn run_suite(
    benchmarks: &[Benchmark],
    icache: CacheGeometry,
    schemes: &[Scheme],
) -> Vec<SuiteRow> {
    let results: Mutex<Vec<SuiteRow>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for &benchmark in benchmarks {
            let results = &results;
            scope.spawn(move || {
                let row = run_benchmark(benchmark, icache, schemes)
                    .unwrap_or_else(|e| panic!("{benchmark}: {e}"));
                results.lock().expect("poisoned").push(row);
            });
        }
    });
    let mut rows = results.into_inner().expect("poisoned");
    rows.sort_by_key(|row| {
        Benchmark::ALL.iter().position(|b| *b == row.benchmark).unwrap_or(usize::MAX)
    });
    rows
}

/// Arithmetic mean of the `index`-th scheme's normalised energy across
/// rows (the paper's "average" bars).
#[must_use]
pub fn mean_energy(rows: &[SuiteRow], index: usize) -> f64 {
    rows.iter().map(|r| r.values[index].1).sum::<f64>() / rows.len() as f64
}

/// Arithmetic mean of the `index`-th scheme's ED product.
#[must_use]
pub fn mean_ed(rows: &[SuiteRow], index: usize) -> f64 {
    rows.iter().map(|r| r.values[index].2).sum::<f64>() / rows.len() as f64
}

/// Renders a padded table: per-benchmark rows plus the average, one
/// column pair (energy, ED) per scheme.
#[must_use]
pub fn format_table(rows: &[SuiteRow]) -> String {
    let mut out = String::new();
    let labels: Vec<&str> =
        rows[0].values.iter().map(|(label, _, _)| label.as_str()).collect();
    out.push_str(&format!("{:<12}", "benchmark"));
    for label in &labels {
        out.push_str(&format!(" | {label:>26} (E%, ED)"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<12}", row.benchmark.name()));
        for (_, energy, ed) in &row.values {
            out.push_str(&format!(" | {:>26.1}%, {:>5.3}", energy * 100.0, ed));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<12}", "average"));
    for index in 0..labels.len() {
        out.push_str(&format!(
            " | {:>26.1}%, {:>5.3}",
            mean_energy(rows, index) * 100.0,
            mean_ed(rows, index)
        ));
    }
    out.push('\n');
    out
}

/// Extra detail used by the figure binaries: a single measurement's
/// activity summary line.
#[must_use]
pub fn describe(m: &Measurement) -> String {
    format!(
        "{}: {} insns, {} cycles (CPI {:.2}), fetch hit {:.2}%, tags/fetch {:.2}",
        m.scheme.label(),
        m.run.instructions,
        m.run.cycles,
        m.run.cpi(),
        m.run.fetch.hit_rate() * 100.0,
        m.run.fetch.tags_per_fetch(),
    )
}

/// The paper's evaluation geometries (figure 6 grid).
#[must_use]
pub fn figure6_geometries() -> Vec<CacheGeometry> {
    let mut geometries = Vec::new();
    for size_kb in [16u32, 32, 64] {
        for ways in [8u32, 16, 32] {
            geometries.push(CacheGeometry::new(size_kb * 1024, ways, 32));
        }
    }
    geometries
}

/// The figure 5 way-placement area sizes, in bytes.
pub const FIGURE5_AREAS: [u32; 6] =
    [32 * 1024, 16 * 1024, 8 * 1024, 4 * 1024, 2 * 1024, 1024];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_one_small_benchmark() {
        let rows = run_suite(
            &[Benchmark::Crc],
            CacheGeometry::xscale_icache(),
            &[Scheme::WayPlacement { area_bytes: 32 * 1024 }],
        );
        assert_eq!(rows.len(), 1);
        let (_, energy, ed) = &rows[0].values[0];
        assert!(*energy < 1.0);
        assert!(*ed < 1.0);
        let table = format_table(&rows);
        assert!(table.contains("crc"));
        assert!(table.contains("average"));
    }

    #[test]
    fn figure6_grid_is_nine_points() {
        assert_eq!(figure6_geometries().len(), 9);
    }
}
