//! Stored-baseline blessing and gating.
//!
//! The reproduction's central artefacts — the traced-run report, the
//! autotuned WP-area manifest, the chaos-campaign resilience manifest
//! and the obs-report reconciliation manifest — must stay stable as
//! the simulator grows: silent drift in
//! any scheme's counters invalidates every number the paper comparison
//! rests on. This module freezes them:
//!
//! * [`bless`] runs the trace-report and tuned-areas pipelines and
//!   writes **canonical** manifests (deterministic: no wall-clock
//!   fields, no environment-dependent paths, with a provenance header
//!   recording grid/tolerance/input set) into a baselines directory
//!   that is committed to the repository;
//! * [`gate`] re-runs the same pipelines into a scratch directory and
//!   drives [`wp_tune::diff`] against the blessed copies, flagging any
//!   fetch/energy shift past the gates and any structural mismatch
//!   (missing run, changed grid, renamed chain).
//!
//! The `bless` and `gate` binaries are thin wrappers; the library
//! entry points keep the whole round trip testable in-process, where
//! the engine's memoised workbenches make a quick bless/gate cycle
//! cheap.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use wp_campaign::{Store, TaskKey};
use wp_core::{measure_traced, MeasureOptions, Scheme};
use wp_energy::CacheEnergyModel;
use wp_mem::{CacheGeometry, FetchStats};
use wp_obs::Obs;
use wp_trace::{ChainAttribution, TraceRecorder};
use wp_tune::{DiffThresholds, TraceDiff, TraceSet, TuneError, DEFAULT_TOLERANCE};
use wp_workloads::{Benchmark, InputSet};

use crate::autotune::tune_suite;
use crate::engine::Engine;
use crate::perf;
use crate::{Json, FIGURE5_AREAS};

/// Schema tag the blessed trace-report baseline carries.
pub const BASELINE_SCHEMA: &str = "baseline/v1";
/// The default committed baselines directory, relative to the repo
/// root (where CI runs).
pub const DEFAULT_BASELINE_DIR: &str = "baselines";
/// The **byte-deterministic** manifests a baseline set consists of, in
/// bless/gate order. Two bless runs over the same tree produce these
/// byte-identically.
pub const BASELINE_FILES: [&str; 5] = [
    "BENCH_trace_report.json",
    "BENCH_tuned_areas.json",
    "BENCH_chaos_campaign.json",
    "BENCH_obs_report.json",
    "BENCH_layout_compare.json",
];
/// The wall-clock fetch-core throughput manifest blessed *alongside*
/// the canonical pair. Deliberately not in [`BASELINE_FILES`]:
/// throughput is measured, not derived, so byte-identity cannot apply;
/// the gate diffs it under [`perf_thresholds`] instead.
pub const PERF_BASELINE_FILE: &str = "BENCH_perf_fetch.json";
/// Hottest chains recorded per traced run (mirrors `trace_report`).
pub const TOP_K: usize = 5;
/// Relative tolerance when reconciling per-chain picojoule sums.
const ENERGY_REL_TOL: f64 = 1e-6;

/// The traced-run matrix of the trace-report pipeline: quick is the
/// CI smoke shape (one benchmark, small inputs), full is the shape
/// `trace_report` publishes.
#[must_use]
pub fn trace_benchmarks(quick: bool) -> (&'static [Benchmark], InputSet) {
    if quick {
        (&[Benchmark::Crc], InputSet::Small)
    } else {
        (&[Benchmark::Crc, Benchmark::Sha, Benchmark::Bitcount], InputSet::Large)
    }
}

/// The benchmark set of the tuned-areas pipeline: quick tunes the CI
/// smoke benchmark, full tunes the whole 23-benchmark suite so the
/// blessed `BENCH_tuned_areas.json` covers every figure-5 curve.
#[must_use]
pub fn tuned_benchmarks(quick: bool) -> (Vec<Benchmark>, InputSet) {
    if quick {
        (vec![Benchmark::Crc], InputSet::Small)
    } else {
        (Benchmark::ALL.to_vec(), InputSet::Large)
    }
}

fn pipeline_error(context: &str, error: &dyn std::fmt::Display) -> TuneError {
    TuneError::Measure { message: format!("{context}: {error}") }
}

/// Renders the hottest `top_k` chains of an attribution as manifest
/// rows (shared with the `trace_report` binary, so blessed baselines
/// and published reports agree on what a hot-chain record is).
#[must_use]
pub fn hot_chains_json(
    attribution: &ChainAttribution,
    model: &CacheEnergyModel,
    top_k: usize,
) -> Vec<Json> {
    let total_fetches = attribution.total().fetches.max(1);
    attribution
        .ranked()
        .into_iter()
        .take(top_k)
        .map(|id| {
            let row = &attribution.rows()[id as usize];
            let info = &attribution.map().chains()[id as usize];
            let energy_pj = model.fetch_energy(&FetchStats::from(&row.to_counters())).total_pj();
            Json::obj([
                ("chain", Json::from(id)),
                ("label", Json::from(info.label.as_str())),
                ("weight", Json::Uint(info.weight)),
                ("insns", Json::from(info.insns)),
                ("fetches", Json::Uint(row.fetches)),
                ("fetch_share", Json::from(row.fetches as f64 / total_fetches as f64)),
                (
                    "tags_per_fetch",
                    Json::from(row.tag_comparisons as f64 / row.fetches.max(1) as f64),
                ),
                ("energy_pj", Json::from(energy_pj)),
            ])
        })
        .collect()
}

/// One canonical traced run: everything `trace_report` derives that is
/// deterministic (counters, energies, hot chains), nothing that is not
/// (wall-clock spans, sink overhead, ring/interval bookkeeping).
/// Reconciliation failures are hard errors — a baseline whose chain
/// sums disagree with the hardware counters must never be blessed.
fn canonical_run(
    benchmark: Benchmark,
    icache: CacheGeometry,
    scheme: Scheme,
    set: InputSet,
) -> Result<Json, TuneError> {
    canonical_run_on(Engine::global(), benchmark, icache, scheme, set)
}

/// [`canonical_run`] on an explicit engine, so a campaign trace-run
/// node executes on the campaign's own pool (with its retry policy and
/// armed [`wp_obs::Obs`]) instead of the process-global engine.
pub(crate) fn canonical_run_on(
    engine: &Engine,
    benchmark: Benchmark,
    icache: CacheGeometry,
    scheme: Scheme,
    set: InputSet,
) -> Result<Json, TuneError> {
    let tag = format!("{}/{}", benchmark.name(), scheme.label());
    let workbench = engine.workbench(benchmark).map_err(|e| pipeline_error(&tag, &e))?;
    let map = workbench
        .link(scheme.layout(), set)
        .map_err(|e| pipeline_error(&tag, &e))?
        .layout_map();
    let mut recorder = TraceRecorder::new().with_layout(map);
    let (m, _) =
        measure_traced(&workbench, icache, scheme, MeasureOptions::new(set), &mut recorder)
            .map_err(|e| pipeline_error(&tag, &e))?;
    let attribution = recorder
        .attribution()
        .ok_or_else(|| pipeline_error(&tag, &"recorder has no layout"))?;

    let total = attribution.total();
    let aggregate = m.run.fetch;
    if total.fetches != aggregate.fetches
        || total.tag_comparisons != aggregate.tag_comparisons
        || attribution.unattributed().fetches != 0
    {
        return Err(pipeline_error(&tag, &"attribution does not reconcile with counters"));
    }
    let mem = scheme.memory_config(icache);
    let model = CacheEnergyModel::for_scheme(icache, mem.icache.scheme);
    let chain_pj: f64 = attribution
        .rows()
        .iter()
        .chain(std::iter::once(attribution.unattributed()))
        .map(|row| model.fetch_energy(&FetchStats::from(&row.to_counters())).total_pj())
        .sum();
    let aggregate_pj = m.energy.icache.total_pj();
    if (chain_pj - aggregate_pj).abs() > ENERGY_REL_TOL * aggregate_pj.max(1.0) {
        return Err(pipeline_error(&tag, &"per-chain energies do not sum to the aggregate"));
    }

    Ok(Json::obj([
        ("benchmark", Json::from(benchmark.name())),
        ("scheme", Json::from(scheme.label().as_str())),
        ("fetches", Json::Uint(aggregate.fetches)),
        ("cycles", Json::Uint(m.run.cycles)),
        ("icache_pj", Json::from(aggregate_pj)),
        ("chains", Json::from(attribution.rows().len())),
        ("hot_chains", Json::Arr(hot_chains_json(attribution, &model, TOP_K))),
    ]))
}

pub(crate) fn input_set_name(set: InputSet) -> &'static str {
    match set {
        InputSet::Small => "small",
        InputSet::Large => "large",
    }
}

/// The two way-aware schemes every trace-report run covers, in manifest
/// order. Shared with the campaign planner so its per-run task keys
/// describe exactly the runs [`build_trace_baseline`] performs.
#[must_use]
pub fn trace_schemes() -> [Scheme; 2] {
    [Scheme::WayPlacement { area_bytes: 32 * 1024 }, Scheme::WayMemoization]
}

/// Assembles the trace-report baseline manifest from already-rendered
/// canonical run objects. Split from [`build_trace_baseline`] so a
/// campaign manifest node can build byte-identical output from stored
/// run payloads without re-simulating; `task_key` lands in the
/// provenance block (display-only — the diff gate never joins on it).
#[must_use]
pub fn trace_manifest_from_runs(quick: bool, runs: Vec<Json>, task_key: &TaskKey) -> Json {
    let icache = CacheGeometry::xscale_icache();
    let (benchmarks, set) = trace_benchmarks(quick);
    let schemes = trace_schemes();
    Json::obj([
        ("schema", Json::from(BASELINE_SCHEMA)),
        ("kind", Json::from("trace_report")),
        (
            "provenance",
            Json::obj([
                ("quick", Json::from(quick)),
                ("input_set", Json::from(input_set_name(set))),
                ("geometry", Json::from(icache.to_string())),
                ("schemes", Json::arr(schemes.iter().map(|s| Json::from(s.label().as_str())))),
                ("benchmarks", Json::arr(benchmarks.iter().map(|b| Json::from(b.name())))),
                ("hot_chains", Json::from(TOP_K)),
                ("task_key", Json::from(task_key.hex().as_str())),
            ]),
        ),
        ("runs", Json::Arr(runs)),
    ])
}

/// Builds the canonical trace-report baseline: both way-aware schemes
/// over the trace-report benchmark matrix, counters and per-chain
/// energies only. Byte-deterministic for a fixed `quick` flag.
///
/// # Errors
///
/// [`TuneError::Measure`] wrapping any pipeline failure or
/// reconciliation mismatch.
pub fn build_trace_baseline(quick: bool) -> Result<Json, TuneError> {
    let icache = CacheGeometry::xscale_icache();
    let (benchmarks, set) = trace_benchmarks(quick);
    let schemes = trace_schemes();
    let mut runs = Vec::with_capacity(benchmarks.len() * schemes.len());
    for &benchmark in benchmarks {
        for &scheme in &schemes {
            runs.push(canonical_run(benchmark, icache, scheme, set)?);
        }
    }
    let task_key =
        crate::campaign::keys::trace_manifest(quick, &crate::campaign::InputTags::default());
    Ok(trace_manifest_from_runs(quick, runs, &task_key))
}

/// Builds the canonical tuned-areas baseline: [`tune_suite`] over the
/// figure-5 grid — the whole 23-benchmark suite in full mode — with a
/// `quick` provenance marker. The `tuned_areas/v1` schema already
/// records grid, tolerance, geometry and input set, so the blessed
/// copy stays directly consumable by `fig5 --areas`.
///
/// # Errors
///
/// Everything [`tune_suite`] raises.
pub fn build_tuned_baseline(quick: bool) -> Result<Json, TuneError> {
    let (benchmarks, set) = tuned_benchmarks(quick);
    let icache = CacheGeometry::xscale_icache();
    let (_, mut manifest) =
        tune_suite(&benchmarks, icache, &FIGURE5_AREAS, DEFAULT_TOLERANCE, set)?;
    manifest.push("quick", Json::from(quick));
    Ok(manifest)
}

/// Gates for the throughput manifest: deliberately generous, because
/// the Mfetch/s columns are wall-clock (they shift with the host),
/// while the speedup-vs-reference column (the energy metric slot) is
/// same-machine/same-process and only large, real fetch-core
/// slowdowns move it past a 75% relative shift.
#[must_use]
pub fn perf_thresholds() -> DiffThresholds {
    DiffThresholds { rel: 0.75, abs_fetches: 5.0, abs_energy: 1.0 }
}

/// Runs all six pipelines and writes their manifests into `dir`
/// (created if missing), returning the written paths: the
/// byte-deterministic [`BASELINE_FILES`] in order, then
/// [`PERF_BASELINE_FILE`].
///
/// # Errors
///
/// [`TuneError::Io`] on write failure, plus any pipeline failure —
/// including the perf tripwire, which refuses to bless a throughput
/// number from fetch cores that disagree, the chaos campaign, which
/// refuses to bless a tree whose resilience invariants fail, and the
/// obs_report pipeline, which refuses to bless a tree whose metrics do
/// not reconcile with ground truth.
pub fn bless(dir: &Path, quick: bool) -> Result<Vec<PathBuf>, TuneError> {
    let trace = build_trace_baseline(quick)?;
    let tuned = build_tuned_baseline(quick)?;
    let chaos = crate::chaos::build_chaos_baseline(quick)
        .map_err(|message| pipeline_error("chaos_campaign", &message))?;
    let obs = crate::obs::build_obs_baseline(quick)
        .map_err(|message| pipeline_error("obs_report", &message))?;
    let layout = crate::layout_compare::build_layout_baseline(quick)?;
    let perf = perf::measure(quick)
        .map_err(|message| pipeline_error("perf_fetch", &message))?
        .json();
    std::fs::create_dir_all(dir).map_err(|e| TuneError::io(dir, &e))?;
    let mut paths = Vec::with_capacity(BASELINE_FILES.len() + 1);
    let names = BASELINE_FILES.iter().copied().chain([PERF_BASELINE_FILE]);
    for (name, manifest) in names.zip([&trace, &tuned, &chaos, &obs, &layout, &perf]) {
        let path = dir.join(name);
        std::fs::write(&path, manifest.to_pretty()).map_err(|e| TuneError::io(&path, &e))?;
        paths.push(path);
    }
    Ok(paths)
}

/// The outcome of gating a fresh re-run against a blessed baseline
/// set: one [`TraceDiff`] per baseline manifest.
#[derive(Clone, Debug)]
pub struct GateReport {
    /// The blessed (baseline) directory.
    pub blessed_dir: PathBuf,
    /// The scratch directory the fresh manifests were written to.
    pub fresh_dir: PathBuf,
    /// Per-manifest comparisons: [`BASELINE_FILES`] in order, then
    /// [`PERF_BASELINE_FILE`] under [`perf_thresholds`].
    pub diffs: Vec<(String, TraceDiff)>,
}

impl GateReport {
    /// Total regression flags across every manifest.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.diffs.iter().map(|(_, diff)| diff.regressions()).sum()
    }

    /// `true` when nothing flagged.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.regressions() == 0
    }

    /// The process exit code CI gates on: 0 clean, 1 regression.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.is_clean())
    }

    /// Renders the `BENCH_gate.json` manifest body.
    #[must_use]
    pub fn json(&self) -> Json {
        Json::obj([
            ("schema", Json::from("gate/v1")),
            ("blessed_dir", Json::from(self.blessed_dir.display().to_string().as_str())),
            (
                "manifests",
                Json::arr(self.diffs.iter().map(|(name, diff)| {
                    Json::obj([
                        ("file", Json::from(name.as_str())),
                        ("regressions", Json::from(diff.regressions())),
                        ("diff", diff.json()),
                    ])
                })),
            ),
            ("regressions", Json::from(self.regressions())),
            ("ok", Json::from(self.is_clean())),
        ])
    }
}

/// Re-runs both pipelines into `fresh_dir` and diffs every blessed
/// manifest in `blessed_dir` against its fresh counterpart. The caller
/// owns both directories (and the decision to delete the scratch one).
///
/// # Errors
///
/// [`TuneError::Io`] / [`TuneError::Json`] / [`TuneError::Malformed`]
/// when a blessed manifest is missing or unreadable, plus any pipeline
/// failure during the re-run. Regressions are *not* errors — they are
/// reported through [`GateReport::regressions`].
pub fn gate(
    blessed_dir: &Path,
    fresh_dir: &Path,
    quick: bool,
    thresholds: DiffThresholds,
) -> Result<GateReport, TuneError> {
    bless(fresh_dir, quick)?;
    let mut diffs = Vec::with_capacity(BASELINE_FILES.len() + 1);
    let gates = BASELINE_FILES
        .iter()
        .copied()
        .map(|name| (name, thresholds))
        .chain([(PERF_BASELINE_FILE, perf_thresholds())]);
    for (name, gates) in gates {
        let blessed = TraceSet::load(&blessed_dir.join(name))?;
        let fresh = TraceSet::load(&fresh_dir.join(name))?;
        diffs.push((name.to_string(), TraceDiff::compute(&blessed, &fresh, gates)));
    }
    Ok(GateReport {
        blessed_dir: blessed_dir.to_path_buf(),
        fresh_dir: fresh_dir.to_path_buf(),
        diffs,
    })
}

/// [`gate`] with the fresh side produced through the campaign store
/// instead of a temp-dir re-simulation: the six baseline pipelines run
/// as a content-addressed DAG rooted at `store`, so a warm store (e.g.
/// right after a clean bless through the campaign) serves every
/// manifest as a pure hit and the gate costs seconds, while a cold
/// store computes exactly what [`gate`] would have. The diffed bytes
/// are identical either way.
///
/// # Errors
///
/// Blessed-manifest load failures, plus any pipeline failure inside the
/// campaign run (reported with the failing node labels). Regressions
/// are *not* errors.
pub fn gate_via_store(
    blessed_dir: &Path,
    store: &Store,
    quick: bool,
    thresholds: DiffThresholds,
    obs: Option<&Arc<Obs>>,
) -> Result<GateReport, TuneError> {
    use crate::campaign::{self, Group};

    let config = campaign::CampaignConfig::new(quick, Group::BASELINE.to_vec());
    let run = campaign::run(&config, store, obs);
    if !run.report.ok() {
        let failures: Vec<String> = run
            .report
            .failures()
            .iter()
            .map(|(label, error)| format!("{label}: {error}"))
            .collect();
        return Err(TuneError::Measure {
            message: format!("campaign pipelines failed: {}", failures.join("; ")),
        });
    }

    let mut diffs = Vec::with_capacity(BASELINE_FILES.len() + 1);
    let gates = [Group::Trace, Group::Tune, Group::Chaos, Group::Obs, Group::LayoutCompare]
        .into_iter()
        .map(|group| (group, thresholds))
        .chain([(Group::Perf, perf_thresholds())]);
    for (group, gates) in gates {
        let name = format!("BENCH_{}.json", group.manifest_name());
        let blessed = TraceSet::load(&blessed_dir.join(&name))?;
        let bytes = run.manifest(group).ok_or_else(|| TuneError::Measure {
            message: format!("campaign produced no payload for {name}"),
        })?;
        let text = String::from_utf8(bytes.to_vec()).map_err(|e| TuneError::Measure {
            message: format!("{name}: stored payload is not UTF-8: {e}"),
        })?;
        let stem = name.trim_start_matches("BENCH_").trim_end_matches(".json").to_string();
        let fresh = TraceSet::parse(&text, &format!("store:{name}"), &stem)?;
        diffs.push((name, TraceDiff::compute(&blessed, &fresh, gates)));
    }
    Ok(GateReport {
        blessed_dir: blessed_dir.to_path_buf(),
        fresh_dir: store.root().to_path_buf(),
        diffs,
    })
}
