//! Minimal micro-benchmark loop used by the `benches/` targets.
//!
//! The offline build cannot fetch `criterion`, so the bench targets use
//! this helper instead: warm up, run a fixed iteration count, report
//! min/median ns per iteration (min is the least noisy statistic for
//! short deterministic kernels).

use std::hint::black_box;
use std::time::Instant;

/// Runs `f` for `warmup` unrecorded iterations, then `iters` timed
/// ones, returning the per-iteration samples sorted ascending (ns).
fn timed_samples<R>(warmup: u32, iters: u32, mut f: impl FnMut() -> R) -> Vec<f64> {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples
}

/// Times `f` over `iters` iterations (after `warmup` unrecorded runs)
/// and prints one aligned result line. Returns the median ns/iter.
pub fn bench_loop<R>(label: &str, warmup: u32, iters: u32, f: impl FnMut() -> R) -> f64 {
    let samples = timed_samples(warmup, iters, f);
    let median = samples[samples.len() / 2];
    let min = samples[0];
    println!("{label:<40} {min:>12.0} ns/iter (min) {median:>12.0} ns/iter (median)");
    median
}

/// [`bench_loop`], but returns the **minimum** ns/iter — the statistic
/// `perf_fetch` gates on: for a short deterministic kernel the minimum
/// is the run least disturbed by the host, so it is the least noisy
/// estimate of the kernel's true cost.
pub fn bench_min<R>(label: &str, warmup: u32, iters: u32, f: impl FnMut() -> R) -> f64 {
    let samples = timed_samples(warmup, iters, f);
    let median = samples[samples.len() / 2];
    let min = samples[0];
    println!("{label:<40} {min:>12.0} ns/iter (min) {median:>12.0} ns/iter (median)");
    min
}

/// [`bench_loop`] with a throughput column: `elements` processed per
/// iteration, reported as million elements per second at the median.
pub fn bench_throughput<R>(
    label: &str,
    warmup: u32,
    iters: u32,
    elements: u64,
    f: impl FnMut() -> R,
) -> f64 {
    let median = bench_loop(label, warmup, iters, f);
    let meps = elements as f64 / median * 1e3;
    println!("{:<40} {meps:>12.2} M elements/s", "");
    median
}
