//! The `obs_report` pipeline: run the suite with observability armed
//! and reconcile every metric against independently-derived ground
//! truth.
//!
//! Metrics that nobody checks rot silently — a counter that drifts off
//! its source of truth is worse than no counter, because dashboards
//! keep trusting it. This pipeline makes the observability layer
//! *falsifiable*: it drives the engine through a scripted campaign
//! whose outcome is known exactly (one transient fault that must
//! retry, one deterministic failure that must surface, a
//! checkpoint/resume pass that must replay all but the victim, and a
//! quick chaos mini-campaign with real scheme demotions), then demands
//! that every counter, journal count, histogram total and account cell
//! agree with the [`SuiteReport`]s and [`ChaosOutcome`] the same run
//! produced through the ordinary, uninstrumented return path. Any
//! mismatch is a failed check and the binary exits 1.
//!
//! The canonical manifest ([`ObsReport::canonical_manifest`]) is
//! byte-deterministic — accounts are exported without their wall-clock
//! column and the only histograms included count simulated quantities —
//! so `BENCH_obs_report.json` rides the same bless/gate workflow as the
//! other stored baselines (its `runs` rows are
//! `wp_tune::TraceSet`-joinable).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{CoreError, Scheme};
use wp_obs::metrics::MetricSnapshot;
use wp_obs::Obs;

use crate::chaos::{run_campaign_on, ChaosOutcome};
use crate::engine::{Engine, Experiment, RetryPolicy, SuiteReport};
use crate::Json;

/// Acceptance bound on the cost of *armed* observability, percent of
/// the unarmed wall clock (min-of-N, interleaved).
pub const OBS_OVERHEAD_LIMIT_PCT: f64 = 2.0;

/// Worker-pool bound the pipeline pins: the cross-checks and the
/// journal must come out identical at any parallelism, and running at a
/// fixed width keeps the wall section comparable across hosts.
pub const OBS_WORKERS: usize = 4;

/// The scripted experiment the pipeline drives: quick is the CI smoke
/// shape, full is what the blessed baseline records.
#[must_use]
pub fn obs_experiment(quick: bool) -> Experiment {
    let icache = CacheGeometry::xscale_icache();
    if quick {
        Experiment::new(
            [Benchmark::Crc, Benchmark::Sha],
            [icache],
            [Scheme::WayMemoization, Scheme::WayPlacement { area_bytes: 8 * 1024 }],
        )
        .with_input_set(InputSet::Small)
    } else {
        Experiment::new(
            [Benchmark::Crc, Benchmark::Sha, Benchmark::Bitcount],
            [icache],
            [Scheme::WayPlacement { area_bytes: 32 * 1024 }, Scheme::WayMemoization],
        )
        .with_input_set(InputSet::Large)
    }
}

/// One reconciliation check: a metric/journal/account reading against
/// the ground truth the run's ordinary return path established.
#[derive(Clone, Debug)]
pub struct Check {
    /// What is being reconciled.
    pub name: &'static str,
    /// The independently-derived expected value.
    pub expected: u64,
    /// What the observability layer reported.
    pub actual: u64,
}

impl Check {
    /// Whether the reading agrees with ground truth.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.expected == self.actual
    }

    fn json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name)),
            ("expected", Json::Uint(self.expected)),
            ("actual", Json::Uint(self.actual)),
            ("ok", Json::from(self.ok())),
        ])
    }
}

/// The finished pipeline: both suite passes, the chaos mini-campaign,
/// and every reconciliation check.
pub struct ObsReport {
    /// Whether this was the quick (CI smoke) shape.
    pub quick: bool,
    /// The armed observability context (shared by both engines).
    pub obs: Arc<Obs>,
    /// The experiment that ran.
    pub experiment: Experiment,
    /// First pass: one retry victim, one hard failure, checkpointed.
    pub faulted: SuiteReport,
    /// Second pass: resumes the checkpoint, completes every job.
    pub resumed: SuiteReport,
    /// The chaos mini-campaign (always the quick matrix).
    pub chaos: ChaosOutcome,
    /// Every reconciliation check.
    pub checks: Vec<Check>,
    /// Per-worker busy time of the resumed engine, for the wall section.
    pub busy_ns: Vec<u64>,
}

impl ObsReport {
    /// Whether the scripted campaign behaved and every check passed.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.faulted.failures.len() == 1
            && self.resumed.is_complete()
            && !self.chaos.failed()
            && self.checks.iter().all(Check::ok)
    }

    /// Failed checks, for reporting.
    #[must_use]
    pub fn failed_checks(&self) -> Vec<&Check> {
        self.checks.iter().filter(|c| !c.ok()).collect()
    }

    /// The byte-deterministic manifest: provenance, accounts rendered
    /// as `TraceSet`-joinable `runs` rows (wall-clock column dropped),
    /// the deterministic metric values, and every check verdict.
    #[must_use]
    pub fn canonical_manifest(&self) -> Json {
        let key = crate::campaign::keys::obs(self.quick, &crate::campaign::InputTags::default());
        self.canonical_manifest_with_key(&key)
    }

    /// [`ObsReport::canonical_manifest`] with an explicit provenance
    /// task key, so the campaign DAG can stamp the key of the node
    /// that produced these bytes.
    #[must_use]
    pub fn canonical_manifest_with_key(&self, task_key: &wp_campaign::TaskKey) -> Json {
        let runs: Vec<Json> = self
            .obs
            .accounts
            .snapshot()
            .iter()
            .map(|(key, usage)| {
                Json::obj([
                    ("benchmark", Json::from(key.benchmark.as_str())),
                    ("scheme", Json::from(format!("{}#{}", key.scheme, key.phase).as_str())),
                    ("phase", Json::from(key.phase.as_str())),
                    ("fetches", Json::Uint(usage.fetches)),
                    ("cycles", Json::Uint(usage.cycles)),
                    ("retries", Json::Uint(usage.retries)),
                    ("icache_pj", Json::from(usage.energy_pj)),
                ])
            })
            .collect();

        let mut metrics = Vec::new();
        for snap in self.obs.metrics.snapshot() {
            match snap {
                MetricSnapshot::Counter { name, value, .. } => {
                    metrics.push((name, Json::Uint(value)));
                }
                MetricSnapshot::Gauge { name, value, .. } => {
                    metrics.push((name, Json::from(value as f64)));
                }
                MetricSnapshot::Histogram { name, snapshot, .. } => {
                    // Wall-clock histograms are real but nondeterministic;
                    // they live in the Prometheus snapshot, not here.
                    if name.contains("wall") {
                        continue;
                    }
                    metrics.push((
                        name,
                        Json::obj([
                            ("count", Json::Uint(snapshot.count())),
                            ("sum", Json::Uint(snapshot.sum())),
                            ("min", Json::Uint(snapshot.min())),
                            ("p50", Json::Uint(snapshot.quantile(0.5))),
                            ("p90", Json::Uint(snapshot.quantile(0.9))),
                            ("max", Json::Uint(snapshot.max())),
                        ]),
                    ));
                }
            }
        }

        let failed = self.failed_checks().len();
        Json::obj([
            ("schema", Json::from("obs_report/v1")),
            ("kind", Json::from("obs_report")),
            (
                "provenance",
                Json::obj([
                    ("quick", Json::from(self.quick)),
                    ("workers", Json::from(OBS_WORKERS)),
                    (
                        "input_set",
                        Json::from(match self.experiment.input_set {
                            InputSet::Small => "small",
                            InputSet::Large => "large",
                        }),
                    ),
                    (
                        "benchmarks",
                        Json::arr(self.experiment.benchmarks.iter().map(|b| Json::from(b.name()))),
                    ),
                    (
                        "schemes",
                        Json::arr(self.experiment.schemes.iter().map(|s| Json::from(s.label()))),
                    ),
                    ("jobs", Json::from(self.experiment.job_count())),
                    ("mini_campaign_quick", Json::from(true)),
                    ("task_key", Json::from(task_key.hex().as_str())),
                ]),
            ),
            ("runs", Json::Arr(runs)),
            (
                "metrics",
                Json::obj(metrics.iter().map(|(name, value)| (name.as_str(), value.clone()))),
            ),
            ("checks", Json::arr(self.checks.iter().map(Check::json))),
            ("journal_events", Json::from(self.obs.journal.len())),
            (
                "summary",
                Json::obj([
                    ("checks", Json::from(self.checks.len())),
                    ("failed_checks", Json::from(failed)),
                    ("suite_failures", Json::from(self.faulted.failures.len())),
                    ("resumed_complete", Json::from(self.resumed.is_complete())),
                    ("chaos_ok", Json::from(!self.chaos.failed())),
                    ("ok", Json::from(self.ok())),
                ]),
            ),
        ])
    }
}

fn scratch_checkpoint() -> PathBuf {
    // Unique per invocation, not just per process: tests run concurrent
    // pipelines inside one binary.
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let invocation = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("wp-obs-{}-{invocation}", std::process::id()))
        .join("obs_report.checkpoint.jsonl")
}

/// Runs the scripted campaign against `obs` and reconciles. Pass a
/// fresh [`Obs::new`] — the checks assume nothing else has written to
/// the registry, journal or accounts. `sabotage` bumps one counter
/// just before verification, proving the checks can actually fail
/// (the injected-mismatch smoke in CI and the tests relies on it).
///
/// # Errors
///
/// Infrastructure failures only (scratch checkpoint I/O, an engine
/// pass with the wrong shape). Check mismatches are *not* errors —
/// they are reported through [`ObsReport::checks`].
pub fn run_pipeline(obs: &Arc<Obs>, quick: bool, sabotage: bool) -> Result<ObsReport, String> {
    let experiment = obs_experiment(quick);
    let jobs = experiment.job_count();
    let checkpoint = scratch_checkpoint();
    if let Some(dir) = checkpoint.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("creating scratch dir {}: {e}", dir.display()))?;
    }
    let _ = std::fs::remove_file(&checkpoint);

    // Victims, picked deterministically from the experiment's corners:
    // the first job fails transiently on its first attempt (must
    // retry), the last job fails hard (must surface as a failure and be
    // the one job the resume pass re-executes).
    let retry_victim = (experiment.benchmarks[0], experiment.schemes[0]);
    let hard_victim = (
        experiment.benchmarks[experiment.benchmarks.len() - 1],
        experiment.schemes[experiment.schemes.len() - 1],
    );
    let tripped = AtomicBool::new(false);
    let faulted_engine = Engine::with_workers(OBS_WORKERS)
        .with_obs(Arc::clone(obs))
        .with_retry(RetryPolicy::new(2, Duration::ZERO))
        .with_fault(move |benchmark, _geometry, scheme| {
            if (benchmark, scheme) == retry_victim && !tripped.swap(true, Ordering::Relaxed) {
                return Some(CoreError::Io {
                    context: "obs_report scripted fault".to_string(),
                    message: "transient, succeeds on retry".to_string(),
                });
            }
            if (benchmark, scheme) == hard_victim {
                return Some(CoreError::ChecksumMismatch {
                    benchmark,
                    expected: 0xDEAD,
                    actual: 0xBEEF,
                });
            }
            None
        });
    let faulted = faulted_engine.run_checkpointed(&experiment, &checkpoint);
    if faulted.failures.len() != 1 {
        return Err(format!(
            "faulted pass should fail exactly the hard victim: {:?}",
            faulted.failures
        ));
    }

    // Resume on a clean engine sharing the same Obs: all but the victim
    // replay from the checkpoint, the victim runs fresh, the suite
    // completes and the checkpoint is removed.
    let resumed_engine = Engine::with_workers(OBS_WORKERS).with_obs(Arc::clone(obs));
    let resumed = resumed_engine.run_checkpointed(&experiment, &checkpoint);
    if !resumed.is_complete() {
        return Err(format!("resume pass failed: {:?}", resumed.failures));
    }
    if checkpoint.exists() {
        return Err("checkpoint not removed after a complete resume".to_string());
    }
    if let Some(dir) = checkpoint.parent() {
        let _ = std::fs::remove_dir_all(dir);
    }

    // The chaos mini-campaign (always the quick matrix — the full one
    // is the chaos baseline's job): real injected faults, real
    // demotions, journaled and counted through the same Obs.
    let chaos = run_campaign_on(&resumed_engine, true);

    if sabotage {
        obs.metrics.counter("wp_engine_retries_total", "").inc();
    }

    let checks = reconcile(obs, &experiment, &faulted, &resumed, &chaos, hard_victim, jobs as u64);
    Ok(ObsReport {
        quick,
        obs: Arc::clone(obs),
        experiment,
        faulted,
        resumed,
        chaos,
        checks,
        busy_ns: resumed_engine.pool_snapshot().busy_ns,
    })
}

/// Every reconciliation: counters vs [`SuiteReport`] stats, journal
/// counts vs both, histogram totals vs the rows themselves, chaos
/// counters vs the classified trials, account cells vs the rows that
/// were charged to them.
fn reconcile(
    obs: &Arc<Obs>,
    experiment: &Experiment,
    faulted: &SuiteReport,
    resumed: &SuiteReport,
    chaos: &ChaosOutcome,
    hard_victim: (Benchmark, Scheme),
    jobs: u64,
) -> Vec<Check> {
    let counter = |name: &str| obs.metrics.counter_value(name).unwrap_or(u64::MAX);
    let journal = &obs.journal;
    let mut checks = Vec::new();
    let mut push = |name: &'static str, expected: u64, actual: u64| {
        checks.push(Check { name, expected, actual });
    };

    // Suite bookends: one start/finish pair per engine pass.
    push("journal suite_start events", 2, journal.count_kind("suite_start"));
    push("journal suite_finish events", 2, journal.count_kind("suite_finish"));
    push("journal job_start events", 2 * jobs, journal.count_kind("job_start"));

    // Job outcomes: counters and journal against the reports.
    let fresh_ok = faulted.stats.jobs_ok + resumed.stats.jobs_ok;
    push("jobs_ok counter vs engine stats", fresh_ok, counter("wp_engine_jobs_ok_total"));
    push(
        "journal ok finishes vs engine stats",
        fresh_ok,
        journal.count_kind_attr("job_finish", "outcome", "ok"),
    );
    let failed = (faulted.failures.len() + resumed.failures.len()) as u64;
    push("jobs_failed counter vs reports", failed, counter("wp_engine_jobs_failed_total"));
    push(
        "journal failed finishes vs reports",
        failed,
        journal.count_kind_attr("job_finish", "outcome", "failed"),
    );

    // The scripted retry: engine stats, counter, journal and accounts
    // must all have seen exactly it.
    let retries = faulted.stats.retries + resumed.stats.retries;
    push("retries counter vs engine stats", retries, counter("wp_engine_retries_total"));
    push("journal job_retry events", retries, journal.count_kind("job_retry"));
    push("accounts retry column", retries, obs.accounts.total(None, |u| u.retries));

    // Checkpoint replay: the resume pass replays everything but the
    // victim; writes cover every fresh success across both passes.
    let hits = faulted.stats.checkpoint_hits + resumed.stats.checkpoint_hits;
    push(
        "checkpoint_hits counter vs engine stats",
        hits,
        counter("wp_engine_checkpoint_hits_total"),
    );
    push("journal checkpoint_hit events", hits, journal.count_kind("checkpoint_hit"));
    push(
        "journal cached finishes",
        hits,
        journal.count_kind_attr("job_finish", "outcome", "cached"),
    );
    push(
        "checkpoint_writes counter vs fresh successes",
        fresh_ok,
        counter("wp_engine_checkpoint_writes_total"),
    );

    // Histogram totals vs the report rows themselves (both passes, so
    // cached replays are covered too).
    let rows = || faulted.rows.iter().chain(&resumed.rows);
    if let Some(h) = obs.metrics.histogram_snapshot("wp_job_fetches") {
        push("job_fetches histogram count vs rows", rows().count() as u64, h.count());
        push("job_fetches histogram sum vs rows", rows().map(|r| r.fetches).sum(), h.sum());
    } else {
        push("job_fetches histogram present", 1, 0);
    }
    if let Some(h) = obs.metrics.histogram_snapshot("wp_job_cycles") {
        push("job_cycles histogram sum vs rows", rows().map(|r| r.cycles).sum(), h.sum());
    } else {
        push("job_cycles histogram present", 1, 0);
    }

    // Chaos: per-outcome counters and journal vs the classified trials,
    // ladder moves vs the transitions the controller reported.
    let (graceful, detected, silent) = chaos.outcome_counts();
    push(
        "chaos graceful counter vs trials",
        graceful as u64,
        counter("wp_chaos_trials_graceful_total"),
    );
    push(
        "chaos detected counter vs trials",
        detected as u64,
        counter("wp_chaos_trials_detected_total"),
    );
    push("chaos silent counter vs trials", silent as u64, counter("wp_chaos_trials_silent_total"));
    push(
        "journal chaos_trial events vs trials",
        chaos.trials.len() as u64,
        journal.count_kind("chaos_trial"),
    );
    let demotions: u64 = chaos.trials.iter().map(|(t, _)| t.trial.demotions).sum();
    let promotions: u64 = chaos.trials.iter().map(|(t, _)| t.trial.promotions).sum();
    push("demotions counter vs trials", demotions, counter("wp_demotions_total"));
    push("journal scheme_demotion events", demotions, journal.count_kind("scheme_demotion"));
    push("promotions counter vs trials", promotions, counter("wp_promotions_total"));
    push("journal scheme_promotion events", promotions, journal.count_kind("scheme_promotion"));

    // Accounts: the checkpoint phase was charged exactly the replayed
    // rows' fetches (the resume pass's rows minus the fresh victim).
    let cached_fetches: u64 = resumed
        .rows
        .iter()
        .filter(|r| (r.benchmark, r.scheme) != hard_victim)
        .map(|r| r.fetches)
        .sum();
    push(
        "accounts checkpoint fetches vs replayed rows",
        cached_fetches,
        obs.accounts.total(Some("checkpoint"), |u| u.fetches),
    );
    // Workbench builds: each engine builds each benchmark once, and the
    // chaos mini-campaign adds its own matrix on the resumed engine.
    let chaos_benchmarks = crate::chaos::chaos_benchmarks(true).0;
    let extra =
        chaos_benchmarks.iter().filter(|b| !experiment.benchmarks.contains(b)).count() as u64;
    push(
        "workbench_builds counter vs engines",
        2 * experiment.benchmarks.len() as u64 + extra,
        counter("wp_engine_workbench_builds_total"),
    );

    // No registration bugs: every metric name was registered with one
    // kind only.
    push("registry kind conflicts", 0, obs.metrics.kind_conflicts());

    checks
}

/// Runs the pipeline and renders the blessed manifest, refusing — like
/// the chaos and perf tripwires — to bless a tree whose observability
/// layer does not reconcile.
///
/// # Errors
///
/// A description of the failed check(s) or infrastructure failure.
pub fn build_obs_baseline(quick: bool) -> Result<Json, String> {
    let key = crate::campaign::keys::obs(quick, &crate::campaign::InputTags::default());
    build_obs_baseline_with_key(quick, &key)
}

/// [`build_obs_baseline`] with an explicit provenance task key (the
/// campaign DAG passes the key of the obs node).
///
/// # Errors
///
/// A description of the failed check(s) or infrastructure failure.
pub fn build_obs_baseline_with_key(
    quick: bool,
    task_key: &wp_campaign::TaskKey,
) -> Result<Json, String> {
    let obs = Obs::new();
    let report = run_pipeline(&obs, quick, false)?;
    if !report.ok() {
        let failed: Vec<String> = report
            .failed_checks()
            .iter()
            .map(|c| format!("{}: expected {}, got {}", c.name, c.expected, c.actual))
            .collect();
        return Err(format!("obs_report checks failed: {}", failed.join("; ")));
    }
    Ok(report.canonical_manifest_with_key(task_key))
}

/// Measures the cost of armed observability: interleaved min-of-N
/// wall-clock of the same single-job experiment on an unarmed engine
/// and on one carrying a live [`Obs`]. Both engines are warmed first so
/// the timed region is measurement only (which is where every
/// instrumentation branch lives). Returns `(plain_ns, armed_ns,
/// overhead_pct)`.
///
/// # Errors
///
/// A description of the failing run.
pub fn measure_overhead(quick: bool) -> Result<(f64, f64, f64), String> {
    let experiment = Experiment::new(
        [Benchmark::Crc],
        [CacheGeometry::xscale_icache()],
        [Scheme::WayMemoization],
    )
    .with_input_set(if quick { InputSet::Small } else { InputSet::Large });
    let plain_engine = Engine::with_workers(1);
    let armed_engine = Engine::with_workers(1).with_obs(Obs::new());
    // Warm both caches (workbench + baseline) outside the timed region.
    for engine in [&plain_engine, &armed_engine] {
        let report = engine.run(&experiment);
        if !report.is_complete() {
            return Err(format!("overhead warmup failed: {:?}", report.failures));
        }
    }
    let rounds = if quick { 8 } else { 16 };
    let mut plain_ns = f64::INFINITY;
    let mut armed_ns = f64::INFINITY;
    for round in 0..rounds {
        let start = Instant::now();
        let report = plain_engine.run(&experiment);
        let plain = start.elapsed().as_nanos() as f64;
        if !report.is_complete() {
            return Err(format!("overhead plain run failed: {:?}", report.failures));
        }
        let start = Instant::now();
        let report = armed_engine.run(&experiment);
        let armed = start.elapsed().as_nanos() as f64;
        if !report.is_complete() {
            return Err(format!("overhead armed run failed: {:?}", report.failures));
        }
        if round > 0 {
            plain_ns = plain_ns.min(plain);
            armed_ns = armed_ns.min(armed);
        }
    }
    let overhead_pct = ((armed_ns - plain_ns) / plain_ns * 100.0).max(0.0);
    Ok((plain_ns, armed_ns, overhead_pct))
}
