//! The shared experiment engine.
//!
//! Every figure binary used to rebuild and re-profile each benchmark at
//! every sweep point and `run_suite` spawned one unbounded thread per
//! benchmark, panicking on the first failure. The engine replaces both
//! patterns with one substrate:
//!
//! * **Memoised workbenches** — [`Engine::workbench`] assembles and
//!   profiles each [`Benchmark`] exactly once per engine (and, through
//!   [`Engine::global`], exactly once per process), no matter how many
//!   geometries, area sizes or schemes sweep over it. Baseline
//!   [`Measurement`]s are likewise shared per `(benchmark, geometry,
//!   input-set)` across every scheme normalised against them.
//! * **Bounded, deterministic parallelism** — [`Engine::run`] flattens
//!   an [`Experiment`] into `(benchmark × geometry × scheme)` jobs and
//!   executes them on a worker pool sized from
//!   `std::thread::available_parallelism`. Results are ordered by job
//!   index, never by completion order, so output is reproducible on any
//!   machine at any parallelism.
//! * **Structured failures** — a failing job surfaces as a
//!   [`JobFailure`] inside [`SuiteReport::failures`] while every other
//!   job still completes; nothing panics and no result is lost. Panics
//!   are caught at the job boundary and converted into
//!   [`CoreError::Panic`] failures, so one poisoned job cannot take the
//!   suite (or the process) down.
//! * **Bounded retry** — a [`RetryPolicy`] re-runs jobs whose error is
//!   *transient* ([`CoreError::is_transient`]: host I/O hiccups and
//!   wall-clock watchdog timeouts), with deterministic exponential
//!   backoff. Memoised failure cells are evicted before each retry so a
//!   cached `Err` cannot permanently poison a benchmark.
//! * **Watchdog** — [`Engine::with_job_time_limit`] arms
//!   `wp-sim`'s wall-clock watchdog for every profiling and measurement
//!   run, converting hung jobs into typed
//!   [`wp_core::wp_sim::SimError::Timeout`] failures.
//! * **Checkpoint / resume** — [`Engine::run_checkpointed`] appends
//!   each completed row to a JSONL checkpoint as it finishes; rerunning
//!   the same experiment against the same file replays completed jobs
//!   from disk ([`EngineStats::checkpoint_hits`]) and only executes the
//!   remainder. The file is removed once every job has succeeded.
//! * **Observability** — per-phase wall-clock totals
//!   (assemble/profile/link/simulate/price), cache hit/miss counters,
//!   retry/panic/timeout counters, and JSON manifests via
//!   [`SuiteReport::json`].

use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use wp_obs::account::Usage;
use wp_obs::journal::Scope as JournalScope;
use wp_obs::metrics::{Counter as ObsCounter, Gauge as ObsGauge, Histogram as ObsHistogram};
use wp_obs::Obs;
use wp_trace::SpanCollector;

use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_sim::SimError;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{
    measure_with, CoreError, MeasureOptions, MeasureTiming, Measurement, Scheme, Workbench,
};

use crate::json::Json;
use crate::SuiteRow;

/// Errors shared between the cache and every job that hit it.
pub type SharedError = Arc<CoreError>;

/// Locks a mutex, recovering the guard from a poisoned lock. All
/// engine state behind mutexes (cache maps, result slots, checkpoint
/// writer) stays structurally valid across a panic — panics are caught
/// at the job boundary anyway — so the poison flag carries no
/// information here.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) fn set_name(set: InputSet) -> &'static str {
    match set {
        InputSet::Small => "small",
        InputSet::Large => "large",
    }
}

/// A declarative experiment: the full cross product of benchmarks,
/// cache geometries and schemes, measured on one input set.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Benchmarks to measure.
    pub benchmarks: Vec<Benchmark>,
    /// Cache geometries to measure on.
    pub geometries: Vec<CacheGeometry>,
    /// Schemes to measure (the baseline is always measured implicitly
    /// for normalisation; list it explicitly to get a 1.0 row).
    pub schemes: Vec<Scheme>,
    /// The input set jobs run on (profiling always uses `Small`).
    pub input_set: InputSet,
}

impl Experiment {
    /// An experiment on the large (measurement) input set.
    #[must_use]
    pub fn new(
        benchmarks: impl Into<Vec<Benchmark>>,
        geometries: impl Into<Vec<CacheGeometry>>,
        schemes: impl Into<Vec<Scheme>>,
    ) -> Experiment {
        Experiment {
            benchmarks: benchmarks.into(),
            geometries: geometries.into(),
            schemes: schemes.into(),
            input_set: InputSet::Large,
        }
    }

    /// Overrides the input set (e.g. `Small` for quick regression runs).
    #[must_use]
    pub fn with_input_set(mut self, set: InputSet) -> Experiment {
        self.input_set = set;
        self
    }

    /// Number of jobs this experiment flattens into.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.benchmarks.len() * self.geometries.len() * self.schemes.len()
    }

    /// The manifest's `experiment` section. `pub(crate)` so the
    /// campaign's manifest-assembly node can render the identical
    /// section without re-running the suite.
    pub(crate) fn json(&self) -> Json {
        Json::obj([
            ("benchmarks", Json::arr(self.benchmarks.iter().map(|b| Json::from(b.name())))),
            ("geometries", Json::arr(self.geometries.iter().map(|g| Json::from(g.to_string())))),
            ("schemes", Json::arr(self.schemes.iter().map(|s| Json::from(s.label())))),
            ("input_set", Json::from(set_name(self.input_set))),
        ])
    }
}

/// Bounded retry for *transient* job failures
/// ([`CoreError::is_transient`] — host I/O errors and watchdog
/// timeouts; deterministic failures are never retried). Backoff is
/// deterministic exponential: attempt `n` sleeps `backoff * 2^(n-1)`
/// before re-running.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (≥ 1).
    pub max_attempts: u32,
    /// Base backoff slept before the first retry.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// No retries: one attempt, the engine's default.
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, backoff: Duration::ZERO }
    }

    /// A policy with `max_attempts` total attempts (clamped to ≥ 1) and
    /// `backoff` base delay.
    #[must_use]
    pub fn new(max_attempts: u32, backoff: Duration) -> RetryPolicy {
        RetryPolicy { max_attempts: max_attempts.max(1), backoff }
    }

    /// The deterministic delay before the retry following attempt
    /// number `attempt` (1-based): `backoff * 2^(attempt-1)`, saturating.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        let exponent = attempt.saturating_sub(1).min(20);
        self.backoff.saturating_mul(1 << exponent)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// One completed `(benchmark, geometry, scheme)` job, normalised
/// against the shared baseline of its `(benchmark, geometry)`.
#[derive(Clone, Debug)]
pub struct JobRow {
    /// The benchmark measured.
    pub benchmark: Benchmark,
    /// The cache geometry measured on.
    pub geometry: CacheGeometry,
    /// The scheme measured.
    pub scheme: Scheme,
    /// The scheme's report label.
    pub label: String,
    /// Normalised I-cache energy (1.0 = baseline).
    pub energy: f64,
    /// Energy-delay product against the baseline.
    pub ed: f64,
    /// Cycles the run took.
    pub cycles: u64,
    /// Instructions the run committed.
    pub instructions: u64,
    /// Instruction fetches the run issued (the ground truth the
    /// `obs_report` cross-check reconciles histograms against).
    pub fetches: u64,
}

impl JobRow {
    /// One manifest row. `pub(crate)` so a campaign measure node can
    /// publish exactly the bytes the suite manifest will embed.
    pub(crate) fn json(&self) -> Json {
        Json::obj([
            ("benchmark", Json::from(self.benchmark.name())),
            ("geometry", Json::from(self.geometry.to_string())),
            ("scheme", Json::from(self.label.clone())),
            ("energy", Json::from(self.energy)),
            ("ed", Json::from(self.ed)),
            ("cycles", Json::from(self.cycles)),
            ("instructions", Json::from(self.instructions)),
            ("fetches", Json::from(self.fetches)),
        ])
    }
}

/// Which phase of a job failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobPhase {
    /// Assembling/profiling the benchmark's workbench.
    Workbench,
    /// Measuring the shared baseline.
    Baseline,
    /// Measuring the scheme itself.
    Measure,
}

impl JobPhase {
    fn name(self) -> &'static str {
        match self {
            JobPhase::Workbench => "workbench",
            JobPhase::Baseline => "baseline",
            JobPhase::Measure => "measure",
        }
    }
}

/// A structured per-job failure: the job's identity plus the error,
/// reported instead of a panic so sibling jobs keep their results.
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// The benchmark of the failing job.
    pub benchmark: Benchmark,
    /// The geometry of the failing job.
    pub geometry: CacheGeometry,
    /// The scheme of the failing job.
    pub scheme: Scheme,
    /// Which phase failed.
    pub phase: JobPhase,
    /// The underlying error (shared when a cached phase failed).
    pub error: SharedError,
    /// How many attempts the job made before giving up (> 1 only when a
    /// [`RetryPolicy`] retried a transient error).
    pub attempts: u32,
}

impl JobFailure {
    fn json(&self) -> Json {
        Json::obj([
            ("benchmark", Json::from(self.benchmark.name())),
            ("geometry", Json::from(self.geometry.to_string())),
            ("scheme", Json::from(self.scheme.label())),
            ("phase", Json::from(self.phase.name())),
            ("error", Json::from(self.error.to_string())),
            ("attempts", Json::from(self.attempts)),
        ])
    }
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {} under {} failed in {} after {} attempt{}: {}",
            self.benchmark,
            self.geometry,
            self.scheme.label(),
            self.phase.name(),
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.error
        )
    }
}

/// A snapshot of the engine's counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EngineStats {
    /// Workbenches assembled and profiled (cache misses) — the
    /// "profiled exactly once per process" counter.
    pub workbench_builds: u64,
    /// Workbench cache hits.
    pub workbench_hits: u64,
    /// Baseline measurements run (cache misses).
    pub baseline_builds: u64,
    /// Baseline cache hits.
    pub baseline_hits: u64,
    /// Jobs that produced a row.
    pub jobs_ok: u64,
    /// Jobs that produced a failure.
    pub jobs_failed: u64,
    /// Job attempts re-run after a transient failure.
    pub retries: u64,
    /// Panics caught at the job boundary.
    pub panics: u64,
    /// Wall-clock watchdog timeouts observed (per failing attempt).
    pub timeouts: u64,
    /// Jobs replayed from a checkpoint instead of executed.
    pub checkpoint_hits: u64,
    /// Wall-clock nanoseconds assembling + naturally linking modules.
    pub assemble_ns: u64,
    /// Wall-clock nanoseconds in profiling runs.
    pub profiling_ns: u64,
    /// Wall-clock nanoseconds relinking under scheme layouts.
    pub link_ns: u64,
    /// Wall-clock nanoseconds simulating measurement runs.
    pub simulate_ns: u64,
    /// Wall-clock nanoseconds pricing energy.
    pub price_ns: u64,
    /// Worker threads the pool uses.
    pub workers: u64,
}

impl EngineStats {
    /// JSON rendering. Wall-clock phase totals are genuinely
    /// nondeterministic, so [`SuiteReport::results_json`] (the
    /// determinism-checked subset) excludes this object.
    #[must_use]
    pub fn json(&self) -> Json {
        Json::obj([
            ("workbench_builds", Json::from(self.workbench_builds)),
            ("workbench_hits", Json::from(self.workbench_hits)),
            ("baseline_builds", Json::from(self.baseline_builds)),
            ("baseline_hits", Json::from(self.baseline_hits)),
            ("jobs_ok", Json::from(self.jobs_ok)),
            ("jobs_failed", Json::from(self.jobs_failed)),
            ("retries", Json::from(self.retries)),
            ("panics", Json::from(self.panics)),
            ("timeouts", Json::from(self.timeouts)),
            ("checkpoint_hits", Json::from(self.checkpoint_hits)),
            ("assemble_ns", Json::from(self.assemble_ns)),
            ("profiling_ns", Json::from(self.profiling_ns)),
            ("link_ns", Json::from(self.link_ns)),
            ("simulate_ns", Json::from(self.simulate_ns)),
            ("price_ns", Json::from(self.price_ns)),
            ("workers", Json::from(self.workers)),
        ])
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "engine: {} jobs ok, {} failed on {} workers | workbenches {} built / {} reused, \
             baselines {} built / {} reused | retries {}, panics {}, timeouts {}, checkpoint \
             hits {} | assemble {:.2}s, profile {:.2}s, link {:.2}s, simulate {:.2}s, price {:.2}s",
            self.jobs_ok,
            self.jobs_failed,
            self.workers,
            self.workbench_builds,
            self.workbench_hits,
            self.baseline_builds,
            self.baseline_hits,
            self.retries,
            self.panics,
            self.timeouts,
            self.checkpoint_hits,
            self.assemble_ns as f64 / 1e9,
            self.profiling_ns as f64 / 1e9,
            self.link_ns as f64 / 1e9,
            self.simulate_ns as f64 / 1e9,
            self.price_ns as f64 / 1e9,
        )
    }
}

#[derive(Default)]
struct Counters {
    workbench_builds: AtomicU64,
    workbench_hits: AtomicU64,
    baseline_builds: AtomicU64,
    baseline_hits: AtomicU64,
    jobs_ok: AtomicU64,
    jobs_failed: AtomicU64,
    retries: AtomicU64,
    panics: AtomicU64,
    timeouts: AtomicU64,
    checkpoint_hits: AtomicU64,
    assemble_ns: AtomicU64,
    profiling_ns: AtomicU64,
    link_ns: AtomicU64,
    simulate_ns: AtomicU64,
    price_ns: AtomicU64,
}

/// The whole-suite result: partial rows plus structured failures plus
/// the engine counters at completion.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// The experiment that ran.
    pub experiment: Experiment,
    /// Completed rows, in deterministic `benchmarks × geometries ×
    /// schemes` order (independent of completion order).
    pub rows: Vec<JobRow>,
    /// Failed jobs, in the same deterministic order.
    pub failures: Vec<JobFailure>,
    /// Engine counters snapshotted after the run.
    pub stats: EngineStats,
}

impl SuiteReport {
    /// Whether every job completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Per-benchmark [`SuiteRow`]s for one geometry (the shape
    /// [`crate::format_table`] renders). Benchmarks with any failed
    /// scheme at this geometry are omitted — partial results, ragged
    /// rows never.
    #[must_use]
    pub fn rows_for(&self, geometry: CacheGeometry) -> Vec<SuiteRow> {
        self.experiment
            .benchmarks
            .iter()
            .filter_map(|&benchmark| {
                let values: Vec<(String, f64, f64)> = self
                    .rows
                    .iter()
                    .filter(|r| r.benchmark == benchmark && r.geometry == geometry)
                    .map(|r| (r.label.clone(), r.energy, r.ed))
                    .collect();
                (values.len() == self.experiment.schemes.len())
                    .then_some(SuiteRow { benchmark, values })
            })
            .collect()
    }

    /// Renders the per-benchmark table for one geometry, or a placeholder
    /// when every benchmark failed there.
    #[must_use]
    pub fn table_for(&self, geometry: CacheGeometry) -> String {
        let rows = self.rows_for(geometry);
        if rows.is_empty() {
            return format!("(no completed rows for {geometry})\n");
        }
        crate::format_table(&rows)
    }

    /// The deterministic manifest subset: experiment + rows + failures.
    /// Byte-identical across reruns of the same experiment (asserted by
    /// the determinism regression test); excludes wall-clock stats.
    #[must_use]
    pub fn results_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from("wp-bench/suite-v1")),
            ("experiment", self.experiment.json()),
            ("rows", Json::arr(self.rows.iter().map(JobRow::json))),
            ("failures", Json::arr(self.failures.iter().map(JobFailure::json))),
        ])
    }

    /// The full manifest: [`SuiteReport::results_json`] plus the engine
    /// stats (cache counters and phase timings).
    #[must_use]
    pub fn json(&self) -> Json {
        let mut manifest = self.results_json();
        manifest.push("stats", self.stats.json());
        manifest
    }

    /// Prints every failure to stderr; returns how many there were.
    pub fn print_failures(&self) -> usize {
        for failure in &self.failures {
            eprintln!("FAILED: {failure}");
        }
        self.failures.len()
    }
}

type Cached<T> = Arc<OnceLock<Result<Arc<T>, SharedError>>>;

/// Fault-injection hook: inspects a job before it is measured and may
/// force a [`CoreError`]. Test-support for exercising the structured
/// failure path (e.g. checksum-mismatch surfacing) without corrupting a
/// real benchmark.
pub type FaultHook = dyn Fn(Benchmark, CacheGeometry, Scheme) -> Option<CoreError> + Send + Sync;

/// Build-fault hook: called at the top of every workbench construction
/// with the benchmark and the 1-based attempt number for that
/// benchmark; returning `Some` fails the build with that error.
/// Test-support for the retry and panic-isolation paths (a transient
/// error on attempt 1 exercises retry; panicking in the hook exercises
/// panic isolation).
pub type BuildFaultHook = dyn Fn(Benchmark, u32) -> Option<CoreError> + Send + Sync;

/// One already-completed row loaded from a checkpoint file.
struct CheckpointRow {
    energy: f64,
    ed: f64,
    cycles: u64,
    instructions: u64,
    fetches: u64,
}

fn checkpoint_key(
    benchmark: Benchmark,
    geometry: CacheGeometry,
    scheme: Scheme,
    set: InputSet,
) -> String {
    format!("{}|{}|{}|{}", benchmark.name(), geometry, scheme.label(), set_name(set))
}

/// Parses a JSONL checkpoint into `key → row`. Corrupt or
/// wrong-schema lines are skipped with a warning — a torn final write
/// from an interrupted run must never block resuming.
fn load_checkpoint(path: &Path) -> HashMap<String, CheckpointRow> {
    let mut completed = HashMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return completed;
    };
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(line).ok();
        let row = parsed.as_ref().and_then(|json| {
            Some((
                json.get("key")?.as_str()?.to_string(),
                CheckpointRow {
                    energy: json.get("energy")?.as_f64()?,
                    ed: json.get("ed")?.as_f64()?,
                    cycles: json.get("cycles")?.as_u64()?,
                    instructions: json.get("instructions")?.as_u64()?,
                    fetches: json.get("fetches")?.as_u64()?,
                },
            ))
        });
        match row {
            Some((key, row)) => {
                completed.insert(key, row);
            }
            None => eprintln!("checkpoint {}: skipping corrupt line {}", path.display(), index + 1),
        }
    }
    completed
}

fn checkpoint_line(key: &str, row: &JobRow) -> String {
    Json::obj([
        ("key", Json::from(key)),
        ("energy", Json::from(row.energy)),
        ("ed", Json::from(row.ed)),
        ("cycles", Json::from(row.cycles)),
        ("instructions", Json::from(row.instructions)),
        ("fetches", Json::from(row.fetches)),
    ])
    .to_compact()
}

enum JobOutcome {
    /// Replayed from the checkpoint without executing.
    Cached(JobRow),
    /// Executed this run.
    Fresh(JobRow),
    /// Failed (after any retries).
    Failed(JobFailure),
}

/// Pre-registered handles into the armed [`Obs`] registry, so the hot
/// path never takes the registry lock.
struct EngineMetrics {
    jobs_ok: ObsCounter,
    jobs_failed: ObsCounter,
    retries: ObsCounter,
    panics: ObsCounter,
    timeouts: ObsCounter,
    checkpoint_hits: ObsCounter,
    checkpoint_writes: ObsCounter,
    workbench_builds: ObsCounter,
    baseline_builds: ObsCounter,
    queue_depth: ObsGauge,
    running: ObsGauge,
    job_fetches: ObsHistogram,
    job_cycles: ObsHistogram,
    job_wall_us: ObsHistogram,
}

impl EngineMetrics {
    fn new(obs: &Obs) -> EngineMetrics {
        let m = &obs.metrics;
        EngineMetrics {
            jobs_ok: m.counter("wp_engine_jobs_ok_total", "Jobs that produced a row"),
            jobs_failed: m.counter("wp_engine_jobs_failed_total", "Jobs that produced a failure"),
            retries: m
                .counter("wp_engine_retries_total", "Job attempts re-run after a transient error"),
            panics: m.counter("wp_engine_panics_total", "Panics caught at the job boundary"),
            timeouts: m
                .counter("wp_engine_timeouts_total", "Wall-clock watchdog timeouts observed"),
            checkpoint_hits: m
                .counter("wp_engine_checkpoint_hits_total", "Jobs replayed from a checkpoint"),
            checkpoint_writes: m
                .counter("wp_engine_checkpoint_writes_total", "Rows appended to a checkpoint"),
            workbench_builds: m
                .counter("wp_engine_workbench_builds_total", "Workbenches assembled and profiled"),
            baseline_builds: m
                .counter("wp_engine_baseline_builds_total", "Baseline measurements run"),
            queue_depth: m.gauge("wp_pool_queue_depth", "Jobs waiting for a worker"),
            running: m.gauge("wp_pool_running", "Jobs currently executing"),
            job_fetches: m.histogram("wp_job_fetches", "Instruction fetches per completed job"),
            job_cycles: m.histogram("wp_job_cycles", "Simulated cycles per completed job"),
            job_wall_us: m.histogram("wp_job_wall_us", "Host wall microseconds per fresh job"),
        }
    }
}

/// Live worker-pool state, maintained by [`Engine::execute`] whether or
/// not metrics are armed (the atomics cost nothing measurable).
struct PoolMonitor {
    queued: AtomicUsize,
    running: AtomicUsize,
    busy_ns: Vec<AtomicU64>,
}

impl PoolMonitor {
    fn new(workers: usize) -> PoolMonitor {
        PoolMonitor {
            queued: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A point-in-time view of the worker pool: how deep the queue is, how
/// many jobs are executing, and how much wall time each worker slot has
/// spent busy since the engine was built.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// The pool bound ([`Engine::workers`]).
    pub workers: usize,
    /// Jobs submitted but not yet picked up.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Cumulative busy nanoseconds per worker slot.
    pub busy_ns: Vec<u64>,
}

impl PoolSnapshot {
    /// Total busy nanoseconds across all worker slots.
    #[must_use]
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().sum()
    }
}

/// The shared experiment engine. See the module docs for the contract.
pub struct Engine {
    workers: usize,
    workbenches: Mutex<HashMap<Benchmark, Cached<Workbench>>>,
    baselines: Mutex<HashMap<(Benchmark, CacheGeometry, InputSet), Cached<Measurement>>>,
    counters: Counters,
    retry: RetryPolicy,
    job_time_limit: Option<Duration>,
    fault: Option<Box<FaultHook>>,
    build_fault: Option<Box<BuildFaultHook>>,
    build_attempts: Mutex<HashMap<Benchmark, u32>>,
    /// Wall-clock span telemetry, armed by `$WP_TRACE` at construction
    /// (see [`SpanCollector::from_env`]); `None` costs one branch per
    /// recording site.
    spans: Option<Arc<SpanCollector>>,
    /// Metrics + journal + accounts, armed by `$WP_OBS` at construction
    /// (see [`Obs::from_env`]) or injected via [`Engine::with_obs`];
    /// same compile-out discipline as `spans`.
    obs: Option<Arc<Obs>>,
    /// Pre-registered metric handles (present iff `obs` is).
    metrics: Option<EngineMetrics>,
    /// Live pool state (always maintained; reads are test/`--watch`
    /// support via [`Engine::pool_snapshot`]).
    pool: PoolMonitor,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("retry", &self.retry)
            .field("job_time_limit", &self.job_time_limit)
            .field("stats", &self.stats())
            .field("fault", &self.fault.is_some())
            .field("build_fault", &self.build_fault.is_some())
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// An engine sized from `std::thread::available_parallelism`.
    #[must_use]
    pub fn new() -> Engine {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Engine::with_workers(workers)
    }

    /// An engine with an explicit worker-pool bound (≥ 1).
    #[must_use]
    pub fn with_workers(workers: usize) -> Engine {
        let workers = workers.max(1);
        let obs = Obs::from_env();
        let metrics = obs.as_deref().map(EngineMetrics::new);
        Engine {
            workers,
            workbenches: Mutex::new(HashMap::new()),
            baselines: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            retry: RetryPolicy::none(),
            job_time_limit: None,
            fault: None,
            build_fault: None,
            build_attempts: Mutex::new(HashMap::new()),
            spans: SpanCollector::from_env(),
            obs,
            metrics,
            pool: PoolMonitor::new(workers),
        }
    }

    /// The span collector, when `$WP_TRACE` armed one at construction.
    /// Binaries drain it into the Chrome `trace_event` export.
    #[must_use]
    pub fn span_collector(&self) -> Option<&Arc<SpanCollector>> {
        self.spans.as_ref()
    }

    /// Arms metrics, journal and accounts on an explicit [`Obs`]
    /// handle, independent of `$WP_OBS` — how `obs_report` and the
    /// determinism tests arm observability without mutating the process
    /// environment.
    #[must_use]
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Engine {
        self.metrics = Some(EngineMetrics::new(&obs));
        self.obs = Some(obs);
        self
    }

    /// The armed observability context, if any.
    #[must_use]
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// Live worker-pool state: queue depth, running jobs, per-worker
    /// busy time.
    #[must_use]
    pub fn pool_snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            workers: self.workers,
            queued: self.pool.queued.load(Ordering::Relaxed),
            running: self.pool.running.load(Ordering::Relaxed),
            busy_ns: self.pool.busy_ns.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Installs a retry policy for transient job failures.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Engine {
        self.retry = retry;
        self
    }

    /// Arms a wall-clock watchdog on every profiling and measurement
    /// simulation: a job exceeding `limit` fails with
    /// [`wp_core::wp_sim::SimError::Timeout`] (a transient error, so it
    /// combines with [`Engine::with_retry`]).
    #[must_use]
    pub fn with_job_time_limit(mut self, limit: Duration) -> Engine {
        self.job_time_limit = Some(limit);
        self
    }

    /// Installs a fault-injection hook (test support; see [`FaultHook`]).
    #[must_use]
    pub fn with_fault(
        mut self,
        hook: impl Fn(Benchmark, CacheGeometry, Scheme) -> Option<CoreError> + Send + Sync + 'static,
    ) -> Engine {
        self.fault = Some(Box::new(hook));
        self
    }

    /// Installs a workbench build-fault hook (test support; see
    /// [`BuildFaultHook`]).
    #[must_use]
    pub fn with_build_fault(
        mut self,
        hook: impl Fn(Benchmark, u32) -> Option<CoreError> + Send + Sync + 'static,
    ) -> Engine {
        self.build_fault = Some(Box::new(hook));
        self
    }

    /// The process-wide engine: every binary and `run_suite` call in
    /// this process shares its workbench and baseline caches, which is
    /// what makes "each benchmark is profiled exactly once per process"
    /// literal.
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(Engine::new)
    }

    /// The worker-pool bound.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshots the counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let c = &self.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        EngineStats {
            workbench_builds: load(&c.workbench_builds),
            workbench_hits: load(&c.workbench_hits),
            baseline_builds: load(&c.baseline_builds),
            baseline_hits: load(&c.baseline_hits),
            jobs_ok: load(&c.jobs_ok),
            jobs_failed: load(&c.jobs_failed),
            retries: load(&c.retries),
            panics: load(&c.panics),
            timeouts: load(&c.timeouts),
            checkpoint_hits: load(&c.checkpoint_hits),
            assemble_ns: load(&c.assemble_ns),
            profiling_ns: load(&c.profiling_ns),
            link_ns: load(&c.link_ns),
            simulate_ns: load(&c.simulate_ns),
            price_ns: load(&c.price_ns),
            workers: self.workers as u64,
        }
    }

    /// Mirrors the pool atomics into the armed gauges (no-op when
    /// metrics are off).
    fn sync_pool_gauges(&self) {
        if let Some(m) = &self.metrics {
            m.queue_depth.set(self.pool.queued.load(Ordering::Relaxed) as i64);
            m.running.set(self.pool.running.load(Ordering::Relaxed) as i64);
        }
    }

    fn add_measure_timing(&self, timing: &MeasureTiming) {
        let add = |a: &AtomicU64, d: std::time::Duration| {
            a.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        };
        add(&self.counters.link_ns, timing.link);
        add(&self.counters.simulate_ns, timing.simulate);
        add(&self.counters.price_ns, timing.price);
    }

    fn measure_options(&self, set: InputSet) -> MeasureOptions {
        let options = MeasureOptions::new(set);
        match self.job_time_limit {
            Some(limit) => options.with_time_limit(limit),
            None => options,
        }
    }

    /// Runs `f`, converting a panic into a shared
    /// [`CoreError::Panic`] — the engine's panic-isolation boundary.
    fn catch_panic<T>(&self, f: impl FnOnce() -> Result<T, SharedError>) -> Result<T, SharedError> {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(result) => result,
            Err(payload) => {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.panics.inc();
                }
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                if let Some(spans) = &self.spans {
                    spans.instant("panic", "panic", vec![("message".into(), message.clone())]);
                }
                Err(Arc::new(CoreError::Panic { message }))
            }
        }
    }

    /// The memoised workbench for `benchmark`: assembled and profiled
    /// exactly once per engine, shared by every caller thereafter.
    /// Failures are memoised too — a broken benchmark is not rebuilt
    /// per sweep point (until a retry evicts the failed cell).
    ///
    /// # Errors
    ///
    /// The (shared) construction error.
    pub fn workbench(&self, benchmark: Benchmark) -> Result<Arc<Workbench>, SharedError> {
        let cell = {
            let mut map = lock(&self.workbenches);
            Arc::clone(map.entry(benchmark).or_default())
        };
        let mut built = false;
        let result = cell.get_or_init(|| {
            built = true;
            self.counters.workbench_builds.fetch_add(1, Ordering::Relaxed);
            let attempt = {
                let mut attempts = lock(&self.build_attempts);
                let n = attempts.entry(benchmark).or_insert(0);
                *n += 1;
                *n
            };
            if let Some(hook) = &self.build_fault {
                if let Some(error) = hook(benchmark, attempt) {
                    return Err(Arc::new(error));
                }
            }
            let started = Instant::now();
            let built = Workbench::build(benchmark, self.job_time_limit);
            if let Some(spans) = &self.spans {
                spans.record(
                    format!("workbench:{}", benchmark.name()),
                    "build",
                    started,
                    vec![("ok".into(), built.is_ok().to_string())],
                );
            }
            match built {
                Ok((workbench, timing)) => {
                    self.counters
                        .assemble_ns
                        .fetch_add(timing.assemble.as_nanos() as u64, Ordering::Relaxed);
                    self.counters
                        .profiling_ns
                        .fetch_add(timing.profiling.as_nanos() as u64, Ordering::Relaxed);
                    if let (Some(obs), Some(m)) = (&self.obs, &self.metrics) {
                        m.workbench_builds.inc();
                        obs.accounts.charge(
                            benchmark.name(),
                            "-",
                            "workbench",
                            Usage {
                                wall_ns: (timing.assemble + timing.profiling).as_nanos() as u64,
                                ..Usage::default()
                            },
                        );
                    }
                    Ok(Arc::new(workbench))
                }
                Err(e) => Err(Arc::new(e)),
            }
        });
        if !built {
            self.counters.workbench_hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// The memoised baseline measurement for `(benchmark, geometry,
    /// set)`, shared across every scheme normalised against it.
    ///
    /// # Errors
    ///
    /// The (shared) workbench or measurement error.
    pub fn baseline(
        &self,
        benchmark: Benchmark,
        geometry: CacheGeometry,
        set: InputSet,
    ) -> Result<Arc<Measurement>, SharedError> {
        let cell = {
            let mut map = lock(&self.baselines);
            Arc::clone(map.entry((benchmark, geometry, set)).or_default())
        };
        let mut built = false;
        let result = cell.get_or_init(|| {
            built = true;
            self.counters.baseline_builds.fetch_add(1, Ordering::Relaxed);
            let workbench = self.workbench(benchmark)?;
            let started = Instant::now();
            let measured =
                measure_with(&workbench, geometry, Scheme::Baseline, self.measure_options(set));
            if let Some(spans) = &self.spans {
                spans.record(
                    format!("baseline:{}", benchmark.name()),
                    "measure",
                    started,
                    vec![
                        ("geometry".into(), geometry.to_string()),
                        ("ok".into(), measured.is_ok().to_string()),
                    ],
                );
            }
            match measured {
                Ok((measurement, timing)) => {
                    self.add_measure_timing(&timing);
                    if let (Some(obs), Some(m)) = (&self.obs, &self.metrics) {
                        m.baseline_builds.inc();
                        obs.accounts.charge(
                            benchmark.name(),
                            &Scheme::Baseline.label(),
                            "baseline",
                            Usage {
                                wall_ns: (timing.link + timing.simulate + timing.price).as_nanos()
                                    as u64,
                                cycles: measurement.run.cycles,
                                fetches: measurement.run.fetch.fetches,
                                energy_pj: measurement.energy.icache_pj(),
                                ..Usage::default()
                            },
                        );
                    }
                    Ok(Arc::new(measurement))
                }
                Err(e) => Err(Arc::new(e)),
            }
        });
        if !built {
            self.counters.baseline_hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Evicts cache cells that currently hold an `Err` for this job's
    /// benchmark/baseline, so a retry re-runs the failed phase instead
    /// of replaying the memoised failure. Successful cells are never
    /// evicted.
    fn evict_failed(&self, benchmark: Benchmark, geometry: CacheGeometry, set: InputSet) {
        {
            let mut map = lock(&self.workbenches);
            if map.get(&benchmark).is_some_and(|cell| matches!(cell.get(), Some(Err(_)))) {
                map.remove(&benchmark);
            }
        }
        {
            let mut map = lock(&self.baselines);
            let key = (benchmark, geometry, set);
            if map.get(&key).is_some_and(|cell| matches!(cell.get(), Some(Err(_)))) {
                map.remove(&key);
            }
        }
    }

    /// Measures one scheme through the caches: the workbench is
    /// memoised, and `Scheme::Baseline` resolves to the shared baseline
    /// measurement.
    ///
    /// # Errors
    ///
    /// The (possibly shared) failure of any phase.
    pub fn measure(
        &self,
        benchmark: Benchmark,
        geometry: CacheGeometry,
        scheme: Scheme,
        set: InputSet,
    ) -> Result<Arc<Measurement>, SharedError> {
        if scheme == Scheme::Baseline {
            return self.baseline(benchmark, geometry, set);
        }
        let workbench = self.workbench(benchmark)?;
        let started = Instant::now();
        let measured = measure_with(&workbench, geometry, scheme, self.measure_options(set));
        if let Some(spans) = &self.spans {
            spans.record(
                format!("measure:{}/{}", benchmark.name(), scheme.label()),
                "measure",
                started,
                vec![
                    ("geometry".into(), geometry.to_string()),
                    ("ok".into(), measured.is_ok().to_string()),
                ],
            );
        }
        match measured {
            Ok((measurement, timing)) => {
                self.add_measure_timing(&timing);
                Ok(Arc::new(measurement))
            }
            Err(e) => Err(Arc::new(e)),
        }
    }

    /// Runs `experiment` to completion on the bounded pool and returns
    /// the structured report. Never panics on job failure.
    #[must_use]
    pub fn run(&self, experiment: &Experiment) -> SuiteReport {
        self.run_with_checkpoint(experiment, None)
    }

    /// [`Engine::run`] with incremental checkpointing: every completed
    /// row is appended to the JSONL file at `path` as it finishes, and
    /// jobs whose `(benchmark, geometry, scheme, input-set)` already
    /// appear there are replayed from disk instead of executed
    /// (counted in [`EngineStats::checkpoint_hits`]). When every job of
    /// the experiment has succeeded the checkpoint is removed; after a
    /// partial run it remains, so rerunning the same call resumes.
    ///
    /// Checkpoint I/O failures are reported to stderr and never fail
    /// the run — the checkpoint is an accelerator, not a dependency.
    #[must_use]
    pub fn run_checkpointed(&self, experiment: &Experiment, path: &Path) -> SuiteReport {
        self.run_with_checkpoint(experiment, Some(path))
    }

    fn run_with_checkpoint(&self, experiment: &Experiment, path: Option<&Path>) -> SuiteReport {
        // Flattened deterministic job order: benchmark-major, then
        // geometry, then scheme — the order rows are reported in. The
        // index is the job's deterministic journal-ordering group.
        let jobs: Vec<(usize, Benchmark, CacheGeometry, Scheme)> = experiment
            .benchmarks
            .iter()
            .flat_map(|&b| {
                experiment
                    .geometries
                    .iter()
                    .flat_map(move |&g| experiment.schemes.iter().map(move |&s| (b, g, s)))
            })
            .enumerate()
            .map(|(i, (b, g, s))| (i, b, g, s))
            .collect();

        // Journal group allocation happens here, on the single thread
        // that starts the run: group `base` bookends the suite, groups
        // `base + 1 + index` belong to the jobs. Allocation order is
        // deterministic, emission order inside a group is single-job
        // monotone, so the exported journal is run-reproducible.
        let journal_base = self.obs.as_ref().map(|obs| {
            let base = obs.journal.alloc_groups(jobs.len() as u64 + 2);
            obs.journal.scope(base).emit(
                "suite_start",
                vec![
                    ("jobs", jobs.len().to_string()),
                    ("input_set", set_name(experiment.input_set).to_string()),
                    ("checkpointed", path.is_some().to_string()),
                ],
            );
            base
        });

        let completed = path.map(load_checkpoint).unwrap_or_default();
        let writer = path.and_then(|path| {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::OpenOptions::new().create(true).append(true).open(path) {
                Ok(file) => Some(Mutex::new(file)),
                Err(e) => {
                    eprintln!("checkpoint {}: cannot open for append: {e}", path.display());
                    None
                }
            }
        });

        let set = experiment.input_set;
        let outcomes = self.execute(&jobs, |&(index, benchmark, geometry, scheme)| {
            let jscope = self.obs.as_ref().zip(journal_base).map(|(obs, base)| {
                let scope = obs.journal.scope(base + 1 + index as u64);
                scope.emit(
                    "job_start",
                    vec![
                        ("benchmark", benchmark.name().to_string()),
                        ("geometry", geometry.to_string()),
                        ("scheme", scheme.label()),
                    ],
                );
                scope
            });
            let key = checkpoint_key(benchmark, geometry, scheme, set);
            if let Some(saved) = completed.get(&key) {
                self.counters.checkpoint_hits.fetch_add(1, Ordering::Relaxed);
                if let Some(spans) = &self.spans {
                    spans.instant(format!("checkpoint:{key}"), "checkpoint", Vec::new());
                }
                if let (Some(obs), Some(m)) = (&self.obs, &self.metrics) {
                    m.checkpoint_hits.inc();
                    obs.accounts.charge(
                        benchmark.name(),
                        &scheme.label(),
                        "checkpoint",
                        Usage { cycles: saved.cycles, fetches: saved.fetches, ..Usage::default() },
                    );
                }
                if let Some(s) = &jscope {
                    s.emit("checkpoint_hit", vec![("key", key.clone())]);
                    s.emit(
                        "job_finish",
                        vec![
                            ("outcome", "cached".to_string()),
                            ("fetches", saved.fetches.to_string()),
                            ("cycles", saved.cycles.to_string()),
                        ],
                    );
                }
                return JobOutcome::Cached(JobRow {
                    benchmark,
                    geometry,
                    scheme,
                    label: scheme.label(),
                    energy: saved.energy,
                    ed: saved.ed,
                    cycles: saved.cycles,
                    instructions: saved.instructions,
                    fetches: saved.fetches,
                });
            }
            let started = Instant::now();
            match self.run_job(benchmark, geometry, scheme, set, jscope.as_ref()) {
                Ok(row) => {
                    if let Some(m) = &self.metrics {
                        m.job_wall_us
                            .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(0));
                    }
                    if let Some(writer) = &writer {
                        let line = checkpoint_line(&key, &row);
                        let mut file = lock(writer);
                        let wrote = writeln!(file, "{line}").and_then(|()| file.flush());
                        drop(file);
                        match wrote {
                            Ok(()) => {
                                if let Some(m) = &self.metrics {
                                    m.checkpoint_writes.inc();
                                }
                                if let Some(s) = &jscope {
                                    s.emit("checkpoint_write", vec![("key", key.clone())]);
                                }
                            }
                            Err(e) => eprintln!("checkpoint write failed (continuing): {e}"),
                        }
                    }
                    if let Some(s) = &jscope {
                        s.emit(
                            "job_finish",
                            vec![
                                ("outcome", "ok".to_string()),
                                ("fetches", row.fetches.to_string()),
                                ("cycles", row.cycles.to_string()),
                            ],
                        );
                    }
                    JobOutcome::Fresh(row)
                }
                Err(failure) => {
                    if let Some(s) = &jscope {
                        s.emit(
                            "job_finish",
                            vec![
                                ("outcome", "failed".to_string()),
                                ("phase", failure.phase.name().to_string()),
                                ("attempts", failure.attempts.to_string()),
                                ("error", failure.error.to_string()),
                            ],
                        );
                    }
                    JobOutcome::Failed(failure)
                }
            }
        });

        let mut rows = Vec::new();
        let mut failures = Vec::new();
        for outcome in outcomes {
            match outcome {
                JobOutcome::Cached(row) => rows.push(row),
                JobOutcome::Fresh(row) => {
                    self.counters.jobs_ok.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = &self.metrics {
                        m.jobs_ok.inc();
                    }
                    rows.push(row);
                }
                JobOutcome::Failed(failure) => {
                    self.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = &self.metrics {
                        m.jobs_failed.inc();
                    }
                    failures.push(failure);
                }
            }
        }
        // Row histograms cover every completed row — fresh and
        // checkpoint-replayed alike — so their totals reconcile against
        // the report's rows, not against what happened to be executed.
        if let Some(m) = &self.metrics {
            for row in &rows {
                m.job_fetches.record(row.fetches);
                m.job_cycles.record(row.cycles);
            }
        }
        if let Some(path) = path {
            if failures.is_empty() {
                if let Err(e) = std::fs::remove_file(path) {
                    if e.kind() != std::io::ErrorKind::NotFound {
                        eprintln!("checkpoint {}: cannot remove: {e}", path.display());
                    }
                }
            }
        }
        if let (Some(obs), Some(base)) = (&self.obs, journal_base) {
            obs.journal.scope(base + jobs.len() as u64 + 1).emit(
                "suite_finish",
                vec![("rows", rows.len().to_string()), ("failures", failures.len().to_string())],
            );
        }
        SuiteReport { experiment: experiment.clone(), rows, failures, stats: self.stats() }
    }

    /// One job with the retry policy applied: transient failures
    /// ([`CoreError::is_transient`]) are re-attempted up to
    /// [`RetryPolicy::max_attempts`] with deterministic backoff,
    /// evicting memoised failure cells first; deterministic failures
    /// return immediately.
    fn run_job(
        &self,
        benchmark: Benchmark,
        geometry: CacheGeometry,
        scheme: Scheme,
        set: InputSet,
        jscope: Option<&JournalScope>,
    ) -> Result<JobRow, JobFailure> {
        let mut attempt = 1;
        loop {
            match self.run_job_once(benchmark, geometry, scheme, set, attempt) {
                Ok(row) => return Ok(row),
                Err(failure) => {
                    if matches!(&*failure.error, CoreError::Sim(SimError::Timeout { .. })) {
                        self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = &self.metrics {
                            m.timeouts.inc();
                        }
                        if let Some(s) = jscope {
                            s.emit("job_timeout", vec![("attempt", attempt.to_string())]);
                        }
                        if let Some(spans) = &self.spans {
                            spans.instant(
                                format!("timeout:{}", benchmark.name()),
                                "timeout",
                                vec![("scheme".into(), scheme.label())],
                            );
                        }
                    }
                    if matches!(&*failure.error, CoreError::Panic { .. }) {
                        if let Some(s) = jscope {
                            s.emit(
                                "job_panic",
                                vec![
                                    ("attempt", attempt.to_string()),
                                    ("error", failure.error.to_string()),
                                ],
                            );
                        }
                    }
                    if attempt < self.retry.max_attempts && failure.error.is_transient() {
                        self.counters.retries.fetch_add(1, Ordering::Relaxed);
                        if let (Some(obs), Some(m)) = (&self.obs, &self.metrics) {
                            m.retries.inc();
                            obs.accounts.charge(
                                benchmark.name(),
                                &scheme.label(),
                                "measure",
                                Usage { retries: 1, ..Usage::default() },
                            );
                        }
                        if let Some(s) = jscope {
                            s.emit(
                                "job_retry",
                                vec![
                                    ("attempt", attempt.to_string()),
                                    ("error", failure.error.to_string()),
                                ],
                            );
                        }
                        if let Some(spans) = &self.spans {
                            spans.instant(
                                format!("retry:{}", benchmark.name()),
                                "retry",
                                vec![
                                    ("attempt".into(), attempt.to_string()),
                                    ("error".into(), failure.error.to_string()),
                                ],
                            );
                        }
                        self.evict_failed(benchmark, geometry, set);
                        std::thread::sleep(self.retry.delay(attempt));
                        attempt += 1;
                        continue;
                    }
                    return Err(failure);
                }
            }
        }
    }

    fn run_job_once(
        &self,
        benchmark: Benchmark,
        geometry: CacheGeometry,
        scheme: Scheme,
        set: InputSet,
        attempt: u32,
    ) -> Result<JobRow, JobFailure> {
        let fail = |phase, error| JobFailure {
            benchmark,
            geometry,
            scheme,
            phase,
            error,
            attempts: attempt,
        };
        // Workbench first: its failure is the most specific phase.
        self.catch_panic(|| self.workbench(benchmark))
            .map_err(|e| fail(JobPhase::Workbench, e))?;
        let baseline = self
            .catch_panic(|| self.baseline(benchmark, geometry, set))
            .map_err(|e| fail(JobPhase::Baseline, e))?;
        let measurement = self
            .catch_panic(|| {
                if let Some(hook) = &self.fault {
                    if let Some(error) = hook(benchmark, geometry, scheme) {
                        return Err(Arc::new(error));
                    }
                }
                self.measure(benchmark, geometry, scheme, set)
            })
            .map_err(|e| fail(JobPhase::Measure, e))?;
        if let Some(obs) = &self.obs {
            // Baseline rows resolve through the shared baseline cell,
            // which already charged its build to the `baseline` phase;
            // charging it again here would double-count the shared
            // measurement once per scheme that reuses it.
            if scheme != Scheme::Baseline {
                obs.accounts.charge(
                    benchmark.name(),
                    &scheme.label(),
                    "measure",
                    Usage {
                        cycles: measurement.run.cycles,
                        fetches: measurement.run.fetch.fetches,
                        energy_pj: measurement.energy.icache_pj(),
                        ..Usage::default()
                    },
                );
            }
        }
        Ok(JobRow {
            benchmark,
            geometry,
            scheme,
            label: scheme.label(),
            energy: measurement.normalized_icache_energy(&baseline),
            ed: measurement.ed_product(&baseline),
            cycles: measurement.run.cycles,
            instructions: measurement.run.instructions,
            fetches: measurement.run.fetch.fetches,
        })
    }

    /// Runs `job` over every element of `jobs` on the bounded worker
    /// pool, returning results **in input order** regardless of which
    /// worker finished first.
    pub fn execute<T, R, F>(&self, jobs: &[T], job: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
        slots.resize_with(jobs.len(), || None);
        let slots = Mutex::new(slots);
        let next = AtomicUsize::new(0);
        let workers = self.workers.min(jobs.len());
        self.pool.queued.fetch_add(jobs.len(), Ordering::Relaxed);
        self.sync_pool_gauges();
        let (next, slots, job) = (&next, &slots, &job);
        std::thread::scope(|scope| {
            for worker in 0..workers {
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(input) = jobs.get(index) else { break };
                    self.pool.queued.fetch_sub(1, Ordering::Relaxed);
                    self.pool.running.fetch_add(1, Ordering::Relaxed);
                    self.sync_pool_gauges();
                    let started = Instant::now();
                    let result = job(input);
                    self.pool.busy_ns[worker]
                        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    self.pool.running.fetch_sub(1, Ordering::Relaxed);
                    self.sync_pool_gauges();
                    lock(slots)[index] = Some(result);
                });
            }
        });
        let results = lock(slots)
            .drain(..)
            .map(|slot| slot.unwrap_or_else(|| unreachable!("every job index filled")))
            .collect();
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_preserves_input_order() {
        let engine = Engine::with_workers(8);
        let jobs: Vec<u64> = (0..64).collect();
        // Reverse sleep makes later jobs finish first without the pool.
        let results = engine.execute(&jobs, |&n| {
            std::thread::sleep(std::time::Duration::from_micros(64 - n));
            n * 2
        });
        assert_eq!(results, (0..64).map(|n| n * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn workers_never_zero() {
        assert_eq!(Engine::with_workers(0).workers(), 1);
    }

    #[test]
    fn experiment_job_count() {
        let exp = Experiment::new(
            vec![Benchmark::Crc, Benchmark::Sha],
            vec![CacheGeometry::xscale_icache()],
            vec![Scheme::WayMemoization, Scheme::Baseline],
        );
        assert_eq!(exp.job_count(), 4);
    }

    #[test]
    fn retry_policy_backoff_is_deterministic_exponential() {
        let policy = RetryPolicy::new(4, Duration::from_millis(10));
        assert_eq!(policy.delay(1), Duration::from_millis(10));
        assert_eq!(policy.delay(2), Duration::from_millis(20));
        assert_eq!(policy.delay(3), Duration::from_millis(40));
        // Clamped attempts never overflow the multiplier.
        assert!(policy.delay(100) >= policy.delay(3));
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::new(0, Duration::ZERO).max_attempts, 1);
    }

    #[test]
    fn checkpoint_lines_round_trip() {
        let row = JobRow {
            benchmark: Benchmark::Crc,
            geometry: CacheGeometry::xscale_icache(),
            scheme: Scheme::WayMemoization,
            label: Scheme::WayMemoization.label(),
            energy: 0.625,
            ed: 0.93,
            cycles: 123_456,
            instructions: 654_321,
            fetches: 222_333,
        };
        let key = checkpoint_key(row.benchmark, row.geometry, row.scheme, InputSet::Small);
        let line = checkpoint_line(&key, &row);
        let parsed = Json::parse(&line).expect("parses");
        assert_eq!(parsed.get("key").and_then(Json::as_str), Some(key.as_str()));
        assert_eq!(parsed.get("energy").and_then(Json::as_f64), Some(0.625));
        assert_eq!(parsed.get("cycles").and_then(Json::as_u64), Some(123_456));
    }

    #[test]
    fn panic_payloads_are_stringified() {
        let engine = Engine::with_workers(1);
        let r: Result<(), SharedError> = engine.catch_panic(|| panic!("boom {}", 7));
        match r {
            Err(e) => {
                assert!(matches!(&*e, CoreError::Panic { message } if message == "boom 7"));
            }
            Ok(()) => panic!("expected panic to be caught"),
        }
        assert_eq!(engine.stats().panics, 1);
    }
}
