//! Every experiment in the repository as **one content-addressed
//! DAG** — the wp-bench glue behind the `wp-campaign` binary.
//!
//! The standalone binaries (`fig4`, `trace_report`, `tune`, …) each
//! re-run their pipeline from scratch; this module plans the same
//! pipelines as [`wp_campaign::Dag`] nodes whose keys commit to the
//! benchmark, scheme, geometry, input set and pass configuration (and,
//! through Merkle composition, to the whole dependency cone). A node
//! whose key is already in the [`wp_campaign::Store`] is served from
//! disk; everything downstream of unchanged inputs is pruned without
//! even a probe.
//!
//! Three invariants this module is responsible for:
//!
//! * **Byte identity** — a manifest assembled from stored payloads is
//!   byte-identical to the one the standalone binary writes. The
//!   figure binaries therefore share their manifest builders with the
//!   DAG nodes ([`fig1_manifest`], [`table1_manifest`], the suite
//!   assembly in [`plan`]), and every `BENCH_*.json` carries its
//!   producing node's key as `provenance.task_key`.
//! * **Pure nodes** — DAG nodes only *produce payloads*; all file
//!   emission happens after the run ([`write_manifests`]), so a store
//!   hit never skips a side effect.
//! * **Static keys** — every key is computable without running
//!   anything ([`keys`]), which is what lets the scheduler prune a
//!   whole dependency cone on a root hit and lets `explain` report
//!   provenance offline.
//!
//! Incremental recompute hangs off [`InputTags`]: each benchmark
//! carries an input-set tag (default `"v1"`) that is mixed into every
//! leaf key touching that benchmark. Re-tagging one benchmark models
//! "its inputs changed": exactly the manifests downstream of it
//! recompute, and everything else is served from the store.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use wp_campaign::{Dag, Monitor, NullMonitor, RunReport, Store, TaskId, TaskKey};
use wp_core::wp_mem::{CacheGeometry, FetchStats, ICacheConfig, InstructionCache, MemoryConfig};
use wp_core::wp_sim::SimConfig;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::Scheme;
use wp_obs::metrics::{Counter, Histogram};
use wp_obs::Obs;
use wp_tune::DEFAULT_TOLERANCE;

use crate::engine::{set_name, Engine, Experiment, RetryPolicy};
use crate::{baseline, Json, FIGURE5_AREAS};

/// Per-benchmark input-set tags. The tag names *which inputs* a
/// benchmark's jobs consume; it is mixed into every leaf task key that
/// touches the benchmark, so changing a tag invalidates exactly that
/// benchmark's subgraph. The default tag is [`InputTags::DEFAULT_TAG`]
/// — the committed input generation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InputTags(Vec<(Benchmark, String)>);

impl InputTags {
    /// The tag every benchmark carries until overridden.
    pub const DEFAULT_TAG: &'static str = "v1";

    /// The tag of `benchmark`.
    #[must_use]
    pub fn tag(&self, benchmark: Benchmark) -> &str {
        self.0
            .iter()
            .find(|(b, _)| *b == benchmark)
            .map_or(Self::DEFAULT_TAG, |(_, tag)| tag.as_str())
    }

    /// Overrides the tag of `benchmark`.
    pub fn set(&mut self, benchmark: Benchmark, tag: impl Into<String>) {
        let tag = tag.into();
        if let Some(entry) = self.0.iter_mut().find(|(b, _)| *b == benchmark) {
            entry.1 = tag;
        } else {
            self.0.push((benchmark, tag));
        }
    }

    /// Builder form of [`InputTags::set`].
    #[must_use]
    pub fn with(mut self, benchmark: Benchmark, tag: impl Into<String>) -> InputTags {
        self.set(benchmark, tag);
        self
    }
}

/// Static task-key derivation: the campaign's whole key space,
/// computable without running anything. The part builders here are the
/// single source of truth — [`plan`] hands the same parts to
/// [`Dag::add`], and a unit test pins the two producing identical
/// keys, so a key printed into `provenance.task_key` always names the
/// node that can rebuild those bytes.
pub mod keys {
    use super::{
        set_name, Benchmark, CacheGeometry, Experiment, InputSet, InputTags, Scheme, TaskKey,
    };
    use crate::baseline;

    /// Global salt mixed into every key. Bump the epoch to invalidate
    /// the entire store after a change that alters payloads without
    /// altering any key input (e.g. a simulator fix).
    pub const CAMPAIGN_EPOCH: &str = "wp-campaign/epoch-1";

    pub(crate) fn measure_parts(
        benchmark: Benchmark,
        geometry: CacheGeometry,
        scheme: Scheme,
        set: InputSet,
        tags: &InputTags,
    ) -> Vec<String> {
        vec![
            "measure".to_string(),
            CAMPAIGN_EPOCH.to_string(),
            benchmark.name().to_string(),
            tags.tag(benchmark).to_string(),
            geometry.to_string(),
            scheme.label(),
            set_name(set).to_string(),
        ]
    }

    /// One engine measurement: a single `(benchmark, geometry, scheme,
    /// input set)` job.
    #[must_use]
    pub fn measure(
        benchmark: Benchmark,
        geometry: CacheGeometry,
        scheme: Scheme,
        set: InputSet,
        tags: &InputTags,
    ) -> TaskKey {
        TaskKey::derive(&measure_parts(benchmark, geometry, scheme, set, tags), &[])
    }

    pub(crate) fn trace_run_parts(
        benchmark: Benchmark,
        geometry: CacheGeometry,
        scheme: Scheme,
        set: InputSet,
        tags: &InputTags,
    ) -> Vec<String> {
        vec![
            "trace-run".to_string(),
            CAMPAIGN_EPOCH.to_string(),
            benchmark.name().to_string(),
            tags.tag(benchmark).to_string(),
            geometry.to_string(),
            scheme.label(),
            set_name(set).to_string(),
            baseline::TOP_K.to_string(),
        ]
    }

    /// One canonical traced run (counters, energies, hot chains).
    #[must_use]
    pub fn trace_run(
        benchmark: Benchmark,
        geometry: CacheGeometry,
        scheme: Scheme,
        set: InputSet,
        tags: &InputTags,
    ) -> TaskKey {
        TaskKey::derive(&trace_run_parts(benchmark, geometry, scheme, set, tags), &[])
    }

    pub(crate) fn fig1_parts() -> Vec<String> {
        vec!["fig1".to_string(), CAMPAIGN_EPOCH.to_string()]
    }

    /// The figure-1 hand-example manifest (pure, no benchmark inputs).
    #[must_use]
    pub fn fig1() -> TaskKey {
        TaskKey::derive(&fig1_parts(), &[])
    }

    pub(crate) fn table1_parts() -> Vec<String> {
        vec!["table1".to_string(), CAMPAIGN_EPOCH.to_string()]
    }

    /// The table-1 configuration manifest (pure, no benchmark inputs).
    #[must_use]
    pub fn table1() -> TaskKey {
        TaskKey::derive(&table1_parts(), &[])
    }

    pub(crate) fn fig_manifest_parts(fig: &str, experiment: &Experiment) -> Vec<String> {
        vec![
            "fig-manifest".to_string(),
            CAMPAIGN_EPOCH.to_string(),
            fig.to_string(),
            experiment.json().to_compact(),
        ]
    }

    pub(crate) fn experiment_measure_keys(
        experiment: &Experiment,
        tags: &InputTags,
    ) -> Vec<TaskKey> {
        let mut deps = Vec::with_capacity(experiment.job_count());
        for &benchmark in &experiment.benchmarks {
            for &geometry in &experiment.geometries {
                for &scheme in &experiment.schemes {
                    deps.push(measure(benchmark, geometry, scheme, experiment.input_set, tags));
                }
            }
        }
        deps
    }

    /// A figure suite manifest (`fig4`/`fig5`/`fig6`): Merkle over its
    /// per-job measure keys in row order.
    #[must_use]
    pub fn fig_manifest(fig: &str, experiment: &Experiment, tags: &InputTags) -> TaskKey {
        TaskKey::derive(
            &fig_manifest_parts(fig, experiment),
            &experiment_measure_keys(experiment, tags),
        )
    }

    pub(crate) fn trace_manifest_parts(quick: bool) -> Vec<String> {
        vec!["trace-manifest".to_string(), CAMPAIGN_EPOCH.to_string(), quick.to_string()]
    }

    /// The trace-report baseline manifest: Merkle over its canonical
    /// runs in manifest order.
    #[must_use]
    pub fn trace_manifest(quick: bool, tags: &InputTags) -> TaskKey {
        let icache = CacheGeometry::xscale_icache();
        let (benchmarks, set) = baseline::trace_benchmarks(quick);
        let mut deps = Vec::new();
        for &benchmark in benchmarks {
            for scheme in baseline::trace_schemes() {
                deps.push(trace_run(benchmark, icache, scheme, set, tags));
            }
        }
        TaskKey::derive(&trace_manifest_parts(quick), &deps)
    }

    pub(crate) fn tune_parts(
        benchmark: Benchmark,
        icache: CacheGeometry,
        grid: &[u32],
        tolerance: f64,
        set: InputSet,
        tags: &InputTags,
    ) -> Vec<String> {
        let grid: Vec<String> = grid.iter().map(u32::to_string).collect();
        vec![
            "tune".to_string(),
            CAMPAIGN_EPOCH.to_string(),
            benchmark.name().to_string(),
            tags.tag(benchmark).to_string(),
            icache.to_string(),
            grid.join(","),
            tolerance.to_string(),
            set_name(set).to_string(),
        ]
    }

    /// One benchmark's autotune (prediction + bounded refinement).
    #[must_use]
    pub fn tune(
        benchmark: Benchmark,
        icache: CacheGeometry,
        grid: &[u32],
        tolerance: f64,
        set: InputSet,
        tags: &InputTags,
    ) -> TaskKey {
        TaskKey::derive(&tune_parts(benchmark, icache, grid, tolerance, set, tags), &[])
    }

    pub(crate) fn tuned_manifest_parts() -> Vec<String> {
        vec!["tuned-manifest".to_string(), CAMPAIGN_EPOCH.to_string()]
    }

    /// The tuned-areas manifest: Merkle over its per-benchmark tune
    /// keys (which already commit to grid, tolerance and input set, so
    /// the manifest parts carry no configuration of their own).
    #[must_use]
    pub fn tuned_manifest(
        benchmarks: &[Benchmark],
        icache: CacheGeometry,
        grid: &[u32],
        tolerance: f64,
        set: InputSet,
        tags: &InputTags,
    ) -> TaskKey {
        let deps: Vec<TaskKey> = benchmarks
            .iter()
            .map(|&benchmark| tune(benchmark, icache, grid, tolerance, set, tags))
            .collect();
        TaskKey::derive(&tuned_manifest_parts(), &deps)
    }

    pub(crate) fn chaos_parts(quick: bool, tags: &InputTags) -> Vec<String> {
        let (benchmarks, set) = crate::chaos::chaos_benchmarks(quick);
        let mut parts = vec![
            "chaos".to_string(),
            CAMPAIGN_EPOCH.to_string(),
            quick.to_string(),
            set_name(set).to_string(),
        ];
        parts.extend(benchmarks.iter().map(|b| format!("{}={}", b.name(), tags.tag(*b))));
        parts
    }

    /// The chaos-campaign manifest (monolithic: the fault ladder is
    /// one pipeline, so member benchmark tags are mixed into the parts
    /// instead of into per-job dependency keys).
    #[must_use]
    pub fn chaos(quick: bool, tags: &InputTags) -> TaskKey {
        TaskKey::derive(&chaos_parts(quick, tags), &[])
    }

    pub(crate) fn obs_parts(quick: bool, tags: &InputTags) -> Vec<String> {
        let experiment = crate::obs::obs_experiment(quick);
        let mut parts = vec![
            "obs".to_string(),
            CAMPAIGN_EPOCH.to_string(),
            quick.to_string(),
            experiment.json().to_compact(),
        ];
        parts
            .extend(experiment.benchmarks.iter().map(|b| format!("{}={}", b.name(), tags.tag(*b))));
        parts
    }

    /// The obs-report reconciliation manifest (monolithic, like
    /// [`chaos`]).
    #[must_use]
    pub fn obs(quick: bool, tags: &InputTags) -> TaskKey {
        TaskKey::derive(&obs_parts(quick, tags), &[])
    }

    pub(crate) fn perf_parts(quick: bool) -> Vec<String> {
        vec!["perf".to_string(), CAMPAIGN_EPOCH.to_string(), quick.to_string()]
    }

    /// The fetch-core throughput manifest. Wall-clock by nature: a
    /// store hit replays the *recorded* numbers, which is exactly what
    /// byte-identical repeat runs require.
    #[must_use]
    pub fn perf(quick: bool) -> TaskKey {
        TaskKey::derive(&perf_parts(quick), &[])
    }

    pub(crate) fn layout_run_parts(
        benchmark: Benchmark,
        geometry: CacheGeometry,
        set: InputSet,
        tags: &InputTags,
    ) -> Vec<String> {
        let grid: Vec<String> = super::FIGURE5_AREAS.iter().map(u32::to_string).collect();
        let mut parts = vec![
            "layout-run".to_string(),
            CAMPAIGN_EPOCH.to_string(),
            benchmark.name().to_string(),
            tags.tag(benchmark).to_string(),
            geometry.to_string(),
            set_name(set).to_string(),
            crate::layout_compare::COMPARE_AREA_BYTES.to_string(),
            grid.join(","),
            super::DEFAULT_TOLERANCE.to_string(),
            crate::layout_compare::RANDOM_SEED.to_string(),
        ];
        parts
            .extend(crate::layout_compare::compare_layouts().iter().map(|l| l.label().to_string()));
        parts
    }

    /// One benchmark's layout competition: every pass linked, traced
    /// and priced under both way-aware schemes.
    #[must_use]
    pub fn layout_run(
        benchmark: Benchmark,
        geometry: CacheGeometry,
        set: InputSet,
        tags: &InputTags,
    ) -> TaskKey {
        TaskKey::derive(&layout_run_parts(benchmark, geometry, set, tags), &[])
    }

    pub(crate) fn layout_manifest_parts(quick: bool) -> Vec<String> {
        vec!["layout-manifest".to_string(), CAMPAIGN_EPOCH.to_string(), quick.to_string()]
    }

    /// The layout-compare manifest: Merkle over its per-benchmark
    /// competition keys (which already commit to the pass roster, grid
    /// and compare area).
    #[must_use]
    pub fn layout_manifest(quick: bool, tags: &InputTags) -> TaskKey {
        let icache = CacheGeometry::xscale_icache();
        let (benchmarks, set) = crate::layout_compare::layout_benchmarks(quick);
        let deps: Vec<TaskKey> =
            benchmarks.iter().map(|&b| layout_run(b, icache, set, tags)).collect();
        TaskKey::derive(&layout_manifest_parts(quick), &deps)
    }
}

/// One schedulable pipeline family of the campaign.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Group {
    /// The figure-1 hand example (pure).
    Fig1,
    /// The table-1 configuration dump (pure).
    Table1,
    /// The figure-4 suite (xscale cache, way-memoization vs 32 KB WP).
    Fig4,
    /// The figure-5 area sweep.
    Fig5,
    /// The figure-6 size × associativity grid.
    Fig6,
    /// The trace-report baseline pipeline.
    Trace,
    /// The tuned-areas autotune pipeline.
    Tune,
    /// The chaos-campaign resilience pipeline.
    Chaos,
    /// The obs-report reconciliation pipeline.
    Obs,
    /// The layout-compare competition pipeline.
    LayoutCompare,
    /// The fetch-core throughput pipeline.
    Perf,
}

impl Group {
    /// Every group, in planning order.
    pub const ALL: [Group; 11] = [
        Group::Fig1,
        Group::Table1,
        Group::Fig4,
        Group::Fig5,
        Group::Fig6,
        Group::Trace,
        Group::Tune,
        Group::Chaos,
        Group::Obs,
        Group::LayoutCompare,
        Group::Perf,
    ];
    /// The figure/table groups (`run --only fig`).
    pub const FIGURES: [Group; 5] =
        [Group::Fig1, Group::Table1, Group::Fig4, Group::Fig5, Group::Fig6];
    /// The six blessed-baseline groups, in [`baseline::BASELINE_FILES`]
    /// + perf order — what the store-backed gate runs.
    pub const BASELINE: [Group; 6] =
        [Group::Trace, Group::Tune, Group::Chaos, Group::Obs, Group::LayoutCompare, Group::Perf];

    /// The `BENCH_<name>.json` stem this group's manifest is written
    /// to — identical to the standalone binary's output path.
    #[must_use]
    pub fn manifest_name(self) -> &'static str {
        match self {
            Group::Fig1 => "fig1",
            Group::Table1 => "table1",
            Group::Fig4 => "fig4",
            Group::Fig5 => "fig5",
            Group::Fig6 => "fig6",
            Group::Trace => "trace_report",
            Group::Tune => "tuned_areas",
            Group::Chaos => "chaos_campaign",
            Group::Obs => "obs_report",
            Group::LayoutCompare => "layout_compare",
            Group::Perf => "perf_fetch",
        }
    }

    /// Parses a `run --only` selector into the groups it names.
    /// Accepts family selectors (`fig`, `gate`) and individual
    /// manifest names (`fig4`, `tuned_areas`, `tune`, …).
    #[must_use]
    pub fn parse(selector: &str) -> Option<Vec<Group>> {
        match selector {
            "all" => Some(Group::ALL.to_vec()),
            "fig" | "figs" | "figures" => Some(Group::FIGURES.to_vec()),
            "gate" | "baseline" => Some(Group::BASELINE.to_vec()),
            "fig1" => Some(vec![Group::Fig1]),
            "table1" => Some(vec![Group::Table1]),
            "fig4" => Some(vec![Group::Fig4]),
            "fig5" => Some(vec![Group::Fig5]),
            "fig6" => Some(vec![Group::Fig6]),
            "trace" | "trace_report" => Some(vec![Group::Trace]),
            "tune" | "tuned_areas" => Some(vec![Group::Tune]),
            "chaos" | "chaos_campaign" => Some(vec![Group::Chaos]),
            "obs" | "obs_report" => Some(vec![Group::Obs]),
            "layout" | "layout_compare" => Some(vec![Group::LayoutCompare]),
            "perf" | "perf_fetch" => Some(vec![Group::Perf]),
            _ => None,
        }
    }
}

/// What to run and how.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Quick (CI smoke) shapes instead of the full published shapes.
    pub quick: bool,
    /// Which pipeline families to plan.
    pub groups: Vec<Group>,
    /// Per-benchmark input-set tags.
    pub tags: InputTags,
    /// DAG worker threads (each running node may itself fan out on the
    /// shared engine pool, so this stays small).
    pub workers: usize,
    /// Optional per-job watchdog handed to the campaign engine.
    pub job_time_limit: Option<Duration>,
}

impl CampaignConfig {
    /// A config over an explicit group list with default tags.
    #[must_use]
    pub fn new(quick: bool, groups: Vec<Group>) -> CampaignConfig {
        CampaignConfig {
            quick,
            groups,
            tags: InputTags::default(),
            workers: 2,
            job_time_limit: None,
        }
    }

    /// Everything ([`Group::ALL`]).
    #[must_use]
    pub fn all(quick: bool) -> CampaignConfig {
        CampaignConfig::new(quick, Group::ALL.to_vec())
    }
}

/// The benchmark matrix of the campaign's figure suites: full mode is
/// the published figure shape (all benchmarks, large inputs — exactly
/// what the standalone binaries run), quick is the CI smoke shape.
#[must_use]
pub fn fig_benchmarks(quick: bool) -> (Vec<Benchmark>, InputSet) {
    if quick {
        (vec![Benchmark::Crc, Benchmark::Sha], InputSet::Small)
    } else {
        (Benchmark::ALL.to_vec(), InputSet::Large)
    }
}

/// The engine experiment behind one figure suite (`None` for the
/// non-suite groups).
#[must_use]
pub fn fig_experiment(group: Group, quick: bool) -> Option<Experiment> {
    let (benchmarks, set) = fig_benchmarks(quick);
    let xscale = CacheGeometry::xscale_icache();
    let experiment = match group {
        Group::Fig4 => Experiment::new(
            benchmarks,
            [xscale],
            [Scheme::WayMemoization, Scheme::WayPlacement { area_bytes: 32 * 1024 }],
        ),
        Group::Fig5 => {
            let schemes: Vec<Scheme> = std::iter::once(Scheme::WayMemoization)
                .chain(FIGURE5_AREAS.iter().map(|&area_bytes| Scheme::WayPlacement { area_bytes }))
                .collect();
            Experiment::new(benchmarks, [xscale], schemes)
        }
        Group::Fig6 => Experiment::new(
            benchmarks,
            crate::figure6_geometries(),
            [
                Scheme::WayMemoization,
                Scheme::WayPlacement { area_bytes: 8 * 1024 },
                Scheme::WayPlacement { area_bytes: 2 * 1024 },
            ],
        ),
        _ => return None,
    };
    Some(experiment.with_input_set(set))
}

/// Figure 1's measured counts: the three-fetch hand example on the
/// 2-set, 4-way cache, warmed then counted.
#[derive(Clone, Copy, Debug)]
pub struct Fig1Data {
    /// The figure's cache geometry.
    pub geometry: CacheGeometry,
    /// Steady-state counts under the set-associative baseline.
    pub baseline: FetchStats,
    /// Steady-state counts under way-placement (same-line elision off,
    /// isolating the way effect).
    pub way_placement: FetchStats,
}

fn warm_and_count(cache: &mut InstructionCache, wp: bool) -> FetchStats {
    let addrs = [0x04u32, 0x08, 0x20];
    for addr in addrs {
        cache.fetch(addr, wp); // warm: fills + hint training
    }
    let before = *cache.stats();
    for addr in addrs {
        cache.fetch(addr, wp);
    }
    let after = *cache.stats();
    FetchStats {
        fetches: after.fetches - before.fetches,
        tag_comparisons: after.tag_comparisons - before.tag_comparisons,
        ..FetchStats::new()
    }
}

/// Runs the figure-1 hand example (shared by the `fig1` binary and the
/// campaign's fig1 node).
#[must_use]
pub fn fig1_data() -> Fig1Data {
    let geometry = CacheGeometry::new(256, 4, 32);
    let mut baseline = InstructionCache::new(ICacheConfig::baseline(geometry));
    let b = warm_and_count(&mut baseline, false);
    let mut wp = InstructionCache::new(ICacheConfig {
        same_line_elision: false, // the figure isolates the way effect
        ..ICacheConfig::way_placement(geometry)
    });
    let w = warm_and_count(&mut wp, true);
    Fig1Data { geometry, baseline: b, way_placement: w }
}

/// The `provenance` block a figure manifest carries: the task key of
/// the node that produced (or could reproduce) its bytes.
#[must_use]
pub fn provenance_json(task_key: &TaskKey) -> Json {
    Json::obj([("task_key", Json::from(task_key.hex().as_str()))])
}

/// Renders `BENCH_fig1.json` from [`Fig1Data`].
#[must_use]
pub fn fig1_manifest(data: &Fig1Data, task_key: &TaskKey) -> Json {
    let (b, w) = (data.baseline, data.way_placement);
    let saving = 100.0 * (1.0 - w.tag_comparisons as f64 / b.tag_comparisons as f64);
    Json::obj([
        ("figure", Json::from("fig1")),
        ("geometry", Json::from(data.geometry.to_string())),
        ("baseline_fetches", Json::from(b.fetches)),
        ("baseline_tag_comparisons", Json::from(b.tag_comparisons)),
        ("way_placement_fetches", Json::from(w.fetches)),
        ("way_placement_tag_comparisons", Json::from(w.tag_comparisons)),
        ("tag_saving_fraction", Json::from(saving / 100.0)),
        ("paper_baseline_tag_comparisons", Json::from(12u32)),
        ("paper_way_placement_tag_comparisons", Json::from(3u32)),
        ("provenance", provenance_json(task_key)),
    ])
}

/// Renders `BENCH_table1.json` from the live configuration defaults.
#[must_use]
pub fn table1_manifest(task_key: &TaskKey) -> Json {
    let geom = CacheGeometry::xscale_icache();
    let mem = MemoryConfig::baseline(geom);
    let sim = SimConfig::new(mem);
    Json::obj([
        ("figure", Json::from("table1")),
        ("memory_bus_bits", Json::from(32u32)),
        ("memory_latency_cycles", Json::from(mem.icache.miss_latency)),
        ("tlb_entries", Json::from(mem.itlb.entries)),
        ("tlb_page_bytes", Json::from(mem.itlb.page_bytes)),
        ("icache", Json::from(geom.to_string())),
        ("dcache", Json::from(mem.dcache.geometry.to_string())),
        ("write_buffer_entries", Json::from(mem.dcache.write_buffer_entries)),
        ("writeback_latency_cycles", Json::from(mem.dcache.writeback_latency)),
        ("btb_entries", Json::from(sim.btb_entries)),
        ("branch_penalty_cycles", Json::from(sim.branch_penalty)),
        ("load_latency_cycles", Json::from(sim.load_latency)),
        ("mul_latency_cycles", Json::from(sim.mul_latency)),
        ("provenance", provenance_json(task_key)),
    ])
}

/// A planned campaign: the DAG plus which node publishes each
/// requested group's manifest.
pub struct Plan {
    /// The content-addressed graph.
    pub dag: Dag,
    manifest_nodes: Vec<(Group, TaskId)>,
}

impl Plan {
    /// The `(group, node)` pairs whose payloads are the campaign's
    /// manifests, in config order.
    #[must_use]
    pub fn manifest_nodes(&self) -> &[(Group, TaskId)] {
        &self.manifest_nodes
    }

    /// The run roots: every manifest node.
    #[must_use]
    pub fn roots(&self) -> Vec<TaskId> {
        self.manifest_nodes.iter().map(|&(_, id)| id).collect()
    }
}

fn add_node(
    dag: &mut Dag,
    label: String,
    parts: &[String],
    deps: &[TaskId],
    run: impl Fn(&wp_campaign::TaskCtx<'_>) -> Result<Vec<u8>, String> + Send + Sync + 'static,
) -> TaskId {
    let part_refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    dag.add(label, &part_refs, deps, run)
}

fn parse_payload(bytes: &[u8]) -> Result<Json, String> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| format!("stored payload is not UTF-8: {e}"))?;
    Json::parse(text).map_err(|e| format!("stored payload is not JSON: {e}"))
}

fn parse_dep_payloads(ctx: &wp_campaign::TaskCtx<'_>) -> Result<Vec<Json>, String> {
    (0..ctx.dep_count()).map(|i| parse_payload(ctx.dep(i))).collect()
}

fn plan_measure(
    dag: &mut Dag,
    engine: &Arc<Engine>,
    benchmark: Benchmark,
    geometry: CacheGeometry,
    scheme: Scheme,
    set: InputSet,
    tags: &InputTags,
) -> TaskId {
    let parts = keys::measure_parts(benchmark, geometry, scheme, set, tags);
    let label =
        format!("measure/{}/{}/{}/{}", benchmark.name(), geometry, scheme.label(), set_name(set));
    let engine = Arc::clone(engine);
    add_node(dag, label, &parts, &[], move |_| {
        let experiment = Experiment::new([benchmark], [geometry], [scheme]).with_input_set(set);
        let report = engine.run(&experiment);
        if let Some(failure) = report.failures.first() {
            return Err(failure.to_string());
        }
        report
            .rows
            .first()
            .map(|row| row.json().to_compact().into_bytes())
            .ok_or_else(|| "engine returned no row".to_string())
    })
}

fn plan_fig(
    dag: &mut Dag,
    config: &CampaignConfig,
    engine: &Arc<Engine>,
    group: Group,
    experiment: Experiment,
) -> TaskId {
    let mut dep_ids = Vec::with_capacity(experiment.job_count());
    for &benchmark in &experiment.benchmarks {
        for &geometry in &experiment.geometries {
            for &scheme in &experiment.schemes {
                dep_ids.push(plan_measure(
                    dag,
                    engine,
                    benchmark,
                    geometry,
                    scheme,
                    experiment.input_set,
                    &config.tags,
                ));
            }
        }
    }
    let fig = group.manifest_name();
    let key = keys::fig_manifest(fig, &experiment, &config.tags);
    let parts = keys::fig_manifest_parts(fig, &experiment);
    let areas = (group == Group::Fig5).then(|| FIGURE5_AREAS.to_vec());
    add_node(dag, fig.to_string(), &parts, &dep_ids, move |ctx| {
        let rows = parse_dep_payloads(ctx)?;
        let suite = Json::obj([
            ("schema", Json::from("wp-bench/suite-v1")),
            ("experiment", experiment.json()),
            ("rows", Json::Arr(rows)),
            ("failures", Json::Arr(Vec::new())),
        ]);
        let mut manifest = Json::obj([("figure", Json::from(fig))]);
        if let Some(areas) = &areas {
            manifest.push("areas_bytes", Json::arr(areas.iter().map(|&a| Json::from(a))));
        }
        manifest.push("suite", suite);
        manifest.push("provenance", provenance_json(&key));
        Ok(manifest.to_pretty().into_bytes())
    })
}

fn plan_trace(dag: &mut Dag, config: &CampaignConfig, engine: &Arc<Engine>) -> TaskId {
    let quick = config.quick;
    let icache = CacheGeometry::xscale_icache();
    let (benchmarks, set) = baseline::trace_benchmarks(quick);
    let mut dep_ids = Vec::new();
    for &benchmark in benchmarks {
        for scheme in baseline::trace_schemes() {
            let parts = keys::trace_run_parts(benchmark, icache, scheme, set, &config.tags);
            let label = format!("trace-run/{}/{}", benchmark.name(), scheme.label());
            let engine = Arc::clone(engine);
            dep_ids.push(add_node(dag, label, &parts, &[], move |_| {
                baseline::canonical_run_on(&engine, benchmark, icache, scheme, set)
                    .map(|run| run.to_compact().into_bytes())
                    .map_err(|e| e.to_string())
            }));
        }
    }
    let key = keys::trace_manifest(quick, &config.tags);
    add_node(
        dag,
        "trace_report".to_string(),
        &keys::trace_manifest_parts(quick),
        &dep_ids,
        move |ctx| {
            let runs = parse_dep_payloads(ctx)?;
            Ok(baseline::trace_manifest_from_runs(quick, runs, &key).to_pretty().into_bytes())
        },
    )
}

fn plan_tune(dag: &mut Dag, config: &CampaignConfig, engine: &Arc<Engine>) -> TaskId {
    let quick = config.quick;
    let icache = CacheGeometry::xscale_icache();
    let (benchmarks, set) = baseline::tuned_benchmarks(quick);
    let mut dep_ids = Vec::with_capacity(benchmarks.len());
    for &benchmark in &benchmarks {
        let parts = keys::tune_parts(
            benchmark,
            icache,
            &FIGURE5_AREAS,
            DEFAULT_TOLERANCE,
            set,
            &config.tags,
        );
        let engine = Arc::clone(engine);
        dep_ids.push(add_node(dag, format!("tune/{}", benchmark.name()), &parts, &[], move |_| {
            crate::autotune::tune_benchmark_on(
                &engine,
                benchmark,
                icache,
                &FIGURE5_AREAS,
                DEFAULT_TOLERANCE,
                set,
            )
            .map(|tuning| tuning.json().to_compact().into_bytes())
            .map_err(|e| e.to_string())
        }));
    }
    let key = keys::tuned_manifest(
        &benchmarks,
        icache,
        &FIGURE5_AREAS,
        DEFAULT_TOLERANCE,
        set,
        &config.tags,
    );
    add_node(dag, "tuned_areas".to_string(), &keys::tuned_manifest_parts(), &dep_ids, move |ctx| {
        let rows = parse_dep_payloads(ctx)?;
        let mut manifest = crate::autotune::tuned_manifest_from(
            rows,
            icache,
            &FIGURE5_AREAS,
            DEFAULT_TOLERANCE,
            set,
            &key,
        );
        manifest.push("quick", Json::from(quick));
        Ok(manifest.to_pretty().into_bytes())
    })
}

fn plan_layout(dag: &mut Dag, config: &CampaignConfig, engine: &Arc<Engine>) -> TaskId {
    let quick = config.quick;
    let icache = CacheGeometry::xscale_icache();
    let (benchmarks, set) = crate::layout_compare::layout_benchmarks(quick);
    let mut dep_ids = Vec::with_capacity(benchmarks.len());
    for &benchmark in &benchmarks {
        let parts = keys::layout_run_parts(benchmark, icache, set, &config.tags);
        let engine = Arc::clone(engine);
        dep_ids.push(add_node(
            dag,
            format!("layout/{}", benchmark.name()),
            &parts,
            &[],
            move |_| {
                crate::layout_compare::layout_run_payload(&engine, benchmark, icache, set)
                    .map(|rows| rows.to_compact().into_bytes())
                    .map_err(|e| e.to_string())
            },
        ));
    }
    let key = keys::layout_manifest(quick, &config.tags);
    add_node(
        dag,
        "layout_compare".to_string(),
        &keys::layout_manifest_parts(quick),
        &dep_ids,
        move |ctx| {
            let per_benchmark = parse_dep_payloads(ctx)?;
            crate::layout_compare::layout_manifest_from_runs(quick, per_benchmark, &key)
                .map(|m| m.to_pretty().into_bytes())
                .map_err(|e| e.to_string())
        },
    )
}

/// Plans the whole campaign over `config.groups`. Shared sub-nodes
/// (e.g. a measure job appearing in both the fig5 grid and fig4)
/// deduplicate by key inside the DAG.
#[must_use]
pub fn plan(config: &CampaignConfig, engine: &Arc<Engine>) -> Plan {
    let mut dag = Dag::new();
    let mut manifest_nodes = Vec::new();
    for &group in &config.groups {
        let quick = config.quick;
        let id = match group {
            Group::Fig1 => {
                let key = keys::fig1();
                add_node(&mut dag, "fig1".to_string(), &keys::fig1_parts(), &[], move |_| {
                    Ok(fig1_manifest(&fig1_data(), &key).to_pretty().into_bytes())
                })
            }
            Group::Table1 => {
                let key = keys::table1();
                add_node(&mut dag, "table1".to_string(), &keys::table1_parts(), &[], move |_| {
                    Ok(table1_manifest(&key).to_pretty().into_bytes())
                })
            }
            Group::Fig4 | Group::Fig5 | Group::Fig6 => {
                let Some(experiment) = fig_experiment(group, quick) else { continue };
                plan_fig(&mut dag, config, engine, group, experiment)
            }
            Group::Trace => plan_trace(&mut dag, config, engine),
            Group::Tune => plan_tune(&mut dag, config, engine),
            Group::LayoutCompare => plan_layout(&mut dag, config, engine),
            Group::Chaos => {
                let key = keys::chaos(quick, &config.tags);
                add_node(
                    &mut dag,
                    "chaos_campaign".to_string(),
                    &keys::chaos_parts(quick, &config.tags),
                    &[],
                    move |_| {
                        crate::chaos::build_chaos_baseline_with_key(quick, &key)
                            .map(|m| m.to_pretty().into_bytes())
                    },
                )
            }
            Group::Obs => {
                let key = keys::obs(quick, &config.tags);
                add_node(
                    &mut dag,
                    "obs_report".to_string(),
                    &keys::obs_parts(quick, &config.tags),
                    &[],
                    move |_| {
                        crate::obs::build_obs_baseline_with_key(quick, &key)
                            .map(|m| m.to_pretty().into_bytes())
                    },
                )
            }
            Group::Perf => {
                let id = add_node(
                    &mut dag,
                    "perf_fetch".to_string(),
                    &keys::perf_parts(quick),
                    &[],
                    move |_| {
                        crate::perf::measure(quick)
                            .map(|report| report.json().to_pretty().into_bytes())
                    },
                );
                // Wall-clock measurement: concurrent DAG nodes would
                // skew the speedup ratios, so this node runs with the
                // machine to itself.
                dag.mark_exclusive(id);
                id
            }
        };
        manifest_nodes.push((group, id));
    }
    Plan { dag, manifest_nodes }
}

/// Campaign instruments on an [`Obs`] registry — the [`Monitor`]
/// bridge the ISSUE's observability satellite names.
pub struct CampaignMetrics {
    /// `wp_campaign_store_hits_total`.
    pub hits: Counter,
    /// `wp_campaign_store_misses_total`.
    pub misses: Counter,
    node_wall_us: Histogram,
}

impl CampaignMetrics {
    /// Registers (or re-attaches to) the campaign instruments on `obs`.
    #[must_use]
    pub fn register(obs: &Obs) -> CampaignMetrics {
        CampaignMetrics {
            hits: obs.metrics.counter(
                "wp_campaign_store_hits_total",
                "Campaign nodes served from the content-addressed store",
            ),
            misses: obs.metrics.counter(
                "wp_campaign_store_misses_total",
                "Campaign nodes that had to execute (store misses)",
            ),
            node_wall_us: obs
                .metrics
                .histogram("wp_campaign_node_wall_us", "Host wall microseconds per executed node"),
        }
    }
}

impl Monitor for CampaignMetrics {
    fn store_hit(&self, _label: &str, _key: &TaskKey) {
        self.hits.inc();
    }

    fn store_miss(&self, _label: &str, _key: &TaskKey) {
        self.misses.inc();
    }

    fn node_done(&self, _label: &str, _key: &TaskKey, wall: Duration, _ok: bool) {
        self.node_wall_us.record(u64::try_from(wall.as_micros()).unwrap_or(u64::MAX));
    }
}

/// The outcome of a campaign run: the raw DAG report plus every
/// rendered manifest payload (hit or computed alike).
pub struct CampaignRun {
    /// Per-node outcomes, hit/miss counts, failures.
    pub report: RunReport,
    manifests: Vec<(Group, Vec<u8>)>,
}

impl CampaignRun {
    /// The manifest payload of `group`, if its node resolved.
    #[must_use]
    pub fn manifest(&self, group: Group) -> Option<&[u8]> {
        self.manifests
            .iter()
            .find(|(g, _)| *g == group)
            .map(|(_, bytes)| bytes.as_slice())
    }

    /// Every resolved `(group, payload)` pair, in config order.
    #[must_use]
    pub fn manifests(&self) -> &[(Group, Vec<u8>)] {
        &self.manifests
    }
}

/// Plans and runs the campaign against `store`. The engine is built
/// fresh per run with the campaign retry policy (and `obs`, when
/// armed, so engine metrics, the event journal and the campaign's own
/// hit/miss counters land in one registry).
#[must_use]
pub fn run(config: &CampaignConfig, store: &Store, obs: Option<&Arc<Obs>>) -> CampaignRun {
    let mut engine = Engine::new().with_retry(RetryPolicy::new(3, Duration::from_millis(10)));
    if let Some(obs) = obs {
        engine = engine.with_obs(Arc::clone(obs));
    }
    if let Some(limit) = config.job_time_limit {
        engine = engine.with_job_time_limit(limit);
    }
    let engine = Arc::new(engine);
    let plan = plan(config, &engine);
    let metrics = obs.map(|obs| CampaignMetrics::register(obs));
    let report = match &metrics {
        Some(monitor) => plan.dag.run(store, &plan.roots(), config.workers, monitor),
        None => plan.dag.run(store, &plan.roots(), config.workers, &NullMonitor),
    };
    let mut manifests = Vec::new();
    for &(group, id) in plan.manifest_nodes() {
        if let Some(bytes) = report.payload(id) {
            manifests.push((group, bytes.to_vec()));
        }
    }
    CampaignRun { report, manifests }
}

/// Writes every rendered manifest to its standard `BENCH_<name>.json`
/// path (the same place the standalone binaries write), returning the
/// written paths. File emission lives here — outside the DAG — so a
/// store hit still refreshes the manifest on disk.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_manifests(run: &CampaignRun) -> std::io::Result<Vec<PathBuf>> {
    let mut paths = Vec::with_capacity(run.manifests().len());
    for (group, bytes) in run.manifests() {
        let path = crate::manifest_path(group.manifest_name());
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, bytes)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Everything `wp-campaign explain <label>` reports about one node.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The node's label.
    pub label: String,
    /// Its content-addressed key.
    pub key: TaskKey,
    /// The identity parts the key commits to (dependency keys are
    /// mixed in on top).
    pub parts: Vec<String>,
    /// Whether the store currently holds its payload.
    pub in_store: bool,
    /// Direct dependencies: `(label, key, in_store)`.
    pub deps: Vec<(String, TaskKey, bool)>,
}

/// Looks `label` up in `config`'s plan and reports its key, identity
/// parts and hit/miss provenance against `store`. Purely static — no
/// node runs.
#[must_use]
pub fn explain(config: &CampaignConfig, store: &Store, label: &str) -> Option<Explain> {
    let engine = Arc::new(Engine::new());
    let plan = plan(config, &engine);
    let id = plan.dag.find(label)?;
    let deps = plan
        .dag
        .deps(id)
        .iter()
        .map(|&d| {
            let key = plan.dag.key(d);
            (plan.dag.label(d).to_string(), key, store.contains(&key))
        })
        .collect();
    let key = plan.dag.key(id);
    Some(Explain {
        label: label.to_string(),
        key,
        parts: plan.dag.parts(id).to_vec(),
        in_store: store.contains(&key),
        deps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The static key space and the planned DAG must agree: a key in
    /// `provenance.task_key` has to name the node that produced the
    /// bytes, or `explain` and incremental invalidation both lie.
    #[test]
    fn static_keys_match_planned_node_keys() {
        let config = CampaignConfig::all(true);
        let engine = Arc::new(Engine::with_workers(1));
        let plan = plan(&config, &engine);
        for &(group, id) in plan.manifest_nodes() {
            let quick = config.quick;
            let expected = match group {
                Group::Fig1 => keys::fig1(),
                Group::Table1 => keys::table1(),
                Group::Fig4 | Group::Fig5 | Group::Fig6 => {
                    let experiment = fig_experiment(group, quick).expect("suite group");
                    keys::fig_manifest(group.manifest_name(), &experiment, &config.tags)
                }
                Group::Trace => keys::trace_manifest(quick, &config.tags),
                Group::Tune => {
                    let (benchmarks, set) = baseline::tuned_benchmarks(quick);
                    keys::tuned_manifest(
                        &benchmarks,
                        CacheGeometry::xscale_icache(),
                        &FIGURE5_AREAS,
                        DEFAULT_TOLERANCE,
                        set,
                        &config.tags,
                    )
                }
                Group::Chaos => keys::chaos(quick, &config.tags),
                Group::Obs => keys::obs(quick, &config.tags),
                Group::LayoutCompare => keys::layout_manifest(quick, &config.tags),
                Group::Perf => keys::perf(quick),
            };
            assert_eq!(
                plan.dag.key(id),
                expected,
                "{}: planned key diverges from keys::*",
                group.manifest_name()
            );
        }
    }

    /// Re-tagging one benchmark's inputs must move exactly the keys
    /// downstream of that benchmark.
    #[test]
    fn input_tag_flip_invalidates_only_the_dependent_subgraph() {
        let base = InputTags::default();
        let flipped = InputTags::default().with(Benchmark::Crc, "v2");
        let xscale = CacheGeometry::xscale_icache();

        // Leaf: the tagged benchmark moves, a sibling does not.
        let scheme = Scheme::WayMemoization;
        assert_ne!(
            keys::measure(Benchmark::Crc, xscale, scheme, InputSet::Small, &base),
            keys::measure(Benchmark::Crc, xscale, scheme, InputSet::Small, &flipped),
        );
        assert_eq!(
            keys::measure(Benchmark::Sha, xscale, scheme, InputSet::Small, &base),
            keys::measure(Benchmark::Sha, xscale, scheme, InputSet::Small, &flipped),
        );

        // Manifests containing the benchmark move (Merkle propagation)…
        for quick in [true, false] {
            assert_ne!(keys::trace_manifest(quick, &base), keys::trace_manifest(quick, &flipped));
            assert_ne!(keys::chaos(quick, &base), keys::chaos(quick, &flipped));
            assert_ne!(keys::obs(quick, &base), keys::obs(quick, &flipped));
            assert_ne!(keys::layout_manifest(quick, &base), keys::layout_manifest(quick, &flipped));
        }

        // …while the input-independent nodes stand still.
        assert_eq!(keys::fig1(), keys::fig1());
        assert_eq!(keys::perf(true), keys::perf(true));
    }

    /// The shared measure space: fig4's two xscale schemes are a
    /// subset of fig5's sweep + memoization, so planning both figures
    /// must dedup every fig4 measure node into fig5's.
    #[test]
    fn shared_measure_nodes_deduplicate_across_figures() {
        let config = CampaignConfig::new(true, vec![Group::Fig5, Group::Fig4]);
        let engine = Arc::new(Engine::with_workers(1));
        let plan = plan(&config, &engine);
        let (benchmarks, _) = fig_benchmarks(true);
        // fig5: per-benchmark (1 wm + 6 areas) + manifest; fig4 adds
        // only its own manifest node — its measures all dedup.
        let fig5_nodes = benchmarks.len() * (1 + FIGURE5_AREAS.len()) + 1;
        assert_eq!(plan.dag.len(), fig5_nodes + 1);
    }

    /// `Group::parse` covers every manifest name and the family
    /// selectors.
    #[test]
    fn group_selectors_parse() {
        for group in Group::ALL {
            assert_eq!(Group::parse(group.manifest_name()), Some(vec![group]));
        }
        assert_eq!(Group::parse("fig").map(|g| g.len()), Some(5));
        assert_eq!(Group::parse("gate").map(|g| g.len()), Some(6));
        assert_eq!(Group::parse("all").map(|g| g.len()), Some(11));
        assert_eq!(Group::parse("nope"), None);
    }
}
