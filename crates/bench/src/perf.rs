//! `perf_fetch` — in-repo fetch-core throughput measurement.
//!
//! Times the two ways the repository can drive an instruction-fetch
//! stream through the structure-of-arrays core — fetch-by-fetch, and
//! through the batched [`MemorySystem::fetch_block`] entry point —
//! over two synthetic scenarios:
//!
//! * **straight**: long line-bounded straight-line runs under the
//!   way-placement scheme, the shape the batched path amortises;
//! * **loopy**: one-to-four-word runs with frequent branches under the
//!   baseline scheme, where batching can barely help and the per-fetch
//!   cost dominates.
//!
//! Every timed configuration first passes an *untimed* equivalence
//! tripwire: both drivers must produce identical total cycles and
//! identical [`FetchStats`], with and without the fault-detection
//! checks armed, so a throughput number can never be bought with a
//! behaviour change. The statistic is min-of-N (see [`bench_min`]) —
//! the least host-noise-sensitive estimate for a short deterministic
//! kernel.
//!
//! The manifest (`BENCH_perf_fetch.json`, schema [`PERF_SCHEMA`]) is
//! shaped so `wp_tune::TraceSet` parses it like a trace report: each
//! scenario × driver pair is a run whose *fetch* metric carries the
//! throughput in Mfetch/s and whose *energy* metric carries the
//! speedup over the per-fetch driver — the latter is same-machine,
//! same-process, and therefore the robust number the stored-baseline
//! gate leans on.

use wp_mem::rng::SplitMix64;
use wp_mem::{CacheGeometry, FetchStats, MemoryConfig, MemorySystem};

use crate::timing::bench_min;
use crate::Json;

/// Schema tag of the `BENCH_perf_fetch.json` manifest.
pub const PERF_SCHEMA: &str = "perf_fetch/v1";
/// The headline target: the batched entry point must beat the
/// per-fetch loop over the same core by at least this factor on the
/// straight scenario (measured ~3.2x on the reference host; 2x leaves
/// headroom for slower machines while still catching a real loss of
/// the batching win).
pub const TARGET_SPEEDUP: f64 = 2.0;
/// The scenario and driver the headline speedup is read from.
pub const HEADLINE: (&str, &str) = ("straight", "soa-block");

/// One fetch workload: a memory configuration plus a pre-expanded
/// stream of line-bounded `(addr, words)` runs.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (`straight` / `loopy`).
    pub name: &'static str,
    /// The hierarchy configuration every driver instantiates.
    pub config: MemoryConfig,
    /// Line-bounded runs; the per-fetch drivers expand each run into
    /// `words` sequential fetches.
    pub blocks: Vec<(u32, u32)>,
    /// Total fetched words (the throughput denominator).
    pub words: u64,
}

/// Expands a seeded branchy program shape into line-bounded runs:
/// straight-line stretches of `min_run..=max_run` words split at cache
/// line boundaries, ending in a mostly-backward branch with occasional
/// far jumps, all within `span` bytes.
fn build_blocks(
    seed: u64,
    span: u32,
    total_words: u64,
    min_run: u64,
    max_run: u64,
    line_words: u32,
) -> Vec<(u32, u32)> {
    let mut rng = SplitMix64::new(seed);
    let mut blocks = Vec::new();
    let mut words = 0u64;
    let mut pc: u32 = 0;
    while words < total_words {
        let mut left = rng.range_u64(min_run, max_run);
        while left > 0 && words < total_words {
            pc %= span;
            let line_left = u64::from(line_words - (pc / 4) % line_words);
            let chunk = line_left.min(left).min(total_words - words);
            blocks.push((pc, chunk as u32));
            pc = pc.wrapping_add(chunk as u32 * 4);
            words += chunk;
            left -= chunk;
        }
        pc = if rng.below(4) == 0 {
            (rng.below(u64::from(span / 4)) as u32) * 4
        } else {
            pc.saturating_sub(rng.range_u64(0, 64) as u32 * 4)
        };
    }
    blocks
}

/// The two timed scenarios over `total_words` fetches each.
#[must_use]
pub fn scenarios(total_words: u64) -> Vec<Scenario> {
    let geom = CacheGeometry::xscale_icache();
    let line_words = geom.words_per_line();
    // Straight: long runs in a working set the cache holds, under the
    // paper's scheme — the batched path's best case and the shape the
    // simulator's straight-line batching produces.
    let straight = Scenario {
        name: "straight",
        config: MemoryConfig::way_placement(geom, 0, 32 * 1024),
        blocks: build_blocks(0x9e3f_0001, 24 * 1024, total_words, 16, 64, line_words),
        words: total_words,
    };
    // Loopy: short runs over 1.5x the cache size under the baseline
    // full search — misses, conflict churn, nothing to amortise.
    let loopy = Scenario {
        name: "loopy",
        config: MemoryConfig::baseline(geom),
        blocks: build_blocks(0x9e3f_0002, 48 * 1024, total_words, 1, 4, line_words),
        words: total_words,
    };
    vec![straight, loopy]
}

/// A driver: one pass of a scenario's stream through one fetch core,
/// returning total cycles and the final counters.
type Driver = fn(MemoryConfig, &[(u32, u32)]) -> (u64, FetchStats);

/// Drives the SoA core fetch-by-fetch.
fn drive_soa_fetch(config: MemoryConfig, blocks: &[(u32, u32)]) -> (u64, FetchStats) {
    let mut mem = MemorySystem::new(config);
    let mut cycles = 0u64;
    for &(addr, words) in blocks {
        for i in 0..words {
            cycles += u64::from(mem.fetch(addr + 4 * i).cycles);
        }
    }
    (cycles, *mem.fetch_stats())
}

/// Drives the SoA core through the batched block entry point.
fn drive_soa_block(config: MemoryConfig, blocks: &[(u32, u32)]) -> (u64, FetchStats) {
    let mut mem = MemorySystem::new(config);
    let mut cycles = 0u64;
    for &(addr, words) in blocks {
        cycles += u64::from(mem.fetch_block(addr, words).cycles);
    }
    (cycles, *mem.fetch_stats())
}

/// The untimed tripwire: the batched driver must agree with the
/// per-fetch driver on total cycles and every fetch counter — with the
/// fault-detection checks off *and* armed (on a clean stream the armed
/// twin must be observation-only).
///
/// # Errors
///
/// A description of the first divergence.
pub fn verify_equivalence(scenario: &Scenario) -> Result<(), String> {
    let plain = drive_soa_fetch(scenario.config, &scenario.blocks);
    for (mode, config) in [("", scenario.config), ("+detect", scenario.config.with_detection())] {
        let reference = drive_soa_fetch(config, &scenario.blocks);
        if reference != plain {
            return Err(format!(
                "{}{mode}/soa-fetch: armed detection changed a clean run",
                scenario.name
            ));
        }
        let result = drive_soa_block(config, &scenario.blocks);
        if result.0 != reference.0 {
            return Err(format!(
                "{}{mode}/soa-block: {} cycles, per-fetch driver says {}",
                scenario.name, result.0, reference.0
            ));
        }
        if result.1 != reference.1 {
            return Err(format!(
                "{}{mode}/soa-block: fetch counters diverged from the per-fetch driver",
                scenario.name
            ));
        }
    }
    Ok(())
}

/// One timed scenario × driver result.
#[derive(Clone, Copy, Debug)]
pub struct PerfRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Driver name (`soa-fetch` / `soa-block`).
    pub core: &'static str,
    /// Min-of-N nanoseconds for one pass over the stream.
    pub ns: f64,
    /// Simulated-fetch throughput, million fetches per second.
    pub mfetch_per_s: f64,
    /// This driver's speedup over `soa-fetch` on the same scenario,
    /// same process, same machine.
    pub speedup_vs_ref: f64,
}

/// A full measurement: every row plus the parameters that shaped it.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Scenario × driver rows, scenario-major, per-fetch driver first.
    pub rows: Vec<PerfRow>,
    /// Fetched words per pass.
    pub words: u64,
    /// Timed iterations per driver (after one warmup pass).
    pub iters: u32,
    /// Whether this was the quick (CI smoke) shape.
    pub quick: bool,
}

impl PerfReport {
    /// The headline speedup: [`HEADLINE`]'s row, `0.0` if missing.
    #[must_use]
    pub fn headline_speedup(&self) -> f64 {
        self.rows
            .iter()
            .find(|r| (r.scenario, r.core) == HEADLINE)
            .map_or(0.0, |r| r.speedup_vs_ref)
    }

    /// Renders the `BENCH_perf_fetch.json` manifest body — parseable
    /// by `wp_tune::TraceSet` (fetches = Mfetch/s, icache_pj =
    /// speedup over the per-fetch driver).
    #[must_use]
    pub fn json(&self) -> Json {
        self.json_with_key(&crate::campaign::keys::perf(self.quick))
    }

    /// [`PerfReport::json`] with an explicit provenance task key (the
    /// campaign DAG passes the key of the perf node; the default is
    /// the same key, since throughput has no per-benchmark inputs).
    #[must_use]
    pub fn json_with_key(&self, task_key: &wp_campaign::TaskKey) -> Json {
        Json::obj([
            ("schema", Json::from(PERF_SCHEMA)),
            (
                "provenance",
                Json::obj([
                    ("quick", Json::from(self.quick)),
                    ("words", Json::Uint(self.words)),
                    ("iters", Json::from(self.iters)),
                    ("statistic", Json::from("min")),
                    ("target_speedup", Json::from(TARGET_SPEEDUP)),
                    ("task_key", Json::from(task_key.hex().as_str())),
                ]),
            ),
            (
                "runs",
                Json::arr(self.rows.iter().map(|row| {
                    Json::obj([
                        ("benchmark", Json::from(row.scenario)),
                        ("scheme", Json::from(row.core)),
                        ("fetches", Json::from(row.mfetch_per_s)),
                        ("icache_pj", Json::from(row.speedup_vs_ref)),
                        ("ns_per_pass", Json::from(row.ns)),
                    ])
                })),
            ),
            ("speedup", Json::from(self.headline_speedup())),
        ])
    }
}

/// Runs the whole measurement: tripwire, then min-of-N timing of every
/// scenario × driver pair. Quick mode trims the stream and iteration
/// count to CI-smoke size.
///
/// # Errors
///
/// The tripwire's divergence description, should the cores ever
/// disagree.
pub fn measure(quick: bool) -> Result<PerfReport, String> {
    let (words, iters) = if quick { (40_000, 3) } else { (400_000, 7) };
    let mut rows = Vec::new();
    for scenario in scenarios(words) {
        verify_equivalence(&scenario)?;
        let drivers: [(&'static str, Driver); 2] =
            [("soa-fetch", drive_soa_fetch), ("soa-block", drive_soa_block)];
        let mut ref_ns = f64::NAN;
        for (core, drive) in drivers {
            let label = format!("{}/{core}", scenario.name);
            let ns = bench_min(&label, 1, iters, || drive(scenario.config, &scenario.blocks));
            if core == "soa-fetch" {
                ref_ns = ns;
            }
            rows.push(PerfRow {
                scenario: scenario.name,
                core,
                ns,
                mfetch_per_s: scenario.words as f64 / ns * 1e3,
                speedup_vs_ref: ref_ns / ns,
            });
        }
    }
    Ok(PerfReport { rows, words, iters, quick })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_tune::TraceSet;

    #[test]
    fn scenarios_are_line_bounded_and_sized() {
        for scenario in scenarios(5_000) {
            let line = scenario.config.icache.geometry.line_bytes();
            let total: u64 = scenario.blocks.iter().map(|&(_, w)| u64::from(w)).sum();
            assert_eq!(total, scenario.words, "{}", scenario.name);
            for &(addr, words) in &scenario.blocks {
                assert!(words >= 1);
                let last = addr + 4 * (words - 1);
                assert_eq!(addr / line, last / line, "{}: run straddles a line", scenario.name);
            }
        }
    }

    #[test]
    fn drivers_agree_on_small_streams() {
        for scenario in scenarios(3_000) {
            verify_equivalence(&scenario).expect("tripwire");
        }
    }

    #[test]
    fn manifest_parses_as_a_trace_set() {
        let report = PerfReport {
            rows: vec![
                PerfRow {
                    scenario: "straight",
                    core: "soa-fetch",
                    ns: 100.0,
                    mfetch_per_s: 10.0,
                    speedup_vs_ref: 1.0,
                },
                PerfRow {
                    scenario: "straight",
                    core: "soa-block",
                    ns: 10.0,
                    mfetch_per_s: 100.0,
                    speedup_vs_ref: 10.0,
                },
            ],
            words: 1_000,
            iters: 3,
            quick: true,
        };
        assert_eq!(report.headline_speedup(), 10.0);
        let text = report.json().to_pretty();
        let set = TraceSet::parse(&text, "perf", "perf").expect("parses");
        assert_eq!(set.runs.len(), 2);
        assert_eq!(set.runs[0].key, "straight/soa-fetch");
        assert_eq!(set.runs[1].fetches, 100.0);
        assert_eq!(set.runs[1].energy, 10.0);
    }
}
