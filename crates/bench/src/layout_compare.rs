//! The layout competition: every [`Layout`] pass linked, traced and
//! priced on every benchmark, under both way-aware schemes.
//!
//! The paper's energy win lives or dies on layout quality —
//! way-placement only saves energy for code that lands inside the WP
//! area — so this pipeline races the paper's hottest-chain-first pass
//! against the natural/random/pessimal ablation baselines and the two
//! literature passes ([`wp_linker::ExtTsp`],
//! [`wp_linker::Codestitcher`]). Per `(benchmark, layout)` it reports:
//!
//! * the static WP-area coverage of the 1 KB prefix
//!   ([`wp_linker::LinkOutput::coverage_of_prefix`], training profile);
//! * the measured fetch share the 1 KB prefix actually covered on the
//!   evaluation inputs (from the [`wp_tune::predict`] sweep);
//! * the tuned knee (smallest WP area within tolerance of the best
//!   predicted energy) and its predicted energy;
//! * measured I-cache energy under `way-placement/1KB` and under way
//!   memoization.
//!
//! The manifest (`layout_compare/v1`) is TraceSet-joinable — rows are
//! keyed `<bench>/<layout>@<scheme>`, and the knee rides along as a
//! `hot_chains` row labelled `knee` so the gate flags knee drift — and
//! is blessed/gated as the sixth baseline manifest.

use wp_core::{measure_traced, measure_with, MeasureOptions, Scheme};
use wp_linker::Layout;
use wp_mem::CacheGeometry;
use wp_trace::TraceRecorder;
use wp_tune::{TuneError, DEFAULT_TOLERANCE};
use wp_workloads::{Benchmark, InputSet};

use crate::engine::Engine;
use crate::{Json, FIGURE5_AREAS};

/// Schema tag the layout-compare manifest carries.
pub const LAYOUT_SCHEMA: &str = "layout_compare/v1";
/// The WP area the competition scores coverage and energy at: the
/// smallest figure-5 area, where layout quality matters most.
pub const COMPARE_AREA_BYTES: u32 = 1024;
/// Seed of the random-layout ablation entry (fixed so the manifest is
/// deterministic).
pub const RANDOM_SEED: u64 = 0xB10C;

/// The competing passes, in manifest order: the four original chain
/// sorts, then the two literature passes.
#[must_use]
pub fn compare_layouts() -> [Layout; 6] {
    [
        Layout::Natural,
        Layout::WayPlacement,
        Layout::Random(RANDOM_SEED),
        Layout::Pessimal,
        Layout::ExtTsp,
        Layout::Codestitcher,
    ]
}

/// The benchmark matrix: quick is the CI smoke shape, full covers the
/// whole suite on the evaluation inputs.
#[must_use]
pub fn layout_benchmarks(quick: bool) -> (Vec<Benchmark>, InputSet) {
    if quick {
        (vec![Benchmark::Crc], InputSet::Small)
    } else {
        (Benchmark::ALL.to_vec(), InputSet::Large)
    }
}

fn pipeline_error(tag: &str, error: &dyn std::fmt::Display) -> TuneError {
    TuneError::Measure { message: format!("{tag}: {error}") }
}

/// All manifest rows of one benchmark: for each competing layout, the
/// way-placement row (with coverage and knee columns) and the
/// way-memoization row. Deterministic for fixed inputs.
///
/// # Errors
///
/// [`TuneError::Measure`] wrapping any link/measure failure, plus
/// everything [`wp_tune::predict`] raises.
pub(crate) fn layout_runs_on(
    engine: &Engine,
    benchmark: Benchmark,
    icache: CacheGeometry,
    set: InputSet,
) -> Result<Vec<Json>, TuneError> {
    let workbench =
        engine.workbench(benchmark).map_err(|e| pipeline_error(benchmark.name(), &e))?;
    let full_area = FIGURE5_AREAS[0];
    let mut rows = Vec::with_capacity(compare_layouts().len() * 2);
    for layout in compare_layouts() {
        let tag = format!("{}/{}", benchmark.name(), layout.label());

        // Static coverage: how much of the training profile's dynamic
        // weight the pass packed into the first KB.
        let link = workbench.link(layout, set).map_err(|e| pipeline_error(&tag, &e))?;
        let coverage_1k = link.coverage_of_prefix(workbench.profile(), COMPARE_AREA_BYTES);

        // One traced run at full coverage feeds the knee prediction
        // (the same sweep the autotuner runs, under this layout).
        let wp_full = Scheme::WayPlacement { area_bytes: full_area };
        let mut recorder = TraceRecorder::new().with_layout(link.layout_map());
        measure_traced(
            &workbench,
            icache,
            wp_full,
            MeasureOptions::new(set).with_layout(layout),
            &mut recorder,
        )
        .map_err(|e| pipeline_error(&tag, &e))?;
        let attribution = recorder.attribution().ok_or(TuneError::EmptyAttribution)?;
        let map = link.layout_map();
        let prediction =
            wp_tune::predict(&map, attribution, icache, &FIGURE5_AREAS, DEFAULT_TOLERANCE)?;
        let knee = &prediction.candidates[prediction.knee_index];
        let covered_1k = prediction
            .candidates
            .iter()
            .find(|c| c.area_bytes == COMPARE_AREA_BYTES)
            .map_or(0.0, |c| c.covered_fetch_share);

        // Measured energy at the competition area, under this layout.
        let wp_small = Scheme::WayPlacement { area_bytes: COMPARE_AREA_BYTES };
        let (wp, _) = measure_with(
            &workbench,
            icache,
            wp_small,
            MeasureOptions::new(set).with_layout(layout),
        )
        .map_err(|e| pipeline_error(&tag, &e))?;
        rows.push(Json::obj([
            ("benchmark", Json::from(benchmark.name())),
            ("scheme", Json::from(format!("{}@{}", layout.label(), wp_small.label()).as_str())),
            ("layout", Json::from(layout.label())),
            ("fetches", Json::Uint(wp.run.fetch.fetches)),
            ("cycles", Json::Uint(wp.run.cycles)),
            ("icache_pj", Json::from(wp.energy.icache.total_pj())),
            ("coverage_1k", Json::from(coverage_1k)),
            ("covered_fetch_share_1k", Json::from(covered_1k)),
            ("knee_area_bytes", Json::from(knee.area_bytes)),
            ("knee_index", Json::from(prediction.knee_index)),
            ("knee_covered_share", Json::from(knee.covered_fetch_share)),
            ("knee_pj", Json::from(knee.energy_pj)),
            (
                "hot_chains",
                Json::Arr(vec![Json::obj([
                    ("label", Json::from("knee")),
                    ("fetches", Json::Uint(u64::from(knee.area_bytes))),
                    ("energy_pj", Json::from(knee.energy_pj)),
                ])]),
            ),
        ]));

        let memo = Scheme::WayMemoization;
        let (m, _) =
            measure_with(&workbench, icache, memo, MeasureOptions::new(set).with_layout(layout))
                .map_err(|e| pipeline_error(&tag, &e))?;
        rows.push(Json::obj([
            ("benchmark", Json::from(benchmark.name())),
            ("scheme", Json::from(format!("{}@{}", layout.label(), memo.label()).as_str())),
            ("layout", Json::from(layout.label())),
            ("fetches", Json::Uint(m.run.fetch.fetches)),
            ("cycles", Json::Uint(m.run.cycles)),
            ("icache_pj", Json::from(m.energy.icache.total_pj())),
        ]));
    }
    Ok(rows)
}

/// [`layout_runs_on`] as one JSON array — the payload a campaign
/// per-benchmark layout node stores.
pub(crate) fn layout_run_payload(
    engine: &Engine,
    benchmark: Benchmark,
    icache: CacheGeometry,
    set: InputSet,
) -> Result<Json, TuneError> {
    layout_runs_on(engine, benchmark, icache, set).map(Json::Arr)
}

/// Assembles the layout-compare manifest from per-benchmark row arrays
/// (one `Json::Arr` per benchmark, in benchmark order). Split out so a
/// campaign manifest node builds byte-identical output from stored
/// payloads; `task_key` lands in provenance (display-only).
///
/// # Errors
///
/// [`TuneError::Malformed`] when a payload is not an array.
pub fn layout_manifest_from_runs(
    quick: bool,
    per_benchmark: Vec<Json>,
    task_key: &wp_campaign::TaskKey,
) -> Result<Json, TuneError> {
    let icache = CacheGeometry::xscale_icache();
    let (benchmarks, set) = layout_benchmarks(quick);
    let mut runs = Vec::new();
    for payload in per_benchmark {
        match payload {
            Json::Arr(rows) => runs.extend(rows),
            other => {
                return Err(TuneError::Measure {
                    message: format!("layout payload is not an array: {}", other.to_compact()),
                })
            }
        }
    }
    Ok(Json::obj([
        ("schema", Json::from(LAYOUT_SCHEMA)),
        ("kind", Json::from("layout_compare")),
        (
            "provenance",
            Json::obj([
                ("quick", Json::from(quick)),
                ("input_set", Json::from(crate::baseline::input_set_name(set))),
                ("geometry", Json::from(icache.to_string())),
                ("compare_area_bytes", Json::from(COMPARE_AREA_BYTES)),
                ("grid", Json::arr(FIGURE5_AREAS.iter().map(|&a| Json::from(a)))),
                ("tolerance", Json::from(DEFAULT_TOLERANCE)),
                ("layouts", Json::arr(compare_layouts().iter().map(|l| Json::from(l.label())))),
                ("benchmarks", Json::arr(benchmarks.iter().map(|b| Json::from(b.name())))),
                ("task_key", Json::from(task_key.hex().as_str())),
            ]),
        ),
        ("runs", Json::Arr(runs)),
    ]))
}

/// Builds the canonical layout-compare baseline: the whole competition
/// matrix, fanned out per benchmark on the engine pool.
/// Byte-deterministic for a fixed `quick` flag.
///
/// # Errors
///
/// The first per-benchmark failure aborts the build.
pub fn build_layout_baseline(quick: bool) -> Result<Json, TuneError> {
    let engine = Engine::global();
    let icache = CacheGeometry::xscale_icache();
    let (benchmarks, set) = layout_benchmarks(quick);
    let per_benchmark = engine
        .execute(&benchmarks, |&benchmark| layout_run_payload(engine, benchmark, icache, set))
        .into_iter()
        .collect::<Result<Vec<Json>, TuneError>>()?;
    let task_key =
        crate::campaign::keys::layout_manifest(quick, &crate::campaign::InputTags::default());
    layout_manifest_from_runs(quick, per_benchmark, &task_key)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick competition reconciles: every layout yields both rows,
    /// coverage shares are in [0, 1], way-placement's knee columns are
    /// present, and the two builds are byte-identical.
    #[test]
    fn quick_layout_baseline_is_deterministic_and_sane() {
        let a = build_layout_baseline(true).expect("layout baseline");
        let b = build_layout_baseline(true).expect("layout baseline");
        assert_eq!(a.to_pretty(), b.to_pretty(), "non-deterministic manifest");

        let runs = a.get("runs").and_then(Json::as_array).expect("runs");
        assert_eq!(runs.len(), compare_layouts().len() * 2);
        for run in runs {
            let scheme = run.get("scheme").and_then(Json::as_str).expect("scheme");
            assert!(scheme.contains('@'), "joinable scheme key: {scheme}");
            assert!(run.get("fetches").and_then(Json::as_u64).unwrap_or(0) > 0);
            if let Some(cov) = run.get("coverage_1k").and_then(Json::as_f64) {
                assert!((0.0..=1.0).contains(&cov), "coverage {cov}");
                let knee = run.get("knee_area_bytes").and_then(Json::as_u64).expect("knee");
                assert!(FIGURE5_AREAS.contains(&(knee as u32)), "knee {knee}");
            }
        }
        // The way-placement pass must not lose to the natural layout on
        // measured 1 KB coverage for the smoke benchmark.
        let share = |layout: &str| {
            runs.iter()
                .find(|r| {
                    r.get("layout").and_then(Json::as_str) == Some(layout)
                        && r.get("coverage_1k").is_some()
                })
                .and_then(|r| r.get("covered_fetch_share_1k"))
                .and_then(Json::as_f64)
                .expect("share")
        };
        assert!(share("way-placement") >= share("natural"));
    }
}
