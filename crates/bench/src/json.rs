//! A minimal, dependency-free JSON value and emitter.
//!
//! The offline build cannot fetch `serde`, so the experiment manifests
//! (`BENCH_<fig>.json`) are emitted through this hand-rolled tree. Two
//! properties matter more than features here:
//!
//! * **Determinism** — object members keep insertion order and floats
//!   print via Rust's shortest-round-trip formatter, so equal inputs
//!   produce byte-identical text (the suite's determinism regression
//!   test diffs emitter output directly).
//! * **Validity** — strings are escaped per RFC 8259 and non-finite
//!   floats (which JSON cannot represent) are emitted as `null`.

use std::fmt;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A float. Non-finite values print as `null`.
    Num(f64),
    /// An unsigned integer (cycles, counters).
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    #[must_use]
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Appends a member to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not [`Json::Obj`].
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(members) => members.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Compact single-line rendering.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing
    /// newline — the format the `BENCH_<fig>.json` manifests use.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) if !x.is_finite() => out.push_str("null"),
            Json::Num(x) => {
                // Rust's shortest-roundtrip Display is deterministic but
                // prints integral floats without a point; keep them
                // recognisable as floats.
                let text = format!("{x}");
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::Uint(n) => out.push_str(&n.to_string()),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                render_seq(out, indent, depth, '[', ']', items.len(), |out, i, depth| {
                    items[i].render(out, indent, depth);
                });
            }
            Json::Obj(members) => {
                render_seq(out, indent, depth, '{', '}', members.len(), |out, i, depth| {
                    let (key, value) = &members[i];
                    escape_into(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.render(out, indent, depth);
                });
            }
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Uint(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Uint(u64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Uint(n as u64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let value = Json::obj([
            ("name", Json::from("crc")),
            ("energy", Json::from(0.5)),
            ("cycles", Json::from(123u64)),
            ("ok", Json::from(true)),
            ("tags", Json::arr([Json::from(1u64), Json::Null])),
            ("empty", Json::obj::<String>([])),
        ]);
        assert_eq!(
            value.to_compact(),
            r#"{"name":"crc","energy":0.5,"cycles":123,"ok":true,"tags":[1,null],"empty":{}}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let value = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(value.to_compact(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn integral_floats_keep_a_point() {
        assert_eq!(Json::Num(1.0).to_compact(), "1.0");
        assert_eq!(Json::Num(-3.0).to_compact(), "-3.0");
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let value = Json::obj([("a", Json::from(1u64)), ("b", Json::arr([Json::from("x")]))]);
        assert_eq!(value.to_pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}\n");
    }
}
