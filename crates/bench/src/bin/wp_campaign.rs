//! `wp-campaign` — every experiment as one resumable DAG.
//!
//! Plans the figure suites, the trace/tune/chaos/obs baseline
//! pipelines and the perf measurement as a single content-addressed
//! graph, serves already-computed nodes from the store under
//! `--store`/`$WP_STORE_DIR`, executes the rest on a worker pool, and
//! writes the same `BENCH_*.json` manifests the standalone binaries
//! write — byte-identically.
//!
//! Usage:
//!
//! ```text
//! wp-campaign run [--all] [--only SEL]... [--quick] [--store DIR]
//!                 [--workers N] [--input-tag BENCH=TAG]...
//! wp-campaign explain <label> [--quick] [--store DIR] [--input-tag ...]
//! wp-campaign gc --keep-last N [--store DIR]
//! ```
//!
//! `--only` takes a family (`fig`, `gate`) or a manifest name
//! (`fig4`, `tune`, `chaos`, `obs`, `perf`, …) and may repeat;
//! `run --all` (the default) runs everything. `--input-tag crc=v2`
//! re-tags one benchmark's input set, invalidating exactly its
//! dependent subgraph. `gc` prunes the store to the `N` most recently
//! used entries while pinning everything the current full and quick
//! plans can still demand.
//!
//! Exit codes: `0` clean, `1` a node failed, `2` usage/store error.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::path::PathBuf;
use std::sync::Arc;

use wp_bench::campaign::{self, CampaignConfig, Group, InputTags};
use wp_campaign::Store;
use wp_core::wp_workloads::Benchmark;
use wp_obs::Obs;

fn usage() -> ! {
    eprintln!(
        "usage: wp-campaign run [--all] [--only SEL]... [--quick] [--store DIR] [--workers N] \
         [--input-tag BENCH=TAG]...\n       wp-campaign explain <label> [--quick] [--store DIR] \
         [--input-tag BENCH=TAG]...\n       wp-campaign gc --keep-last N [--store DIR]"
    );
    std::process::exit(2);
}

fn store_at(explicit: Option<PathBuf>) -> Store {
    let root = explicit.or_else(wp_core::env::store_dir).unwrap_or_else(|| {
        eprintln!("wp-campaign: no store root: pass --store DIR or set $WP_STORE_DIR");
        std::process::exit(2);
    });
    Store::new(root)
}

fn parse_tag(spec: &str, tags: &mut InputTags) {
    let Some((name, tag)) = spec.split_once('=') else {
        eprintln!("wp-campaign: --input-tag wants BENCH=TAG, got {spec:?}");
        usage();
    };
    let Some(&benchmark) = Benchmark::ALL.iter().find(|b| b.name() == name) else {
        eprintln!("wp-campaign: unknown benchmark {name:?} in --input-tag");
        std::process::exit(2);
    };
    tags.set(benchmark, tag);
}

struct CommonArgs {
    quick: bool,
    store: Option<PathBuf>,
    tags: InputTags,
    groups: Vec<Group>,
    workers: usize,
    positional: Vec<String>,
}

fn parse_common(args: &[String]) -> CommonArgs {
    let mut out = CommonArgs {
        quick: false,
        store: None,
        tags: InputTags::default(),
        groups: Vec::new(),
        workers: 2,
        positional: Vec::new(),
    };
    let mut only: Vec<Group> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--all" => only = Group::ALL.to_vec(),
            "--quick" => out.quick = true,
            "--store" => out.store = Some(PathBuf::from(iter.next().unwrap_or_else(|| usage()))),
            "--workers" => {
                out.workers = iter
                    .next()
                    .and_then(|w| w.parse().ok())
                    .filter(|&w| w > 0)
                    .unwrap_or_else(|| usage());
            }
            "--only" => {
                let selector = iter.next().unwrap_or_else(|| usage());
                match Group::parse(selector) {
                    Some(groups) => {
                        for group in groups {
                            if !only.contains(&group) {
                                only.push(group);
                            }
                        }
                    }
                    None => {
                        eprintln!("wp-campaign: unknown --only selector {selector:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--input-tag" => parse_tag(iter.next().unwrap_or_else(|| usage()), &mut out.tags),
            flag if flag.starts_with("--") => usage(),
            positional => out.positional.push(positional.to_string()),
        }
    }
    out.groups = if only.is_empty() { Group::ALL.to_vec() } else { only };
    out
}

fn cmd_run(args: &[String]) -> i32 {
    let parsed = parse_common(args);
    if !parsed.positional.is_empty() {
        usage();
    }
    let store = store_at(parsed.store);
    let mut config = CampaignConfig::new(parsed.quick, parsed.groups);
    config.tags = parsed.tags;
    config.workers = parsed.workers;

    let obs = Obs::new();
    let started = std::time::Instant::now();
    let run = campaign::run(&config, &store, Some(&obs));

    for node in &run.report.nodes {
        use wp_campaign::Outcome;
        let verdict = match &node.outcome {
            Outcome::Pruned => continue, // never demanded: nothing to say
            Outcome::Hit => "hit",
            Outcome::Computed => "computed",
            Outcome::Skipped => "skipped (dependency failed)",
            Outcome::Failed(error) => {
                eprintln!("FAILED {}: {error}", node.label);
                continue;
            }
        };
        println!("{:<44} {verdict:<9} {}", node.label, node.key);
    }

    match campaign::write_manifests(&run) {
        Ok(paths) => {
            for path in paths {
                eprintln!("manifest: {}", path.display());
            }
        }
        Err(error) => {
            eprintln!("wp-campaign: writing manifests: {error}");
            return 2;
        }
    }

    // The greppable summary CI asserts on; hit/miss counts come from
    // the armed Obs registry, not the report, so the counters the
    // metrics satellite exposes are the numbers being gated.
    let hits = obs.metrics.counter_value("wp_campaign_store_hits_total").unwrap_or(0);
    let misses = obs.metrics.counter_value("wp_campaign_store_misses_total").unwrap_or(0);
    println!(
        "campaign: {} node(s), {hits} hit(s), {misses} miss(es), {} pruned, {} failed, {} \
         skipped, {} store put error(s), {:.1}s",
        run.report.nodes.len(),
        run.report.pruned(),
        run.report.failed(),
        run.report.skipped(),
        run.report.store_put_errors,
        started.elapsed().as_secs_f64(),
    );
    i32::from(!run.report.ok())
}

fn cmd_explain(args: &[String]) -> i32 {
    let parsed = parse_common(args);
    let [label] = parsed.positional.as_slice() else { usage() };
    let store = store_at(parsed.store);
    let mut config = CampaignConfig::new(parsed.quick, parsed.groups);
    config.tags = parsed.tags;

    let Some(explain) = campaign::explain(&config, &store, label) else {
        eprintln!(
            "wp-campaign: no node labelled {label:?} in this plan (try --quick or --only, or a \
             measure/… label printed by run)"
        );
        return 2;
    };
    println!("node:  {}", explain.label);
    println!("key:   {}", explain.key);
    println!("store: {}", if explain.in_store { "hit" } else { "miss" });
    println!("parts:");
    for part in &explain.parts {
        println!("  {part}");
    }
    if !explain.deps.is_empty() {
        println!("deps:");
        for (label, key, in_store) in &explain.deps {
            println!("  {:<44} {} {}", label, key, if *in_store { "hit" } else { "miss" });
        }
    }
    0
}

fn cmd_gc(args: &[String]) -> i32 {
    let mut keep_last: Option<usize> = None;
    let mut store_arg: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--keep-last" => {
                keep_last = iter.next().and_then(|n| n.parse().ok());
                if keep_last.is_none() {
                    usage();
                }
            }
            "--store" => store_arg = Some(PathBuf::from(iter.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    let Some(keep_last) = keep_last else { usage() };
    let store = store_at(store_arg);

    // Pin everything either mode's full plan could still demand, so a
    // gc racing a pending run never evicts a payload a node needs.
    let engine = Arc::new(wp_bench::Engine::with_workers(1));
    let mut pinned = Vec::new();
    for quick in [false, true] {
        let plan = campaign::plan(&CampaignConfig::all(quick), &engine);
        pinned.extend(plan.dag.all_keys());
    }

    match store.gc(keep_last, &pinned) {
        Ok(report) => {
            println!(
                "gc: kept {} entr{}, deleted {} ({} bytes freed), {} pinned",
                report.kept,
                if report.kept == 1 { "y" } else { "ies" },
                report.deleted,
                report.bytes_freed,
                pinned.len(),
            );
            0
        }
        Err(error) => {
            eprintln!("wp-campaign: gc: {error}");
            2
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else { usage() };
    let code = match command.as_str() {
        "run" => cmd_run(rest),
        "explain" => cmd_explain(rest),
        "gc" => cmd_gc(rest),
        _ => usage(),
    };
    std::process::exit(code);
}
