//! Table 1 reproduction: the baseline system configuration, printed
//! from the live defaults so documentation can never drift from code —
//! and written to `BENCH_table1.json` so downstream tooling can diff
//! the configuration mechanically.

use wp_bench::campaign::{keys, table1_manifest};
use wp_bench::write_manifest;
use wp_core::wp_mem::{CacheGeometry, MemoryConfig};
use wp_core::wp_sim::SimConfig;

fn main() {
    let geom = CacheGeometry::xscale_icache();
    let mem = MemoryConfig::baseline(geom);
    let sim = SimConfig::new(mem);
    println!("== Table 1: baseline system configuration ==");
    println!("{:<22} 7/8 stages (in-order, scoreboarded)", "Pipeline");
    println!("{:<22} 1 ALU, 1 MAC, 1 load/store", "Functional units");
    println!("{:<22} single issue, in order", "Issue");
    println!("{:<22} out of order (scoreboard)", "Commit");
    println!("{:<22} {} bit", "Memory bus width", 32);
    println!("{:<22} {} cycles", "Memory latency", mem.icache.miss_latency);
    println!(
        "{:<22} {}-entry fully associative, {} B pages",
        "I-TLB / D-TLB", mem.itlb.entries, mem.itlb.page_bytes
    );
    println!("{:<22} {}", "I-cache", geom);
    println!("{:<22} {}", "D-cache", mem.dcache.geometry);
    println!(
        "{:<22} {}-entry write buffer ({}-cycle drain); read fills folded into the {}-cycle miss latency",
        "Data buffers", mem.dcache.write_buffer_entries, mem.dcache.writeback_latency,
        mem.dcache.miss_latency
    );
    println!(
        "{:<22} {} entries, {}-cycle taken-branch penalty",
        "BTB", sim.btb_entries, sim.branch_penalty
    );
    println!(
        "{:<22} load +{} cycles, multiply +{} cycles",
        "Result latencies", sim.load_latency, sim.mul_latency
    );

    // The same builder the campaign DAG uses, so both paths emit
    // identical bytes.
    let manifest = table1_manifest(&keys::table1());
    match write_manifest("table1", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: failed to write BENCH_table1.json: {e}"),
    }
}
