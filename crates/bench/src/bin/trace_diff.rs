//! `trace_diff` — cross-run trace regression gating.
//!
//! Joins two telemetry captures (`BENCH_trace_report.json` manifests
//! or raw `TRACE_*.jsonl` streams) run-by-run and chain-by-chain and
//! flags fetch/energy shifts that clear *both* a relative gate and an
//! absolute floor (see `wp_tune::diff`). Writes the comparison to
//! `BENCH_trace_diff.json`.
//!
//! Usage: `trace_diff <left> <right> [--rel T] [--abs-fetches N]
//! [--abs-energy N]`
//!
//! Exit codes: `0` clean, `1` regression detected, `2` usage or I/O
//! error — so CI can gate on the diff while still distinguishing a
//! broken invocation from a real shift.

use std::path::Path;

use wp_bench::write_manifest;
use wp_tune::{parse_threshold, DiffThresholds, TraceDiff, TraceSet, TuneError};

fn usage() -> ! {
    eprintln!("usage: trace_diff <left> <right> [--rel T] [--abs-fetches N] [--abs-energy N]");
    std::process::exit(2);
}

fn run() -> Result<i32, TuneError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut thresholds = DiffThresholds::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--rel" => thresholds.rel = parse_threshold(iter.next().unwrap_or_else(|| usage()))?,
            "--abs-fetches" => {
                thresholds.abs_fetches = parse_threshold(iter.next().unwrap_or_else(|| usage()))?;
            }
            "--abs-energy" => {
                thresholds.abs_energy = parse_threshold(iter.next().unwrap_or_else(|| usage()))?;
            }
            path if !path.starts_with('-') => paths.push(path),
            _ => usage(),
        }
    }
    let [left_path, right_path] = paths.as_slice() else { usage() };

    let left = TraceSet::load(Path::new(left_path))?;
    let right = TraceSet::load(Path::new(right_path))?;
    let diff = TraceDiff::compute(&left, &right, thresholds);

    for run in &diff.runs {
        let flags = run.regressions();
        let verdict = if flags == 0 { "ok" } else { "REGRESSED" };
        match (run.fetch, run.energy) {
            (Some(fetch), Some(energy)) => println!(
                "{:<32} {verdict:<9} fetches {:+.3}% energy {:+.3}% ({} flag(s))",
                run.key,
                (fetch.right - fetch.left) / fetch.left.max(1.0) * 100.0,
                (energy.right - energy.left) / energy.left.max(1.0) * 100.0,
                flags,
            ),
            _ => println!("{:<32} {verdict:<9} present only in {:?}", run.key, run.presence),
        }
    }
    println!(
        "{} run(s), {} regression(s) (rel > {}, abs fetches > {}, abs energy > {} {})",
        diff.runs.len(),
        diff.regressions(),
        thresholds.rel,
        thresholds.abs_fetches,
        thresholds.abs_energy,
        diff.energy_unit,
    );

    let path = write_manifest("trace_diff", &diff.json()).map_err(|e| TuneError::Io {
        path: "BENCH_trace_diff.json".to_string(),
        message: e.to_string(),
    })?;
    eprintln!("manifest: {}", path.display());
    Ok(diff.exit_code())
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(error) => {
            eprintln!("trace_diff: {error}");
            std::process::exit(2);
        }
    }
}
