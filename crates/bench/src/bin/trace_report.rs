//! `trace_report` — end-to-end telemetry over the simulator stack.
//!
//! Runs a set of benchmarks under both way-aware schemes with a
//! [`wp_trace::TraceRecorder`] attached, then emits:
//!
//! * `TRACE_<bench>_<scheme>.jsonl` — the deterministic event/interval/
//!   chain stream (see `wp_trace::export::to_jsonl`);
//! * `TRACE_report.trace.json` — a Chrome `trace_event` file combining
//!   harness wall-clock spans with per-run guest counter tracks;
//! * `BENCH_trace_report.json` — the manifest: hottest chains per run,
//!   interval series sizes, reconciliation verdicts, and the measured
//!   sink overhead (disabled tracing must stay under 2% wall-clock).
//!
//! Every roll-up is re-derived from the raw attribution and checked
//! against the aggregate hardware counters; any mismatch exits 1.
//!
//! Usage: `trace_report [--quick] [--check]`
//!
//! `--quick` shrinks the run for CI smoke (one benchmark, small
//! inputs); `--check` re-reads an existing manifest from disk and
//! re-verifies its reconciliation claims without simulating.

use std::path::PathBuf;
use std::time::Instant;

use wp_bench::baseline::hot_chains_json;
use wp_bench::engine::Engine;
use wp_bench::{manifest_path, write_manifest, Json};
use wp_core::{measure_traced, MeasureOptions, Scheme, Workbench};
use wp_energy::CacheEnergyModel;
use wp_mem::{CacheGeometry, FetchStats};
use wp_sim::{simulate, simulate_traced, NullSink, SimConfig};
use wp_trace::{export, TraceRecorder};
use wp_workloads::{Benchmark, InputSet};

/// Hottest chains reported per run.
const TOP_K: usize = 5;
/// Acceptance bound on disabled-sink overhead, percent.
const OVERHEAD_LIMIT_PCT: f64 = 2.0;
/// Relative tolerance when summing per-chain picojoules.
const ENERGY_REL_TOL: f64 = 1e-6;

fn bench_dir() -> PathBuf {
    wp_core::env::bench_dir()
}

fn scheme_file_tag(scheme: Scheme) -> String {
    scheme.label().replace(['/', ' '], "-")
}

/// One traced run distilled for the manifest.
struct RunReport {
    benchmark: Benchmark,
    scheme: Scheme,
    json: Json,
    ok: bool,
    track: (String, Vec<wp_trace::IntervalSample>),
    jsonl_name: String,
}

/// Runs one (benchmark, scheme) pair traced and verifies every roll-up
/// against the aggregate counters.
fn trace_run(
    workbench: &Workbench,
    icache: CacheGeometry,
    scheme: Scheme,
    set: InputSet,
    interval_cycles: u64,
) -> Result<RunReport, String> {
    let benchmark = workbench.benchmark();
    let tag = format!("{}/{}", benchmark.name(), scheme.label());

    let map = workbench
        .link(scheme.layout(), set)
        .map_err(|e| format!("{tag}: link failed: {e}"))?
        .layout_map();
    let mut recorder = TraceRecorder::new().with_interval_cycles(interval_cycles).with_layout(map);
    let started = Instant::now();
    let (m, _) = measure_traced(workbench, icache, scheme, MeasureOptions::new(set), &mut recorder)
        .map_err(|e| format!("{tag}: measure failed: {e}"))?;
    if let Some(spans) = Engine::global().span_collector() {
        spans.record(
            format!("trace:{tag}"),
            "measure",
            started,
            vec![("fetches".into(), m.run.fetch.fetches.to_string())],
        );
    }

    let attribution = recorder
        .attribution()
        .ok_or_else(|| format!("{tag}: recorder has no layout map"))?;
    let total = attribution.total();
    let aggregate = m.run.fetch;

    // Reconciliation 1: per-chain fetch sums equal the hardware counter.
    let fetches_ok = total.fetches == aggregate.fetches
        && total.tag_comparisons == aggregate.tag_comparisons
        && total.hits == aggregate.hits;
    // Reconciliation 2: every fetched pc resolved to a chain.
    let unattributed_ok = attribution.unattributed().fetches == 0;
    // Reconciliation 3: the interval series partitions the run.
    let interval_fetches: u64 = recorder.intervals().iter().map(|s| s.counters.fetches).sum();
    let intervals_ok = interval_fetches == aggregate.fetches && recorder.intervals().len() >= 10;
    // Reconciliation 4: per-chain energies sum to the aggregate price.
    let mem = scheme.memory_config(icache);
    let model = CacheEnergyModel::for_scheme(icache, mem.icache.scheme);
    let chain_pj: f64 = attribution
        .rows()
        .iter()
        .chain(std::iter::once(attribution.unattributed()))
        .map(|row| model.fetch_energy(&FetchStats::from(&row.to_counters())).total_pj())
        .sum();
    let aggregate_pj = m.energy.icache.total_pj();
    let energy_ok = (chain_pj - aggregate_pj).abs() <= ENERGY_REL_TOL * aggregate_pj.max(1.0);
    // Every fetch was offered to the ring; drops are counted evictions.
    let ring_ok = recorder.recorded() == aggregate.fetches
        && recorder.events().len() as u64 == recorder.recorded() - recorder.dropped();

    let ok = fetches_ok && unattributed_ok && intervals_ok && energy_ok && ring_ok;
    if !ok {
        eprintln!(
            "{tag}: RECONCILIATION FAILED (fetches {fetches_ok}, unattributed {unattributed_ok}, \
             intervals {intervals_ok}, energy {energy_ok}, ring {ring_ok})"
        );
    }

    let jsonl_name = format!("TRACE_{}_{}.jsonl", benchmark.name(), scheme_file_tag(scheme));
    let jsonl = export::to_jsonl(&recorder);
    std::fs::write(bench_dir().join(&jsonl_name), jsonl)
        .map_err(|e| format!("{tag}: writing {jsonl_name}: {e}"))?;

    let json = Json::obj([
        ("benchmark", Json::from(benchmark.name())),
        ("scheme", Json::from(scheme.label().as_str())),
        ("fetches", Json::Uint(aggregate.fetches)),
        ("cycles", Json::Uint(m.run.cycles)),
        ("icache_pj", Json::from(aggregate_pj)),
        ("chain_sum_pj", Json::from(chain_pj)),
        ("events_recorded", Json::Uint(recorder.recorded())),
        ("events_dropped", Json::Uint(recorder.dropped())),
        ("intervals", Json::from(recorder.intervals().len())),
        ("interval_fetches", Json::Uint(interval_fetches)),
        ("chains", Json::from(attribution.rows().len())),
        ("hot_chains", Json::Arr(hot_chains_json(attribution, &model, TOP_K))),
        (
            "reconciled",
            Json::obj([
                ("fetch_totals", Json::from(fetches_ok)),
                ("unattributed", Json::from(unattributed_ok)),
                ("intervals", Json::from(intervals_ok)),
                ("energy", Json::from(energy_ok)),
                ("ring", Json::from(ring_ok)),
            ]),
        ),
        ("ok", Json::from(ok)),
    ]);
    let track = (tag, recorder.intervals().to_vec());
    Ok(RunReport { benchmark, scheme, json, ok, track, jsonl_name })
}

/// Measures the cost the telemetry layer adds when no sink is armed:
/// min-of-N wall-clock of the plain entry point against an explicit
/// `NullSink` call on the smoke benchmark. Both must compile to the
/// same machine code, so this bounds the "tracing off" tax.
fn measure_overhead(
    workbench: &Workbench,
    icache: CacheGeometry,
) -> Result<(f64, f64, f64), String> {
    let scheme = Scheme::WayPlacement { area_bytes: 32 * 1024 };
    // The large input makes each timed run long enough (tens of ms)
    // that scheduler jitter stays well below the 2% bound.
    let output = workbench
        .link(scheme.layout(), InputSet::Large)
        .map_err(|e| format!("overhead link failed: {e}"))?;
    let config = SimConfig::new(scheme.memory_config(icache));
    let mut plain_ns = f64::INFINITY;
    let mut traced_ns = f64::INFINITY;
    // One untimed warmup pair, then interleaved min-of-15: the minima
    // approach the noise-free floor of two identical code paths.
    for round in 0..16 {
        let start = Instant::now();
        simulate(&output.image, &config).map_err(|e| format!("overhead run failed: {e}"))?;
        let plain = start.elapsed().as_nanos() as f64;
        let start = Instant::now();
        simulate_traced(&output.image, &config, &mut NullSink)
            .map_err(|e| format!("overhead run failed: {e}"))?;
        let traced = start.elapsed().as_nanos() as f64;
        if round > 0 {
            plain_ns = plain_ns.min(plain);
            traced_ns = traced_ns.min(traced);
        }
    }
    let overhead_pct = ((traced_ns - plain_ns) / plain_ns * 100.0).max(0.0);
    Ok((plain_ns, traced_ns, overhead_pct))
}

/// `--check`: re-read the manifest from disk and re-verify its claims.
fn check_manifest() -> i32 {
    let path = manifest_path("trace_report");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("check: cannot read {}: {e}", path.display());
            return 1;
        }
    };
    let manifest = match Json::parse(&text) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("check: {} is not valid JSON: {e}", path.display());
            return 1;
        }
    };
    let mut failures = 0;
    let runs = manifest.get("runs").and_then(Json::as_array).unwrap_or(&[]);
    if runs.is_empty() {
        eprintln!("check: manifest has no runs");
        failures += 1;
    }
    for run in runs {
        let name = run.get("benchmark").and_then(Json::as_str).unwrap_or("?");
        let fetches = run.get("fetches").and_then(Json::as_u64).unwrap_or(0);
        let interval_fetches = run.get("interval_fetches").and_then(Json::as_u64).unwrap_or(1);
        let recorded = run.get("events_recorded").and_then(Json::as_u64).unwrap_or(0);
        let dropped = run.get("events_dropped").and_then(Json::as_u64).unwrap_or(0);
        let ok = run.get("ok").and_then(Json::as_bool).unwrap_or(false);
        let hot_sum: u64 = run.get("hot_chains").and_then(Json::as_array).map_or(0, |chains| {
            chains
                .iter()
                .map(|c| c.get("fetches").and_then(Json::as_u64).unwrap_or(0))
                .sum()
        });
        if !ok {
            eprintln!("check: run {name} recorded a reconciliation failure");
            failures += 1;
        }
        if interval_fetches != fetches {
            eprintln!("check: run {name} interval fetches {interval_fetches} != {fetches}");
            failures += 1;
        }
        if recorded != fetches || dropped > recorded {
            eprintln!("check: run {name} ring saw {recorded} ({dropped} dropped) of {fetches}");
            failures += 1;
        }
        if hot_sum > fetches {
            eprintln!("check: run {name} hot-chain fetches {hot_sum} exceed total {fetches}");
            failures += 1;
        }
    }
    let overhead_ok = manifest
        .get("overhead")
        .and_then(|o| o.get("ok"))
        .and_then(Json::as_bool)
        .unwrap_or(false);
    if !overhead_ok {
        eprintln!("check: overhead bound not satisfied");
        failures += 1;
    }
    if failures == 0 {
        println!("check: {} reconciles ({} runs)", path.display(), runs.len());
        0
    } else {
        eprintln!("check: {failures} failure(s)");
        1
    }
}

fn run(quick: bool) -> Result<i32, String> {
    let icache = CacheGeometry::xscale_icache();
    let set = if quick { InputSet::Small } else { InputSet::Large };
    let benchmarks: &[Benchmark] = if quick {
        &[Benchmark::Crc]
    } else {
        &[Benchmark::Crc, Benchmark::Sha, Benchmark::Bitcount]
    };
    let schemes = [Scheme::WayPlacement { area_bytes: 32 * 1024 }, Scheme::WayMemoization];
    let interval_cycles: u64 = if quick { 256 } else { 1024 };
    let engine = Engine::global();

    let mut runs = Vec::new();
    let mut tracks = Vec::new();
    let mut files = Vec::new();
    let mut all_ok = true;
    for &benchmark in benchmarks {
        let workbench =
            engine.workbench(benchmark).map_err(|e| format!("{}: {e}", benchmark.name()))?;
        for &scheme in &schemes {
            let report = trace_run(&workbench, icache, scheme, set, interval_cycles)?;
            println!(
                "{:<10} {:<24} {} intervals, {} chains traced, ok={}",
                report.benchmark.name(),
                report.scheme.label(),
                report.track.1.len(),
                report.json.get("chains").and_then(Json::as_u64).unwrap_or(0),
                report.ok,
            );
            all_ok &= report.ok;
            files.push(report.jsonl_name.clone());
            tracks.push(report.track);
            runs.push(report.json);
        }
    }

    let smoke = engine.workbench(Benchmark::Crc).map_err(|e| format!("crc: {e}"))?;
    let (plain_ns, traced_ns, overhead_pct) = measure_overhead(&smoke, icache)?;
    let overhead_ok = overhead_pct < OVERHEAD_LIMIT_PCT;
    all_ok &= overhead_ok;
    println!(
        "disabled-sink overhead: {overhead_pct:.3}% (plain {:.2} ms, null-sink {:.2} ms, \
         bound {OVERHEAD_LIMIT_PCT}%)",
        plain_ns / 1e6,
        traced_ns / 1e6,
    );

    let spans = engine.span_collector().map(|c| c.spans()).unwrap_or_default();
    let chrome = export::chrome_trace(&spans, &tracks);
    let chrome_name = "TRACE_report.trace.json";
    let dir = bench_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    std::fs::write(dir.join(chrome_name), chrome.to_pretty())
        .map_err(|e| format!("writing {chrome_name}: {e}"))?;
    files.push(chrome_name.to_string());

    let manifest = Json::obj([
        ("schema", Json::from("trace_report/v1")),
        ("quick", Json::from(quick)),
        ("input_set", Json::from(if quick { "small" } else { "large" })),
        ("interval_cycles", Json::Uint(interval_cycles)),
        ("runs", Json::Arr(runs)),
        (
            "overhead",
            Json::obj([
                ("benchmark", Json::from("crc")),
                ("plain_ns", Json::from(plain_ns)),
                ("null_sink_ns", Json::from(traced_ns)),
                ("overhead_pct", Json::from(overhead_pct)),
                ("limit_pct", Json::from(OVERHEAD_LIMIT_PCT)),
                ("ok", Json::from(overhead_ok)),
            ]),
        ),
        ("spans", Json::from(spans.len())),
        ("files", Json::Arr(files.iter().map(|f| Json::from(f.as_str())).collect())),
        ("ok", Json::from(all_ok)),
    ]);
    let path =
        write_manifest("trace_report", &manifest).map_err(|e| format!("writing manifest: {e}"))?;
    eprintln!("manifest: {}", path.display());
    Ok(i32::from(!all_ok))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--check") {
        std::process::exit(check_manifest());
    }
    match run(quick) {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("trace_report: {message}");
            std::process::exit(1);
        }
    }
}
