//! Energy-model sensitivity: is the paper's conclusion an artefact of
//! our calibration constants?
//!
//! Simulation counters are independent of the energy model, so each
//! scheme is simulated once and then *re-priced* under perturbed
//! technology parameters: CAM tag-side energy halved/doubled, data-side
//! bitline energy halved/doubled, and the CAM size-scaling exponent
//! swept. The claim "way-placement saves substantial I-cache energy and
//! beats way-memoization" should survive every perturbation; only the
//! magnitudes may move.

use wp_core::wp_energy::{EnergyModel, SystemActivity, TechnologyParams};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::Benchmark;
use wp_core::{measure, Measurement, Scheme, Workbench};

fn activity(m: &Measurement) -> SystemActivity {
    SystemActivity {
        fetch: m.run.fetch,
        dcache: m.run.dcache,
        itlb: m.run.itlb,
        dtlb: m.run.dtlb,
        cycles: m.run.cycles,
        instructions: m.run.instructions,
    }
}

fn main() {
    let geom = CacheGeometry::xscale_icache();
    let benchmarks = [Benchmark::Sha, Benchmark::RijndaelE, Benchmark::Crc];
    println!("== Energy-model sensitivity ({geom}, 32KB area) ==");
    println!("normalised I-cache energy under perturbed technology constants\n");

    // Simulate once per (benchmark, scheme).
    let runs: Vec<(Benchmark, Measurement, Measurement, Measurement)> = benchmarks
        .iter()
        .map(|&benchmark| {
            let wb = Workbench::new(benchmark).expect("workbench");
            (
                benchmark,
                measure(&wb, geom, Scheme::Baseline).expect("baseline"),
                measure(&wb, geom, Scheme::WayPlacement { area_bytes: 32 * 1024 })
                    .expect("wp"),
                measure(&wb, geom, Scheme::WayMemoization).expect("memo"),
            )
        })
        .collect();

    let nominal = TechnologyParams::embedded_180nm();
    let variants: Vec<(String, TechnologyParams)> = vec![
        ("nominal".into(), nominal),
        ("tag energy x0.5".into(), TechnologyParams {
            cam_bit_pj: nominal.cam_bit_pj * 0.5,
            matchline_pj: nominal.matchline_pj * 0.5,
            ..nominal
        }),
        ("tag energy x2.0".into(), TechnologyParams {
            cam_bit_pj: nominal.cam_bit_pj * 2.0,
            matchline_pj: nominal.matchline_pj * 2.0,
            ..nominal
        }),
        ("data energy x0.5".into(), TechnologyParams {
            bitline_read_pj: nominal.bitline_read_pj * 0.5,
            ..nominal
        }),
        ("data energy x2.0".into(), TechnologyParams {
            bitline_read_pj: nominal.bitline_read_pj * 2.0,
            ..nominal
        }),
        ("tag scaling ^0.5".into(), TechnologyParams {
            tag_scale_exponent: 0.5,
            ..nominal
        }),
        ("tag scaling ^1.0".into(), TechnologyParams {
            tag_scale_exponent: 1.0,
            ..nominal
        }),
    ];

    println!(
        "{:<18} | {:<12} | {:>14} | {:>16} | {:>8}",
        "technology", "benchmark", "way-placement", "way-memoization", "wp wins"
    );
    for (label, tech) in &variants {
        let model = EnergyModel::new().with_technology(*tech);
        for (benchmark, baseline, wp, memo) in &runs {
            let price = |m: &Measurement| {
                model
                    .price(&m.scheme.memory_config(geom), &activity(m))
                    .icache_pj()
            };
            let base = price(baseline);
            let wp_ratio = price(wp) / base;
            let memo_ratio = price(memo) / base;
            println!(
                "{label:<18} | {:<12} | {:>13.1}% | {:>15.1}% | {:>8}",
                benchmark.name(),
                wp_ratio * 100.0,
                memo_ratio * 100.0,
                if wp_ratio < memo_ratio && wp_ratio < 1.0 { "yes" } else { "NO" },
            );
        }
    }
    println!();
    println!("claim under test: way-placement < way-memoization < baseline at every point.");
}
