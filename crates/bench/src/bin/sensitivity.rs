//! Energy-model sensitivity: is the paper's conclusion an artefact of
//! our calibration constants?
//!
//! Simulation counters are independent of the energy model, so each
//! scheme is simulated once — through the engine's caches, on its
//! bounded worker pool — and then *re-priced* under perturbed
//! technology parameters: CAM tag-side energy halved/doubled, data-side
//! bitline energy halved/doubled, and the CAM size-scaling exponent
//! swept. The claim "way-placement saves substantial I-cache energy and
//! beats way-memoization" should survive every perturbation; only the
//! magnitudes may move.

use std::sync::Arc;

use wp_bench::{write_manifest, Engine, Json, SharedError};
use wp_core::wp_energy::{EnergyModel, SystemActivity, TechnologyParams};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{Measurement, Scheme};

fn activity(m: &Measurement) -> SystemActivity {
    SystemActivity {
        fetch: m.run.fetch,
        dcache: m.run.dcache,
        itlb: m.run.itlb,
        dtlb: m.run.dtlb,
        cycles: m.run.cycles,
        instructions: m.run.instructions,
        detection: m.run.detection,
    }
}

type Runs = (Benchmark, Arc<Measurement>, Arc<Measurement>, Arc<Measurement>);

fn main() {
    let geom = CacheGeometry::xscale_icache();
    let benchmarks = [Benchmark::Sha, Benchmark::RijndaelE, Benchmark::Crc];
    println!("== Energy-model sensitivity ({geom}, 32KB area) ==");
    println!("normalised I-cache energy under perturbed technology constants\n");

    // Simulate once per (benchmark, scheme), in parallel on the engine
    // pool; failures surface per benchmark instead of aborting the run.
    let engine = Engine::global();
    let outcomes = engine.execute(&benchmarks, |&benchmark| -> Result<Runs, SharedError> {
        let baseline = engine.measure(benchmark, geom, Scheme::Baseline, InputSet::Large)?;
        let wp = engine.measure(
            benchmark,
            geom,
            Scheme::WayPlacement { area_bytes: 32 * 1024 },
            InputSet::Large,
        )?;
        let memo = engine.measure(benchmark, geom, Scheme::WayMemoization, InputSet::Large)?;
        Ok((benchmark, baseline, wp, memo))
    });
    let mut failed = 0usize;
    let mut runs: Vec<Runs> = Vec::new();
    for (benchmark, outcome) in benchmarks.iter().zip(outcomes) {
        match outcome {
            Ok(run) => runs.push(run),
            Err(e) => {
                eprintln!("FAILED: {benchmark}: {e}");
                failed += 1;
            }
        }
    }

    let nominal = TechnologyParams::embedded_180nm();
    let variants: Vec<(String, TechnologyParams)> = vec![
        ("nominal".into(), nominal),
        (
            "tag energy x0.5".into(),
            TechnologyParams {
                cam_bit_pj: nominal.cam_bit_pj * 0.5,
                matchline_pj: nominal.matchline_pj * 0.5,
                ..nominal
            },
        ),
        (
            "tag energy x2.0".into(),
            TechnologyParams {
                cam_bit_pj: nominal.cam_bit_pj * 2.0,
                matchline_pj: nominal.matchline_pj * 2.0,
                ..nominal
            },
        ),
        (
            "data energy x0.5".into(),
            TechnologyParams { bitline_read_pj: nominal.bitline_read_pj * 0.5, ..nominal },
        ),
        (
            "data energy x2.0".into(),
            TechnologyParams { bitline_read_pj: nominal.bitline_read_pj * 2.0, ..nominal },
        ),
        ("tag scaling ^0.5".into(), TechnologyParams { tag_scale_exponent: 0.5, ..nominal }),
        ("tag scaling ^1.0".into(), TechnologyParams { tag_scale_exponent: 1.0, ..nominal }),
    ];

    println!(
        "{:<18} | {:<12} | {:>14} | {:>16} | {:>8}",
        "technology", "benchmark", "way-placement", "way-memoization", "wp wins"
    );
    let mut manifest_rows = Vec::new();
    for (label, tech) in &variants {
        let model = EnergyModel::new().with_technology(*tech);
        for (benchmark, baseline, wp, memo) in &runs {
            let price = |m: &Measurement| {
                model.price(&m.scheme.memory_config(geom), &activity(m)).icache_pj()
            };
            let base = price(baseline);
            let wp_ratio = price(wp) / base;
            let memo_ratio = price(memo) / base;
            let wins = wp_ratio < memo_ratio && wp_ratio < 1.0;
            println!(
                "{label:<18} | {:<12} | {:>13.1}% | {:>15.1}% | {:>8}",
                benchmark.name(),
                wp_ratio * 100.0,
                memo_ratio * 100.0,
                if wins { "yes" } else { "NO" },
            );
            manifest_rows.push(Json::obj([
                ("technology", Json::from(label.clone())),
                ("benchmark", Json::from(benchmark.name())),
                ("way_placement", Json::from(wp_ratio)),
                ("way_memoization", Json::from(memo_ratio)),
                ("wp_wins", Json::from(wins)),
            ]));
        }
    }
    println!();
    println!("claim under test: way-placement < way-memoization < baseline at every point.");

    let manifest = Json::obj([
        ("figure", Json::from("sensitivity")),
        ("geometry", Json::from(geom.to_string())),
        ("rows", Json::Arr(manifest_rows)),
        ("failed_benchmarks", Json::from(failed)),
        ("stats", engine.stats().json()),
    ]);
    match write_manifest("sensitivity", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: failed to write BENCH_sensitivity.json: {e}"),
    }
    eprintln!("{}", engine.stats());
    std::process::exit(i32::from(failed > 0));
}
