//! `obs_report` — the observability layer's own acceptance harness.
//!
//! Runs the scripted fault/resume/chaos campaign of
//! [`wp_bench::obs::run_pipeline`] with metrics, journal and accounts
//! armed, then emits:
//!
//! * `OBS_metrics.prom` — the full registry in Prometheus text
//!   exposition format (wall-clock histograms included);
//! * `OBS_journal.jsonl` — the structured event journal, sorted by its
//!   deterministic `(group, local)` key: byte-identical across runs of
//!   the same shape;
//! * `BENCH_obs_report.json` — the manifest: `TraceSet`-joinable
//!   account rows, deterministic metric values, and every
//!   reconciliation check, plus a `wall` section (overhead measurement,
//!   per-worker busy time) that is *excluded* from determinism
//!   comparisons — the same exclusion the bless workflow applies.
//!
//! Every metric is cross-checked against independently derived ground
//! truth (suite reports, chaos classifications, journal counts); any
//! mismatch exits 1, as does armed overhead past
//! [`wp_bench::obs::OBS_OVERHEAD_LIMIT_PCT`].
//!
//! Usage: `obs_report [--quick] [--watch] [--sabotage]`
//!
//! `--quick` shrinks the campaign for CI smoke; `--watch` renders a
//! live TTY view (per-job spinner rows, pool queue depth, a fault-rate
//! sparkline from journal arrival stamps) while the pipeline runs;
//! `--sabotage` deliberately bumps one counter before verification, to
//! prove the cross-checks can fail (CI uses it as a negative test).

use std::collections::BTreeMap;
use std::io::{IsTerminal, Write};
use std::sync::Arc;
use std::time::Duration;

use wp_bench::obs::{measure_overhead, run_pipeline, ObsReport, OBS_OVERHEAD_LIMIT_PCT};
use wp_bench::{write_manifest, Json};
use wp_obs::journal::Event;
use wp_obs::Obs;

const SPINNER: [char; 10] = ['⠋', '⠙', '⠹', '⠸', '⠼', '⠴', '⠦', '⠧', '⠇', '⠏'];
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// Journal event kinds that count as "a fault happened now" for the
/// live sparkline.
const FAULT_KINDS: [&str; 5] =
    ["job_retry", "job_timeout", "job_panic", "scheme_demotion", "chaos_trial"];

/// One frame of the live view. Returns the rendered line count so the
/// next frame can rewind over it.
fn render_frame(obs: &Arc<Obs>, tick: usize, out: &mut impl Write) -> usize {
    let events = obs.journal.snapshot();
    let queued = obs.metrics.gauge_value("wp_pool_queue_depth").unwrap_or(0);
    let running = obs.metrics.gauge_value("wp_pool_running").unwrap_or(0);
    let mut lines = Vec::new();
    lines.push(format!(
        "obs_report: {} events | queue {queued} | running {running} | {:.1}s",
        events.len(),
        obs.journal.now_us() as f64 / 1e6,
    ));

    // Per-job rows: a group with a job_start is a job; a later
    // job_finish (or chaos_trial batch) in the same group closes it.
    let mut jobs: BTreeMap<u64, (String, Option<String>)> = BTreeMap::new();
    for e in &events {
        match e.kind {
            "job_start" => {
                let get = |key| {
                    e.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str()).unwrap_or("?")
                };
                jobs.insert(e.group, (format!("{}/{}", get("benchmark"), get("scheme")), None));
            }
            "job_finish" => {
                let outcome = e
                    .attrs
                    .iter()
                    .find(|(k, _)| *k == "outcome")
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                if let Some(job) = jobs.get_mut(&e.group) {
                    job.1 = Some(outcome);
                }
            }
            _ => {}
        }
    }
    let shown = 12usize;
    let skip = jobs.len().saturating_sub(shown);
    if skip > 0 {
        lines.push(format!("  … {skip} earlier job(s)"));
    }
    for (_, (label, outcome)) in jobs.iter().skip(skip) {
        let marker = match outcome.as_deref() {
            None => SPINNER[tick % SPINNER.len()],
            Some("ok") => '✓',
            Some("cached") => '↻',
            Some(_) => '✗',
        };
        lines.push(format!("  {marker} {label}"));
    }

    // Fault-rate sparkline: arrival stamps of fault-ish events, bucketed
    // over the journal's lifetime so far.
    let now = obs.journal.now_us().max(1);
    let mut bins = [0u64; 32];
    let mut faults = 0u64;
    for e in &events {
        if is_fault(e) {
            faults += 1;
            let bin = ((e.wall_us as u128 * bins.len() as u128) / now as u128)
                .min(bins.len() as u128 - 1) as usize;
            bins[bin] += 1;
        }
    }
    let peak = bins.iter().copied().max().unwrap_or(0).max(1);
    let spark: String = bins
        .iter()
        .map(|&n| if n == 0 { SPARKS[0] } else { SPARKS[(n * 7).div_ceil(peak) as usize] })
        .collect();
    lines.push(format!("  faults {spark} ({faults} events)"));

    for line in &lines {
        let _ = writeln!(out, "\x1b[K{line}");
    }
    let _ = out.flush();
    lines.len()
}

fn is_fault(e: &Event) -> bool {
    FAULT_KINDS.contains(&e.kind)
        && (e.kind != "chaos_trial"
            || e.attrs.iter().any(|(k, v)| *k == "outcome" && v == "detected"))
}

/// Runs the pipeline on a worker thread and renders the live view until
/// it completes.
fn run_watched(obs: &Arc<Obs>, quick: bool, sabotage: bool) -> Result<ObsReport, String> {
    let worker = {
        let obs = Arc::clone(obs);
        std::thread::spawn(move || run_pipeline(&obs, quick, sabotage))
    };
    let mut out = std::io::stdout().lock();
    let mut tick = 0usize;
    let mut last = 0usize;
    loop {
        if last > 0 {
            let _ = write!(out, "\x1b[{last}A");
        }
        last = render_frame(obs, tick, &mut out);
        if worker.is_finished() {
            break;
        }
        tick += 1;
        std::thread::sleep(Duration::from_millis(120));
    }
    worker.join().map_err(|_| "pipeline thread panicked".to_string())?
}

fn run(quick: bool, watch: bool, sabotage: bool) -> Result<i32, String> {
    let obs = Obs::new();
    let report = if watch && std::io::stdout().is_terminal() {
        run_watched(&obs, quick, sabotage)?
    } else {
        if watch {
            eprintln!("obs_report: stdout is not a terminal, running without live view");
        }
        run_pipeline(&obs, quick, sabotage)?
    };

    for check in &report.checks {
        println!(
            "{} {:<44} expected {:>12} actual {:>12}",
            if check.ok() { "PASS" } else { "FAIL" },
            check.name,
            check.expected,
            check.actual,
        );
    }
    let failed = report.failed_checks().len();
    println!(
        "checks: {}/{} passed | suite failures {} (want 1) | resume complete {} | chaos ok {}",
        report.checks.len() - failed,
        report.checks.len(),
        report.faulted.failures.len(),
        report.resumed.is_complete(),
        !report.chaos.failed(),
    );

    let (plain_ns, armed_ns, overhead_pct) = measure_overhead(quick)?;
    let overhead_ok = overhead_pct < OBS_OVERHEAD_LIMIT_PCT;
    println!(
        "armed overhead: {overhead_pct:.3}% (plain {:.2} ms, armed {:.2} ms, \
         bound {OBS_OVERHEAD_LIMIT_PCT}%)",
        plain_ns / 1e6,
        armed_ns / 1e6,
    );

    let dir = wp_core::env::bench_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    std::fs::write(dir.join("OBS_metrics.prom"), report.obs.metrics.prometheus())
        .map_err(|e| format!("writing OBS_metrics.prom: {e}"))?;
    std::fs::write(dir.join("OBS_journal.jsonl"), report.obs.journal.to_jsonl())
        .map_err(|e| format!("writing OBS_journal.jsonl: {e}"))?;

    // The canonical manifest plus the host-dependent `wall` section —
    // the one key determinism comparisons (and the bless workflow)
    // exclude.
    let mut manifest = report.canonical_manifest();
    manifest.push(
        "wall",
        Json::obj([
            ("plain_ns", Json::from(plain_ns)),
            ("armed_ns", Json::from(armed_ns)),
            ("overhead_pct", Json::from(overhead_pct)),
            ("limit_pct", Json::from(OBS_OVERHEAD_LIMIT_PCT)),
            ("overhead_ok", Json::from(overhead_ok)),
            ("busy_ns", Json::arr(report.busy_ns.iter().map(|&n| Json::Uint(n)))),
        ]),
    );
    let path =
        write_manifest("obs_report", &manifest).map_err(|e| format!("writing manifest: {e}"))?;
    eprintln!("manifest: {}", path.display());

    let all_ok = report.ok() && overhead_ok;
    if !all_ok {
        eprintln!("obs_report: FAILED ({failed} check(s), overhead ok: {overhead_ok})");
    }
    Ok(i32::from(!all_ok))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let watch = args.iter().any(|a| a == "--watch");
    let sabotage = args.iter().any(|a| a == "--sabotage");
    match run(quick, watch, sabotage) {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("obs_report: {message}");
            std::process::exit(1);
        }
    }
}
