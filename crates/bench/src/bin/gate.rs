//! `gate` — drift gating against stored baselines.
//!
//! Re-runs the trace-report and tuned-areas pipelines into a scratch
//! directory and drives `wp_tune::diff` against the blessed copies in
//! the baselines directory (default `baselines/`): every counter or
//! energy shift clearing both the relative gate and the absolute
//! floor flags, as does any structural mismatch — a missing run, a
//! changed grid, a renamed chain. The comparison is written to
//! `BENCH_gate.json`.
//!
//! Usage: `gate [--quick] [--dir DIR] [--store DIR] [--bless]
//! [--rel T] [--abs-fetches N] [--abs-energy N]`
//!
//! `--quick` gates the CI smoke shape against a `bless --quick`
//! directory; `--bless` refreshes the blessed manifests in place
//! instead of gating — use it after an intentional change, then
//! commit the result.
//!
//! With `--store DIR` (or `$WP_STORE_DIR` set) the fresh side runs
//! through the wp-campaign content-addressed store instead of a
//! temp-dir re-simulation: a warm store (e.g. right after a clean
//! campaign run) serves every manifest as a pure hit and the gate
//! costs seconds; a cold store computes exactly what the store-less
//! path would. The diffed bytes are identical either way.
//!
//! Exit codes: `0` clean, `1` gated shift, structural regression or
//! pipeline failure during the re-run, `2` usage or I/O error (a
//! missing or unreadable baseline is an invocation problem, not
//! drift).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::path::PathBuf;

use wp_bench::baseline::{bless, gate, gate_via_store, DEFAULT_BASELINE_DIR};
use wp_bench::write_manifest;
use wp_campaign::Store;
use wp_tune::{parse_threshold, DiffThresholds, TuneError};

fn usage() -> ! {
    eprintln!(
        "usage: gate [--quick] [--dir DIR] [--store DIR] [--bless] [--rel T] [--abs-fetches N] \
         [--abs-energy N]"
    );
    std::process::exit(2);
}

/// The gate's exit-code map for errors (regressions are not errors):
/// bad arguments and unreadable/missing/corrupt baseline files are
/// invocation problems (`2`); a pipeline failure while re-running
/// means the tree can no longer reproduce its baseline (`1`).
fn error_exit_code(error: &TuneError) -> i32 {
    match error {
        TuneError::Io { .. }
        | TuneError::Json { .. }
        | TuneError::MissingField { .. }
        | TuneError::Malformed { .. } => 2,
        _ => error.exit_code(),
    }
}

fn run() -> Result<i32, TuneError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut refresh = false;
    let mut dir = PathBuf::from(DEFAULT_BASELINE_DIR);
    let mut store_root = wp_core::env::store_dir();
    let mut thresholds = DiffThresholds::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--bless" => refresh = true,
            "--dir" => dir = PathBuf::from(iter.next().unwrap_or_else(|| usage())),
            "--store" => store_root = Some(PathBuf::from(iter.next().unwrap_or_else(|| usage()))),
            "--rel" => thresholds.rel = parse_threshold(iter.next().unwrap_or_else(|| usage()))?,
            "--abs-fetches" => {
                thresholds.abs_fetches = parse_threshold(iter.next().unwrap_or_else(|| usage()))?;
            }
            "--abs-energy" => {
                thresholds.abs_energy = parse_threshold(iter.next().unwrap_or_else(|| usage()))?;
            }
            _ => usage(),
        }
    }

    if refresh {
        for path in bless(&dir, quick)? {
            println!("blessed: {}", path.display());
        }
        return Ok(0);
    }

    let report = if let Some(root) = store_root {
        eprintln!("gate: fresh side via campaign store at {}", root.display());
        gate_via_store(&dir, &Store::new(root), quick, thresholds, None)?
    } else {
        let fresh_dir = std::env::temp_dir().join(format!("wp-gate-{}", std::process::id()));
        let report = gate(&dir, &fresh_dir, quick, thresholds);
        // The scratch manifests have served their purpose either way.
        let _ = std::fs::remove_dir_all(&fresh_dir);
        report?
    };

    for (name, diff) in &report.diffs {
        let flags = diff.regressions();
        let verdict = if flags == 0 { "ok" } else { "REGRESSED" };
        println!("{name:<28} {verdict:<9} {} run(s), {flags} flag(s)", diff.runs.len());
        for run in diff.runs.iter().filter(|r| r.regressions() > 0) {
            println!("  {:<26} {} flag(s)", run.key, run.regressions());
        }
    }
    println!(
        "{} manifest(s), {} regression(s) (rel > {}, abs fetches > {}, abs energy > {})",
        report.diffs.len(),
        report.regressions(),
        thresholds.rel,
        thresholds.abs_fetches,
        thresholds.abs_energy,
    );

    let path = write_manifest("gate", &report.json()).map_err(|e| TuneError::Io {
        path: "BENCH_gate.json".to_string(),
        message: e.to_string(),
    })?;
    eprintln!("manifest: {}", path.display());
    Ok(report.exit_code())
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(error) => {
            eprintln!("gate: {error}");
            std::process::exit(error_exit_code(&error));
        }
    }
}
