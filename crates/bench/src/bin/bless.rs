//! `bless` — write canonical stored baselines.
//!
//! Runs the trace-report and tuned-areas pipelines and writes their
//! canonical, deterministic manifests into the baselines directory
//! (default `baselines/`, the copy committed to the repository). Run
//! it after an *intentional* change to the simulator, energy model or
//! layout shifts the numbers, then commit the refreshed manifests; the
//! `gate` binary fails CI on any drift against them in the meantime.
//!
//! Usage: `bless [--quick] [--dir DIR]`
//!
//! `--quick` blesses the CI smoke shape (one benchmark, small inputs)
//! — useful for the self-bless/gate smoke test, never for the
//! committed baselines. Exit codes: `0` blessed, `1` pipeline
//! failure, `2` usage error.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::path::PathBuf;

use wp_bench::baseline::{bless, DEFAULT_BASELINE_DIR};

fn usage() -> ! {
    eprintln!("usage: bless [--quick] [--dir DIR]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut dir = PathBuf::from(DEFAULT_BASELINE_DIR);
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--dir" => dir = PathBuf::from(iter.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    match bless(&dir, quick) {
        Ok(paths) => {
            for path in paths {
                println!("blessed: {}", path.display());
            }
        }
        Err(error) => {
            eprintln!("bless: {error}");
            std::process::exit(error.exit_code());
        }
    }
}
