//! Ablation studies (DESIGN.md §10): how much of way-placement's win
//! comes from each ingredient?
//!
//! * `wp-natural-layout` — the hardware without the compiler pass;
//! * `baseline-optimised-layout` — the compiler pass without the
//!   hardware (pure locality effect on an unmodified cache);
//! * `wp-no-elision` — way-placement with the same-line tag elision
//!   disabled (isolates §4.2's second optimisation);
//! * random/pessimal layout coverage, to show the chain-sorting pass is
//!   doing real work.
//!
//! The coverage and replacement studies reuse the engine's memoised
//! workbenches — no benchmark is re-profiled after the main suite.

use wp_bench::{finish, run_suite, Engine, Json};
use wp_core::wp_linker::Layout;
use wp_core::wp_mem::{CacheGeometry, ReplacementPolicy};
use wp_core::wp_sim::{simulate, SimConfig};
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::Scheme;

fn main() {
    let geom = CacheGeometry::xscale_icache();
    let area = 8 * 1024;
    println!("== Ablation: {geom}, 8KB way-placement area ==");
    let schemes = [
        Scheme::WayPlacement { area_bytes: area },
        Scheme::WayPlacementNaturalLayout { area_bytes: area },
        Scheme::BaselineOptimisedLayout,
        Scheme::WayPlacementNoElision { area_bytes: area },
        Scheme::WayPrediction,
    ];
    let report = run_suite(&Benchmark::ALL, geom, &schemes);
    print!("{}", report.table_for(geom));
    let engine = Engine::global();

    println!();
    println!("== Layout-pass coverage of the first 8KB (dynamic fetch fraction) ==");
    println!(
        "{:<12} | {:>9} | {:>13} | {:>7} | {:>8}",
        "benchmark", "natural", "way-placement", "random", "pessimal"
    );
    let mut coverage_rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let Ok(workbench) = engine.workbench(benchmark) else {
            println!("{:<12} | (workbench failed)", benchmark.name());
            continue;
        };
        let coverage = |layout: Layout| -> Option<f64> {
            let out = workbench.link(layout, InputSet::Large).ok()?;
            Some(out.coverage_of_prefix(workbench.profile(), area))
        };
        let cells: Vec<Option<f64>> =
            [Layout::Natural, Layout::WayPlacement, Layout::Random(1), Layout::Pessimal]
                .into_iter()
                .map(coverage)
                .collect();
        let pct =
            |c: &Option<f64>| c.map_or_else(|| "err".into(), |c| format!("{:.1}%", c * 100.0));
        println!(
            "{:<12} | {:>9} | {:>13} | {:>7} | {:>8}",
            benchmark.name(),
            pct(&cells[0]),
            pct(&cells[1]),
            pct(&cells[2]),
            pct(&cells[3]),
        );
        coverage_rows.push(Json::obj([
            ("benchmark", Json::from(benchmark.name())),
            ("natural", cells[0].map_or(Json::Null, Json::Num)),
            ("way_placement", cells[1].map_or(Json::Null, Json::Num)),
            ("random", cells[2].map_or(Json::Null, Json::Num)),
            ("pessimal", cells[3].map_or(Json::Null, Json::Num)),
        ]));
    }

    println!();
    println!("== Replacement-policy sensitivity (baseline cache, 8KB, 8-way) ==");
    println!("(non-way-placed fills only; way-placed fills are policy-free by design)");
    let small_geom = CacheGeometry::new(8 * 1024, 8, 32);
    let mut replacement_rows = Vec::new();
    for benchmark in [Benchmark::RijndaelE, Benchmark::Djpeg, Benchmark::Sha] {
        let Ok(workbench) = engine.workbench(benchmark) else {
            println!("{:<12} (workbench failed)", benchmark.name());
            continue;
        };
        let Ok(output) = workbench.link(Layout::Natural, InputSet::Large) else {
            println!("{:<12} (link failed)", benchmark.name());
            continue;
        };
        print!("{:<12}", benchmark.name());
        let mut row = Json::obj([("benchmark", Json::from(benchmark.name()))]);
        for policy in
            [ReplacementPolicy::RoundRobin, ReplacementPolicy::Lru, ReplacementPolicy::Random]
        {
            let mut mem = Scheme::Baseline.memory_config(small_geom);
            mem.icache.replacement = policy;
            match simulate(&output.image, &SimConfig::new(mem)) {
                Ok(run) => {
                    let miss = 1.0 - run.fetch.hit_rate();
                    print!(" | {policy:?}: {:.2}% miss", 100.0 * miss);
                    row.push(format!("{policy:?}"), Json::Num(miss));
                }
                Err(e) => {
                    print!(" | {policy:?}: error ({e})");
                    row.push(format!("{policy:?}"), Json::Null);
                }
            }
        }
        println!();
        replacement_rows.push(row);
    }

    let mut manifest = Json::obj([("figure", Json::from("ablation"))]);
    manifest.push("suite", report.json());
    manifest.push("coverage_8kb_prefix", Json::Arr(coverage_rows));
    manifest.push("replacement_miss_rates", Json::Arr(replacement_rows));
    std::process::exit(finish("ablation", &report, &manifest));
}
