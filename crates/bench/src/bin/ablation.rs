//! Ablation studies (DESIGN.md §10): how much of way-placement's win
//! comes from each ingredient?
//!
//! * `wp-natural-layout` — the hardware without the compiler pass;
//! * `baseline-optimised-layout` — the compiler pass without the
//!   hardware (pure locality effect on an unmodified cache);
//! * `wp-no-elision` — way-placement with the same-line tag elision
//!   disabled (isolates §4.2's second optimisation);
//! * random/pessimal layout coverage, to show the chain-sorting pass is
//!   doing real work.

use wp_bench::{format_table, run_suite};
use wp_core::wp_linker::Layout;
use wp_core::wp_mem::{CacheGeometry, ReplacementPolicy};
use wp_core::wp_sim::{simulate, SimConfig};
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{Scheme, Workbench};

fn main() {
    let geom = CacheGeometry::xscale_icache();
    let area = 8 * 1024;
    println!("== Ablation: {geom}, 8KB way-placement area ==");
    let schemes = [
        Scheme::WayPlacement { area_bytes: area },
        Scheme::WayPlacementNaturalLayout { area_bytes: area },
        Scheme::BaselineOptimisedLayout,
        Scheme::WayPlacementNoElision { area_bytes: area },
        Scheme::WayPrediction,
    ];
    let rows = run_suite(&Benchmark::ALL, geom, &schemes);
    print!("{}", format_table(&rows));

    println!();
    println!("== Layout-pass coverage of the first 8KB (dynamic fetch fraction) ==");
    println!(
        "{:<12} | {:>9} | {:>13} | {:>7} | {:>8}",
        "benchmark", "natural", "way-placement", "random", "pessimal"
    );
    for benchmark in Benchmark::ALL {
        let workbench = Workbench::new(benchmark).expect("workbench");
        let coverage = |layout: Layout| {
            let out = workbench.link(layout, InputSet::Large).expect("link");
            out.coverage_of_prefix(workbench.profile(), area)
        };
        println!(
            "{:<12} | {:>8.1}% | {:>12.1}% | {:>6.1}% | {:>7.1}%",
            benchmark.name(),
            coverage(Layout::Natural) * 100.0,
            coverage(Layout::WayPlacement) * 100.0,
            coverage(Layout::Random(1)) * 100.0,
            coverage(Layout::Pessimal) * 100.0,
        );
    }

    println!();
    println!("== Replacement-policy sensitivity (baseline cache, 8KB, 8-way) ==");
    println!("(non-way-placed fills only; way-placed fills are policy-free by design)");
    let small_geom = CacheGeometry::new(8 * 1024, 8, 32);
    for benchmark in [Benchmark::RijndaelE, Benchmark::Djpeg, Benchmark::Sha] {
        let workbench = Workbench::new(benchmark).expect("workbench");
        let output = workbench.link(Layout::Natural, InputSet::Large).expect("link");
        print!("{:<12}", benchmark.name());
        for policy in
            [ReplacementPolicy::RoundRobin, ReplacementPolicy::Lru, ReplacementPolicy::Random]
        {
            let mut mem = Scheme::Baseline.memory_config(small_geom);
            mem.icache.replacement = policy;
            let run = simulate(&output.image, &SimConfig::new(mem)).expect("run");
            print!(
                " | {policy:?}: {:.2}% miss",
                100.0 * (1.0 - run.fetch.hit_rate())
            );
        }
        println!();
    }
}
