//! Fault-injection campaign over the simulated hardware.
//!
//! The paper's §4 safety argument is that way-placement's speculation
//! machinery sits entirely outside the architectural state: a wrong
//! WP bit, a stale way hint, even a corrupted CAM tag can only cost
//! cycles and I-cache energy, never correctness. This campaign turns
//! that claim into a falsifiable experiment: sweep seeded hardware
//! fault rates (plus the compiler-side trust boundary — corrupted
//! profiles and permuted chain layouts) across benchmarks and schemes,
//! classify every run against its clean twin, and **fail (exit 1) on
//! any silent corruption** — a run that completed with a wrong
//! architectural checksum.
//!
//! Since the detection layer landed, hardware trials run with the
//! fetch core's parity/duplication checks armed, and the campaign
//! additionally asserts *coverage*: every graceful trial that landed
//! faults either caught at least one of them (priced recovery), or
//! burned no extra energy (the fault was absorbed by a refill before
//! any access could observe it). An energy-burning fault the checks
//! never saw fails the run.
//!
//!   fault_campaign [--quick]
//!
//! `--quick` restricts to three benchmarks (the CI smoke
//! configuration). Writes `BENCH_fault_campaign.json` with every
//! classified trial plus per-rate cycle/energy degradation summaries.

use wp_bench::{write_manifest, Engine, Json};
use wp_core::wp_mem::{CacheGeometry, FaultConfig};
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{fault_trial_with, FaultOutcome, FaultSpec, FaultTrial, MeasureOptions, Scheme};

/// Hardware fault rates swept, in faults per million fetches.
const RATES_PPM: [u32; 3] = [1_000, 10_000, 100_000];

/// The faults injected for one (benchmark, scheme) pair: every
/// hardware rate with all fault kinds enabled, plus the two
/// compiler-side faults.
fn specs(seed: u64) -> Vec<FaultSpec> {
    let mut specs: Vec<FaultSpec> = RATES_PPM
        .iter()
        .map(|&rate| FaultSpec::Hardware(FaultConfig::all(seed, rate)))
        .collect();
    specs.push(FaultSpec::CorruptProfile { seed, flips: 64 });
    specs.push(FaultSpec::PermuteChains { seed });
    specs
}

fn trial_json(benchmark: Benchmark, scheme: Scheme, trial: &FaultTrial) -> Json {
    let mut json = Json::obj([
        ("benchmark", Json::from(benchmark.name())),
        ("scheme", Json::from(scheme.label())),
        ("fault", Json::from(trial.spec.label())),
        ("rate_ppm", Json::from(trial.spec.rate_ppm())),
        ("outcome", Json::from(trial.outcome.label())),
    ]);
    match &trial.outcome {
        FaultOutcome::Graceful { cycle_ratio, energy_ratio, faults_injected } => {
            json.push("cycle_ratio", Json::from(*cycle_ratio));
            json.push("energy_ratio", Json::from(*energy_ratio));
            json.push("faults_injected", Json::from(*faults_injected));
            json.push("faults_detected", Json::from(trial.detection.total_detected()));
            json.push("recovery_cycles", Json::from(trial.detection.recovery_cycles));
        }
        FaultOutcome::Detected { error } => json.push("error", Json::from(error.clone())),
        FaultOutcome::SilentCorruption { expected, actual } => {
            json.push("expected", Json::from(format!("{expected:#018x}")));
            json.push("actual", Json::from(format!("{actual:#018x}")));
        }
    }
    json
}

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    let benchmarks: &[Benchmark] = if quick {
        &[Benchmark::Crc, Benchmark::Sha, Benchmark::Bitcount]
    } else {
        &Benchmark::ALL
    };
    let geometry = CacheGeometry::xscale_icache();
    let schemes = [Scheme::WayPlacement { area_bytes: 32 * 1024 }, Scheme::WayMemoization];
    let set = InputSet::Small;
    let engine = Engine::global();

    let jobs: Vec<(usize, Benchmark, Scheme)> = benchmarks
        .iter()
        .flat_map(|&b| schemes.iter().map(move |&s| (b, s)))
        .enumerate()
        .map(|(i, (b, s))| (i, b, s))
        .collect();
    println!(
        "== Fault campaign: {} benchmarks x {} schemes x {} faults on {geometry}, small inputs ==",
        benchmarks.len(),
        schemes.len(),
        specs(0).len(),
    );

    // One pool job per (benchmark, scheme): build/reuse the workbench,
    // measure the clean twin, then classify every fault against it.
    let results = engine.execute(&jobs, |&(index, benchmark, scheme)| {
        let workbench = match engine.workbench(benchmark) {
            Ok(workbench) => workbench,
            Err(e) => return Err(format!("{benchmark}: workbench failed: {e}")),
        };
        let clean = match engine.measure(benchmark, geometry, scheme, set) {
            Ok(clean) => clean,
            Err(e) => return Err(format!("{benchmark}: clean measurement failed: {e}")),
        };
        // Deterministic per-job seed: the campaign is byte-identical
        // across reruns and worker counts.
        let seed = (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        Ok(specs(seed)
            .into_iter()
            .map(|spec| {
                // Hardware trials run with the detection layer armed;
                // compiler-side faults perturb the binary, where there
                // is nothing for the fetch-time checks to see.
                let mut options = MeasureOptions::new(set).with_fault(spec);
                if matches!(spec, FaultSpec::Hardware(_)) {
                    options = options.with_detection();
                }
                let trial = fault_trial_with(&workbench, geometry, scheme, options, &clean);
                (benchmark, scheme, trial)
            })
            .collect::<Vec<_>>())
    });

    let mut trials = Vec::new();
    let mut infrastructure_errors = 0u64;
    for result in results {
        match result {
            Ok(batch) => trials.extend(batch),
            Err(message) => {
                infrastructure_errors += 1;
                eprintln!("CAMPAIGN ERROR: {message}");
            }
        }
    }

    let graceful = trials.iter().filter(|(_, _, t)| t.outcome.label() == "graceful").count();
    let detected = trials.iter().filter(|(_, _, t)| t.outcome.label() == "detected").count();
    let silent: Vec<_> =
        trials.iter().filter(|(_, _, t)| t.outcome.is_silent_corruption()).collect();

    // Coverage: a graceful hardware trial that landed faults must have
    // either caught at least one (priced recovery) or burned no extra
    // energy — a fault can be absorbed when a refill overwrites the
    // corrupted slot before any access arms it, which is free. What
    // may not happen is an *energy-burning* fault the checks never
    // saw. The 2% slack covers second-order timing noise in the
    // energy ratio.
    let uncovered: Vec<_> = trials
        .iter()
        .filter(|(_, _, t)| matches!(t.spec, FaultSpec::Hardware(_)))
        .filter(|(_, _, t)| match t.outcome {
            FaultOutcome::Graceful { energy_ratio, faults_injected, .. } => {
                faults_injected > 0
                    && t.detection.total_detected() == 0
                    && t.demotions == 0
                    && energy_ratio > 1.02
            }
            _ => false,
        })
        .collect();
    for (benchmark, scheme, trial) in &uncovered {
        eprintln!(
            "UNDETECTED ENERGY BURN: {benchmark} under {} at {} ppm ({:?})",
            scheme.label(),
            trial.spec.rate_ppm(),
            trial.outcome,
        );
    }

    // Per-rate degradation: mean/max cycle and energy ratios of the
    // graceful hardware trials at that injection rate.
    let mut degradation = Vec::new();
    println!(
        "{:>10} | {:>6} | {:>16} | {:>16}",
        "rate (ppm)", "trials", "cycles (avg/max)", "energy (avg/max)"
    );
    for &rate in &RATES_PPM {
        let graceful_at_rate: Vec<(f64, f64)> = trials
            .iter()
            .filter(|(_, _, t)| {
                matches!(t.spec, FaultSpec::Hardware(_)) && t.spec.rate_ppm() == rate
            })
            .filter_map(|(_, _, t)| match t.outcome {
                FaultOutcome::Graceful { cycle_ratio, energy_ratio, .. } => {
                    Some((cycle_ratio, energy_ratio))
                }
                _ => None,
            })
            .collect();
        let count = graceful_at_rate.len();
        let mean = |f: fn(&(f64, f64)) -> f64| {
            if count == 0 {
                1.0
            } else {
                graceful_at_rate.iter().map(f).sum::<f64>() / count as f64
            }
        };
        let max = |f: fn(&(f64, f64)) -> f64| graceful_at_rate.iter().map(f).fold(1.0f64, f64::max);
        let (mc, xc) = (mean(|p| p.0), max(|p| p.0));
        let (me, xe) = (mean(|p| p.1), max(|p| p.1));
        println!("{rate:>10} | {count:>6} | {mc:>7.4} / {xc:>6.4} | {me:>7.4} / {xe:>6.4}");
        degradation.push(Json::obj([
            ("rate_ppm", Json::from(rate)),
            ("graceful_trials", Json::from(count)),
            ("mean_cycle_ratio", Json::from(mc)),
            ("max_cycle_ratio", Json::from(xc)),
            ("mean_energy_ratio", Json::from(me)),
            ("max_energy_ratio", Json::from(xe)),
        ]));
    }

    println!();
    println!(
        "{} trials: {graceful} graceful, {detected} detected, {} silent corruptions",
        trials.len(),
        silent.len(),
    );
    for (benchmark, scheme, trial) in &silent {
        eprintln!(
            "SILENT CORRUPTION: {benchmark} under {} with {} fault",
            scheme.label(),
            trial.spec.label(),
        );
    }
    if silent.is_empty() && infrastructure_errors == 0 && uncovered.is_empty() {
        println!("invariant holds: faults inside the way-placement trust boundary never corrupt");
        println!("architectural state (paper §4) — they only cost cycles and energy, and every");
        println!("energy-burning fault was caught by the detection layer and recovered.");
    }

    let manifest = Json::obj([
        ("schema", Json::from("wp-bench/fault-campaign-v1")),
        ("geometry", Json::from(geometry.to_string())),
        ("input_set", Json::from("small")),
        ("quick", Json::from(quick)),
        ("rates_ppm", Json::arr(RATES_PPM.iter().map(|&r| Json::from(r)))),
        ("trials", Json::arr(trials.iter().map(|(b, s, t)| trial_json(*b, *s, t)))),
        ("degradation_by_rate", Json::arr(degradation)),
        (
            "summary",
            Json::obj([
                ("trials", Json::from(trials.len())),
                ("graceful", Json::from(graceful)),
                ("detected", Json::from(detected)),
                ("silent_corruptions", Json::from(silent.len())),
                ("undetected_energy_burners", Json::from(uncovered.len())),
                ("infrastructure_errors", Json::from(infrastructure_errors)),
            ]),
        ),
    ]);
    match write_manifest("fault_campaign", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: failed to write BENCH_fault_campaign.json: {e}"),
    }
    eprintln!("{}", engine.stats());
    let failed = !silent.is_empty() || infrastructure_errors > 0 || !uncovered.is_empty();
    std::process::exit(i32::from(failed));
}
