//! Figure 6 reproduction: average normalised I-cache energy (a) and ED
//! product (b) across the {16, 32, 64} KB x {8, 16, 32}-way grid, for
//! way-memoization and two way-placement area sizes (8 KB and 2 KB).
//!
//! Paper shape targets: way-placement reduces energy at *every* point;
//! >=59% savings in the 64 KB/32-way cache (the best ED, ~0.80); at the
//! > low-associativity corner way-memoization's advantage collapses
//! > (the paper reports it *increasing* energy) while way-placement
//! > still reduces energy to ~82%.
//!
//! The whole grid is ONE engine experiment (9 geometries x 3 schemes x
//! all benchmarks): each benchmark is assembled and profiled exactly
//! once for all nine cache points.

use wp_bench::campaign::{keys, provenance_json, InputTags};
use wp_bench::{
    checkpoint_path, figure6_geometries, finish, mean_ed, mean_energy, Engine, Experiment, Json,
};
use wp_core::wp_workloads::Benchmark;
use wp_core::Scheme;

fn main() {
    let schemes = [
        Scheme::WayMemoization,
        Scheme::WayPlacement { area_bytes: 8 * 1024 },
        Scheme::WayPlacement { area_bytes: 2 * 1024 },
    ];
    println!("== Figure 6: cache size x associativity grid ==");
    println!(
        "{:<26} | {:>16} | {:>16} | {:>16}",
        "cache", "way-memo (E%,ED)", "wp 8KB (E%,ED)", "wp 2KB (E%,ED)"
    );
    let experiment = Experiment::new(Benchmark::ALL, figure6_geometries(), schemes);
    // The grid is the longest campaign; checkpoint it so an
    // interrupted run resumes from BENCH_fig6.checkpoint.jsonl.
    let report = Engine::global().run_checkpointed(&experiment, &checkpoint_path("fig6"));

    let mut best_ed = (f64::INFINITY, String::new());
    for geom in figure6_geometries() {
        let rows = report.rows_for(geom);
        if rows.is_empty() {
            println!("{:<26} | (no completed rows)", geom.to_string());
            continue;
        }
        let cells: Vec<String> = (0..schemes.len())
            .map(|i| format!("{:>6.1}%, {:>5.3}", mean_energy(&rows, i) * 100.0, mean_ed(&rows, i)))
            .collect();
        println!("{:<26} | {} | {} | {}", geom.to_string(), cells[0], cells[1], cells[2]);
        for (i, scheme) in schemes.iter().enumerate().skip(1) {
            let ed = mean_ed(&rows, i);
            if ed < best_ed.0 {
                best_ed = (ed, format!("{geom} / {}", scheme.label()));
            }
        }
    }
    println!();
    println!(
        "best way-placement ED: {:.3} at {}   (paper: 0.80 at 64KB, 32-way)",
        best_ed.0, best_ed.1
    );
    println!("paper: way-placement saves energy at every point; >=59% saving at 64KB/32-way;");
    println!("       way-memoization's advantage collapses at low associativity.");

    // The deterministic manifest subset plus the campaign task key:
    // byte-identical to what a warm `wp-campaign run` assembles.
    let key = keys::fig_manifest("fig6", &experiment, &InputTags::default());
    let mut manifest = Json::obj([("figure", Json::from("fig6"))]);
    manifest.push("suite", report.results_json());
    manifest.push("provenance", provenance_json(&key));
    std::process::exit(finish("fig6", &report, &manifest));
}
