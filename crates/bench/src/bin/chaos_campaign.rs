//! The chaos/soak campaign driver.
//!
//! Arms the full detection-and-recovery stack — parity/duplication
//! checks in the fetch core, priced recovery, and the degradation
//! controller — and soaks it under an escalating hardware fault ladder
//! (0 / 1k / 10k / 100k ppm) across the benchmark suite, with a seeded
//! mid-run kill + torn-checkpoint resume drill riding along. Fails
//! (exit 1) when any resilience invariant breaks:
//!
//! * a silent architectural corruption at any rate;
//! * an energy-burning fault the detection layer never saw and the
//!   controller never reacted to;
//! * armed-but-clean detection overhead past 5% of the unarmed twin;
//! * a kill/resume drill that does not reproduce the uninterrupted
//!   report byte for byte.
//!
//!   chaos_campaign [--quick]
//!
//! `--quick` restricts to three benchmarks (the CI smoke shape); the
//! default soaks all of `Benchmark::ALL`. Writes
//! `BENCH_chaos_campaign.json`, the same manifest `bless` freezes into
//! the committed baselines.

use wp_bench::chaos::{run_campaign, CHAOS_RATES_PPM, CLEAN_OVERHEAD_LIMIT};
use wp_bench::{write_manifest, Engine};
use wp_core::FaultOutcome;

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    let outcome = run_campaign(quick);
    let (graceful, detected, silent) = outcome.outcome_counts();

    println!(
        "== Chaos campaign: {} trials on {}, rates {:?} ppm ==",
        outcome.trials.len(),
        outcome.geometry,
        CHAOS_RATES_PPM,
    );
    println!(
        "{:>10} | {:>6} | {:>16} | {:>16} | {:>9}",
        "rate (ppm)", "trials", "cycles (avg/max)", "energy (avg/max)", "demotions"
    );
    for &rate in &CHAOS_RATES_PPM {
        let at_rate: Vec<_> = outcome.trials.iter().filter(|(t, _)| t.rate_ppm == rate).collect();
        let ratios: Vec<(f64, f64)> = at_rate
            .iter()
            .filter_map(|(t, _)| match t.trial.outcome {
                FaultOutcome::Graceful { cycle_ratio, energy_ratio, .. } => {
                    Some((cycle_ratio, energy_ratio))
                }
                _ => None,
            })
            .collect();
        let count = ratios.len();
        let mean = |f: fn(&(f64, f64)) -> f64| {
            if count == 0 {
                1.0
            } else {
                ratios.iter().map(f).sum::<f64>() / count as f64
            }
        };
        let max = |f: fn(&(f64, f64)) -> f64| ratios.iter().map(f).fold(1.0f64, f64::max);
        let demotions: u64 = at_rate.iter().map(|(t, _)| t.trial.demotions).sum();
        println!(
            "{rate:>10} | {count:>6} | {:>7.4} / {:>6.4} | {:>7.4} / {:>6.4} | {demotions:>9}",
            mean(|p| p.0),
            max(|p| p.0),
            mean(|p| p.1),
            max(|p| p.1),
        );
    }

    let worst_overhead = outcome
        .trials
        .iter()
        .filter_map(|(t, clean_pj)| t.clean_overhead(*clean_pj))
        .fold(0.0f64, f64::max);
    println!();
    println!(
        "{} trials: {graceful} graceful, {detected} detected, {silent} silent corruptions",
        outcome.trials.len(),
    );
    println!(
        "armed-but-clean overhead: worst {worst_overhead:.4} (limit {CLEAN_OVERHEAD_LIMIT}); \
         kill/resume drill: {}",
        if outcome.kill_resume_ok { "byte-identical resume" } else { "FAILED" },
    );
    for message in outcome
        .silent
        .iter()
        .map(|m| format!("SILENT CORRUPTION: {m}"))
        .chain(outcome.undetected.iter().map(|m| format!("UNDETECTED ENERGY BURN: {m}")))
        .chain(outcome.overhead.iter().map(|m| format!("CLEAN OVERHEAD: {m}")))
        .chain(outcome.errors.iter().map(|m| format!("CAMPAIGN ERROR: {m}")))
    {
        eprintln!("{message}");
    }
    if !outcome.failed() {
        println!("invariants hold: every energy-burning fault was detected or degraded away,");
        println!("no run corrupted architectural state, detection rides within its energy");
        println!("budget, and a torn-checkpoint kill resumes to a byte-identical report.");
    }

    match write_manifest("chaos_campaign", &outcome.manifest()) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: failed to write BENCH_chaos_campaign.json: {e}"),
    }
    eprintln!("{}", Engine::global().stats());
    std::process::exit(i32::from(outcome.failed()));
}
