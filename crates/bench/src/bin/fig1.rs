//! Figure 1 reproduction: three instruction fetches (`add`, `br`,
//! `mul`) on a 2-set, 4-way cache cost 12 tag comparisons under the
//! baseline and 3 under way-placement.

use wp_core::wp_mem::{CacheGeometry, FetchStats, ICacheConfig, InstructionCache};

fn warm_and_count(cache: &mut InstructionCache, wp: bool) -> FetchStats {
    let addrs = [0x04u32, 0x08, 0x20];
    for addr in addrs {
        cache.fetch(addr, wp); // warm: fills + hint training
    }
    let before = *cache.stats();
    for addr in addrs {
        cache.fetch(addr, wp);
    }
    let after = *cache.stats();
    FetchStats {
        fetches: after.fetches - before.fetches,
        tag_comparisons: after.tag_comparisons - before.tag_comparisons,
        ..FetchStats::new()
    }
}

fn main() {
    // The figure's cache: 2 sets x 4 ways x 32 B lines.
    let geom = CacheGeometry::new(256, 4, 32);
    println!("== Figure 1: {geom}, fetching add@0x04, br@0x08, mul@0x20 ==");

    let mut baseline = InstructionCache::new(ICacheConfig::baseline(geom));
    let b = warm_and_count(&mut baseline, false);
    println!(
        "baseline:      {} fetches -> {} tag comparisons (paper: 12)",
        b.fetches, b.tag_comparisons
    );

    let mut wp = InstructionCache::new(ICacheConfig {
        same_line_elision: false, // the figure isolates the way effect
        ..ICacheConfig::way_placement(geom)
    });
    let w = warm_and_count(&mut wp, true);
    println!(
        "way-placement: {} fetches -> {} tag comparisons (paper: 3)",
        w.fetches, w.tag_comparisons
    );
    let saving = 100.0 * (1.0 - w.tag_comparisons as f64 / b.tag_comparisons as f64);
    println!("tag-comparison saving: {saving:.0}% (paper: 75%)");
}
