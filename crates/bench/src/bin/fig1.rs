//! Figure 1 reproduction: three instruction fetches (`add`, `br`,
//! `mul`) on a 2-set, 4-way cache cost 12 tag comparisons under the
//! baseline and 3 under way-placement. The counts also land in
//! `BENCH_fig1.json` — via the same builder the campaign DAG uses, so
//! both paths emit identical bytes.

use wp_bench::campaign::{fig1_data, fig1_manifest, keys};
use wp_bench::write_manifest;

fn main() {
    let data = fig1_data();
    println!("== Figure 1: {}, fetching add@0x04, br@0x08, mul@0x20 ==", data.geometry);
    let (b, w) = (data.baseline, data.way_placement);
    println!(
        "baseline:      {} fetches -> {} tag comparisons (paper: 12)",
        b.fetches, b.tag_comparisons
    );
    println!(
        "way-placement: {} fetches -> {} tag comparisons (paper: 3)",
        w.fetches, w.tag_comparisons
    );
    let saving = 100.0 * (1.0 - w.tag_comparisons as f64 / b.tag_comparisons as f64);
    println!("tag-comparison saving: {saving:.0}% (paper: 75%)");

    let manifest = fig1_manifest(&data, &keys::fig1());
    match write_manifest("fig1", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: failed to write BENCH_fig1.json: {e}"),
    }
}
