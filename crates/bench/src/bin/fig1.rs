//! Figure 1 reproduction: three instruction fetches (`add`, `br`,
//! `mul`) on a 2-set, 4-way cache cost 12 tag comparisons under the
//! baseline and 3 under way-placement. The counts also land in
//! `BENCH_fig1.json`.

use wp_bench::{write_manifest, Json};
use wp_core::wp_mem::{CacheGeometry, FetchStats, ICacheConfig, InstructionCache};

fn warm_and_count(cache: &mut InstructionCache, wp: bool) -> FetchStats {
    let addrs = [0x04u32, 0x08, 0x20];
    for addr in addrs {
        cache.fetch(addr, wp); // warm: fills + hint training
    }
    let before = *cache.stats();
    for addr in addrs {
        cache.fetch(addr, wp);
    }
    let after = *cache.stats();
    FetchStats {
        fetches: after.fetches - before.fetches,
        tag_comparisons: after.tag_comparisons - before.tag_comparisons,
        ..FetchStats::new()
    }
}

fn main() {
    // The figure's cache: 2 sets x 4 ways x 32 B lines.
    let geom = CacheGeometry::new(256, 4, 32);
    println!("== Figure 1: {geom}, fetching add@0x04, br@0x08, mul@0x20 ==");

    let mut baseline = InstructionCache::new(ICacheConfig::baseline(geom));
    let b = warm_and_count(&mut baseline, false);
    println!(
        "baseline:      {} fetches -> {} tag comparisons (paper: 12)",
        b.fetches, b.tag_comparisons
    );

    let mut wp = InstructionCache::new(ICacheConfig {
        same_line_elision: false, // the figure isolates the way effect
        ..ICacheConfig::way_placement(geom)
    });
    let w = warm_and_count(&mut wp, true);
    println!(
        "way-placement: {} fetches -> {} tag comparisons (paper: 3)",
        w.fetches, w.tag_comparisons
    );
    let saving = 100.0 * (1.0 - w.tag_comparisons as f64 / b.tag_comparisons as f64);
    println!("tag-comparison saving: {saving:.0}% (paper: 75%)");

    let manifest = Json::obj([
        ("figure", Json::from("fig1")),
        ("geometry", Json::from(geom.to_string())),
        ("baseline_fetches", Json::from(b.fetches)),
        ("baseline_tag_comparisons", Json::from(b.tag_comparisons)),
        ("way_placement_fetches", Json::from(w.fetches)),
        ("way_placement_tag_comparisons", Json::from(w.tag_comparisons)),
        ("tag_saving_fraction", Json::from(saving / 100.0)),
        ("paper_baseline_tag_comparisons", Json::from(12u32)),
        ("paper_way_placement_tag_comparisons", Json::from(3u32)),
    ]);
    match write_manifest("fig1", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: failed to write BENCH_fig1.json: {e}"),
    }
}
