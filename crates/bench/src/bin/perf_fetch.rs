//! `perf_fetch` — fetch-core throughput benchmark and speedup check.
//!
//! Times the structure-of-arrays core fetch-by-fetch and the batched
//! `fetch_block` path over the straight and loopy scenarios (see
//! `wp_bench::perf`), after an untimed equivalence tripwire per
//! configuration (clean and detection-armed), and writes
//! `BENCH_perf_fetch.json`.
//!
//! Usage: `perf_fetch [--quick]`
//!
//! `--quick` is the CI smoke shape: a shorter stream, fewer
//! iterations, the same tripwire. Exit codes: `0` when the headline
//! speedup (straight scenario, `soa-block` vs `soa-fetch`) meets the
//! target, `1` when it misses or the tripwire fires, `2` usage or I/O
//! error.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use wp_bench::perf::{measure, HEADLINE, TARGET_SPEEDUP};
use wp_bench::write_manifest;

fn usage() -> ! {
    eprintln!("usage: perf_fetch [--quick]");
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            _ => usage(),
        }
    }

    let report = match measure(quick) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("perf_fetch: equivalence tripwire fired: {message}");
            std::process::exit(1);
        }
    };

    println!();
    println!("{:<22} {:>12} {:>14}", "scenario/core", "Mfetch/s", "speedup vs ref");
    for row in &report.rows {
        println!(
            "{:<22} {:>12.2} {:>13.2}x",
            format!("{}/{}", row.scenario, row.core),
            row.mfetch_per_s,
            row.speedup_vs_ref
        );
    }
    let speedup = report.headline_speedup();
    let verdict = if speedup >= TARGET_SPEEDUP { "ok" } else { "MISSED" };
    println!(
        "headline ({}/{}): {speedup:.2}x vs target {TARGET_SPEEDUP:.1}x — {verdict}",
        HEADLINE.0, HEADLINE.1
    );

    match write_manifest("perf_fetch", &report.json()) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => {
            eprintln!("perf_fetch: failed to write BENCH_perf_fetch.json: {e}");
            std::process::exit(2);
        }
    }
    std::process::exit(i32::from(speedup < TARGET_SPEEDUP));
}
