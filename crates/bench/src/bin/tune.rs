//! `tune` — attribution-guided way-placement area autotuning.
//!
//! For each benchmark: one traced run at full coverage yields
//! per-chain fetch/tag attribution; `wp_tune::predict` models the
//! I-cache energy of every `FIGURE5_AREAS` candidate from it (covered
//! fetches keep their measured single-tag cost, uncovered fetches pay
//! the full CAM width); a bounded measured search (`wp_tune::refine`)
//! then verifies the predicted knee with real simulations, measuring
//! only as many grid points as the prediction error requires.
//!
//! Writes the deterministic `BENCH_tuned_areas.json` manifest — the
//! input to `fig5 --areas` validation and the stored-baseline gate.
//!
//! Usage: `tune [--quick | --all] [--tolerance T] [--areas CSV]`
//!
//! The default tunes the crc/sha/bitcount set on the large inputs;
//! `--all` extends to the whole 23-benchmark suite (what `bless`
//! freezes into `baselines/`); `--quick` shrinks to one benchmark on
//! the small input set for CI; `--tolerance` sets the knee criterion
//! (default 0.02: within 2% of the best measured energy); `--areas`
//! overrides the candidate grid.
//!
//! Exit codes: `0` tuned, `1` pipeline/tuning failure, `2` usage
//! error — the same convention as `trace_diff` and `gate`, so CI can
//! tell a broken invocation from a genuinely failing run.

use wp_bench::autotune::tune_suite;
use wp_bench::{write_manifest, FIGURE5_AREAS};
use wp_mem::CacheGeometry;
use wp_tune::{parse_area_list, parse_threshold, TuneError, DEFAULT_TOLERANCE};
use wp_workloads::{Benchmark, InputSet};

fn usage() -> ! {
    eprintln!("usage: tune [--quick | --all] [--tolerance T] [--areas CSV]");
    std::process::exit(2);
}

fn run() -> Result<(), TuneError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut all = false;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut grid: Vec<u32> = FIGURE5_AREAS.to_vec();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--all" => all = true,
            "--tolerance" => tolerance = parse_threshold(iter.next().unwrap_or_else(|| usage()))?,
            "--areas" => grid = parse_area_list(iter.next().unwrap_or_else(|| usage()))?,
            _ => usage(),
        }
    }
    if quick && all {
        usage();
    }

    let (benchmarks, set): (Vec<Benchmark>, InputSet) = if quick {
        (vec![Benchmark::Crc], InputSet::Small)
    } else if all {
        (Benchmark::ALL.to_vec(), InputSet::Large)
    } else {
        (vec![Benchmark::Crc, Benchmark::Sha, Benchmark::Bitcount], InputSet::Large)
    };
    let icache = CacheGeometry::xscale_icache();

    let (tunings, manifest) = tune_suite(&benchmarks, icache, &grid, tolerance, set)?;
    for t in &tunings {
        println!(
            "{:<10} chosen {:>5} B (predicted knee {:>5} B), {:.3e} pJ measured, \
             predicted/measured {:.4}, {} measurements",
            t.benchmark.name(),
            t.chosen_area_bytes,
            t.prediction.candidates[t.prediction.knee_index].area_bytes,
            t.measured_pj,
            t.predicted_measured_ratio(),
            t.refinement.steps.len(),
        );
    }
    let path = write_manifest("tuned_areas", &manifest).map_err(|e| TuneError::Io {
        path: "BENCH_tuned_areas.json".to_string(),
        message: e.to_string(),
    })?;
    eprintln!("manifest: {}", path.display());
    Ok(())
}

fn main() {
    if let Err(error) = run() {
        eprintln!("tune: {error}");
        // Usage mistakes (bad --areas/--tolerance tokens) exit 2;
        // pipeline and tuning failures exit 1.
        std::process::exit(error.exit_code());
    }
}
