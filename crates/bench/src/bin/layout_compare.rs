//! `layout_compare` — the layout competition report.
//!
//! Links every benchmark under all six layout passes (the four
//! original chain sorts plus ext-TSP and Codestitcher), runs both
//! way-aware schemes per layout, and emits `BENCH_layout_compare.json`
//! reporting per `(benchmark, layout)`:
//!
//! * static 1 KB WP-area coverage under the training profile;
//! * the measured fetch share the 1 KB prefix covered on the
//!   evaluation inputs;
//! * the tuned knee (via the `wp-tune` prediction sweep) and its
//!   predicted energy;
//! * measured I-cache energy under `way-placement/1KB` and way
//!   memoization.
//!
//! The manifest is the sixth blessed baseline (see `bless`/`gate`) and
//! is also produced by the `wp-campaign` DAG from per-benchmark nodes.
//!
//! Usage: `layout_compare [--quick]`
//!
//! `--quick` shrinks the competition to the CI smoke shape (one
//! benchmark, small inputs). Exit codes: `0` written, `1` pipeline
//! failure.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use wp_bench::engine::Engine;
use wp_bench::layout_compare::build_layout_baseline;
use wp_bench::{write_manifest, Json};

fn run(quick: bool) -> Result<i32, String> {
    let manifest = build_layout_baseline(quick).map_err(|e| e.to_string())?;
    let runs = manifest.get("runs").and_then(Json::as_array).unwrap_or(&[]);
    println!(
        "{:<12} {:<14} {:>10} {:>10} {:>10} {:>12}",
        "benchmark", "layout", "cov@1K", "share@1K", "knee", "wp-1K pJ"
    );
    for row in runs {
        // Only the way-placement rows carry the coverage columns.
        let Some(coverage) = row.get("coverage_1k").and_then(Json::as_f64) else { continue };
        println!(
            "{:<12} {:<14} {:>10.4} {:>10.4} {:>10} {:>12.1}",
            row.get("benchmark").and_then(Json::as_str).unwrap_or("?"),
            row.get("layout").and_then(Json::as_str).unwrap_or("?"),
            coverage,
            row.get("covered_fetch_share_1k").and_then(Json::as_f64).unwrap_or(0.0),
            row.get("knee_area_bytes").and_then(Json::as_u64).unwrap_or(0),
            row.get("icache_pj").and_then(Json::as_f64).unwrap_or(0.0),
        );
    }
    eprintln!("{}", Engine::global().stats());
    let path = write_manifest("layout_compare", &manifest)
        .map_err(|e| format!("writing manifest: {e}"))?;
    eprintln!("manifest: {}", path.display());
    Ok(0)
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    match run(quick) {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("layout_compare: {message}");
            std::process::exit(1);
        }
    }
}
