//! Figure 5 reproduction: average normalised I-cache energy (a) and ED
//! product (b) as the way-placement area shrinks from 32 KB to 1 KB on
//! the 32 KB, 32-way cache, with way-memoization as the yardstick.
//!
//! Paper shape targets: graceful degradation; even the 1 KB area keeps
//! energy at ~56% — still beating way-memoization's ~68%; ED ~0.94 at
//! 1 KB. No relink is needed between area sizes (§4.1): the same
//! binary serves every row — and on the engine, neither is a second
//! profile: every area size shares one memoised workbench and one
//! baseline measurement per benchmark.
//!
//! Usage: `fig5 [--areas <file|csv>]`
//!
//! `--areas` takes either a comma-separated area list (`16K,8K,1024`)
//! that overrides the `FIGURE5_AREAS` sweep grid, or the path to a
//! `BENCH_tuned_areas.json` manifest from the `tune` binary — the
//! latter switches to **validation mode**: the sweep runs the standard
//! grid over exactly the manifest's benchmarks, locates each
//! benchmark's sweep-optimal area with the same knee criterion the
//! tuner used (`wp_tune::knee_index`), and checks every tuned area
//! lands within one grid step of it, exiting 1 on any miss.

use std::path::Path;

use wp_bench::campaign::{keys, provenance_json, InputTags};
use wp_bench::{
    finish, mean_ed, mean_energy, run_suite_checkpointed, Experiment, Json, FIGURE5_AREAS,
};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::Benchmark;
use wp_core::Scheme;
use wp_tune::{knee_index, parse_area_list, TunedManifest};

fn usage() -> ! {
    eprintln!("usage: fig5 [--areas <file|csv>]");
    std::process::exit(2);
}

enum Mode {
    /// The standard (or overridden) grid sweep over all benchmarks.
    Sweep(Vec<u32>),
    /// Sweep the standard grid over the manifest's benchmarks, then
    /// check each tuned area against the sweep-optimal one.
    Validate(TunedManifest),
}

fn parse_mode() -> Mode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let mut mode = Mode::Sweep(FIGURE5_AREAS.to_vec());
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--areas" => {
                let spec = iter.next().unwrap_or_else(|| usage());
                if Path::new(spec).is_file() {
                    match TunedManifest::load(Path::new(spec)) {
                        Ok(manifest) => {
                            // A tuned manifest from a different grid
                            // would be checked against the wrong
                            // neighbors: "within one grid step" only
                            // means anything on the sweep's own grid.
                            if manifest.grid != FIGURE5_AREAS {
                                eprintln!(
                                    "fig5: tuned manifest grid {:?} does not match the sweep \
                                     grid {:?}; re-run tune on the sweep grid before validating",
                                    manifest.grid, FIGURE5_AREAS
                                );
                                std::process::exit(2);
                            }
                            mode = Mode::Validate(manifest);
                        }
                        Err(error) => {
                            eprintln!("fig5: {error}");
                            std::process::exit(2);
                        }
                    }
                } else {
                    match parse_area_list(spec) {
                        Ok(areas) => mode = Mode::Sweep(areas),
                        Err(error) => {
                            eprintln!("fig5: {error}");
                            std::process::exit(2);
                        }
                    }
                }
            }
            _ => usage(),
        }
    }
    mode
}

/// Checks every tuned area against the sweep-optimal one (the knee of
/// the benchmark's measured energy curve, under the tolerance the
/// tuner ran with). Returns the validation manifest section and
/// whether every benchmark passed.
fn validate(manifest: &TunedManifest, rows: &[wp_bench::SuiteRow], grid: &[u32]) -> (Json, bool) {
    let mut entries = Vec::new();
    let mut all_ok = true;
    println!();
    println!("== Validation: tuned areas vs sweep-optimal (tolerance {}) ==", manifest.tolerance);
    for entry in &manifest.entries {
        let row = rows.iter().find(|r| r.benchmark.name() == entry.benchmark);
        let (verdict, detail) = match row {
            None => (false, "benchmark missing from sweep".to_string()),
            Some(row) => {
                // values[0] is way-memoization; area i sits at i+1.
                let energies: Vec<f64> = (0..grid.len()).map(|i| row.values[i + 1].1).collect();
                match (
                    knee_index(&energies, manifest.tolerance),
                    grid.iter().position(|&a| a == entry.area_bytes),
                ) {
                    (Ok(optimal), Some(tuned)) => {
                        let ok = tuned.abs_diff(optimal) <= 1;
                        (
                            ok,
                            format!(
                                "tuned {} B (index {tuned}), sweep-optimal {} B (index {optimal})",
                                entry.area_bytes, grid[optimal]
                            ),
                        )
                    }
                    (Err(error), _) => (false, format!("sweep knee failed: {error}")),
                    (_, None) => {
                        (false, format!("tuned area {} B is not on the grid", entry.area_bytes))
                    }
                }
            }
        };
        all_ok &= verdict;
        println!("{:<10} {} — {detail}", entry.benchmark, if verdict { "PASS" } else { "FAIL" });
        entries.push(Json::obj([
            ("benchmark", Json::from(entry.benchmark.as_str())),
            ("tuned_area_bytes", Json::from(entry.area_bytes)),
            ("ok", Json::from(verdict)),
            ("detail", Json::from(detail)),
        ]));
    }
    let section = Json::obj([
        ("tolerance", Json::from(manifest.tolerance)),
        ("benchmarks", Json::Arr(entries)),
        ("ok", Json::from(all_ok)),
    ]);
    (section, all_ok)
}

/// Places each tuned area *on* the sweep curve: the `tuned` series of
/// `BENCH_fig5.json`, one `(benchmark, area, energy, ED)` point per
/// tuned benchmark, read off the sweep measurements at the tuned
/// area's grid column — so a plot of the sweep can overlay where the
/// autotuner landed instead of only reporting a pass/fail verdict.
fn tuned_series(manifest: &TunedManifest, rows: &[wp_bench::SuiteRow], grid: &[u32]) -> Json {
    let mut points = Vec::new();
    println!();
    println!("== Tuned points on the sweep curve ==");
    for entry in &manifest.entries {
        let row = rows.iter().find(|r| r.benchmark.name() == entry.benchmark);
        let index = grid.iter().position(|&a| a == entry.area_bytes);
        let (Some(row), Some(index)) = (row, index) else {
            // validate() already reports the miss; nothing to plot.
            continue;
        };
        // values[0] is way-memoization; area i sits at i+1.
        let (_, energy, ed) = &row.values[index + 1];
        println!(
            "{:<10} {:>5} B | {:>9.1}% | {:>6.3}",
            entry.benchmark,
            entry.area_bytes,
            energy * 100.0,
            ed
        );
        points.push(Json::obj([
            ("benchmark", Json::from(entry.benchmark.as_str())),
            ("area_bytes", Json::from(entry.area_bytes)),
            ("energy", Json::from(*energy)),
            ("ed", Json::from(*ed)),
        ]));
    }
    Json::Arr(points)
}

fn main() {
    let mode = parse_mode();
    let geom = CacheGeometry::xscale_icache();

    let (grid, benchmarks): (Vec<u32>, Vec<Benchmark>) = match &mode {
        Mode::Sweep(areas) => (areas.clone(), Benchmark::ALL.to_vec()),
        Mode::Validate(manifest) => {
            let named: Vec<Benchmark> = Benchmark::ALL
                .iter()
                .copied()
                .filter(|b| manifest.entries.iter().any(|e| e.benchmark == b.name()))
                .collect();
            (FIGURE5_AREAS.to_vec(), named)
        }
    };

    println!("== Figure 5: {geom}, way-placement area sweep ==");
    println!("{:<18} | {:>10} | {:>6}", "configuration", "energy", "ED");

    // One experiment: way-memoization plus every area size, so the
    // whole sweep is a single engine run over shared caches.
    let schemes: Vec<Scheme> = std::iter::once(Scheme::WayMemoization)
        .chain(grid.iter().map(|&area_bytes| Scheme::WayPlacement { area_bytes }))
        .collect();
    // Checkpointed: an interrupted sweep resumes from
    // BENCH_fig5.checkpoint.jsonl, skipping completed jobs.
    let report = run_suite_checkpointed("fig5", &benchmarks, geom, &schemes);
    let rows = report.rows_for(geom);
    if !rows.is_empty() {
        println!(
            "{:<18} | {:>9.1}% | {:>6.3}   (paper: ~68%)",
            "way-memoization",
            mean_energy(&rows, 0) * 100.0,
            mean_ed(&rows, 0)
        );
        for (index, area) in grid.iter().enumerate() {
            println!(
                "{:<18} | {:>9.1}% | {:>6.3}",
                format!("way-placement {}KB", *area as f64 / 1024.0),
                mean_energy(&rows, index + 1) * 100.0,
                mean_ed(&rows, index + 1)
            );
        }
    }
    println!();
    println!("paper: 32KB area ~50% energy ... 1KB area ~56% energy, ED ~0.94");

    let mut manifest = Json::obj([
        ("figure", Json::from("fig5")),
        ("areas_bytes", Json::arr(grid.iter().map(|&a| Json::from(a)))),
    ]);
    let mut validation_failed = false;
    if let Mode::Validate(tuned) = &mode {
        let (section, ok) = validate(tuned, &rows, &grid);
        manifest.push("validation", section);
        manifest.push("tuned", tuned_series(tuned, &rows, &grid));
        validation_failed = !ok;
    }
    manifest.push("suite", report.results_json());
    // The task key of the experiment actually swept (an overridden
    // --areas grid keys differently from the standard campaign node).
    let experiment = Experiment::new(benchmarks, [geom], schemes);
    let key = keys::fig_manifest("fig5", &experiment, &InputTags::default());
    manifest.push("provenance", provenance_json(&key));
    let code = finish("fig5", &report, &manifest);
    std::process::exit(if validation_failed { 1 } else { code });
}
