//! Figure 5 reproduction: average normalised I-cache energy (a) and ED
//! product (b) as the way-placement area shrinks from 32 KB to 1 KB on
//! the 32 KB, 32-way cache, with way-memoization as the yardstick.
//!
//! Paper shape targets: graceful degradation; even the 1 KB area keeps
//! energy at ~56% — still beating way-memoization's ~68%; ED ~0.94 at
//! 1 KB. No relink is needed between area sizes (§4.1): the same
//! binary serves every row — and on the engine, neither is a second
//! profile: every area size shares one memoised workbench and one
//! baseline measurement per benchmark.

use wp_bench::{finish, mean_ed, mean_energy, run_suite_checkpointed, Json, FIGURE5_AREAS};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::Benchmark;
use wp_core::Scheme;

fn main() {
    let geom = CacheGeometry::xscale_icache();
    println!("== Figure 5: {geom}, way-placement area sweep ==");
    println!("{:<18} | {:>10} | {:>6}", "configuration", "energy", "ED");

    // One experiment: way-memoization plus every area size, so the
    // whole sweep is a single engine run over shared caches.
    let schemes: Vec<Scheme> = std::iter::once(Scheme::WayMemoization)
        .chain(FIGURE5_AREAS.iter().map(|&area_bytes| Scheme::WayPlacement { area_bytes }))
        .collect();
    // Checkpointed: an interrupted sweep resumes from
    // BENCH_fig5.checkpoint.jsonl, skipping completed jobs.
    let report = run_suite_checkpointed("fig5", &Benchmark::ALL, geom, &schemes);
    let rows = report.rows_for(geom);
    if !rows.is_empty() {
        println!(
            "{:<18} | {:>9.1}% | {:>6.3}   (paper: ~68%)",
            "way-memoization",
            mean_energy(&rows, 0) * 100.0,
            mean_ed(&rows, 0)
        );
        for (index, area) in FIGURE5_AREAS.iter().enumerate() {
            println!(
                "{:<18} | {:>9.1}% | {:>6.3}",
                format!("way-placement {}KB", area / 1024),
                mean_energy(&rows, index + 1) * 100.0,
                mean_ed(&rows, index + 1)
            );
        }
    }
    println!();
    println!("paper: 32KB area ~50% energy ... 1KB area ~56% energy, ED ~0.94");

    let mut manifest = Json::obj([
        ("figure", Json::from("fig5")),
        ("areas_bytes", Json::arr(FIGURE5_AREAS.iter().map(|&a| Json::from(a)))),
    ]);
    manifest.push("suite", report.json());
    std::process::exit(finish("fig5", &report, &manifest));
}
