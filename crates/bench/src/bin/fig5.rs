//! Figure 5 reproduction: average normalised I-cache energy (a) and ED
//! product (b) as the way-placement area shrinks from 32 KB to 1 KB on
//! the 32 KB, 32-way cache, with way-memoization as the yardstick.
//!
//! Paper shape targets: graceful degradation; even the 1 KB area keeps
//! energy at ~56% — still beating way-memoization's ~68%; ED ~0.94 at
//! 1 KB. No relink is needed between area sizes (§4.1): the same
//! binary serves every row.

use wp_bench::{mean_ed, mean_energy, run_suite, FIGURE5_AREAS};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::Benchmark;
use wp_core::Scheme;

fn main() {
    let geom = CacheGeometry::xscale_icache();
    println!("== Figure 5: {geom}, way-placement area sweep ==");
    println!("{:<18} | {:>10} | {:>6}", "configuration", "energy", "ED");

    let memo = run_suite(&Benchmark::ALL, geom, &[Scheme::WayMemoization]);
    println!(
        "{:<18} | {:>9.1}% | {:>6.3}   (paper: ~68%)",
        "way-memoization",
        mean_energy(&memo, 0) * 100.0,
        mean_ed(&memo, 0)
    );

    let schemes: Vec<Scheme> = FIGURE5_AREAS
        .iter()
        .map(|&area_bytes| Scheme::WayPlacement { area_bytes })
        .collect();
    let rows = run_suite(&Benchmark::ALL, geom, &schemes);
    for (index, area) in FIGURE5_AREAS.iter().enumerate() {
        println!(
            "{:<18} | {:>9.1}% | {:>6.3}",
            format!("way-placement {}KB", area / 1024),
            mean_energy(&rows, index) * 100.0,
            mean_ed(&rows, index)
        );
    }
    println!();
    println!("paper: 32KB area ~50% energy ... 1KB area ~56% energy, ED ~0.94");
}
