//! Figure 4 reproduction: per-benchmark normalised instruction-cache
//! energy (a) and ED product (b) for way-memoization and way-placement
//! against the unmodified baseline, on the paper's initial
//! configuration — a 32 KB, 32-way I-cache with a 32 KB way-placement
//! area.
//!
//! Paper shape targets: way-placement ≈ 50% energy on average (vs
//! ≈ 68% for way-memoization), way-placement wins on every benchmark,
//! average ED ≈ 0.93 with a couple of benchmarks below 0.9.

use wp_bench::campaign::{keys, provenance_json, InputTags};
use wp_bench::{finish, mean_ed, mean_energy, run_suite_checkpointed, Experiment, Json};
use wp_core::wp_mem::CacheGeometry;
use wp_core::wp_workloads::Benchmark;
use wp_core::Scheme;

fn main() {
    let geom = CacheGeometry::xscale_icache();
    let schemes = [Scheme::WayMemoization, Scheme::WayPlacement { area_bytes: 32 * 1024 }];
    println!("== Figure 4: {geom}, 32KB way-placement area ==");
    // Checkpointed: an interrupted run resumes from
    // BENCH_fig4.checkpoint.jsonl, skipping completed jobs.
    let report = run_suite_checkpointed("fig4", &Benchmark::ALL, geom, &schemes);
    print!("{}", report.table_for(geom));
    println!();
    println!("paper:   way-memoization ~68.0% energy | way-placement ~50.0% energy, ED ~0.93");
    let rows = report.rows_for(geom);
    if !rows.is_empty() {
        println!(
            "measured: way-memoization {:.1}% energy (ED {:.3}) | way-placement {:.1}% energy (ED {:.3})",
            mean_energy(&rows, 0) * 100.0,
            mean_ed(&rows, 0),
            mean_energy(&rows, 1) * 100.0,
            mean_ed(&rows, 1),
        );
        let wins = rows.iter().filter(|r| r.values[1].1 < r.values[0].1).count();
        println!("way-placement beats way-memoization on {wins}/{} benchmarks", rows.len());
    }

    // The deterministic manifest subset plus the campaign task key:
    // byte-identical to what a warm `wp-campaign run` assembles.
    let experiment = Experiment::new(Benchmark::ALL, [geom], schemes);
    let key = keys::fig_manifest("fig4", &experiment, &InputTags::default());
    let mut manifest = Json::obj([("figure", Json::from("fig4"))]);
    manifest.push("suite", report.results_json());
    manifest.push("provenance", provenance_json(&key));
    std::process::exit(finish("fig4", &report, &manifest));
}
