//! The chaos/soak campaign: detection + degradation under escalating
//! fault pressure, plus a seeded kill/resume drill.
//!
//! The fault campaign (`fault_campaign`) established the paper's §4
//! *passive* claim: faults inside the way-placement trust boundary
//! never corrupt architectural state. This campaign exercises the
//! *active* stack that PR 7 added on top — parity/duplication checks
//! in the fetch core, priced recovery, and the degradation controller
//! that walks a faulting machine down the scheme ladder — and holds it
//! to three falsifiable invariants:
//!
//! 1. **No silent corruption**, at any injection rate, ever.
//! 2. **No undetected energy burn**: a graceful trial that landed
//!    faults either saw the detection layer catch at least one, or the
//!    controller demote the scheme, or the faults were absorbed for
//!    free (energy ratio within noise of the clean twin).
//! 3. **Bounded clean-run overhead**: with detection and degradation
//!    armed but *zero* faults injected, total fetch-side energy
//!    (I-cache + recovery checks) stays within
//!    [`CLEAN_OVERHEAD_LIMIT`] of the unarmed clean twin.
//!
//! A seeded kill/resume drill rides along: a checkpointed campaign is
//! killed at a pseudorandomly chosen job, its checkpoint's final JSONL
//! line is torn mid-write, and the resumed run must still produce a
//! report byte-identical to an uninterrupted one.
//!
//! [`build_chaos_baseline`] renders the whole campaign as a
//! byte-deterministic manifest whose `runs` rows are joinable by
//! `wp_tune::TraceSet`, so the blessed copy rides the same bless/gate
//! workflow as the trace-report and tuned-areas baselines.

use std::path::Path;
use std::sync::Arc;

use wp_core::wp_mem::rng::SplitMix64;
use wp_core::wp_mem::{CacheGeometry, FaultConfig};
use wp_core::wp_sim::DegradationPolicy;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::{fault_trial_with, FaultOutcome, FaultSpec, FaultTrial, MeasureOptions, Scheme};
use wp_obs::account::Usage;
use wp_obs::metrics::Counter;
use wp_obs::Obs;

use crate::engine::{Engine, Experiment};
use crate::Json;

/// The escalating hardware fault ladder, in faults per million
/// fetches. Rate 0 is the armed-but-clean rung that prices the
/// detection overhead itself.
pub const CHAOS_RATES_PPM: [u32; 4] = [0, 1_000, 10_000, 100_000];

/// Invariant 3's bound: armed-but-clean total fetch-side energy
/// (I-cache + recovery checks) within 5% of the unarmed twin.
pub const CLEAN_OVERHEAD_LIMIT: f64 = 1.05;

/// Invariant 2's noise floor: an energy ratio at or below this counts
/// as "absorbed for free" (second-order timing effects move the ratio
/// a little even when every fault was overwritten before use).
pub const ENERGY_BURN_SLACK: f64 = 1.02;

/// The campaign matrix: quick is the CI smoke shape, full soaks the
/// whole suite. Both run small inputs — the ladder multiplies trials,
/// not input sizes.
#[must_use]
pub fn chaos_benchmarks(quick: bool) -> (&'static [Benchmark], InputSet) {
    if quick {
        (&[Benchmark::Crc, Benchmark::Sha, Benchmark::Bitcount], InputSet::Small)
    } else {
        (&Benchmark::ALL, InputSet::Small)
    }
}

/// The degradation policy the campaign arms: small windows so even the
/// quick benchmarks close enough of them for the controller to act at
/// the higher rungs of the ladder.
#[must_use]
pub fn chaos_policy() -> DegradationPolicy {
    DegradationPolicy { window_fetches: 4096, demote_faults: 4, promote_windows: 4 }
}

/// One classified campaign trial.
#[derive(Clone, Debug)]
pub struct ChaosTrial {
    /// The benchmark the trial ran.
    pub benchmark: Benchmark,
    /// The scheme under test.
    pub scheme: Scheme,
    /// The injection rate of this rung.
    pub rate_ppm: u32,
    /// The classified trial, with detection/recovery counters.
    pub trial: FaultTrial,
}

impl ChaosTrial {
    /// The manifest row key's scheme column: `label@rate` keeps every
    /// (benchmark, scheme, rate) row structurally distinct under the
    /// differ's `benchmark/scheme` join.
    #[must_use]
    pub fn scheme_key(&self) -> String {
        format!("{}@{}ppm", self.scheme.label(), self.rate_ppm)
    }

    /// Whether this trial violates invariant 2: an energy-burning
    /// graceful run whose faults nobody detected and nobody reacted to.
    #[must_use]
    pub fn is_undetected_burn(&self) -> bool {
        match self.trial.outcome {
            FaultOutcome::Graceful { energy_ratio, faults_injected, .. } => {
                self.rate_ppm > 0
                    && faults_injected > 0
                    && self.trial.detection.total_detected() == 0
                    && self.trial.demotions == 0
                    && energy_ratio > ENERGY_BURN_SLACK
            }
            _ => false,
        }
    }

    /// The armed-but-clean overhead of a rate-0 trial: total fetch-side
    /// energy (I-cache + recovery checks) over the unarmed clean twin's
    /// I-cache energy. `None` for faulted rungs or errored runs.
    #[must_use]
    pub fn clean_overhead(&self, clean_icache_pj: f64) -> Option<f64> {
        match self.trial.outcome {
            FaultOutcome::Graceful { .. } if self.rate_ppm == 0 && clean_icache_pj > 0.0 => {
                Some((self.trial.icache_pj + self.trial.recovery_pj) / clean_icache_pj)
            }
            _ => None,
        }
    }

    fn json(&self, clean_icache_pj: f64) -> Json {
        let mut json = Json::obj([
            ("benchmark", Json::from(self.benchmark.name())),
            ("scheme", Json::from(self.scheme_key().as_str())),
            ("rate_ppm", Json::from(self.rate_ppm)),
            ("fetches", Json::Uint(self.trial.fetches)),
            ("icache_pj", Json::from(self.trial.icache_pj + self.trial.recovery_pj)),
            ("recovery_pj", Json::from(self.trial.recovery_pj)),
            ("outcome", Json::from(self.trial.outcome.label())),
            ("faults_detected", Json::from(self.trial.detection.total_detected())),
            ("recovery_cycles", Json::from(self.trial.detection.recovery_cycles)),
            ("demotions", Json::from(self.trial.demotions)),
            ("promotions", Json::from(self.trial.promotions)),
            (
                "final_scheme",
                match self.trial.final_scheme {
                    Some(scheme) => Json::from(scheme.label()),
                    None => Json::Null,
                },
            ),
        ]);
        if let FaultOutcome::Graceful { cycle_ratio, energy_ratio, faults_injected } =
            self.trial.outcome
        {
            json.push("cycle_ratio", Json::from(cycle_ratio));
            json.push("energy_ratio", Json::from(energy_ratio));
            json.push("faults_injected", Json::from(faults_injected));
        }
        if let Some(overhead) = self.clean_overhead(clean_icache_pj) {
            json.push("clean_overhead", Json::from(overhead));
        }
        json
    }
}

/// The finished campaign: every trial, the violation lists the binary
/// and [`build_chaos_baseline`] fail on, and the kill/resume drill's
/// verdict.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Whether this was the quick (CI smoke) shape.
    pub quick: bool,
    /// The geometry the campaign ran on.
    pub geometry: CacheGeometry,
    /// Every trial with its unarmed clean twin's I-cache energy.
    pub trials: Vec<(ChaosTrial, f64)>,
    /// Invariant 1 violations: silent corruptions, described.
    pub silent: Vec<String>,
    /// Invariant 2 violations: undetected energy burners, described.
    pub undetected: Vec<String>,
    /// Invariant 3 violations: rate-0 overhead past the limit.
    pub overhead: Vec<String>,
    /// Infrastructure failures (workbench/clean-twin build errors).
    pub errors: Vec<String>,
    /// The kill/resume drill's manifest fragment.
    pub kill_resume: Json,
    /// Whether the drill resumed to a byte-identical report.
    pub kill_resume_ok: bool,
}

impl ChaosOutcome {
    /// Whether any invariant was violated (the campaign's exit gate).
    #[must_use]
    pub fn failed(&self) -> bool {
        !self.silent.is_empty()
            || !self.undetected.is_empty()
            || !self.overhead.is_empty()
            || !self.errors.is_empty()
            || !self.kill_resume_ok
    }

    /// Graceful / detected / silent trial counts.
    #[must_use]
    pub fn outcome_counts(&self) -> (usize, usize, usize) {
        let count = |label: &str| {
            self.trials.iter().filter(|(t, _)| t.trial.outcome.label() == label).count()
        };
        (count("graceful"), count("detected"), count("silent-corruption"))
    }

    /// Renders the byte-deterministic campaign manifest. The `runs`
    /// array is `wp_tune::TraceSet`-joinable (benchmark/scheme keys,
    /// `fetches` + `icache_pj` metrics), so the blessed copy gates
    /// drift in fetch counts and recovery-inclusive energy per rung.
    #[must_use]
    pub fn manifest(&self) -> Json {
        let key = crate::campaign::keys::chaos(self.quick, &crate::campaign::InputTags::default());
        self.manifest_with_key(&key)
    }

    /// [`CampaignOutcome::manifest`] with an explicit provenance task
    /// key, so the campaign DAG can stamp the key of the node that
    /// produced these bytes.
    #[must_use]
    pub fn manifest_with_key(&self, task_key: &wp_campaign::TaskKey) -> Json {
        let (graceful, detected, silent) = self.outcome_counts();
        let (benchmarks, set) = chaos_benchmarks(self.quick);
        let policy = chaos_policy();
        Json::obj([
            ("schema", Json::from("wp-bench/chaos-campaign-v1")),
            ("kind", Json::from("chaos_campaign")),
            (
                "provenance",
                Json::obj([
                    ("quick", Json::from(self.quick)),
                    ("geometry", Json::from(self.geometry.to_string())),
                    (
                        "input_set",
                        Json::from(match set {
                            InputSet::Small => "small",
                            InputSet::Large => "large",
                        }),
                    ),
                    ("rates_ppm", Json::arr(CHAOS_RATES_PPM.iter().map(|&r| Json::from(r)))),
                    ("benchmarks", Json::arr(benchmarks.iter().map(|b| Json::from(b.name())))),
                    (
                        "degradation",
                        Json::obj([
                            ("window_fetches", Json::from(policy.window_fetches)),
                            ("demote_faults", Json::from(policy.demote_faults)),
                            ("promote_windows", Json::from(policy.promote_windows)),
                        ]),
                    ),
                    ("clean_overhead_limit", Json::from(CLEAN_OVERHEAD_LIMIT)),
                    ("task_key", Json::from(task_key.hex().as_str())),
                ]),
            ),
            ("runs", Json::arr(self.trials.iter().map(|(t, clean_pj)| t.json(*clean_pj)))),
            ("kill_resume", self.kill_resume.clone()),
            (
                "summary",
                Json::obj([
                    ("trials", Json::from(self.trials.len())),
                    ("graceful", Json::from(graceful)),
                    ("detected", Json::from(detected)),
                    ("silent_corruptions", Json::from(silent)),
                    ("undetected_energy_burners", Json::from(self.undetected.len())),
                    ("clean_overhead_violations", Json::from(self.overhead.len())),
                    ("infrastructure_errors", Json::from(self.errors.len())),
                    ("kill_resume_ok", Json::from(self.kill_resume_ok)),
                    ("ok", Json::from(!self.failed())),
                ]),
            ),
        ])
    }
}

/// Observability handles for one campaign run: pre-registered counters
/// plus the journal group base allocated before the pool fans out, so
/// event ordering stays seed-deterministic under any worker count.
struct ChaosObs {
    obs: Arc<Obs>,
    base: u64,
    jobs: u64,
    graceful: Counter,
    detected: Counter,
    silent: Counter,
    demotions: Counter,
    promotions: Counter,
}

impl ChaosObs {
    fn new(obs: Arc<Obs>, job_count: usize, quick: bool) -> ChaosObs {
        let base = obs.journal.alloc_groups(job_count as u64 + 2);
        obs.journal.scope(base).emit(
            "campaign_start",
            vec![
                ("jobs", job_count.to_string()),
                ("rates", CHAOS_RATES_PPM.len().to_string()),
                ("quick", quick.to_string()),
            ],
        );
        let c = |name: &str, help: &str| obs.metrics.counter(name, help);
        ChaosObs {
            base,
            jobs: job_count as u64,
            graceful: c("wp_chaos_trials_graceful_total", "chaos trials classified graceful"),
            detected: c("wp_chaos_trials_detected_total", "chaos trials classified detected"),
            silent: c("wp_chaos_trials_silent_total", "chaos trials classified silent-corruption"),
            demotions: c("wp_demotions_total", "scheme ladder demotions across chaos trials"),
            promotions: c("wp_promotions_total", "scheme ladder promotions across chaos trials"),
            obs,
        }
    }

    /// Records one classified trial into the journal (group `base + 1 +
    /// job_index`), the counters, and the per-phase accounts.
    fn record_trial(&self, job_index: usize, trial: &ChaosTrial) {
        let scope = self.obs.journal.scope(self.base + 1 + job_index as u64);
        scope.emit(
            "chaos_trial",
            vec![
                ("benchmark", trial.benchmark.name().to_string()),
                ("scheme", trial.scheme_key()),
                ("rate_ppm", trial.rate_ppm.to_string()),
                ("outcome", trial.trial.outcome.label().to_string()),
                ("fetches", trial.trial.fetches.to_string()),
                ("demotions", trial.trial.demotions.to_string()),
                ("promotions", trial.trial.promotions.to_string()),
            ],
        );
        for transition in &trial.trial.transitions {
            let kind =
                if transition.is_demotion() { "scheme_demotion" } else { "scheme_promotion" };
            scope.emit(
                kind,
                vec![
                    ("benchmark", trial.benchmark.name().to_string()),
                    ("scheme", trial.scheme_key()),
                    ("boundary", transition.boundary.to_string()),
                    ("from", transition.from.label().to_string()),
                    ("to", transition.to.label().to_string()),
                    ("window_faults", transition.window_faults.to_string()),
                ],
            );
        }
        match trial.trial.outcome.label() {
            "graceful" => self.graceful.inc(),
            "detected" => self.detected.inc(),
            _ => self.silent.inc(),
        }
        self.demotions.add(trial.trial.demotions);
        self.promotions.add(trial.trial.promotions);
        self.obs.accounts.charge(
            trial.benchmark.name(),
            &trial.scheme_key(),
            "chaos",
            Usage {
                fetches: trial.trial.fetches,
                energy_pj: trial.trial.icache_pj + trial.trial.recovery_pj,
                ..Usage::default()
            },
        );
    }

    fn finish(&self, outcome: &ChaosOutcome) {
        self.obs.journal.scope(self.base + self.jobs + 1).emit(
            "campaign_finish",
            vec![
                ("trials", outcome.trials.len().to_string()),
                ("silent", outcome.silent.len().to_string()),
                ("undetected", outcome.undetected.len().to_string()),
                ("overhead", outcome.overhead.len().to_string()),
                ("errors", outcome.errors.len().to_string()),
                ("kill_resume_ok", outcome.kill_resume_ok.to_string()),
            ],
        );
    }
}

/// Runs the full campaign on the process-wide engine: every
/// `(benchmark, scheme)` pair measures its unarmed clean twin once,
/// then climbs the rate ladder with detection + degradation armed.
#[must_use]
pub fn run_campaign(quick: bool) -> ChaosOutcome {
    run_campaign_on(Engine::global(), quick)
}

/// [`run_campaign`] on a caller-supplied engine. When the engine
/// carries an [`Obs`] handle, the campaign journals every classified
/// trial and ladder transition, bumps the chaos counters, and charges
/// the `chaos` phase accounts; with observability disarmed the
/// behaviour — and the manifest — is bit-identical to before.
#[must_use]
pub fn run_campaign_on(engine: &Engine, quick: bool) -> ChaosOutcome {
    let geometry = CacheGeometry::xscale_icache();
    let (benchmarks, set) = chaos_benchmarks(quick);
    let schemes = [Scheme::WayPlacement { area_bytes: 32 * 1024 }, Scheme::WayMemoization];
    let policy = chaos_policy();

    let jobs: Vec<(usize, Benchmark, Scheme)> = benchmarks
        .iter()
        .flat_map(|&b| schemes.iter().map(move |&s| (b, s)))
        .enumerate()
        .map(|(i, (b, s))| (i, b, s))
        .collect();
    let chaos_obs = engine.obs().map(|obs| ChaosObs::new(Arc::clone(obs), jobs.len(), quick));

    let results = engine.execute(&jobs, |&(index, benchmark, scheme)| {
        let workbench = match engine.workbench(benchmark) {
            Ok(workbench) => workbench,
            Err(e) => return Err(format!("{benchmark}: workbench failed: {e}")),
        };
        let clean = match engine.measure(benchmark, geometry, scheme, set) {
            Ok(clean) => clean,
            Err(e) => return Err(format!("{benchmark}: clean measurement failed: {e}")),
        };
        // Deterministic per-job seed, independent of worker count.
        let seed = (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xC0A5);
        let batch: Vec<_> = CHAOS_RATES_PPM
            .iter()
            .map(|&rate| {
                let spec = FaultSpec::Hardware(FaultConfig::all(seed, rate));
                let options = MeasureOptions::new(set).with_fault(spec).with_degradation(policy);
                let trial = fault_trial_with(&workbench, geometry, scheme, options, &clean);
                (ChaosTrial { benchmark, scheme, rate_ppm: rate, trial }, clean.energy.icache_pj())
            })
            .collect();
        if let Some(chaos_obs) = &chaos_obs {
            for (trial, _) in &batch {
                chaos_obs.record_trial(index, trial);
            }
        }
        Ok(batch)
    });

    let mut trials = Vec::new();
    let mut errors = Vec::new();
    for result in results {
        match result {
            Ok(batch) => trials.extend(batch),
            Err(message) => errors.push(message),
        }
    }

    let silent = trials
        .iter()
        .filter(|(t, _)| t.trial.outcome.is_silent_corruption())
        .map(|(t, _)| format!("{} under {} at {} ppm", t.benchmark, t.scheme_key(), t.rate_ppm))
        .collect();
    let undetected = trials
        .iter()
        .filter(|(t, _)| t.is_undetected_burn())
        .map(|(t, _)| {
            format!("{} under {}: energy burn with zero detections", t.benchmark, t.scheme_key())
        })
        .collect();
    let overhead = trials
        .iter()
        .filter_map(|(t, clean_pj)| {
            let ratio = t.clean_overhead(*clean_pj)?;
            (ratio > CLEAN_OVERHEAD_LIMIT).then(|| {
                format!(
                    "{} under {}: armed clean overhead {ratio:.4} > {CLEAN_OVERHEAD_LIMIT}",
                    t.benchmark,
                    t.scheme_key(),
                )
            })
        })
        .collect();

    // Unique per invocation, not just per process: tests run concurrent
    // campaigns inside one binary.
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let invocation = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let scratch = std::env::temp_dir()
        .join(format!("wp-chaos-{}-{invocation}", std::process::id()))
        .join("kill_resume.jsonl");
    let (kill_resume, kill_resume_ok) = match kill_resume_drill(0x50AC, &scratch) {
        Ok(json) => (json, true),
        Err(message) => (Json::obj([("error", Json::from(message.as_str()))]), false),
    };
    if let Some(dir) = scratch.parent() {
        let _ = std::fs::remove_dir_all(dir);
    }

    let outcome = ChaosOutcome {
        quick,
        geometry,
        trials,
        silent,
        undetected,
        overhead,
        errors,
        kill_resume,
        kill_resume_ok,
    };
    if let Some(chaos_obs) = &chaos_obs {
        chaos_obs.finish(&outcome);
    }
    outcome
}

/// The seeded kill/resume drill: run a checkpointed mini-campaign, kill
/// it at a pseudorandomly chosen job, tear the checkpoint's final JSONL
/// line mid-write, resume, and demand a report byte-identical to an
/// uninterrupted run. Returns the deterministic manifest fragment.
///
/// # Errors
///
/// A description of the first step that broke the contract.
pub fn kill_resume_drill(seed: u64, checkpoint: &Path) -> Result<Json, String> {
    let mut rng = SplitMix64::new(seed);
    let experiment = Experiment::new(
        [Benchmark::Crc, Benchmark::Sha],
        [CacheGeometry::xscale_icache()],
        [Scheme::WayMemoization, Scheme::WayPlacement { area_bytes: 8 * 1024 }],
    )
    .with_input_set(InputSet::Small);
    let jobs = experiment.job_count();
    let _ = std::fs::remove_file(checkpoint);

    // The uninterrupted reference. Fresh engines throughout: the drill
    // measures resume behaviour, not the process-wide caches.
    let reference = Engine::with_workers(2).run(&experiment);
    if !reference.is_complete() {
        return Err(format!("reference run failed: {:?}", reference.failures));
    }

    // Kill: fail one seeded job so the checkpoint holds the others.
    let victim = rng.index(jobs);
    let (vb, vs) = (
        experiment.benchmarks[victim / experiment.schemes.len()],
        experiment.schemes[victim % experiment.schemes.len()],
    );
    let killed = Engine::with_workers(2).with_fault(move |benchmark, _geometry, scheme| {
        (benchmark == vb && scheme == vs).then(|| wp_core::CoreError::Io {
            context: "chaos kill/resume drill".to_string(),
            message: "injected mid-campaign kill".to_string(),
        })
    });
    let partial = killed.run_checkpointed(&experiment, checkpoint);
    if partial.failures.len() != 1 {
        return Err(format!("kill should fail exactly one job: {:?}", partial.failures));
    }

    // Torn write: chop a seeded number of bytes off the final line, as
    // a crash mid-`writeln` would.
    let text = std::fs::read_to_string(checkpoint)
        .map_err(|e| format!("checkpoint unreadable after kill: {e}"))?;
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() != jobs - 1 {
        return Err(format!("expected {} checkpoint lines, found {}", jobs - 1, lines.len()));
    }
    let last = lines[lines.len() - 1];
    let torn_bytes = 1 + rng.index(last.len());
    let keep = text.len() - 1 - torn_bytes;
    std::fs::write(checkpoint, &text.as_bytes()[..keep])
        .map_err(|e| format!("torn rewrite failed: {e}"))?;

    // Resume: the torn line is skipped (re-executed), the intact lines
    // replay from disk, and the report must match the reference byte
    // for byte.
    let resumed = Engine::with_workers(2).run_checkpointed(&experiment, checkpoint);
    if !resumed.is_complete() {
        return Err(format!("resume failed: {:?}", resumed.failures));
    }
    let replayed = resumed.stats.checkpoint_hits;
    if replayed != (jobs - 2) as u64 {
        return Err(format!("expected {} replayed jobs, got {replayed}", jobs - 2));
    }
    if checkpoint.exists() {
        return Err("checkpoint not removed after a complete resume".to_string());
    }
    if resumed.results_json().to_pretty() != reference.results_json().to_pretty() {
        return Err("resumed report diverged from the uninterrupted reference".to_string());
    }

    Ok(Json::obj([
        ("jobs", Json::from(jobs)),
        ("killed_job", Json::from(format!("{}/{}", vb.name(), vs.label()))),
        ("torn_bytes", Json::from(torn_bytes)),
        ("replayed_jobs", Json::from(replayed)),
        ("byte_identical", Json::from(true)),
    ]))
}

/// Runs the campaign and renders the blessed manifest, refusing —
/// like the perf tripwire — to bless a tree whose resilience
/// invariants do not hold.
///
/// # Errors
///
/// A description of the violated invariant(s).
pub fn build_chaos_baseline(quick: bool) -> Result<Json, String> {
    let key = crate::campaign::keys::chaos(quick, &crate::campaign::InputTags::default());
    build_chaos_baseline_with_key(quick, &key)
}

/// [`build_chaos_baseline`] with an explicit provenance task key (the
/// campaign DAG passes the key of the chaos node).
///
/// # Errors
///
/// A description of the violated invariant(s).
pub fn build_chaos_baseline_with_key(
    quick: bool,
    task_key: &wp_campaign::TaskKey,
) -> Result<Json, String> {
    let outcome = run_campaign(quick);
    if outcome.failed() {
        let mut reasons = Vec::new();
        reasons.extend(outcome.silent.iter().cloned());
        reasons.extend(outcome.undetected.iter().cloned());
        reasons.extend(outcome.overhead.iter().cloned());
        reasons.extend(outcome.errors.iter().cloned());
        if !outcome.kill_resume_ok {
            reasons.push(format!("kill/resume drill failed: {}", outcome.kill_resume.to_compact()));
        }
        return Err(format!("chaos campaign invariants violated: {}", reasons.join("; ")));
    }
    Ok(outcome.manifest_with_key(task_key))
}
