//! Engine glue for the wp-tune autotuner: runs the traced
//! full-coverage measurement, feeds the attribution into
//! [`wp_tune::predict`], drives [`wp_tune::refine`] with real engine
//! measurements, and assembles the deterministic
//! `BENCH_tuned_areas.json` manifest body.
//!
//! Kept in `wp-bench` (not `wp-tune`) because it needs the memoised
//! [`Engine`]; `wp-tune` itself stays a pure analysis crate. The
//! manifest body is returned as a [`Json`] tree so the determinism
//! test can run the whole pipeline twice in-process and compare bytes.

use wp_core::{measure_traced, MeasureOptions, Scheme};
use wp_mem::CacheGeometry;
use wp_trace::TraceRecorder;
use wp_tune::{Prediction, Refinement, TuneError, TUNED_SCHEMA};
use wp_workloads::{Benchmark, InputSet};

use crate::engine::Engine;
use crate::Json;

/// Everything the tuner learned about one benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkTuning {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The model sweep over the grid and its predicted knee.
    pub prediction: Prediction,
    /// The bounded measured search seeded at the predicted knee.
    pub refinement: Refinement,
    /// The area the tuner chose (the measured knee), bytes.
    pub chosen_area_bytes: u32,
    /// Predicted I-cache energy at the chosen area, pJ.
    pub predicted_pj: f64,
    /// Measured I-cache energy at the chosen area, pJ.
    pub measured_pj: f64,
}

impl BenchmarkTuning {
    /// Predicted-over-measured energy at the chosen area (idle-run
    /// [`wp_energy::ratio`] semantics) — the manifest's headline
    /// model-quality figure.
    #[must_use]
    pub fn predicted_measured_ratio(&self) -> f64 {
        wp_energy::ratio(self.predicted_pj, self.measured_pj)
    }

    /// One manifest row. `pub(crate)` so a campaign tune node can
    /// publish exactly the bytes the tuned manifest will embed.
    pub(crate) fn json(&self) -> Json {
        let chosen = self.refinement.chosen_index;
        Json::obj([
            ("benchmark", Json::from(self.benchmark.name())),
            ("chosen_area_bytes", Json::from(self.chosen_area_bytes)),
            ("chosen_index", Json::from(chosen)),
            (
                "predicted_knee_area_bytes",
                Json::from(self.prediction.candidates[self.prediction.knee_index].area_bytes),
            ),
            ("predicted_pj", Json::from(self.predicted_pj)),
            ("measured_pj", Json::from(self.measured_pj)),
            ("predicted_measured_ratio", Json::from(self.predicted_measured_ratio())),
            (
                "covered_fetch_share",
                Json::from(self.prediction.candidates[chosen].covered_fetch_share),
            ),
            (
                "prediction",
                Json::arr(self.prediction.candidates.iter().map(|c| {
                    Json::obj([
                        ("area_bytes", Json::from(c.area_bytes)),
                        ("covered_fetch_share", Json::from(c.covered_fetch_share)),
                        ("energy_pj", Json::from(c.energy_pj)),
                    ])
                })),
            ),
            (
                "search",
                Json::arr(self.refinement.steps.iter().map(|s| {
                    Json::obj([
                        ("area_bytes", Json::from(s.area_bytes)),
                        ("energy_pj", Json::from(s.energy)),
                    ])
                })),
            ),
            ("measurements", Json::from(self.refinement.steps.len())),
        ])
    }
}

fn measure_error(benchmark: Benchmark, error: &dyn std::fmt::Display) -> TuneError {
    TuneError::Measure { message: format!("{}: {error}", benchmark.name()) }
}

/// Tunes one benchmark: one traced run at full coverage (the largest
/// grid area), a model sweep over the whole grid, then the bounded
/// measured refinement.
///
/// # Errors
///
/// [`TuneError::Measure`] wrapping any engine failure, plus
/// everything [`wp_tune::predict`] / [`wp_tune::refine`] raise.
pub fn tune_benchmark(
    benchmark: Benchmark,
    icache: CacheGeometry,
    grid: &[u32],
    tolerance: f64,
    set: InputSet,
) -> Result<BenchmarkTuning, TuneError> {
    tune_benchmark_on(Engine::global(), benchmark, icache, grid, tolerance, set)
}

/// [`tune_benchmark`] on an explicit engine, so a campaign tune node
/// runs on the campaign's own pool instead of the process-global one.
pub(crate) fn tune_benchmark_on(
    engine: &Engine,
    benchmark: Benchmark,
    icache: CacheGeometry,
    grid: &[u32],
    tolerance: f64,
    set: InputSet,
) -> Result<BenchmarkTuning, TuneError> {
    let full = *grid.first().ok_or(TuneError::EmptyGrid)?;
    let workbench = engine.workbench(benchmark).map_err(|e| measure_error(benchmark, &e))?;

    // One traced run at full coverage: every chain's measured tag cost
    // is its covered cost, which is what the prediction extrapolates.
    let scheme = Scheme::WayPlacement { area_bytes: full };
    let map = workbench
        .link(scheme.layout(), set)
        .map_err(|e| measure_error(benchmark, &e))?
        .layout_map();
    let mut recorder = TraceRecorder::new().with_layout(map.clone());
    measure_traced(&workbench, icache, scheme, MeasureOptions::new(set), &mut recorder)
        .map_err(|e| measure_error(benchmark, &e))?;
    let attribution = recorder.attribution().ok_or(TuneError::EmptyAttribution)?;

    let prediction = wp_tune::predict(&map, attribution, icache, grid, tolerance)?;
    let refinement = wp_tune::refine(grid, prediction.knee_index, tolerance, |area_bytes| {
        engine
            .measure(benchmark, icache, Scheme::WayPlacement { area_bytes }, set)
            .map(|m| m.energy.icache.total_pj())
            .map_err(|e| measure_error(benchmark, &e))
    })?;

    Ok(BenchmarkTuning {
        benchmark,
        chosen_area_bytes: grid[refinement.chosen_index],
        predicted_pj: prediction.candidates[refinement.chosen_index].energy_pj,
        measured_pj: refinement.chosen_energy,
        prediction,
        refinement,
    })
}

/// Tunes a set of benchmarks and assembles the
/// `BENCH_tuned_areas.json` manifest body. Fully deterministic: two
/// calls with the same inputs render byte-identical text.
///
/// # Errors
///
/// The first per-benchmark failure aborts the suite (tuning is cheap
/// and its output gates CI, so partial manifests are worth less than a
/// loud failure).
pub fn tune_suite(
    benchmarks: &[Benchmark],
    icache: CacheGeometry,
    grid: &[u32],
    tolerance: f64,
    set: InputSet,
) -> Result<(Vec<BenchmarkTuning>, Json), TuneError> {
    let tunings = benchmarks
        .iter()
        .map(|&benchmark| tune_benchmark(benchmark, icache, grid, tolerance, set))
        .collect::<Result<Vec<BenchmarkTuning>, TuneError>>()?;
    let task_key = crate::campaign::keys::tuned_manifest(
        benchmarks,
        icache,
        grid,
        tolerance,
        set,
        &crate::campaign::InputTags::default(),
    );
    let rows = tunings.iter().map(BenchmarkTuning::json).collect();
    let manifest = tuned_manifest_from(rows, icache, grid, tolerance, set, &task_key);
    Ok((tunings, manifest))
}

/// Assembles the `tuned_areas/v1` manifest body from already-rendered
/// per-benchmark tuning rows. Split from [`tune_suite`] so a campaign
/// manifest node can build byte-identical output from stored tune
/// payloads; `task_key` lands in a trailing provenance block
/// (display-only — `fig5 --areas` and the diff gate ignore it).
#[must_use]
pub fn tuned_manifest_from(
    rows: Vec<Json>,
    icache: CacheGeometry,
    grid: &[u32],
    tolerance: f64,
    set: InputSet,
    task_key: &wp_campaign::TaskKey,
) -> Json {
    Json::obj([
        ("schema", Json::from(TUNED_SCHEMA)),
        ("tolerance", Json::from(tolerance)),
        ("geometry", Json::from(icache.to_string())),
        (
            "input_set",
            Json::from(match set {
                InputSet::Small => "small",
                InputSet::Large => "large",
            }),
        ),
        ("grid", Json::arr(grid.iter().map(|&a| Json::from(a)))),
        ("benchmarks", Json::Arr(rows)),
        ("provenance", Json::obj([("task_key", Json::from(task_key.hex().as_str()))])),
    ])
}
