//! Criterion microbenchmarks of the raw cache models: per-fetch cost
//! of each scheme's access path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wp_core::wp_mem::{CacheGeometry, ICacheConfig, InstructionCache};

fn bench_fetch_paths(c: &mut Criterion) {
    let geom = CacheGeometry::xscale_icache();
    // A synthetic fetch trace: a loop over 4 KB of code with a call out
    // to a second region every 16 fetches.
    let trace: Vec<u32> = (0..4096u32)
        .map(|i| if i % 16 == 15 { 0x2_0000 + (i % 64) * 4 } else { 0x8000 + (i * 4) % 4096 })
        .collect();
    let mut group = c.benchmark_group("icache-fetch");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (label, config, wp) in [
        ("baseline", ICacheConfig::baseline(geom), false),
        ("way-placement", ICacheConfig::way_placement(geom), true),
        ("way-memoization", ICacheConfig::way_memoization(geom), false),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| {
                let mut cache = InstructionCache::new(*config);
                let mut hits = 0u64;
                for &addr in &trace {
                    if cache.fetch(addr, wp && addr < 0x8000 + 32 * 1024).hit {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fetch_paths);
criterion_main!(benches);
