//! Microbenchmarks of the raw cache models: per-fetch cost of each
//! scheme's access path.

use wp_bench::timing::bench_throughput;
use wp_core::wp_mem::{CacheGeometry, ICacheConfig, InstructionCache};

fn main() {
    let geom = CacheGeometry::xscale_icache();
    // A synthetic fetch trace: a loop over 4 KB of code with a call out
    // to a second region every 16 fetches.
    let trace: Vec<u32> = (0..4096u32)
        .map(|i| if i % 16 == 15 { 0x2_0000 + (i % 64) * 4 } else { 0x8000 + (i * 4) % 4096 })
        .collect();
    for (label, config, wp) in [
        ("baseline", ICacheConfig::baseline(geom), false),
        ("way-placement", ICacheConfig::way_placement(geom), true),
        ("way-memoization", ICacheConfig::way_memoization(geom), false),
    ] {
        bench_throughput(&format!("icache-fetch/{label}"), 3, 30, trace.len() as u64, || {
            let mut cache = InstructionCache::new(config);
            let mut hits = 0u64;
            for &addr in &trace {
                if cache.fetch(addr, wp && addr < 0x8000 + 32 * 1024).hit {
                    hits += 1;
                }
            }
            hits
        });
    }
}
