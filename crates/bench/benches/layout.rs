//! Microbenchmarks of the link-time rewriter: full relinks (merge,
//! ICFG, chains, layout, relocation) under each layout.

use wp_bench::timing::bench_loop;
use wp_core::wp_linker::Layout;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::Workbench;

fn main() {
    let workbench = Workbench::new(Benchmark::Sha).expect("workbench");

    for layout in [Layout::Natural, Layout::WayPlacement, Layout::Random(7), Layout::Pessimal] {
        bench_loop(&format!("relink-sha-large/{}", layout.label()), 3, 20, || {
            workbench.link(layout, InputSet::Large).expect("link")
        });
    }

    bench_loop("assemble-sha", 1, 10, || Benchmark::Sha.modules(InputSet::Small));
}
