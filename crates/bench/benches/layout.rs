//! Criterion microbenchmarks of the link-time rewriter: full relinks
//! (merge, ICFG, chains, layout, relocation) under each layout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wp_core::wp_linker::Layout;
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::Workbench;

fn bench_linker(c: &mut Criterion) {
    let workbench = Workbench::new(Benchmark::Sha).expect("workbench");

    let mut group = c.benchmark_group("relink-sha-large");
    group.sample_size(20);
    for layout in [Layout::Natural, Layout::WayPlacement, Layout::Random(7), Layout::Pessimal] {
        group.bench_with_input(
            BenchmarkId::from_parameter(layout.label()),
            &layout,
            |b, &layout| b.iter(|| workbench.link(layout, InputSet::Large).expect("link")),
        );
    }
    group.finish();

    c.bench_function("assemble-sha", |b| {
        b.iter(|| Benchmark::Sha.modules(InputSet::Small))
    });
}

criterion_group!(benches, bench_linker);
criterion_main!(benches);
