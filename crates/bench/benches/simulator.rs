//! Criterion microbenchmarks of the simulator itself: how fast the
//! substrate executes guest instructions under each fetch scheme.
//! (Simulator throughput, not guest performance — the experiment
//! binaries measure the latter.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wp_core::wp_linker::{Layout, Linker, Profile};
use wp_core::wp_mem::{CacheGeometry, MemoryConfig};
use wp_core::wp_sim::{simulate, SimConfig};
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::Scheme;

fn bench_schemes(c: &mut Criterion) {
    let image = Linker::new()
        .with_modules(Benchmark::Crc.modules(InputSet::Small))
        .link(Layout::Natural, &Profile::empty())
        .expect("link")
        .image;
    let geom = CacheGeometry::xscale_icache();
    let baseline = simulate(&image, &SimConfig::new(MemoryConfig::baseline(geom)))
        .expect("baseline run");
    let mut group = c.benchmark_group("simulate-crc-small");
    group.throughput(Throughput::Elements(baseline.instructions));
    group.sample_size(10);
    for scheme in [
        Scheme::Baseline,
        Scheme::WayPlacement { area_bytes: 32 * 1024 },
        Scheme::WayMemoization,
    ] {
        let config = SimConfig::new(scheme.memory_config(geom));
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &config,
            |b, config| b.iter(|| simulate(&image, config).expect("run")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
