//! Microbenchmarks of the simulator itself: how fast the substrate
//! executes guest instructions under each fetch scheme. (Simulator
//! throughput, not guest performance — the experiment binaries measure
//! the latter.)

use wp_bench::timing::bench_throughput;
use wp_core::wp_linker::{Layout, Linker, Profile};
use wp_core::wp_mem::{CacheGeometry, MemoryConfig};
use wp_core::wp_sim::{simulate, SimConfig};
use wp_core::wp_workloads::{Benchmark, InputSet};
use wp_core::Scheme;

fn main() {
    let image = Linker::new()
        .with_modules(Benchmark::Crc.modules(InputSet::Small))
        .link(Layout::Natural, &Profile::empty())
        .expect("link")
        .image;
    let geom = CacheGeometry::xscale_icache();
    let baseline =
        simulate(&image, &SimConfig::new(MemoryConfig::baseline(geom))).expect("baseline run");
    println!("simulate-crc-small ({} guest instructions per iteration)", baseline.instructions);
    for scheme in
        [Scheme::Baseline, Scheme::WayPlacement { area_bytes: 32 * 1024 }, Scheme::WayMemoization]
    {
        let config = SimConfig::new(scheme.memory_config(geom));
        bench_throughput(
            &format!("simulate-crc-small/{}", scheme.label()),
            2,
            10,
            baseline.instructions,
            || simulate(&image, &config).expect("run"),
        );
    }
}
