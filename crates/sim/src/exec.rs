//! Functional execution: one architectural step of the guest core.

use std::error::Error;
use std::fmt;

use wp_isa::alu::alu_compute;
use wp_isa::{AddrMode, Flags, Insn, MemOffset, MemWidth, MulOp, Op, Operand, Reg, ShiftAmount};

use crate::machine::{Machine, MemFault};

/// Errors the functional core can raise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// A data access faulted.
    Mem(MemFault),
    /// The program counter was used as a data operand (unsupported in
    /// this ISA; see `wp-isa` docs).
    PcOperand {
        /// Address of the offending instruction.
        addr: u32,
    },
    /// Control flow left the text section.
    WildJump {
        /// The bad target.
        target: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Mem(fault) => fault.fmt(f),
            ExecError::PcOperand { addr } => {
                write!(f, "pc used as data operand at {addr:#010x}")
            }
            ExecError::WildJump { target } => {
                write!(f, "control flow left text: {target:#010x}")
            }
        }
    }
}

impl Error for ExecError {}

impl From<MemFault> for ExecError {
    fn from(fault: MemFault) -> ExecError {
        ExecError::Mem(fault)
    }
}

/// Instruction class, for issue latency modelling.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsnClass {
    /// Simple ALU operation.
    Alu,
    /// ALU with a register-specified shift (extra issue cycle on ARM).
    AluRegShift,
    /// Multiply / multiply-accumulate (the MAC unit).
    Mul,
    /// Load.
    Load,
    /// Store.
    Store,
    /// Block transfer of `n` registers.
    Block(u8),
    /// Branch-class (b/bl/bx/swi).
    Branch,
    /// Nop or predicated-false instruction.
    Nop,
}

/// What one step did, for the timing model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Step {
    /// The instruction's timing class.
    pub class: InsnClass,
    /// Control-flow outcome.
    pub control: Control,
    /// Data accesses performed (push/pop make several), as
    /// `(address, is_write)`; only the first `mem_len` entries are valid.
    pub mem: [(u32, bool); 16],
    /// Number of valid entries in `mem`.
    pub mem_len: u8,
    /// Destination register whose result has non-unit latency (loads,
    /// multiplies), if any.
    pub slow_dest: Option<Reg>,
}

/// Control-flow outcome of a step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Control {
    /// Fall through to `pc + 4`.
    Next,
    /// A branch, taken or not (not-taken conditional branches still
    /// matter to the BTB model).
    Branch {
        /// Whether it redirected fetch.
        taken: bool,
        /// The target when taken.
        target: u32,
    },
    /// A system call; the simulator interprets `number` and `arg`.
    Syscall {
        /// The `swi` immediate.
        number: u32,
        /// The guest's `r0`.
        arg: u32,
    },
}

impl Step {
    fn simple(class: InsnClass) -> Step {
        Step { class, control: Control::Next, mem: [(0, false); 16], mem_len: 0, slow_dest: None }
    }

    /// Iterates over the data accesses this step performed.
    pub fn mem_accesses(&self) -> impl Iterator<Item = (u32, bool)> + '_ {
        self.mem[..self.mem_len as usize].iter().copied()
    }

    fn push_mem(&mut self, addr: u32, write: bool) {
        self.mem[self.mem_len as usize] = (addr, write);
        self.mem_len += 1;
    }
}

fn reg_value(machine: &Machine, reg: Reg, addr: u32) -> Result<u32, ExecError> {
    if reg.is_pc() {
        return Err(ExecError::PcOperand { addr });
    }
    Ok(machine.reg(reg))
}

/// Evaluates a flexible second operand; returns `(value, shifter_carry)`.
fn operand2(machine: &Machine, op2: Operand, addr: u32) -> Result<(u32, bool), ExecError> {
    let flags = machine.flags;
    match op2 {
        Operand::Imm(value) => Ok((value, flags.c)),
        Operand::Reg { rm, kind, amount } => {
            let base = reg_value(machine, rm, addr)?;
            let amount = match amount {
                ShiftAmount::Imm(n) => u32::from(n),
                ShiftAmount::Reg(rs) => reg_value(machine, rs, addr)? & 0xff,
            };
            Ok(kind.apply(base, amount, flags.c))
        }
    }
}

/// Executes `insn` (already fetched from `addr`), updating the machine.
/// `machine.pc` is advanced or redirected by the caller based on the
/// returned [`Control`].
///
/// # Errors
///
/// Returns [`ExecError`] for data faults or architecture-violating
/// operand use.
pub fn step(machine: &mut Machine, insn: Insn, addr: u32) -> Result<Step, ExecError> {
    if !insn.cond.holds(machine.flags) {
        // Predicated false: fetched and decoded but architecturally a
        // bubble-free nop.
        return Ok(Step::simple(InsnClass::Nop));
    }
    match insn.op {
        Op::Nop => Ok(Step::simple(InsnClass::Nop)),
        Op::Alu { op, s, rd, rn, op2 } => {
            let rn_value = if op.has_rn() { reg_value(machine, rn, addr)? } else { 0 };
            let (op2_value, shifter_carry) = operand2(machine, op2, addr)?;
            let outcome = alu_compute(op, rn_value, op2_value, shifter_carry, machine.flags);
            if s || op.is_compare() {
                machine.flags = outcome.flags;
            }
            if op.has_rd() {
                if rd.is_pc() {
                    return Err(ExecError::PcOperand { addr });
                }
                machine.set_reg(rd, outcome.result);
            }
            let class = match op2 {
                Operand::Reg { amount: ShiftAmount::Reg(_), .. } => InsnClass::AluRegShift,
                _ => InsnClass::Alu,
            };
            Ok(Step::simple(class))
        }
        Op::Mul { op, s, rd, ra, rm, rs } => {
            let rm_value = reg_value(machine, rm, addr)?;
            let rs_value = reg_value(machine, rs, addr)?;
            if rd.is_pc() || ra.is_pc() {
                return Err(ExecError::PcOperand { addr });
            }
            let mut flags = machine.flags;
            match op {
                MulOp::Mul => {
                    let result = rm_value.wrapping_mul(rs_value);
                    machine.set_reg(rd, result);
                    flags.n = (result as i32) < 0;
                    flags.z = result == 0;
                }
                MulOp::Mla => {
                    let acc = reg_value(machine, ra, addr)?;
                    let result = rm_value.wrapping_mul(rs_value).wrapping_add(acc);
                    machine.set_reg(rd, result);
                    flags.n = (result as i32) < 0;
                    flags.z = result == 0;
                }
                MulOp::Umull => {
                    let result = u64::from(rm_value) * u64::from(rs_value);
                    machine.set_reg(rd, result as u32);
                    machine.set_reg(ra, (result >> 32) as u32);
                    flags.n = (result as i64) < 0;
                    flags.z = result == 0;
                }
                MulOp::Smull => {
                    let result = i64::from(rm_value as i32) * i64::from(rs_value as i32);
                    machine.set_reg(rd, result as u32);
                    machine.set_reg(ra, (result >> 32) as u32);
                    flags.n = result < 0;
                    flags.z = result == 0;
                }
            }
            if s {
                machine.flags = Flags { c: machine.flags.c, v: machine.flags.v, ..flags };
            }
            let mut step = Step::simple(InsnClass::Mul);
            step.slow_dest = Some(rd);
            Ok(step)
        }
        Op::Mov16 { top, rd, imm } => {
            if rd.is_pc() {
                return Err(ExecError::PcOperand { addr });
            }
            let value = if top {
                (machine.reg(rd) & 0xffff) | (u32::from(imm) << 16)
            } else {
                u32::from(imm)
            };
            machine.set_reg(rd, value);
            Ok(Step::simple(InsnClass::Alu))
        }
        Op::Mem { load, width, signed, rd, addr: mem_addr } => {
            if rd.is_pc() {
                return Err(ExecError::PcOperand { addr });
            }
            let base = reg_value(machine, mem_addr.base, addr)?;
            let offset_value: i64 = match mem_addr.offset {
                MemOffset::Imm(v) => i64::from(v),
                MemOffset::Reg { rm, kind, amount, add } => {
                    let raw = reg_value(machine, rm, addr)?;
                    let (value, _) = kind.apply(raw, u32::from(amount), machine.flags.c);
                    if add {
                        i64::from(value)
                    } else {
                        -i64::from(value)
                    }
                }
            };
            let indexed = (i64::from(base) + offset_value) as u32;
            let ea = match mem_addr.mode {
                AddrMode::Offset | AddrMode::PreIndex => indexed,
                AddrMode::PostIndex => base,
            };
            if mem_addr.mode != AddrMode::Offset {
                if mem_addr.base.is_pc() {
                    return Err(ExecError::PcOperand { addr });
                }
                machine.set_reg(mem_addr.base, indexed);
            }
            let mut step = Step::simple(if load { InsnClass::Load } else { InsnClass::Store });
            step.push_mem(ea, !load);
            if load {
                let value = match (width, signed) {
                    (MemWidth::Word, _) => machine.read_word(ea)?,
                    (MemWidth::Byte, false) => u32::from(machine.read_byte(ea)?),
                    (MemWidth::Byte, true) => machine.read_byte(ea)? as i8 as i32 as u32,
                    (MemWidth::Half, false) => u32::from(machine.read_half(ea)?),
                    (MemWidth::Half, true) => machine.read_half(ea)? as i16 as i32 as u32,
                };
                machine.set_reg(rd, value);
                step.slow_dest = Some(rd);
            } else {
                let value = machine.reg(rd);
                match width {
                    MemWidth::Word => machine.write_word(ea, value)?,
                    MemWidth::Byte => machine.write_byte(ea, value as u8)?,
                    MemWidth::Half => machine.write_half(ea, value as u16)?,
                }
            }
            Ok(step)
        }
        Op::Push { list } => {
            let count = list.len() as u32;
            let new_sp = machine.reg(Reg::SP).wrapping_sub(4 * count);
            let mut step = Step::simple(InsnClass::Block(count as u8));
            for (i, reg) in list.iter().enumerate() {
                let slot = new_sp.wrapping_add(4 * i as u32);
                machine.write_word(slot, machine.reg(reg))?;
                step.push_mem(slot, true);
            }
            machine.set_reg(Reg::SP, new_sp);
            Ok(step)
        }
        Op::Pop { list } => {
            let sp = machine.reg(Reg::SP);
            let mut step = Step::simple(InsnClass::Block(list.len() as u8));
            let mut target = None;
            for (i, reg) in list.iter().enumerate() {
                let slot = sp.wrapping_add(4 * i as u32);
                let value = machine.read_word(slot)?;
                step.push_mem(slot, false);
                if reg.is_pc() {
                    target = Some(value);
                } else {
                    machine.set_reg(reg, value);
                }
            }
            machine.set_reg(Reg::SP, sp.wrapping_add(4 * list.len() as u32));
            if let Some(target) = target {
                step.control = Control::Branch { taken: true, target };
                step.class = InsnClass::Branch;
            }
            Ok(step)
        }
        Op::Branch { link, offset } => {
            let target = addr.wrapping_add(4).wrapping_add((offset as u32) << 2);
            if link {
                machine.set_reg(Reg::LR, addr.wrapping_add(4));
            }
            let mut step = Step::simple(InsnClass::Branch);
            step.control = Control::Branch { taken: true, target };
            Ok(step)
        }
        Op::BranchReg { rm } => {
            let target = reg_value(machine, rm, addr)? & !3;
            let mut step = Step::simple(InsnClass::Branch);
            step.control = Control::Branch { taken: true, target };
            Ok(step)
        }
        Op::Swi { imm } => {
            let mut step = Step::simple(InsnClass::Branch);
            step.control = Control::Syscall { number: imm, arg: machine.reg(Reg::R0) };
            Ok(step)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_isa::{assemble, Image};
    use wp_linker::{Layout, Linker, Profile};

    fn machine_for(src: &str) -> (Machine, Image) {
        let module = assemble("t", src).expect("asm");
        let out = Linker::new()
            .with_module(module)
            .link(Layout::Natural, &Profile::empty())
            .expect("link");
        (Machine::boot(&out.image), out.image)
    }

    fn run_straight(machine: &mut Machine, image: &Image, count: usize) {
        for _ in 0..count {
            let idx = image.text_index(machine.pc).expect("in text");
            let insn = image.text[idx];
            let step = step(machine, insn, machine.pc).expect("step");
            match step.control {
                Control::Next => machine.pc += 4,
                Control::Branch { taken: true, target } => machine.pc = target,
                Control::Branch { .. } => machine.pc += 4,
                Control::Syscall { .. } => break,
            }
        }
    }

    #[test]
    fn arithmetic_and_flags() {
        let (mut m, image) = machine_for(
            "_start:
                mov r0, #10
                subs r1, r0, #10
                moveq r2, #1
                movne r2, #2
                swi #0",
        );
        run_straight(&mut m, &image, 10);
        assert_eq!(m.reg(Reg::R1), 0);
        assert_eq!(m.reg(Reg::R2), 1, "eq path taken");
        assert!(m.flags.z);
    }

    #[test]
    fn loop_counts() {
        let (mut m, image) = machine_for(
            "_start:
                mov r0, #0
                mov r1, #7
            .Ll: add r0, r0, #3
                subs r1, r1, #1
                bne .Ll
                swi #0",
        );
        run_straight(&mut m, &image, 100);
        assert_eq!(m.reg(Reg::R0), 21);
    }

    #[test]
    fn memory_addressing_modes() {
        let (mut m, image) = machine_for(
            "_start:
                ldr r0, =buf
                mov r1, #0x11
                str r1, [r0]
                str r1, [r0, #4]!
                mov r2, #0x22
                str r2, [r0], #4
                ldr r3, [r0, #-8]
                ldrb r4, [r0, #-8]
                swi #0
            .data
            buf: .space 32",
        );
        run_straight(&mut m, &image, 20);
        let buf = image.symbol("buf").unwrap();
        assert_eq!(m.read_word(buf).unwrap(), 0x11);
        assert_eq!(m.read_word(buf + 4).unwrap(), 0x22, "pre-index + store");
        assert_eq!(m.reg(Reg::R0), buf + 8, "post-index writeback");
        assert_eq!(m.reg(Reg::R3), 0x11);
        assert_eq!(m.reg(Reg::R4), 0x11);
    }

    #[test]
    fn signed_loads() {
        let (mut m, image) = machine_for(
            "_start:
                ldr r0, =buf
                mvn r1, #0          ; 0xffffffff
                strb r1, [r0]
                strh r1, [r0, #2]
                ldrsb r2, [r0]
                ldrb r3, [r0]
                ldrsh r4, [r0, #2]
                swi #0
            .data
            buf: .space 8",
        );
        run_straight(&mut m, &image, 20);
        assert_eq!(m.reg(Reg::R2), 0xffff_ffff, "sign-extended byte");
        assert_eq!(m.reg(Reg::R3), 0xff);
        assert_eq!(m.reg(Reg::R4), 0xffff_ffff, "sign-extended half");
    }

    #[test]
    fn multiply_family() {
        let (mut m, image) = machine_for(
            "_start:
                mov r0, #100
                mov r1, #200
                mul r2, r0, r1
                mla r3, r0, r1, r0
                mvn r4, #0
                umull r5, r6, r4, r4
                smull r7, r8, r4, r4
                swi #0",
        );
        run_straight(&mut m, &image, 20);
        assert_eq!(m.reg(Reg::R2), 20_000);
        assert_eq!(m.reg(Reg::R3), 20_100);
        // 0xffffffff^2 = 0xfffffffe_00000001 unsigned
        assert_eq!(m.reg(Reg::R5), 1);
        assert_eq!(m.reg(Reg::R6), 0xffff_fffe);
        // (-1)^2 = 1 signed
        assert_eq!(m.reg(Reg::R7), 1);
        assert_eq!(m.reg(Reg::R8), 0);
    }

    #[test]
    fn calls_and_stack() {
        let (mut m, image) = machine_for(
            "_start:
                mov r0, #5
                bl double
                mov r4, r0
                bl double
                swi #0
            double:
                push {r5, lr}
                mov r5, r0
                add r0, r5, r5
                pop {r5, pc}",
        );
        run_straight(&mut m, &image, 50);
        assert_eq!(m.reg(Reg::R4), 10);
        assert_eq!(m.reg(Reg::R0), 20);
        assert_eq!(m.reg(Reg::SP), Image::STACK_TOP, "stack balanced");
    }

    #[test]
    fn barrel_shifter_operands() {
        let (mut m, image) = machine_for(
            "_start:
                mov r0, #1
                mov r1, r0, lsl #8
                mov r2, #3
                mov r3, r1, lsr r2
                add r4, r1, r1, asr #4
                swi #0",
        );
        run_straight(&mut m, &image, 20);
        assert_eq!(m.reg(Reg::R1), 256);
        assert_eq!(m.reg(Reg::R3), 32);
        assert_eq!(m.reg(Reg::R4), 256 + 16);
    }

    #[test]
    fn pc_operand_is_rejected() {
        let (mut m, _image) = machine_for("_start: swi #0");
        let bad = Insn::always(Op::Alu {
            op: wp_isa::AluOp::Add,
            s: false,
            rd: Reg::R0,
            rn: Reg::PC,
            op2: Operand::Imm(0),
        });
        let err = step(&mut m, bad, 0x8000).unwrap_err();
        assert!(matches!(err, ExecError::PcOperand { addr: 0x8000 }));
    }

    #[test]
    fn syscall_surfaces_number_and_arg() {
        let (mut m, image) = machine_for("_start: mov r0, #42\nswi #2");
        run_straight(&mut m, &image, 1);
        let idx = image.text_index(m.pc).unwrap();
        let pc = m.pc;
        let s = step(&mut m, image.text[idx], pc).unwrap();
        assert_eq!(s.control, Control::Syscall { number: 2, arg: 42 });
    }
}
