//! # wp-sim — the XTREM-like cycle simulator
//!
//! A functional + timing simulator of an Intel XScale-class embedded
//! core, the measurement substrate of the *compiler way-placement*
//! reproduction (Jones et al., DATE 2008). It executes [`wp_isa::Image`]
//! guests exactly and models time as the paper's Table 1 machine does:
//!
//! * single issue, in order, with a scoreboard (out-of-order
//!   completion): load-use and multiply interlocks stall;
//! * a 7/8-stage front end whose taken-branch penalty is hidden by a
//!   direct-mapped BTB once warm;
//! * instruction fetch through the `wp-mem` I-TLB + I-cache pair — so
//!   way-placement's hint-misprediction cycles and every cache-miss
//!   stall land in the cycle count;
//! * blocking data cache with write-back/write-allocate timing.
//!
//! Guests communicate results over three syscalls ([`syscall`]): `exit`,
//! `putc` and `report`, the last feeding an order-sensitive checksum
//! that the workload suite uses to verify architectural correctness on
//! every configuration (if a cache model corrupted execution, the
//! checksum would change — a property the integration tests lean on).
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use wp_mem::{CacheGeometry, MemoryConfig};
//! use wp_sim::{simulate, SimConfig};
//! use wp_linker::{Layout, Linker, Profile};
//!
//! let module = wp_isa::assemble(
//!     "fib",
//!     "
//!     _start:
//!         mov r1, #0
//!         mov r2, #1
//!         mov r4, #10
//!     .Lloop:
//!         add r3, r1, r2
//!         mov r1, r2
//!         mov r2, r3
//!         subs r4, r4, #1
//!         bne .Lloop
//!         mov r0, r1
//!         swi #2          ; report fib(10)
//!         mov r0, #0
//!         swi #0
//!     ",
//! )?;
//! let image = Linker::new().with_module(module)
//!     .link(Layout::Natural, &Profile::empty())?.image;
//! let result = simulate(
//!     &image,
//!     &SimConfig::new(MemoryConfig::baseline(CacheGeometry::xscale_icache())),
//! )?;
//! assert_eq!(result.exit_code, 0);
//! assert!(result.cpi() >= 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod degrade;
mod exec;
mod machine;
mod simulator;

pub use degrade::{DegradationController, DegradationPolicy, SchemeTransition};
pub use exec::{Control, ExecError, InsnClass, Step};
pub use machine::{Machine, MemFault, MEMORY_BYTES};
pub use simulator::{
    checksum_of, simulate, simulate_traced, syscall, RunResult, SimConfig, SimError,
};
// Sink vocabulary for `simulate_traced` callers.
pub use wp_trace::{NullSink, TraceSink};
