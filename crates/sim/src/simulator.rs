//! The timing simulator: an XScale-class, single-issue, in-order core
//! with a scoreboard (out-of-order completion, in-order issue), a
//! branch target buffer and the `wp-mem` memory hierarchy.
//!
//! The model follows XTREM's level of abstraction: architectural
//! execution is exact; timing is modelled per instruction as
//! fetch stalls + scoreboard stalls + unit latency + memory stalls +
//! branch penalties. Way-placement's only timing effect — the
//! way-hint misprediction cycle — flows in through the I-cache model.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use wp_isa::{Image, Insn, Reg};
use wp_mem::{
    DCacheStats, DetectionStats, FaultStats, FetchScheme, FetchStats, MemoryConfig, MemorySystem,
    TlbStats,
};
use wp_trace::{FetchCounters, IntervalSample, NullSink, TraceSink};

use crate::degrade::{DegradationController, DegradationPolicy};
use crate::exec::{step, Control, ExecError, InsnClass};
use crate::machine::Machine;

/// Guest system-call numbers.
pub mod syscall {
    /// Terminate; `r0` is the exit code.
    pub const EXIT: u32 = 0;
    /// Write the low byte of `r0` to the output stream.
    pub const PUTC: u32 = 1;
    /// Mix `r0` into the architectural checksum (the workloads'
    /// result-verification channel).
    pub const REPORT: u32 = 2;
}

/// Simulator configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimConfig {
    /// The memory hierarchy.
    pub mem: MemoryConfig,
    /// Abort after this many instructions (guards runaway guests).
    pub max_instructions: u64,
    /// Collect per-instruction execution counts (profiling runs).
    pub collect_profile: bool,
    /// Branch target buffer entries (direct-mapped); 0 disables it.
    pub btb_entries: u32,
    /// Pipeline refill penalty for a mispredicted/unbuffered taken
    /// branch (the XScale's ~4-cycle front end).
    pub branch_penalty: u32,
    /// Extra result latency of a load (load-use delay).
    pub load_latency: u32,
    /// Extra result latency of a multiply.
    pub mul_latency: u32,
    /// Wall-clock watchdog: abort with [`SimError::Timeout`] once the
    /// run has been executing this long (`None` disables it). Checked
    /// every few thousand instructions, so overshoot is bounded.
    pub time_limit: Option<Duration>,
    /// Graceful scheme degradation: when set (and the memory config
    /// arms detection), a [`DegradationController`] samples the
    /// windowed detected-fault rate and walks the fetch scheme down
    /// to less speculative rungs under sustained faults.
    pub degradation: Option<DegradationPolicy>,
}

impl SimConfig {
    /// A configuration around a memory hierarchy, with Table-1-style
    /// core parameters.
    #[must_use]
    pub fn new(mem: MemoryConfig) -> SimConfig {
        SimConfig {
            mem,
            max_instructions: 2_000_000_000,
            collect_profile: false,
            btb_entries: 128,
            branch_penalty: 4,
            load_latency: 2,
            mul_latency: 2,
            time_limit: None,
            degradation: None,
        }
    }

    /// Enables per-instruction profiling.
    #[must_use]
    pub fn with_profile(mut self) -> SimConfig {
        self.collect_profile = true;
        self
    }

    /// Arms the wall-clock watchdog.
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> SimConfig {
        self.time_limit = Some(limit);
        self
    }

    /// Arms graceful scheme degradation (and, implicitly, the fetch
    /// core's fault-detection checks it feeds on).
    #[must_use]
    pub fn with_degradation(mut self, policy: DegradationPolicy) -> SimConfig {
        self.degradation = Some(policy);
        self.mem.detection = true;
        self
    }
}

/// Errors a simulation can end with.
#[derive(Clone, Debug)]
pub enum SimError {
    /// The guest executed an architecture violation.
    Exec(ExecError),
    /// The instruction budget ran out.
    InstructionLimit(u64),
    /// The guest invoked an unknown system call.
    UnknownSyscall {
        /// The `swi` immediate.
        number: u32,
        /// Where.
        addr: u32,
    },
    /// Fetch left the text section.
    FetchOutOfText {
        /// The bad PC.
        pc: u32,
    },
    /// The wall-clock watchdog fired: the run exceeded its time limit.
    Timeout {
        /// The configured limit.
        limit: Duration,
    },
}

impl SimError {
    /// Whether the error is *transient* — caused by host-side
    /// conditions (a loaded machine tripping the watchdog) rather than
    /// the guest or the model, so retrying can succeed. Architectural
    /// violations and budget overruns are deterministic and permanent.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::Timeout { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec(e) => e.fmt(f),
            SimError::InstructionLimit(n) => write!(f, "instruction limit {n} exceeded"),
            SimError::UnknownSyscall { number, addr } => {
                write!(f, "unknown syscall {number} at {addr:#010x}")
            }
            SimError::FetchOutOfText { pc } => write!(f, "fetch out of text at {pc:#010x}"),
            SimError::Timeout { limit } => {
                write!(f, "wall-clock limit {limit:?} exceeded (watchdog)")
            }
        }
    }
}

impl Error for SimError {}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> SimError {
        SimError::Exec(e)
    }
}

/// Everything one run produced.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The guest's exit code (`r0` at `swi #EXIT`).
    pub exit_code: u32,
    /// Architectural checksum accumulated by `REPORT` syscalls.
    pub checksum: u64,
    /// Bytes the guest wrote with `PUTC`.
    pub output: Vec<u8>,
    /// Instructions committed.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Fetch-side counters.
    pub fetch: FetchStats,
    /// Data-cache counters.
    pub dcache: DCacheStats,
    /// I-TLB counters.
    pub itlb: TlbStats,
    /// D-TLB counters.
    pub dtlb: TlbStats,
    /// Taken-branch mispredictions (BTB misses and wrong targets).
    pub branch_mispredicts: u64,
    /// Per-final-instruction execution counts, when profiling.
    pub insn_counts: Option<Vec<u64>>,
    /// Injected-fault counters (all zero on a fault-free run).
    pub faults: FaultStats,
    /// Detected-fault and recovery counters (all zero with detection
    /// off).
    pub detection: DetectionStats,
    /// Scheme demotions the degradation controller took.
    pub demotions: u64,
    /// Scheme promotions back up the ladder.
    pub promotions: u64,
    /// The fetch scheme the run ended on (differs from the configured
    /// scheme only when degradation demoted it).
    pub final_scheme: FetchScheme,
    /// Every ladder move the degradation controller took, in window
    /// order (empty with degradation off).
    pub transitions: Vec<crate::SchemeTransition>,
}

impl RunResult {
    /// Cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// A simple direct-mapped branch target buffer.
#[derive(Clone, Debug)]
struct Btb {
    entries: Vec<Option<(u32, u32)>>,
}

impl Btb {
    fn new(entries: u32) -> Btb {
        Btb { entries: vec![None; entries.max(1) as usize] }
    }

    fn index(&self, pc: u32) -> usize {
        (pc as usize >> 2) % self.entries.len()
    }

    fn predicts(&self, pc: u32, target: u32) -> bool {
        self.entries[self.index(pc)] == Some((pc, target))
    }

    fn learn(&mut self, pc: u32, target: u32) {
        let index = self.index(pc);
        self.entries[index] = Some((pc, target));
    }
}

/// Runs `image` to completion under `config`.
///
/// # Errors
///
/// Returns [`SimError`] if the guest faults, exceeds its instruction
/// budget, or invokes an unknown system call.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use wp_mem::{CacheGeometry, MemoryConfig};
/// use wp_sim::{simulate, SimConfig};
/// use wp_linker::{Layout, Linker, Profile};
///
/// let module = wp_isa::assemble(
///     "p",
///     "_start: mov r0, #7\n swi #2\n mov r0, #0\n swi #0",
/// )?;
/// let image = Linker::new().with_module(module)
///     .link(Layout::Natural, &Profile::empty())?.image;
/// let config = SimConfig::new(MemoryConfig::baseline(CacheGeometry::xscale_icache()));
/// let result = simulate(&image, &config)?;
/// assert_eq!(result.exit_code, 0);
/// assert_ne!(result.checksum, 0);
/// # Ok(())
/// # }
/// ```
pub fn simulate(image: &Image, config: &SimConfig) -> Result<RunResult, SimError> {
    // `NullSink::enabled()` is a compile-time `false`: the traced
    // branches fold away and this path costs nothing over a dedicated
    // untraced loop.
    simulate_traced(image, config, &mut NullSink)
}

/// Runs `image` to completion under `config`, streaming telemetry into
/// `sink`.
///
/// Per fetch, the sink receives a [`wp_trace::FetchEvent`] classifying
/// the access (way-placement, full search, same-line, link hit, hint
/// mispredict) stamped with the fetch-time cycle count. When
/// [`TraceSink::interval_cycles`] is `Some(n)`, the sink also receives
/// delta [`IntervalSample`]s roughly every `n` cycles, plus one final
/// partial interval at exit. The sink never changes architectural
/// execution, timing or the counters in the returned [`RunResult`].
///
/// # Errors
///
/// Returns [`SimError`] exactly as [`simulate`] does.
pub fn simulate_traced<S: TraceSink>(
    image: &Image,
    config: &SimConfig,
    sink: &mut S,
) -> Result<RunResult, SimError> {
    let mut machine = Machine::boot(image);
    let mut mem = MemorySystem::new(config.mem);
    let mut degrade = config
        .degradation
        .map(|p| DegradationController::new(p, config.mem.icache.scheme));
    let mut btb = Btb::new(config.btb_entries);
    let mut insn_counts = config.collect_profile.then(|| vec![0u64; image.text.len()]);

    let text = &image.text;
    let text_base = Image::TEXT_BASE;
    let text_len = text.len() as u32;

    let mut cycles: u64 = 0;
    let mut instructions: u64 = 0;
    let mut checksum: u64 = 0;
    let mut reports: u64 = 0;
    let mut output = Vec::new();
    let mut mispredicts: u64 = 0;
    // Scoreboard: the cycle at which each register's value is ready.
    let mut ready = [0u64; 16];
    // Wall-clock watchdog, sampled every 16 K instructions so the
    // `Instant` syscall stays off the hot path.
    let watchdog = config.time_limit.map(|limit| (Instant::now(), limit));
    // Interval sampling: re-queried after each sample, because adaptive
    // sinks stretch their period as the series compacts.
    let mut sample_period = sink.interval_cycles();
    let mut sample_start: u64 = 0;
    let mut sample_snapshot = FetchStats::new();
    // Straight-line batching: a per-slot map of instructions whose step
    // is `Control::Next` with unit issue, no data access and no slow
    // result whichever way the condition resolves. Runs of those fetch
    // through `MemorySystem::fetch_block`, amortising the I-TLB lookup
    // and same-line bookkeeping over the cache line, cycle-exactly.
    // Tracing and interval sampling need per-fetch visibility, so
    // batching only arms on the plain path.
    let simple: Vec<bool> = text.iter().map(|&insn| straight_line_simple(insn)).collect();
    let line_words = config.mem.icache.geometry.words_per_line();
    let batching = !sink.enabled() && sample_period.is_none();
    // Upper bound on every scoreboard entry, maintained where slow
    // results publish so the batch guard can prove "no stall possible
    // inside this run" without scanning `ready`.
    let mut ready_bound: u64 = 0;

    loop {
        if instructions >= config.max_instructions {
            return Err(SimError::InstructionLimit(config.max_instructions));
        }
        if instructions & 0x3FFF == 0 {
            if let Some((start, limit)) = watchdog {
                if start.elapsed() >= limit {
                    return Err(SimError::Timeout { limit });
                }
            }
        }
        let pc = machine.pc;
        let index = pc.wrapping_sub(text_base) / Insn::SIZE;
        if pc < text_base || index >= text_len || !pc.is_multiple_of(4) {
            return Err(SimError::FetchOutOfText { pc });
        }
        let insn = text[index as usize];

        // Batched straight-line fetch. Safe exactly when no scoreboard
        // stall can fire inside the run (`cycles >= ready_bound` and no
        // batched instruction publishes a slow result), so the per-
        // instruction loop would only have added fetch cycles plus the
        // one issue cycle the fetch already accounts — which is what
        // `fetch_block` charges. The run is clamped to the cache line,
        // the text section, the instruction budget and the next
        // watchdog sampling point, so every skipped loop-top check is
        // one that could not have fired.
        if batching && cycles >= ready_bound && simple[index as usize] {
            let line_left = line_words - (pc / Insn::SIZE) % line_words;
            let limit = u64::from(line_left.min(text_len - index))
                .min(config.max_instructions - instructions)
                .min(0x4000 - (instructions & 0x3FFF)) as u32;
            let mut run = 1u32;
            while run < limit && simple[(index + run) as usize] {
                run += 1;
            }
            if run > 1 {
                let timing = mem.fetch_block(pc, run);
                cycles += u64::from(timing.cycles);
                degrade_window(&mut degrade, &mut mem);
                for k in 0..run {
                    let slot = (index + k) as usize;
                    if let Some(counts) = insn_counts.as_mut() {
                        counts[slot] += 1;
                    }
                    let outcome = step(&mut machine, text[slot], pc.wrapping_add(k * 4))?;
                    debug_assert_eq!(outcome.control, Control::Next);
                    debug_assert!(outcome.slow_dest.is_none() && outcome.mem_len == 0);
                    debug_assert!(matches!(outcome.class, InsnClass::Alu | InsnClass::Nop));
                    instructions += 1;
                }
                machine.pc = pc.wrapping_add(run * 4);
                continue;
            }
        }

        // Fetch: I-TLB + I-cache (stalls include miss fills and
        // way-hint penalties).
        let fetch = if sink.enabled() {
            let (timing, mut event) = mem.fetch_traced(pc);
            event.cycle = cycles;
            sink.record_fetch(&event);
            timing
        } else {
            mem.fetch(pc)
        };
        cycles += u64::from(fetch.cycles);
        degrade_window(&mut degrade, &mut mem);

        if let Some(period) = sample_period {
            if cycles - sample_start >= period {
                let now = *mem.fetch_stats();
                sink.record_interval(IntervalSample {
                    start_cycle: sample_start,
                    end_cycle: cycles,
                    counters: FetchCounters::from(&now.delta(&sample_snapshot)),
                });
                sample_start = cycles;
                sample_snapshot = now;
                sample_period = sink.interval_cycles();
            }
        }

        if let Some(counts) = insn_counts.as_mut() {
            counts[index as usize] += 1;
        }

        // Execute architecturally.
        let outcome = step(&mut machine, insn, pc)?;
        instructions += 1;

        // Scoreboard: stall issue until the sources are ready. The
        // model approximates "sources" as every register the decoder
        // could need — cheap and adequate at this abstraction level:
        // we track only *slow* results (loads, multiplies), which are
        // the XScale's visible interlocks.
        let (uses, stall_limit) = source_ready_bound(&ready, insn);
        if uses && stall_limit > cycles {
            cycles = stall_limit;
        }

        // Issue/execute cycle(s).
        let issue_cycles: u64 = match outcome.class {
            InsnClass::AluRegShift => 2,
            InsnClass::Block(n) => u64::from(n.max(1)),
            InsnClass::Mul => 1,
            _ => 1,
        };
        // The fetch cycle already accounted one cycle of progress for
        // this instruction; only extra issue cycles add on.
        cycles += issue_cycles - 1;

        // Slow results: published later than issue.
        if let Some(dest) = outcome.slow_dest {
            let latency = match outcome.class {
                InsnClass::Load => config.load_latency,
                InsnClass::Mul => config.mul_latency,
                _ => 0,
            };
            ready[dest.index()] = cycles + u64::from(latency);
            ready_bound = ready_bound.max(ready[dest.index()]);
        }

        // Data memory: blocking cache; stalls add directly.
        for (addr, write) in outcome.mem_accesses() {
            let stall = if write { mem.store(addr, cycles) } else { mem.load(addr, cycles) };
            cycles += u64::from(stall);
        }

        // Control flow + branch prediction.
        match outcome.control {
            Control::Next => machine.pc = pc.wrapping_add(4),
            Control::Branch { taken, target } => {
                if taken {
                    if !btb.predicts(pc, target) {
                        mispredicts += 1;
                        cycles += u64::from(config.branch_penalty);
                        btb.learn(pc, target);
                    }
                    machine.pc = target;
                } else {
                    machine.pc = pc.wrapping_add(4);
                }
            }
            Control::Syscall { number, arg } => {
                machine.pc = pc.wrapping_add(4);
                match number {
                    syscall::EXIT => {
                        if sample_period.is_some() {
                            // Flush the final partial interval so the
                            // series sums to the aggregate counters.
                            let now = *mem.fetch_stats();
                            let tail = now.delta(&sample_snapshot);
                            if tail.fetches > 0 {
                                sink.record_interval(IntervalSample {
                                    start_cycle: sample_start,
                                    end_cycle: cycles,
                                    counters: FetchCounters::from(&tail),
                                });
                            }
                        }
                        return Ok(RunResult {
                            exit_code: arg,
                            checksum,
                            output,
                            instructions,
                            cycles,
                            fetch: *mem.fetch_stats(),
                            dcache: *mem.dcache_stats(),
                            itlb: *mem.itlb_stats(),
                            dtlb: *mem.dtlb_stats(),
                            branch_mispredicts: mispredicts,
                            insn_counts,
                            faults: mem.fault_stats(),
                            detection: mem.detection_stats(),
                            demotions: degrade.as_ref().map_or(0, DegradationController::demotions),
                            promotions: degrade
                                .as_ref()
                                .map_or(0, DegradationController::promotions),
                            final_scheme: mem.current_scheme(),
                            transitions: degrade
                                .as_ref()
                                .map_or_else(Vec::new, |c| c.transitions().to_vec()),
                        });
                    }
                    syscall::PUTC => output.push(arg as u8),
                    syscall::REPORT => {
                        reports += 1;
                        checksum = mix(checksum ^ u64::from(arg).wrapping_add(reports));
                    }
                    _ => return Err(SimError::UnknownSyscall { number, addr: pc }),
                }
            }
        }
    }
}

/// Closes any degradation windows the fetch counter has passed and
/// applies the controller's scheme decision. The `next_boundary` guard
/// keeps this to one branch per fetch on the hot path.
#[inline]
fn degrade_window(degrade: &mut Option<DegradationController>, mem: &mut MemorySystem) {
    if let Some(ctrl) = degrade.as_mut() {
        let fetches = mem.fetch_stats().fetches;
        if fetches >= ctrl.next_boundary() {
            let detected = mem.detection_stats().total_detected();
            if let Some(scheme) = ctrl.observe(fetches, detected) {
                mem.set_fetch_scheme(scheme);
            }
        }
    }
}

/// Computes the checksum a guest would accumulate by issuing exactly
/// these `REPORT` syscall values in order. Reference implementations of
/// the workloads use this to predict the architectural checksum.
///
/// # Examples
///
/// ```
/// let a = wp_sim::checksum_of([1, 2, 3]);
/// let b = wp_sim::checksum_of([3, 2, 1]);
/// assert_ne!(a, b, "order-sensitive");
/// ```
#[must_use]
pub fn checksum_of(reports: impl IntoIterator<Item = u32>) -> u64 {
    let mut checksum = 0u64;
    let mut count = 0u64;
    for value in reports {
        count += 1;
        checksum = mix(checksum ^ u64::from(value).wrapping_add(count));
    }
    checksum
}

/// A 64-bit finaliser (splitmix-style) so checksums are sensitive to
/// report order and value.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Whether `insn` is statically *straight-line simple*: whichever way
/// its condition resolves, `step` yields [`Control::Next`], one issue
/// cycle, no data accesses and no slow result. Runs of such
/// instructions are eligible for the batched-fetch fast path.
fn straight_line_simple(insn: Insn) -> bool {
    use wp_isa::{Op, Operand, ShiftAmount};
    match insn.op {
        Op::Nop | Op::Mov16 { .. } => true,
        Op::Alu { op2: Operand::Reg { amount: ShiftAmount::Reg(_), .. }, .. } => false,
        Op::Alu { .. } => true,
        _ => false,
    }
}

/// Returns whether the instruction reads any registers and the latest
/// ready-cycle among them.
fn source_ready_bound(ready: &[u64; 16], insn: Insn) -> (bool, u64) {
    use wp_isa::{MemOffset, Op, Operand, ShiftAmount};
    let mut max = 0u64;
    let mut uses = false;
    let mut use_reg = |r: Reg| {
        uses = true;
        max = max.max(ready[r.index()]);
    };
    match insn.op {
        Op::Alu { op, rn, op2, .. } => {
            if op.has_rn() {
                use_reg(rn);
            }
            if let Operand::Reg { rm, amount, .. } = op2 {
                use_reg(rm);
                if let ShiftAmount::Reg(rs) = amount {
                    use_reg(rs);
                }
            }
        }
        Op::Mul { op, ra, rm, rs, .. } => {
            use_reg(rm);
            use_reg(rs);
            if op == wp_isa::MulOp::Mla {
                use_reg(ra);
            }
        }
        Op::Mem { rd, addr, load, .. } => {
            use_reg(addr.base);
            if let MemOffset::Reg { rm, .. } = addr.offset {
                use_reg(rm);
            }
            if !load {
                use_reg(rd);
            }
        }
        Op::Push { list } => {
            for reg in list.iter() {
                use_reg(reg);
            }
        }
        Op::BranchReg { rm } => use_reg(rm),
        _ => {}
    }
    (uses, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_linker::{Layout, Linker, Profile};
    use wp_mem::CacheGeometry;

    fn link(src: &str) -> Image {
        let module = wp_isa::assemble("t", src).expect("asm");
        Linker::new()
            .with_module(module)
            .link(Layout::Natural, &Profile::empty())
            .expect("link")
            .image
    }

    fn config() -> SimConfig {
        SimConfig::new(MemoryConfig::baseline(CacheGeometry::new(2048, 4, 32)))
    }

    #[test]
    fn exit_code_and_output() {
        let image = link(
            "_start:
                mov r0, #'h'
                swi #1
                mov r0, #'i'
                swi #1
                mov r0, #3
                swi #0",
        );
        let result = simulate(&image, &config()).expect("run");
        assert_eq!(result.exit_code, 3);
        assert_eq!(result.output, b"hi");
        assert!(result.cycles >= result.instructions);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let ab = link("_start: mov r0, #1\nswi #2\nmov r0, #2\nswi #2\nswi #0");
        let ba = link("_start: mov r0, #2\nswi #2\nmov r0, #1\nswi #2\nswi #0");
        let ra = simulate(&ab, &config()).unwrap();
        let rb = simulate(&ba, &config()).unwrap();
        assert_ne!(ra.checksum, rb.checksum);
    }

    #[test]
    fn instruction_limit() {
        let image = link("_start: b _start");
        let mut cfg = config();
        cfg.max_instructions = 1000;
        let err = simulate(&image, &cfg).unwrap_err();
        assert!(matches!(err, SimError::InstructionLimit(1000)));
    }

    #[test]
    fn watchdog_timeout_fires() {
        let image = link("_start: b _start");
        let cfg = config().with_time_limit(Duration::ZERO);
        let err = simulate(&image, &cfg).unwrap_err();
        assert!(matches!(err, SimError::Timeout { .. }), "{err:?}");
        assert!(err.is_transient());
        assert!(!SimError::InstructionLimit(5).is_transient());
    }

    #[test]
    fn injected_hardware_faults_preserve_architecture() {
        // The §4 graceful-degradation claim at simulator level: a
        // heavily faulted machine reports the same checksum, exit code
        // and instruction count — only timing may differ.
        let image = link(
            "_start:
                mov r4, #200
                mov r0, #0
            .Ll: add r0, r0, r4
                subs r4, r4, #1
                bne .Ll
                swi #2
                mov r0, #0
                swi #0",
        );
        let clean = simulate(&image, &config()).expect("clean run");
        let geom = CacheGeometry::new(2048, 4, 32);
        let faulted_mem = MemoryConfig::way_placement(geom, 0x8000, 2048)
            .with_fault(wp_mem::FaultConfig::all(0xBAD5EED, 200_000));
        let faulted = simulate(&image, &SimConfig::new(faulted_mem)).expect("faulted run");
        assert!(faulted.faults.total() > 0, "{:?}", faulted.faults);
        assert_eq!(faulted.checksum, clean.checksum);
        assert_eq!(faulted.exit_code, clean.exit_code);
        assert_eq!(faulted.instructions, clean.instructions);
    }

    #[test]
    fn degradation_demotes_under_sustained_faults_and_preserves_architecture() {
        let image = link(
            "_start:
                mov r4, #2000
                mov r0, #0
            .Ll: add r0, r0, r4
                subs r4, r4, #1
                bne .Ll
                swi #2
                mov r0, #0
                swi #0",
        );
        let clean = simulate(&image, &config()).expect("clean run");
        let geom = CacheGeometry::new(2048, 4, 32);
        let faulted_mem = MemoryConfig::way_placement(geom, 0x8000, 2048)
            .with_fault(wp_mem::FaultConfig::all(0xDE6, 200_000));
        let policy =
            crate::DegradationPolicy { window_fetches: 256, demote_faults: 2, promote_windows: 4 };
        let cfg = SimConfig::new(faulted_mem).with_degradation(policy);
        let result = simulate(&image, &cfg).expect("degraded run");
        // At 20%/kind the fault rate saturates every window: the
        // controller must walk all the way down to the baseline.
        assert!(result.detection.total_detected() > 0, "{:?}", result.detection);
        assert!(result.demotions >= 2, "demotions: {}", result.demotions);
        assert_eq!(result.final_scheme, wp_mem::FetchScheme::Baseline);
        // Degradation is still §4-safe: architecture is untouched.
        assert_eq!(result.checksum, clean.checksum);
        assert_eq!(result.exit_code, clean.exit_code);
        assert_eq!(result.instructions, clean.instructions);
    }

    #[test]
    fn degradation_is_inert_on_a_clean_machine() {
        let image = link(
            "_start:
                mov r4, #2000
                mov r0, #0
            .Ll: add r0, r0, r4
                subs r4, r4, #1
                bne .Ll
                swi #2
                mov r0, #0
                swi #0",
        );
        let geom = CacheGeometry::new(2048, 4, 32);
        let mem = MemoryConfig::way_placement(geom, 0x8000, 2048);
        let plain = simulate(&image, &SimConfig::new(mem)).expect("plain");
        let policy = crate::DegradationPolicy::default();
        let armed = simulate(&image, &SimConfig::new(mem).with_degradation(policy)).expect("armed");
        assert_eq!(armed.cycles, plain.cycles, "observation must be free when clean");
        assert_eq!(armed.fetch, plain.fetch);
        assert_eq!(armed.demotions, 0);
        assert_eq!(armed.promotions, 0);
        assert_eq!(armed.final_scheme, wp_mem::FetchScheme::WayPlacement);
        assert_eq!(armed.detection.total_detected(), 0);
    }

    #[test]
    fn unknown_syscall() {
        let image = link("_start: swi #99");
        let err = simulate(&image, &config()).unwrap_err();
        assert!(matches!(err, SimError::UnknownSyscall { number: 99, .. }));
    }

    #[test]
    fn wild_jump_detected() {
        let image = link("_start: mov r0, #0\nbx r0");
        let err = simulate(&image, &config()).unwrap_err();
        assert!(matches!(err, SimError::FetchOutOfText { .. }));
    }

    #[test]
    fn btb_reduces_branch_penalty() {
        // A tight loop: the first iteration mispredicts, the rest hit
        // the BTB.
        let image = link(
            "_start:
                mov r4, #100
            .Ll: subs r4, r4, #1
                bne .Ll
                swi #0",
        );
        let result = simulate(&image, &config()).expect("run");
        assert!(result.branch_mispredicts <= 3, "{}", result.branch_mispredicts);
        // CPI should be near 1 for this loop once warm.
        assert!(result.cpi() < 2.0, "cpi {}", result.cpi());
    }

    #[test]
    fn load_use_stall_costs_cycles() {
        let dependent = link(
            "_start:
                ldr r1, =v
                mov r4, #200
            .Ll: ldr r0, [r1]
                add r0, r0, #1     ; immediately uses the load
                subs r4, r4, #1
                bne .Ll
                swi #0
            .data
            v: .word 5",
        );
        let independent = link(
            "_start:
                ldr r1, =v
                mov r4, #200
            .Ll: ldr r0, [r1]
                add r2, r2, #1     ; does not use the load
                subs r4, r4, #1
                bne .Ll
                swi #0
            .data
            v: .word 5",
        );
        let rd = simulate(&dependent, &config()).unwrap();
        let ri = simulate(&independent, &config()).unwrap();
        assert_eq!(rd.instructions, ri.instructions);
        assert!(rd.cycles > ri.cycles, "{} vs {}", rd.cycles, ri.cycles);
    }

    #[test]
    fn profile_counts_match_execution() {
        let image = link(
            "_start:
                mov r4, #10
            .Ll: subs r4, r4, #1
                bne .Ll
                swi #0",
        );
        let cfg = config().with_profile();
        let result = simulate(&image, &cfg).expect("run");
        let counts = result.insn_counts.expect("profile");
        assert_eq!(counts[0], 1, "prologue once");
        assert_eq!(counts[1], 10, "loop body ten times");
        assert_eq!(counts[2], 10);
        assert_eq!(counts.iter().sum::<u64>(), result.instructions);
    }

    #[test]
    fn register_shifts_cost_an_extra_issue_cycle() {
        // Two otherwise-identical loops; one shifts by register.
        let imm = link(
            "_start:
                mov r4, #300
            .Ll: mov r0, r0, lsl #1
                subs r4, r4, #1
                bne .Ll
                swi #0",
        );
        let reg = link(
            "_start:
                mov r4, #300
                mov r5, #1
            .Ll: mov r0, r0, lsl r5
                subs r4, r4, #1
                bne .Ll
                swi #0",
        );
        let ri = simulate(&imm, &config()).unwrap();
        let rr = simulate(&reg, &config()).unwrap();
        // ~one extra cycle per iteration.
        assert!(rr.cycles >= ri.cycles + 250, "{} vs {}", rr.cycles, ri.cycles);
    }

    #[test]
    fn block_transfers_cost_per_register() {
        let narrow = link(
            "_start:
                mov r4, #200
            .Ll: push {r5, lr}
                pop {r5, lr}
                subs r4, r4, #1
                bne .Ll
                swi #0",
        );
        let wide = link(
            "_start:
                mov r4, #200
            .Ll: push {r5, r6, r7, r8, r9, lr}
                pop {r5, r6, r7, r8, r9, lr}
                subs r4, r4, #1
                bne .Ll
                swi #0",
        );
        let rn = simulate(&narrow, &config()).unwrap();
        let rw = simulate(&wide, &config()).unwrap();
        assert!(rw.cycles > rn.cycles + 200 * 4, "{} vs {}", rw.cycles, rn.cycles);
    }

    #[test]
    fn predicated_false_instructions_still_cost_fetch() {
        // A loop of predicated-false adds costs the same fetches as a
        // loop of nops: predication squashes work, not fetch.
        let squashed = link(
            "_start:
                mov r4, #500
                cmp r4, #0      ; never equal inside the loop
            .Ll: addeq r0, r0, #1
                addeq r1, r1, #1
                subs r4, r4, #1
                bne .Ll
                swi #0",
        );
        let result = simulate(&squashed, &config()).unwrap();
        assert_eq!(result.fetch.fetches, result.instructions);
        assert_eq!(result.exit_code, 0);
    }

    #[test]
    fn traced_run_matches_untraced_and_reconciles() {
        let image = link(
            "_start:
                mov r4, #500
                mov r0, #0
            .Ll: add r0, r0, r4
                subs r4, r4, #1
                bne .Ll
                swi #2
                mov r0, #0
                swi #0",
        );
        let cfg = config();
        let plain = simulate(&image, &cfg).expect("untraced");
        let mut recorder =
            wp_trace::TraceRecorder::new().with_capacity(8192).with_interval_cycles(64);
        let traced = simulate_traced(&image, &cfg, &mut recorder).expect("traced");
        // Telemetry is an observer: identical architecture and timing.
        assert_eq!(traced.checksum, plain.checksum);
        assert_eq!(traced.cycles, plain.cycles);
        assert_eq!(traced.fetch, plain.fetch);
        // One event per fetch, and the interval series sums back to the
        // aggregate fetch counter.
        assert_eq!(recorder.events().len() as u64, plain.fetch.fetches);
        assert_eq!(recorder.dropped(), 0);
        let sampled: u64 = recorder.intervals().iter().map(|s| s.counters.fetches).sum();
        assert_eq!(sampled, plain.fetch.fetches, "intervals cover the whole run");
        let last = recorder.intervals().last().expect("samples exist");
        assert_eq!(last.end_cycle, plain.cycles, "final flush reaches exit");
    }

    #[test]
    fn batched_straight_line_runs_match_per_fetch_timing() {
        // A long straight-line block (crossing I-cache lines) sits
        // between a load-use producer and the loop branch, so the batch
        // path must respect the scoreboard guard, the line clamp and
        // elision accounting. The traced run disables batching, so
        // equality proves the batch path is cycle-exact — not merely
        // checksum-preserving — under every fetch scheme.
        let body: String =
            (0..20).map(|i| format!("                add r0, r0, #{}\n", i + 1)).collect();
        let src = format!(
            "_start:
                mov r4, #200
                ldr r5, =v
                mov r0, #0
            .Ll:
                ldr r1, [r5]
                add r0, r0, r1
{body}                subs r4, r4, #1
                bne .Ll
                swi #2
                mov r0, #0
                swi #0
            .data
            v: .word 3"
        );
        let image = link(&src);
        let geom = CacheGeometry::new(2048, 4, 32);
        for mem in [
            MemoryConfig::baseline(geom),
            MemoryConfig::way_placement(geom, Image::TEXT_BASE, 1024),
            MemoryConfig::way_memoization(geom),
            MemoryConfig::way_prediction(geom),
        ] {
            let cfg = SimConfig::new(mem).with_profile();
            let plain = simulate(&image, &cfg).expect("untraced");
            let mut recorder = wp_trace::TraceRecorder::new().with_capacity(1 << 16);
            let traced = simulate_traced(&image, &cfg, &mut recorder).expect("traced");
            assert_eq!(plain.cycles, traced.cycles, "{:?}", mem.icache.scheme);
            assert_eq!(plain.checksum, traced.checksum);
            assert_eq!(plain.instructions, traced.instructions);
            assert_eq!(plain.fetch, traced.fetch, "{:?}", mem.icache.scheme);
            assert_eq!(plain.itlb, traced.itlb);
            assert_eq!(plain.insn_counts, traced.insn_counts);
        }
    }

    #[test]
    fn stats_are_populated() {
        let image = link(
            "_start:
                ldr r0, =v
                ldr r1, [r0]
                swi #0
            .data
            v: .word 1",
        );
        let result = simulate(&image, &config()).unwrap();
        assert!(result.fetch.fetches >= result.instructions);
        assert_eq!(result.dcache.reads, 1);
        assert!(result.itlb.lookups > 0);
        assert!(result.dtlb.lookups > 0);
    }
}
