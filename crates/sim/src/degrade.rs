//! Graceful scheme degradation under sustained faults.
//!
//! The paper's §4 argument makes way-placement state *safe* to lose;
//! the detection layer in `wp-mem` makes losing it *visible*. This
//! module closes the loop: a [`DegradationController`] watches the
//! windowed detected-fault rate and walks the fetch scheme down a
//! ladder of decreasing speculation — way-placement, then
//! way-memoization, then the serial full-CAM baseline — when faults
//! keep arriving, and back up once the machine has been quiet for a
//! while. Each rung trades energy savings for exposure: the baseline
//! full search keeps no way state at all, so nothing is left for a
//! fault to corrupt.
//!
//! The controller is pure bookkeeping — the simulator samples it at
//! window boundaries and applies any scheme switch through
//! [`wp_mem::MemorySystem::set_fetch_scheme`], which flushes the
//! speculative state as a real mode change would.

use wp_mem::FetchScheme;

/// When and how aggressively to demote the fetch scheme.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DegradationPolicy {
    /// Fetches per observation window.
    pub window_fetches: u64,
    /// Detected faults within one window that trigger a demotion.
    pub demote_faults: u64,
    /// Consecutive clean windows before promoting one rung back up.
    pub promote_windows: u32,
}

impl Default for DegradationPolicy {
    fn default() -> DegradationPolicy {
        DegradationPolicy { window_fetches: 8192, demote_faults: 4, promote_windows: 4 }
    }
}

/// The demotion ladder anchored at `scheme`: each rung keeps less
/// speculative way state than the one above it, ending at the serial
/// full-CAM baseline which keeps none.
fn ladder_for(scheme: FetchScheme) -> Vec<FetchScheme> {
    match scheme {
        FetchScheme::WayPlacement => {
            vec![FetchScheme::WayPlacement, FetchScheme::WayMemoization, FetchScheme::Baseline]
        }
        FetchScheme::WayMemoization => {
            vec![FetchScheme::WayMemoization, FetchScheme::Baseline]
        }
        FetchScheme::WayPrediction => {
            vec![FetchScheme::WayPrediction, FetchScheme::Baseline]
        }
        FetchScheme::Baseline => vec![FetchScheme::Baseline],
    }
}

/// One ladder move, recorded for post-run observability: which window
/// boundary closed, which rung the controller left and entered, and
/// the detected-fault delta that drove the decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SchemeTransition {
    /// Cumulative fetch count at which the deciding window closed.
    pub boundary: u64,
    /// Rung the controller was on.
    pub from: FetchScheme,
    /// Rung it moved to.
    pub to: FetchScheme,
    /// Detected faults inside the closing window.
    pub window_faults: u64,
}

impl SchemeTransition {
    /// True when this move went *down* the ladder (toward less
    /// speculative way state).
    #[must_use]
    pub fn is_demotion(&self) -> bool {
        fn rank(s: FetchScheme) -> u8 {
            match s {
                FetchScheme::WayPlacement => 3,
                FetchScheme::WayMemoization | FetchScheme::WayPrediction => 2,
                FetchScheme::Baseline => 0,
            }
        }
        rank(self.to) < rank(self.from)
    }
}

/// Tracks the windowed detected-fault rate and decides which rung of
/// the scheme ladder the fetch engine should run on.
#[derive(Clone, Debug)]
pub struct DegradationController {
    policy: DegradationPolicy,
    ladder: Vec<FetchScheme>,
    level: usize,
    clean_windows: u32,
    demotions: u64,
    promotions: u64,
    last_detected: u64,
    next_boundary: u64,
    windows_closed: u64,
    faulty_windows: u64,
    transitions: Vec<SchemeTransition>,
}

impl DegradationController {
    /// A controller for a machine configured to run `scheme`.
    #[must_use]
    pub fn new(policy: DegradationPolicy, scheme: FetchScheme) -> DegradationController {
        DegradationController {
            policy,
            ladder: ladder_for(scheme),
            level: 0,
            clean_windows: 0,
            demotions: 0,
            promotions: 0,
            last_detected: 0,
            next_boundary: policy.window_fetches.max(1),
            windows_closed: 0,
            faulty_windows: 0,
            transitions: Vec::new(),
        }
    }

    /// The scheme the current rung calls for.
    #[must_use]
    pub fn current(&self) -> FetchScheme {
        self.ladder[self.level]
    }

    /// The fetch count at which the next window closes; callers only
    /// need to consult [`observe`](Self::observe) once cumulative
    /// fetches reach this (a cheap hot-loop guard).
    #[must_use]
    pub fn next_boundary(&self) -> u64 {
        self.next_boundary
    }

    /// Demotions taken so far.
    #[must_use]
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Promotions taken so far.
    #[must_use]
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Observation windows closed so far.
    #[must_use]
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Closed windows whose detected-fault delta met the demotion
    /// threshold (the numerator of the windowed fault rate).
    #[must_use]
    pub fn faulty_windows(&self) -> u64 {
        self.faulty_windows
    }

    /// Every ladder move taken, in window order. The length always
    /// equals [`demotions`](Self::demotions) +
    /// [`promotions`](Self::promotions).
    #[must_use]
    pub fn transitions(&self) -> &[SchemeTransition] {
        &self.transitions
    }

    /// Closes every window `fetches` has passed, fed with the
    /// cumulative detected-fault count, and returns the scheme to
    /// switch to when the rung changed.
    pub fn observe(&mut self, fetches: u64, detected: u64) -> Option<FetchScheme> {
        let before = self.level;
        while fetches >= self.next_boundary {
            let boundary = self.next_boundary;
            self.next_boundary += self.policy.window_fetches.max(1);
            let delta = detected.saturating_sub(self.last_detected);
            self.last_detected = detected;
            self.windows_closed += 1;
            if delta >= self.policy.demote_faults {
                self.faulty_windows += 1;
                self.clean_windows = 0;
                if self.level + 1 < self.ladder.len() {
                    self.transitions.push(SchemeTransition {
                        boundary,
                        from: self.ladder[self.level],
                        to: self.ladder[self.level + 1],
                        window_faults: delta,
                    });
                    self.level += 1;
                    self.demotions += 1;
                }
            } else if delta == 0 {
                self.clean_windows += 1;
                if self.clean_windows >= self.policy.promote_windows && self.level > 0 {
                    self.transitions.push(SchemeTransition {
                        boundary,
                        from: self.ladder[self.level],
                        to: self.ladder[self.level - 1],
                        window_faults: 0,
                    });
                    self.level -= 1;
                    self.promotions += 1;
                    self.clean_windows = 0;
                }
            } else {
                // Sub-threshold noise: neither direction, but it does
                // reset the promotion streak.
                self.clean_windows = 0;
            }
        }
        (self.level != before).then(|| self.current())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> DegradationPolicy {
        DegradationPolicy { window_fetches: 100, demote_faults: 4, promote_windows: 2 }
    }

    #[test]
    fn demotes_down_the_ladder_under_sustained_faults() {
        let mut ctrl = DegradationController::new(policy(), FetchScheme::WayPlacement);
        assert_eq!(ctrl.current(), FetchScheme::WayPlacement);
        assert_eq!(ctrl.observe(100, 4), Some(FetchScheme::WayMemoization));
        assert_eq!(ctrl.observe(200, 8), Some(FetchScheme::Baseline));
        // Bottom rung: more faults change nothing.
        assert_eq!(ctrl.observe(300, 20), None);
        assert_eq!(ctrl.demotions(), 2);
    }

    #[test]
    fn promotes_back_after_quiet_windows() {
        let mut ctrl = DegradationController::new(policy(), FetchScheme::WayPlacement);
        ctrl.observe(100, 4);
        assert_eq!(ctrl.current(), FetchScheme::WayMemoization);
        assert_eq!(ctrl.observe(200, 4), None, "one quiet window is not enough");
        assert_eq!(ctrl.observe(300, 4), Some(FetchScheme::WayPlacement));
        assert_eq!(ctrl.promotions(), 1);
    }

    #[test]
    fn subthreshold_faults_reset_the_promotion_streak() {
        let mut ctrl = DegradationController::new(policy(), FetchScheme::WayPlacement);
        ctrl.observe(100, 4);
        ctrl.observe(200, 4); // quiet
        ctrl.observe(300, 5); // one fault: below demote, above quiet
        assert_eq!(ctrl.current(), FetchScheme::WayMemoization);
        ctrl.observe(400, 5);
        assert_eq!(ctrl.observe(500, 5), Some(FetchScheme::WayPlacement));
    }

    #[test]
    fn batched_progress_closes_every_skipped_window() {
        // 5 windows pass in one observation: the fault burst lands in
        // the first closed window (demote), the remaining four are
        // quiet (promote back after two). Net: no rung change, both
        // transitions on the books, boundary advanced past `fetches`.
        let mut ctrl = DegradationController::new(policy(), FetchScheme::WayPlacement);
        assert_eq!(ctrl.observe(500, 4), None);
        assert_eq!(ctrl.current(), FetchScheme::WayPlacement);
        assert_eq!(ctrl.demotions(), 1);
        assert_eq!(ctrl.promotions(), 1);
        assert_eq!(ctrl.next_boundary(), 600);
    }

    #[test]
    fn transitions_record_every_ladder_move() {
        let mut ctrl = DegradationController::new(policy(), FetchScheme::WayPlacement);
        ctrl.observe(100, 4); // demote
        ctrl.observe(200, 8); // demote
        ctrl.observe(300, 8); // quiet
        ctrl.observe(400, 8); // quiet -> promote
        let t = ctrl.transitions();
        assert_eq!(t.len() as u64, ctrl.demotions() + ctrl.promotions());
        assert_eq!(t.len(), 3);
        assert!(t[0].is_demotion() && t[1].is_demotion() && !t[2].is_demotion());
        assert_eq!(t[0].boundary, 100);
        assert_eq!(t[0].window_faults, 4);
        assert_eq!(
            (t[2].from, t[2].to, t[2].boundary, t[2].window_faults),
            (FetchScheme::Baseline, FetchScheme::WayMemoization, 400, 0)
        );
        assert_eq!(ctrl.windows_closed(), 4);
        assert_eq!(ctrl.faulty_windows(), 2);
    }

    #[test]
    fn baseline_has_nowhere_to_go() {
        let mut ctrl = DegradationController::new(policy(), FetchScheme::Baseline);
        assert_eq!(ctrl.observe(100, 100), None);
        assert_eq!(ctrl.current(), FetchScheme::Baseline);
        assert_eq!(ctrl.demotions(), 0);
    }
}
