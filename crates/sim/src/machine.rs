//! Architectural machine state: registers, flags and the flat guest
//! memory.

use std::fmt;

use wp_isa::{Flags, Image, Reg};

/// Size of the guest physical memory (covers text, data, heap, stack).
pub const MEMORY_BYTES: usize = 16 * 1024 * 1024;

/// A guest memory access fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemFault {
    /// The offending address.
    pub addr: u32,
    /// What the access was.
    pub write: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.write { "store" } else { "load" };
        write!(f, "{kind} fault at {:#010x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

/// The architectural state of the guest core.
pub struct Machine {
    /// General-purpose registers.
    pub regs: [u32; 16],
    /// Condition flags.
    pub flags: Flags,
    /// Program counter (not aliased into `regs`; see `wp-isa` docs).
    pub pc: u32,
    memory: Vec<u8>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("regs", &self.regs)
            .field("flags", &self.flags)
            .field("pc", &format_args!("{:#010x}", self.pc))
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine with the image loaded: text and data copied in,
    /// bss zeroed, `sp` at the stack top and `pc` at the entry point.
    #[must_use]
    pub fn boot(image: &Image) -> Machine {
        let mut memory = vec![0u8; MEMORY_BYTES];
        for (addr, insn) in image.iter_text() {
            let bytes = insn.encode().to_le_bytes();
            memory[addr as usize..addr as usize + 4].copy_from_slice(&bytes);
        }
        let data_base = Image::DATA_BASE as usize;
        memory[data_base..data_base + image.data.len()].copy_from_slice(&image.data);
        let mut machine =
            Machine { regs: [0; 16], flags: Flags::default(), pc: image.entry, memory };
        machine.regs[Reg::SP.index()] = Image::STACK_TOP;
        machine
    }

    fn check(&self, addr: u32, bytes: u32, write: bool) -> Result<usize, MemFault> {
        let end = addr as u64 + u64::from(bytes);
        if end > self.memory.len() as u64 {
            return Err(MemFault { addr, write });
        }
        Ok(addr as usize)
    }

    /// Reads a 32-bit little-endian word. Unaligned addresses are
    /// rounded down (ARM pre-v6 behaviour, simplified).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of range.
    pub fn read_word(&self, addr: u32) -> Result<u32, MemFault> {
        let base = self.check(addr & !3, 4, false)?;
        let m = &self.memory;
        Ok(u32::from_le_bytes([m[base], m[base + 1], m[base + 2], m[base + 3]]))
    }

    /// Reads a 16-bit halfword.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of range.
    pub fn read_half(&self, addr: u32) -> Result<u16, MemFault> {
        let base = self.check(addr & !1, 2, false)?;
        Ok(u16::from_le_bytes([self.memory[base], self.memory[base + 1]]))
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of range.
    pub fn read_byte(&self, addr: u32) -> Result<u8, MemFault> {
        let base = self.check(addr, 1, false)?;
        Ok(self.memory[base])
    }

    /// Writes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of range.
    pub fn write_word(&mut self, addr: u32, value: u32) -> Result<(), MemFault> {
        let base = self.check(addr & !3, 4, true)?;
        self.memory[base..base + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Writes a halfword.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of range.
    pub fn write_half(&mut self, addr: u32, value: u16) -> Result<(), MemFault> {
        let base = self.check(addr & !1, 2, true)?;
        self.memory[base..base + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the access is out of range.
    pub fn write_byte(&mut self, addr: u32, value: u8) -> Result<(), MemFault> {
        let base = self.check(addr, 1, true)?;
        self.memory[base] = value;
        Ok(())
    }

    /// Register read.
    #[must_use]
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[reg.index()]
    }

    /// Register write.
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        self.regs[reg.index()] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_isa::{Cond, Insn, Op};

    fn image() -> Image {
        Image {
            text: vec![Insn::new(Cond::Al, Op::Nop)],
            data: vec![0xaa, 0xbb],
            bss_size: 4,
            entry: Image::TEXT_BASE,
            symbols: Default::default(),
        }
    }

    #[test]
    fn boot_loads_image() {
        let m = Machine::boot(&image());
        assert_eq!(m.pc, Image::TEXT_BASE);
        assert_eq!(m.reg(Reg::SP), Image::STACK_TOP);
        // The nop's encoding is readable at the text base.
        let word = m.read_word(Image::TEXT_BASE).unwrap();
        assert_eq!(word, Insn::new(Cond::Al, Op::Nop).encode());
        assert_eq!(m.read_byte(Image::DATA_BASE).unwrap(), 0xaa);
        assert_eq!(m.read_byte(Image::DATA_BASE + 1).unwrap(), 0xbb);
    }

    #[test]
    fn word_round_trip_and_alignment() {
        let mut m = Machine::boot(&image());
        m.write_word(0x20_0000, 0xdead_beef).unwrap();
        assert_eq!(m.read_word(0x20_0000).unwrap(), 0xdead_beef);
        // Unaligned round down.
        assert_eq!(m.read_word(0x20_0002).unwrap(), 0xdead_beef);
        m.write_half(0x20_0004, 0x1234).unwrap();
        assert_eq!(m.read_half(0x20_0004).unwrap(), 0x1234);
        assert_eq!(m.read_byte(0x20_0004).unwrap(), 0x34);
    }

    #[test]
    fn faults_out_of_range() {
        let mut m = Machine::boot(&image());
        assert!(m.read_word(0xffff_fffc).is_err());
        assert!(m.write_byte(0xffff_ffff, 0).is_err());
        let fault = m.write_word(0xf000_0000, 1).unwrap_err();
        assert!(fault.write);
        assert!(fault.to_string().contains("store fault"));
    }
}
