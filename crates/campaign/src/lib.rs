//! # wp-campaign — content-addressed experiment orchestration
//!
//! The repo's binaries each re-drive the bench engine independently, so
//! a full CI pass re-simulates work an earlier stage already did. This
//! crate makes every experiment a node in one resumable graph:
//!
//! * [`hash`] — an in-repo FNV-1a–based 128-bit digest (no external
//!   dependencies, stable across platforms and runs);
//! * [`key`] — the content-addressed task key: a digest over a node's
//!   identity parts (pipeline name, benchmark, scheme, geometry, input
//!   set, pass configuration) composed Merkle-style with the keys of
//!   its dependencies, so a key names the *entire subtree* that
//!   produced a payload;
//! * [`store`] — the on-disk store under `$WP_STORE_DIR`: atomic
//!   write-rename publishing, hash-verified reads (corrupt, truncated
//!   or tampered entries are misses), and a pinned-aware `gc`;
//! * [`dag`] — the DAG builder and scheduler: typed task nodes with
//!   explicit data edges, hit-pruned demand-driven scheduling (a store
//!   hit skips the node *and* its entire dependency subtree), executed
//!   on a deterministic worker pool with per-worker deques and work
//!   stealing;
//! * [`monitor`] — the observer trait the embedding harness implements
//!   to count `store_hits`/`store_misses` and per-node wall time
//!   (wp-bench bridges it onto `wp_obs::Obs`; this crate stays
//!   dependency-free).
//!
//! The crate knows nothing about caches, benchmarks or manifests — a
//! node is a label, identity parts, dependency edges and a closure from
//! dependency payloads to a payload. `wp_bench::campaign` supplies the
//! experiment semantics.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod dag;
pub mod hash;
pub mod key;
pub mod monitor;
pub mod store;

pub use dag::{Dag, NodeOutcome, Outcome, RunReport, TaskCtx, TaskId};
pub use key::TaskKey;
pub use monitor::{Monitor, NullMonitor};
pub use store::{GcReport, Store};
