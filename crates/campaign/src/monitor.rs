//! The observer the embedding harness plugs into a DAG run.
//!
//! `wp-campaign` has no dependencies, so it cannot talk to
//! `wp_obs::Obs` directly; instead the scheduler reports hits, misses
//! and per-node outcomes through this trait and the harness bridges
//! them onto whatever metrics registry it runs (wp-bench registers
//! `wp_campaign_store_hits_total`, `wp_campaign_store_misses_total`
//! and a per-node wall-time histogram).

use std::time::Duration;

use crate::key::TaskKey;

/// Callbacks the scheduler fires as nodes resolve. All methods default
/// to no-ops so an embedder only implements what it observes.
pub trait Monitor: Sync {
    /// `label`'s payload was served from the store; the node (and any
    /// part of its dependency cone not needed elsewhere) will not run.
    fn store_hit(&self, label: &str, key: &TaskKey) {
        let _ = (label, key);
    }

    /// `label` was not in the store and has been scheduled to run.
    fn store_miss(&self, label: &str, key: &TaskKey) {
        let _ = (label, key);
    }

    /// `label` finished executing (`ok`) or failed (`!ok`) after
    /// `wall` of work on a pool worker.
    fn node_done(&self, label: &str, key: &TaskKey, wall: Duration, ok: bool) {
        let _ = (label, key, wall, ok);
    }
}

/// Observes nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullMonitor;

impl Monitor for NullMonitor {}
