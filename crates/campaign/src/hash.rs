//! A 128-bit FNV-1a digest, built from the standard library only.
//!
//! Two independent 64-bit FNV-1a streams run over the same bytes with
//! different offset bases; their concatenation is the digest. FNV-1a
//! is not cryptographic, but task keys only need to make accidental
//! collisions vanishingly unlikely across the few thousand entries a
//! store ever holds, and 128 bits of two decorrelated streams is far
//! beyond that bar. Determinism is the property that matters: the
//! digest of a byte string is identical across platforms, processes
//! and runs, which is what lets a key computed today name an entry
//! published last week.

/// The FNV-1a 64-bit offset basis (primary stream).
const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, decorrelated offset basis (the primary basis hashed with
/// one zero byte) so the two streams disagree from the first byte.
const OFFSET_B: u64 = 0xaf63_bd4c_8601_b7df;
/// The FNV 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 128-bit FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv128 {
    a: u64,
    b: u64,
}

impl Fnv128 {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Fnv128 {
        Fnv128 { a: OFFSET_A, b: OFFSET_B }
    }

    /// Feeds `bytes` into both streams.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(PRIME);
        }
    }

    /// Feeds a length-prefixed field: `len(bytes)` as 8 little-endian
    /// bytes, then the bytes. Prefixing makes the digest injective
    /// over field *sequences* — `["ab","c"]` and `["a","bc"]` hash
    /// differently.
    pub fn update_field(&mut self, bytes: &[u8]) {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes);
    }

    /// The 128-bit digest: primary stream big-endian, then secondary.
    #[must_use]
    pub fn finish(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.a.to_be_bytes());
        out[8..].copy_from_slice(&self.b.to_be_bytes());
        out
    }
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

/// One-shot digest of a byte string.
#[must_use]
pub fn digest(bytes: &[u8]) -> [u8; 16] {
    let mut h = Fnv128::new();
    h.update(bytes);
    h.finish()
}

/// Lowercase hex of a digest.
#[must_use]
pub fn to_hex(digest: &[u8; 16]) -> String {
    let mut out = String::with_capacity(32);
    for byte in digest {
        let hi = byte >> 4;
        let lo = byte & 0xf;
        for nibble in [hi, lo] {
            out.push(char::from_digit(u32::from(nibble), 16).unwrap_or('0'));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_input_sensitive() {
        assert_eq!(digest(b"crc/way-placement"), digest(b"crc/way-placement"));
        assert_ne!(digest(b"crc/way-placement"), digest(b"crc/way-memoization"));
        assert_ne!(digest(b""), digest(b"\0"));
    }

    #[test]
    fn streams_are_decorrelated() {
        let d = digest(b"abc");
        assert_ne!(&d[..8], &d[8..], "both halves agreeing would halve the digest width");
    }

    #[test]
    fn field_prefixing_separates_boundaries() {
        let mut left = Fnv128::new();
        left.update_field(b"ab");
        left.update_field(b"c");
        let mut right = Fnv128::new();
        right.update_field(b"a");
        right.update_field(b"bc");
        assert_ne!(left.finish(), right.finish());
    }

    #[test]
    fn hex_is_32_lowercase_digits() {
        let hex = to_hex(&digest(b"x"));
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    #[test]
    fn known_fnv1a_vector() {
        // FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c; the primary stream
        // must reproduce it exactly (the offset/prime are standard).
        let mut h = Fnv128::new();
        h.update(b"a");
        assert_eq!(&h.finish()[..8], &0xaf63_dc4c_8601_ec8cu64.to_be_bytes());
    }
}
