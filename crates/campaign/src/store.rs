//! The on-disk content-addressed store.
//!
//! Layout under the root (`$WP_STORE_DIR` for the campaign binary):
//!
//! ```text
//! <root>/objects/<first-2-hex>/<32-hex-key>   one file per entry
//! <root>/tmp/                                 in-flight writes
//! ```
//!
//! An entry file is a single header line followed by the raw payload:
//!
//! ```text
//! wp-campaign-store/v1 <key> <payload-digest> <payload-len> <label>\n
//! <payload bytes>
//! ```
//!
//! Publishing is atomic: the entry is written to `tmp/` and
//! `rename(2)`d into place, so readers never observe a partial file
//! and concurrent writers racing on one key leave exactly one valid
//! entry (the last rename wins; both wrote the same content, because
//! the key is content-addressed over every input that could change
//! it). Reads re-verify everything — header shape, embedded key,
//! payload length and payload digest — and treat any mismatch as a
//! miss, deleting the corpse so the next publish starts clean. A
//! truncated, torn or hand-tampered entry therefore costs one
//! recompute, never a wrong result.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

use crate::hash::{digest, to_hex};
use crate::key::TaskKey;

/// The entry header tag; bump on any layout change so old stores read
/// as misses instead of parse errors.
const ENTRY_TAG: &str = "wp-campaign-store/v1";

/// A content-addressed store rooted at one directory.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    /// Distinguishes concurrent in-process writers' temp files.
    seq: AtomicU64,
}

/// What [`Store::gc`] did.
#[derive(Clone, Copy, Debug, Default)]
pub struct GcReport {
    /// Entries still in the store.
    pub kept: usize,
    /// Entries deleted.
    pub deleted: usize,
    /// Bytes reclaimed.
    pub bytes_freed: u64,
}

/// One entry as listed by [`Store::entries`].
#[derive(Clone, Debug)]
pub struct EntryInfo {
    /// The entry's key (from its filename).
    pub key: TaskKey,
    /// File size, bytes (header + payload).
    pub bytes: u64,
    /// Last use: publish time, refreshed by every verified read.
    pub modified: SystemTime,
}

impl Store {
    /// Opens (without touching the filesystem) a store rooted at
    /// `root`; directories are created on first publish.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Store {
        Store { root: root.into(), seq: AtomicU64::new(0) }
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: &TaskKey) -> PathBuf {
        let hex = key.hex();
        self.root.join("objects").join(&hex[..2]).join(hex)
    }

    /// Fetches and verifies an entry. Any defect — missing file,
    /// malformed header, foreign key, short payload, digest mismatch —
    /// is a miss; defective files are deleted so they cannot shadow a
    /// future publish. A verified read refreshes the entry's mtime,
    /// which is the recency [`Store::gc`] ranks by.
    #[must_use]
    pub fn get(&self, key: &TaskKey) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        let bytes = std::fs::read(&path).ok()?;
        match parse_entry(&bytes, key) {
            Some(payload) => {
                // Best-effort recency bump; a read-only store still hits.
                if let Ok(file) = std::fs::OpenOptions::new().append(true).open(&path) {
                    let _ = file.set_modified(SystemTime::now());
                }
                Some(payload)
            }
            None => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Whether a verified entry exists for `key` (without reading the
    /// payload out or bumping recency).
    #[must_use]
    pub fn contains(&self, key: &TaskKey) -> bool {
        let path = self.entry_path(key);
        std::fs::read(&path)
            .ok()
            .is_some_and(|bytes| parse_entry(&bytes, key).is_some())
    }

    /// Publishes `payload` under `key`. The write lands in `tmp/` and
    /// is renamed into place, so it is atomic with respect to readers
    /// and to concurrent writers of the same key.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating, writing or renaming the entry.
    pub fn put(&self, key: &TaskKey, label: &str, payload: &[u8]) -> io::Result<()> {
        let path = self.entry_path(key);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let tmp_dir = self.root.join("tmp");
        std::fs::create_dir_all(&tmp_dir)?;
        let tmp = tmp_dir.join(format!(
            "{}.{}.{}",
            key.hex(),
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let header = format!(
            "{ENTRY_TAG} {} {} {} {}\n",
            key.hex(),
            to_hex(&digest(payload)),
            payload.len(),
            label.replace('\n', " ")
        );
        let mut bytes = Vec::with_capacity(header.len() + payload.len());
        bytes.extend_from_slice(header.as_bytes());
        bytes.extend_from_slice(payload);
        std::fs::write(&tmp, &bytes)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(error) => {
                let _ = std::fs::remove_file(&tmp);
                Err(error)
            }
        }
    }

    /// Lists every entry (valid or not — validity is a read-time
    /// property) with its size and recency.
    ///
    /// # Errors
    ///
    /// Filesystem errors walking the store. A missing `objects/`
    /// directory is an empty store, not an error.
    pub fn entries(&self) -> io::Result<Vec<EntryInfo>> {
        let objects = self.root.join("objects");
        let mut out = Vec::new();
        let shards = match std::fs::read_dir(&objects) {
            Ok(iter) => iter,
            Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(error) => return Err(error),
        };
        for shard in shards {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(shard.path())? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(key) = name.to_str().and_then(TaskKey::from_hex) else {
                    continue;
                };
                let meta = entry.metadata()?;
                out.push(EntryInfo {
                    key,
                    bytes: meta.len(),
                    modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                });
            }
        }
        Ok(out)
    }

    /// Deletes all but the `keep_last` most-recently-used entries.
    /// Entries whose key is in `pinned` are never deleted — the
    /// campaign binary pins every key of the plan it is about to run,
    /// so `gc` cannot evict an entry a pending node still needs.
    ///
    /// # Errors
    ///
    /// Filesystem errors walking or deleting entries.
    pub fn gc(&self, keep_last: usize, pinned: &[TaskKey]) -> io::Result<GcReport> {
        let mut entries = self.entries()?;
        // Most recent first; key hex breaks mtime ties deterministically.
        entries.sort_by(|a, b| b.modified.cmp(&a.modified).then_with(|| a.key.cmp(&b.key)));
        let mut report = GcReport::default();
        let mut recent = 0usize;
        for entry in entries {
            let keep = pinned.contains(&entry.key) || {
                recent += 1;
                recent <= keep_last
            };
            if keep {
                report.kept += 1;
            } else {
                std::fs::remove_file(self.entry_path(&entry.key))?;
                report.deleted += 1;
                report.bytes_freed += entry.bytes;
            }
        }
        Ok(report)
    }
}

/// Verifies one entry file against the key it was fetched under.
fn parse_entry(bytes: &[u8], key: &TaskKey) -> Option<Vec<u8>> {
    let newline = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..newline]).ok()?;
    let payload = &bytes[newline + 1..];
    let mut fields = header.splitn(5, ' ');
    if fields.next()? != ENTRY_TAG {
        return None;
    }
    if fields.next()? != key.hex() {
        return None;
    }
    let stored_digest = fields.next()?;
    let stored_len: usize = fields.next()?.parse().ok()?;
    if payload.len() != stored_len {
        return None;
    }
    if to_hex(&digest(payload)) != stored_digest {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let root = std::env::temp_dir().join(format!("wp-store-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        Store::new(root)
    }

    #[test]
    fn round_trip_and_miss() {
        let store = temp_store("roundtrip");
        let key = TaskKey::derive(&["unit", "roundtrip"], &[]);
        assert!(store.get(&key).is_none());
        store.put(&key, "unit roundtrip", b"payload bytes").unwrap();
        assert_eq!(store.get(&key).as_deref(), Some(&b"payload bytes"[..]));
        assert!(store.contains(&key));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn foreign_key_in_header_is_a_miss() {
        let store = temp_store("foreign");
        let key_a = TaskKey::derive(&["unit", "a"], &[]);
        let key_b = TaskKey::derive(&["unit", "b"], &[]);
        store.put(&key_a, "a", b"aa").unwrap();
        // Copy a's entry file under b's name: the embedded key no
        // longer matches the fetch key.
        std::fs::create_dir_all(store.entry_path(&key_b).parent().unwrap()).unwrap();
        std::fs::copy(store.entry_path(&key_a), store.entry_path(&key_b)).unwrap();
        assert!(store.get(&key_b).is_none());
        assert!(!store.entry_path(&key_b).exists(), "corpse must be swept");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn gc_keeps_pinned_and_recent() {
        let store = temp_store("gc");
        let keys: Vec<TaskKey> =
            (0..4).map(|i| TaskKey::derive(&["unit", "gc", &i.to_string()], &[])).collect();
        for (i, key) in keys.iter().enumerate() {
            store.put(key, "gc", format!("payload {i}").as_bytes()).unwrap();
        }
        let report = store.gc(0, &keys[..1]).unwrap();
        assert_eq!((report.kept, report.deleted), (1, 3));
        assert!(store.contains(&keys[0]));
        for key in &keys[1..] {
            assert!(!store.contains(key));
        }
        let _ = std::fs::remove_dir_all(store.root());
    }
}
