//! The task DAG and its hit-pruned, work-stealing scheduler.
//!
//! A node is a label (human name, stable across runs — `explain`
//! addresses nodes by it), identity parts (what [`TaskKey::derive`]
//! hashes), dependency edges to earlier nodes, and a closure from
//! dependency payloads to a payload. Edges always point to
//! already-added nodes, so the graph is acyclic by construction and
//! insertion order is a topological order.
//!
//! Scheduling is demand-driven from the requested roots, in two
//! phases:
//!
//! 1. **Prune.** Walk nodes in reverse topological order. A node is
//!    *required* when it is a root or a store-missing required
//!    dependent demands it. Required nodes probe the store: a hit
//!    binds the stored payload and — because the key commits to the
//!    whole dependency subtree — demands nothing below it; a miss
//!    schedules the node and demands its dependencies. Everything
//!    never demanded is pruned without even a store probe.
//! 2. **Execute.** Missing nodes run on a worker pool: each worker
//!    owns a LIFO deque (depth-first, cache-warm) and steals FIFO
//!    from its peers when empty. A finished node decrements its
//!    dependents' pending counts and publishes its payload to the
//!    store immediately, so an interrupted campaign resumes from
//!    what it already computed. A failed node fails; its dependents
//!    are skipped, everything else keeps running.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::key::TaskKey;
use crate::monitor::Monitor;
use crate::store::Store;

/// Index of a node within its [`Dag`].
pub type TaskId = usize;

type RunFn = Box<dyn Fn(&TaskCtx<'_>) -> Result<Vec<u8>, String> + Send + Sync>;

struct Node {
    label: String,
    parts: Vec<String>,
    deps: Vec<TaskId>,
    exclusive: bool,
    run: RunFn,
}

/// A directed acyclic graph of content-addressed tasks.
#[derive(Default)]
pub struct Dag {
    nodes: Vec<Node>,
    keys: Vec<TaskKey>,
    by_key: HashMap<TaskKey, TaskId>,
}

/// What the dependency payloads look like from inside a node's
/// closure.
pub struct TaskCtx<'a> {
    payloads: &'a [OnceLock<Arc<Vec<u8>>>],
    deps: &'a [TaskId],
}

impl TaskCtx<'_> {
    /// Number of dependencies.
    #[must_use]
    pub fn dep_count(&self) -> usize {
        self.deps.len()
    }

    /// The `i`-th dependency's payload, in edge order. Resolved before
    /// the node is scheduled (from the store or a completed run).
    #[must_use]
    pub fn dep(&self, i: usize) -> &[u8] {
        self.payloads[self.deps[i]].get().map_or(&[][..], |arc| arc.as_slice())
    }
}

/// How one node resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Never demanded (a store hit above it made it irrelevant).
    Pruned,
    /// Payload served from the store.
    Hit,
    /// Ran and published its payload.
    Computed,
    /// Ran and failed with this message.
    Failed(String),
    /// Not run because a dependency failed.
    Skipped,
}

/// One node's resolution in a [`RunReport`].
#[derive(Clone, Debug)]
pub struct NodeOutcome {
    /// The node's label.
    pub label: String,
    /// The node's content-addressed key.
    pub key: TaskKey,
    /// How it resolved.
    pub outcome: Outcome,
    /// Wall time spent executing (zero unless it ran).
    pub wall: Duration,
}

/// The result of one [`Dag::run`].
#[derive(Debug)]
pub struct RunReport {
    /// Per-node outcomes, indexed by [`TaskId`].
    pub nodes: Vec<NodeOutcome>,
    /// Store publishes that failed (the computation still counts; the
    /// next run will recompute instead of hit).
    pub store_put_errors: usize,
    payloads: Vec<Option<Arc<Vec<u8>>>>,
}

impl RunReport {
    /// The payload of a hit or computed node.
    #[must_use]
    pub fn payload(&self, id: TaskId) -> Option<&[u8]> {
        self.payloads.get(id).and_then(|p| p.as_deref().map(Vec::as_slice))
    }

    fn count(&self, want: fn(&Outcome) -> bool) -> usize {
        self.nodes.iter().filter(|n| want(&n.outcome)).count()
    }

    /// Nodes served from the store.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Hit))
    }

    /// Nodes that were demanded but absent from the store (computed,
    /// failed or skipped — every one began as a store miss).
    #[must_use]
    pub fn misses(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Computed | Outcome::Failed(_) | Outcome::Skipped))
    }

    /// Nodes that ran and failed.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Failed(_)))
    }

    /// Nodes skipped because a dependency failed.
    #[must_use]
    pub fn skipped(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Skipped))
    }

    /// Nodes never demanded.
    #[must_use]
    pub fn pruned(&self) -> usize {
        self.count(|o| matches!(o, Outcome::Pruned))
    }

    /// `(label, message)` for every failed node, in node order.
    #[must_use]
    pub fn failures(&self) -> Vec<(&str, &str)> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.outcome {
                Outcome::Failed(message) => Some((n.label.as_str(), message.as_str())),
                _ => None,
            })
            .collect()
    }

    /// `true` when every demanded node resolved to a payload.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.failed() == 0 && self.skipped() == 0
    }
}

impl Dag {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Dag {
        Dag::default()
    }

    /// Adds a node; `deps` must be ids returned by earlier `add`
    /// calls. The key is derived immediately from `parts` and the
    /// dependency keys. If a node with the identical key already
    /// exists, that node's id is returned and the new closure is
    /// dropped — identical keys mean identical payloads by
    /// construction, which is how plans share work (e.g. one measure
    /// node feeding two figure manifests).
    ///
    /// # Panics
    ///
    /// If a dependency id is out of range (a plan-builder bug, not a
    /// runtime condition).
    pub fn add(
        &mut self,
        label: impl Into<String>,
        parts: &[&str],
        deps: &[TaskId],
        run: impl Fn(&TaskCtx<'_>) -> Result<Vec<u8>, String> + Send + Sync + 'static,
    ) -> TaskId {
        assert!(
            deps.iter().all(|&d| d < self.nodes.len()),
            "dependency id out of range (deps must be added first)"
        );
        let dep_keys: Vec<TaskKey> = deps.iter().map(|&d| self.keys[d]).collect();
        let key = TaskKey::derive(parts, &dep_keys);
        if let Some(&existing) = self.by_key.get(&key) {
            return existing;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            label: label.into(),
            parts: parts.iter().map(|&p| p.to_string()).collect(),
            deps: deps.to_vec(),
            exclusive: false,
            run: Box::new(run),
        });
        self.keys.push(key);
        self.by_key.insert(key, id);
        id
    }

    /// Marks a node **exclusive**: when it executes, the scheduler
    /// drains every in-flight node first and runs it alone — no other
    /// node starts until it finishes. Exclusivity is a scheduling
    /// property, not identity: the key is unchanged, so a cached
    /// payload still hits. Use it for nodes whose payload depends on
    /// sole ownership of the machine (wall-clock performance
    /// measurement); everything else should stay concurrent.
    pub fn mark_exclusive(&mut self, id: TaskId) {
        self.nodes[id].exclusive = true;
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A node's label.
    #[must_use]
    pub fn label(&self, id: TaskId) -> &str {
        &self.nodes[id].label
    }

    /// A node's identity parts.
    #[must_use]
    pub fn parts(&self, id: TaskId) -> &[String] {
        &self.nodes[id].parts
    }

    /// A node's dependency edges.
    #[must_use]
    pub fn deps(&self, id: TaskId) -> &[TaskId] {
        &self.nodes[id].deps
    }

    /// A node's content-addressed key.
    #[must_use]
    pub fn key(&self, id: TaskId) -> TaskKey {
        self.keys[id]
    }

    /// Every key in the graph (the pin set a pre-run `gc` must keep).
    #[must_use]
    pub fn all_keys(&self) -> Vec<TaskKey> {
        self.keys.clone()
    }

    /// The first node whose label is `label`.
    #[must_use]
    pub fn find(&self, label: &str) -> Option<TaskId> {
        self.nodes.iter().position(|n| n.label == label)
    }

    /// Runs the graph: prune from `roots` (empty slice = every node
    /// without dependents), serve hits from `store`, execute misses on
    /// `workers` threads, publish computed payloads back to `store`.
    #[must_use]
    pub fn run(
        &self,
        store: &Store,
        roots: &[TaskId],
        workers: usize,
        monitor: &dyn Monitor,
    ) -> RunReport {
        let n = self.nodes.len();
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, node) in self.nodes.iter().enumerate() {
            for &dep in &node.deps {
                dependents[dep].push(id);
            }
        }
        let mut is_root = vec![false; n];
        if roots.is_empty() {
            for (id, deps) in dependents.iter().enumerate() {
                is_root[id] = deps.is_empty();
            }
        } else {
            for &root in roots {
                is_root[root] = true;
            }
        }

        // Phase 1: demand-driven pruning, reverse topological order
        // (every dependent has a larger id than its dependencies).
        #[derive(Clone, Copy, PartialEq)]
        enum Slot {
            Pruned,
            Hit,
            Run,
        }
        let mut slot = vec![Slot::Pruned; n];
        let mut demanded = vec![false; n];
        let payloads: Vec<OnceLock<Arc<Vec<u8>>>> = (0..n).map(|_| OnceLock::new()).collect();
        for id in (0..n).rev() {
            if !(is_root[id] || demanded[id]) {
                continue;
            }
            match store.get(&self.keys[id]) {
                Some(bytes) => {
                    slot[id] = Slot::Hit;
                    let _ = payloads[id].set(Arc::new(bytes));
                    monitor.store_hit(&self.nodes[id].label, &self.keys[id]);
                }
                None => {
                    slot[id] = Slot::Run;
                    monitor.store_miss(&self.nodes[id].label, &self.keys[id]);
                    for &dep in &self.nodes[id].deps {
                        demanded[dep] = true;
                    }
                }
            }
        }

        // Phase 2: execute the misses.
        enum Exec {
            Done(Duration),
            Failed(String, Duration),
            Skipped,
        }
        let run_ids: Vec<TaskId> = (0..n).filter(|&id| matches!(slot[id], Slot::Run)).collect();
        let results: Vec<OnceLock<Exec>> = (0..n).map(|_| OnceLock::new()).collect();
        let put_errors = AtomicUsize::new(0);
        if !run_ids.is_empty() {
            let workers = workers.clamp(1, run_ids.len());
            let pending: Vec<AtomicUsize> = (0..n)
                .map(|id| {
                    AtomicUsize::new(
                        self.nodes[id].deps.iter().filter(|&&d| slot[d] == Slot::Run).count(),
                    )
                })
                .collect();
            let dep_failed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
            let queues: Vec<Mutex<VecDeque<TaskId>>> =
                (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
            let injector: Mutex<VecDeque<TaskId>> = Mutex::new(
                run_ids
                    .iter()
                    .copied()
                    .filter(|&id| pending[id].load(Ordering::Relaxed) == 0)
                    .collect(),
            );
            let remaining = AtomicUsize::new(run_ids.len());
            let idle = (Mutex::new(()), Condvar::new());
            let gate = ExclusionGate::default();

            let pop = |worker: usize| -> Option<TaskId> {
                if let Some(id) = lock(&queues[worker]).pop_back() {
                    return Some(id);
                }
                for offset in 1..queues.len() {
                    let victim = (worker + offset) % queues.len();
                    if let Some(id) = lock(&queues[victim]).pop_front() {
                        return Some(id);
                    }
                }
                lock(&injector).pop_front()
            };

            let finish = |id: TaskId, ok: bool, worker: usize| {
                for &dependent in &dependents[id] {
                    if slot[dependent] != Slot::Run {
                        continue;
                    }
                    if !ok {
                        dep_failed[dependent].store(true, Ordering::Relaxed);
                    }
                    if pending[dependent].fetch_sub(1, Ordering::AcqRel) == 1 {
                        lock(&queues[worker]).push_back(dependent);
                        idle.1.notify_all();
                    }
                }
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    idle.1.notify_all();
                }
            };

            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let pop = &pop;
                    let finish = &finish;
                    let results = &results;
                    let payloads = &payloads;
                    let dep_failed = &dep_failed;
                    let remaining = &remaining;
                    let idle = &idle;
                    let put_errors = &put_errors;
                    let gate = &gate;
                    scope.spawn(move || loop {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        let Some(id) = pop(worker) else {
                            let guard = lock(&idle.0);
                            // Re-check under the lock so a notify
                            // between pop and wait is not lost.
                            if remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            let _unused = match idle.1.wait_timeout(guard, Duration::from_millis(5))
                            {
                                Ok((guard, _)) => guard,
                                Err(poisoned) => poisoned.into_inner().0,
                            };
                            continue;
                        };
                        if dep_failed[id].load(Ordering::Relaxed) {
                            let _ = results[id].set(Exec::Skipped);
                            finish(id, false, worker);
                            continue;
                        }
                        let ctx = TaskCtx { payloads, deps: &self.nodes[id].deps };
                        let exclusive = self.nodes[id].exclusive;
                        gate.enter(exclusive);
                        let started = Instant::now();
                        let outcome = (self.nodes[id].run)(&ctx);
                        let wall = started.elapsed();
                        gate.exit(exclusive);
                        let ok = outcome.is_ok();
                        monitor.node_done(&self.nodes[id].label, &self.keys[id], wall, ok);
                        match outcome {
                            Ok(bytes) => {
                                if store.put(&self.keys[id], &self.nodes[id].label, &bytes).is_err()
                                {
                                    put_errors.fetch_add(1, Ordering::Relaxed);
                                }
                                let _ = payloads[id].set(Arc::new(bytes));
                                let _ = results[id].set(Exec::Done(wall));
                            }
                            Err(message) => {
                                let _ = results[id].set(Exec::Failed(message, wall));
                            }
                        }
                        finish(id, ok, worker);
                    });
                }
            });
        }

        let mut nodes = Vec::with_capacity(n);
        let mut out_payloads = Vec::with_capacity(n);
        for id in 0..n {
            let (outcome, wall) = match slot[id] {
                Slot::Pruned => (Outcome::Pruned, Duration::ZERO),
                Slot::Hit => (Outcome::Hit, Duration::ZERO),
                Slot::Run => match results[id].get() {
                    Some(Exec::Done(wall)) => (Outcome::Computed, *wall),
                    Some(Exec::Failed(message, wall)) => (Outcome::Failed(message.clone()), *wall),
                    Some(Exec::Skipped) | None => (Outcome::Skipped, Duration::ZERO),
                },
            };
            nodes.push(NodeOutcome {
                label: self.nodes[id].label.clone(),
                key: self.keys[id],
                outcome,
                wall,
            });
            out_payloads.push(payloads[id].get().cloned());
        }
        RunReport {
            nodes,
            store_put_errors: put_errors.load(Ordering::Relaxed),
            payloads: out_payloads,
        }
    }
}

/// Poison-tolerant mutex lock (mirrors the engine's helper): a worker
/// panicking mid-queue-access must not wedge the whole campaign.
fn lock<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Poison-tolerant condvar wait.
fn wait<'a, T>(cv: &Condvar, guard: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The scheduler's exclusivity latch. Shared (normal) nodes enter
/// concurrently; an exclusive node first claims the gate — blocking
/// new shared entries — then waits for the in-flight ones to drain,
/// so it runs with the machine to itself.
#[derive(Default)]
struct ExclusionGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    running: usize,
    exclusive: bool,
}

impl ExclusionGate {
    fn enter(&self, exclusive: bool) {
        let mut state = lock(&self.state);
        if exclusive {
            while state.exclusive {
                state = wait(&self.cv, state);
            }
            // Claim first so no new shared node starts while this one
            // waits for the in-flight ones to drain (no starvation).
            state.exclusive = true;
            while state.running > 0 {
                state = wait(&self.cv, state);
            }
        } else {
            while state.exclusive {
                state = wait(&self.cv, state);
            }
            state.running += 1;
        }
    }

    fn exit(&self, exclusive: bool) {
        let mut state = lock(&self.state);
        if exclusive {
            state.exclusive = false;
        } else {
            state.running -= 1;
        }
        drop(state);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NullMonitor;

    fn temp_store(tag: &str) -> Store {
        let root = std::env::temp_dir().join(format!("wp-dag-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        Store::new(root)
    }

    fn payload_chain_dag(counter: Arc<AtomicUsize>) -> Dag {
        let mut dag = Dag::new();
        let c1 = Arc::clone(&counter);
        let leaf = dag.add("leaf", &["leaf", "v1"], &[], move |_| {
            c1.fetch_add(1, Ordering::Relaxed);
            Ok(b"leaf-payload".to_vec())
        });
        let c2 = Arc::clone(&counter);
        dag.add("root", &["root"], &[leaf], move |ctx| {
            c2.fetch_add(1, Ordering::Relaxed);
            let mut out = ctx.dep(0).to_vec();
            out.extend_from_slice(b"+root");
            Ok(out)
        });
        dag
    }

    #[test]
    fn cold_run_computes_warm_run_hits_root_only() {
        let store = temp_store("warm");
        let counter = Arc::new(AtomicUsize::new(0));
        let dag = payload_chain_dag(Arc::clone(&counter));
        let cold = dag.run(&store, &[], 2, &NullMonitor);
        assert!(cold.ok());
        assert_eq!((cold.hits(), cold.misses()), (0, 2));
        assert_eq!(cold.payload(1), Some(&b"leaf-payload+root"[..]));
        assert_eq!(counter.load(Ordering::Relaxed), 2);

        let warm = dag.run(&store, &[], 2, &NullMonitor);
        assert!(warm.ok());
        // The root hits; the leaf is pruned without a store probe.
        assert_eq!((warm.hits(), warm.misses(), warm.pruned()), (1, 0, 1));
        assert_eq!(warm.payload(1), Some(&b"leaf-payload+root"[..]));
        assert_eq!(counter.load(Ordering::Relaxed), 2, "warm run must not recompute");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn changed_leaf_identity_recomputes_the_chain() {
        let store = temp_store("invalidate");
        let counter = Arc::new(AtomicUsize::new(0));
        let dag = payload_chain_dag(Arc::clone(&counter));
        assert!(dag.run(&store, &[], 1, &NullMonitor).ok());

        // Same shape, but the leaf's identity changed: both keys move.
        let mut changed = Dag::new();
        let c1 = Arc::clone(&counter);
        let leaf = changed.add("leaf", &["leaf", "v2"], &[], move |_| {
            c1.fetch_add(1, Ordering::Relaxed);
            Ok(b"leaf-payload-2".to_vec())
        });
        let c2 = Arc::clone(&counter);
        changed.add("root", &["root"], &[leaf], move |ctx| {
            c2.fetch_add(1, Ordering::Relaxed);
            let mut out = ctx.dep(0).to_vec();
            out.extend_from_slice(b"+root");
            Ok(out)
        });
        let rerun = changed.run(&store, &[], 1, &NullMonitor);
        assert_eq!((rerun.hits(), rerun.misses()), (0, 2));
        assert_eq!(rerun.payload(1), Some(&b"leaf-payload-2+root"[..]));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn failure_skips_dependents_but_not_siblings() {
        let store = temp_store("failure");
        let mut dag = Dag::new();
        let bad = dag.add("bad", &["bad"], &[], |_| Err("boom".to_string()));
        let _downstream = dag.add("down", &["down"], &[bad], |_| Ok(Vec::new()));
        let _sibling = dag.add("sibling", &["sibling"], &[], |_| Ok(b"ok".to_vec()));
        let report = dag.run(&store, &[], 2, &NullMonitor);
        assert!(!report.ok());
        assert_eq!(report.nodes[0].outcome, Outcome::Failed("boom".to_string()));
        assert_eq!(report.nodes[1].outcome, Outcome::Skipped);
        assert_eq!(report.nodes[2].outcome, Outcome::Computed);
        assert_eq!(report.failures(), vec![("bad", "boom")]);
        // Nothing under the failed node was published.
        assert!(!store.contains(&dag.key(0)));
        assert!(store.contains(&dag.key(2)));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn identical_keys_share_one_node() {
        let mut dag = Dag::new();
        let a = dag.add("shared", &["measure", "crc"], &[], |_| Ok(Vec::new()));
        let b = dag.add("shared-again", &["measure", "crc"], &[], |_| Ok(Vec::new()));
        assert_eq!(a, b);
        assert_eq!(dag.len(), 1);
    }

    #[test]
    fn roots_select_a_subgraph() {
        let store = temp_store("roots");
        let mut dag = Dag::new();
        let a = dag.add("a", &["a"], &[], |_| Ok(b"a".to_vec()));
        let _b = dag.add("b", &["b"], &[], |_| Ok(b"b".to_vec()));
        let c = dag.add("c", &["c"], &[a], |_| Ok(b"c".to_vec()));
        let report = dag.run(&store, &[c], 1, &NullMonitor);
        assert_eq!(report.nodes[1].outcome, Outcome::Pruned, "b is not under the root");
        assert_eq!(report.nodes[2].outcome, Outcome::Computed);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn exclusive_node_never_overlaps_other_nodes() {
        let store = temp_store("exclusive");
        let mut dag = Dag::new();
        let active = Arc::new(AtomicUsize::new(0));
        let overlap_seen = Arc::new(AtomicBool::new(false));
        for i in 0..12 {
            let tag = format!("shared-{i}");
            let active = Arc::clone(&active);
            dag.add(tag.clone(), &["excl", &tag], &[], move |_| {
                active.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(3));
                active.fetch_sub(1, Ordering::SeqCst);
                Ok(Vec::new())
            });
        }
        let active_x = Arc::clone(&active);
        let overlap = Arc::clone(&overlap_seen);
        let exclusive = dag.add("exclusive", &["excl", "alone"], &[], move |_| {
            active_x.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(3));
            if active_x.load(Ordering::SeqCst) != 1 {
                overlap.store(true, Ordering::SeqCst);
            }
            active_x.fetch_sub(1, Ordering::SeqCst);
            Ok(Vec::new())
        });
        dag.mark_exclusive(exclusive);
        // The key ignores the mark: exclusivity is scheduling only.
        assert_eq!(dag.key(exclusive), TaskKey::derive(&["excl", "alone"], &[]));

        let report = dag.run(&store, &[], 6, &NullMonitor);
        assert!(report.ok());
        assert_eq!(report.misses(), 13);
        assert!(
            !overlap_seen.load(Ordering::SeqCst),
            "the exclusive node observed a concurrent node"
        );
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn wide_fanout_executes_fully_on_many_workers() {
        let store = temp_store("fanout");
        let mut dag = Dag::new();
        let leaves: Vec<TaskId> = (0..32)
            .map(|i| {
                let tag = format!("leaf-{i}");
                let payload = tag.clone().into_bytes();
                dag.add(tag.clone(), &["fan", &tag], &[], move |_| Ok(payload.clone()))
            })
            .collect();
        dag.add("join", &["join"], &leaves, |ctx| {
            let mut out = Vec::new();
            for i in 0..ctx.dep_count() {
                out.extend_from_slice(ctx.dep(i));
            }
            Ok(out)
        });
        let report = dag.run(&store, &[], 8, &NullMonitor);
        assert!(report.ok());
        assert_eq!(report.misses(), 33);
        let joined = report.payload(32).map(<[u8]>::to_vec);
        // Deterministic join payload regardless of execution order.
        let expected: Vec<u8> = (0..32).flat_map(|i| format!("leaf-{i}").into_bytes()).collect();
        assert_eq!(joined.as_deref(), Some(expected.as_slice()));
        let _ = std::fs::remove_dir_all(store.root());
    }
}
