//! Content-addressed task keys.
//!
//! A key is the [`crate::hash`] digest of a node's *identity*: its
//! ordered string parts (pipeline name, benchmark, scheme, geometry,
//! input set, pass configuration — whatever the embedder deems
//! identity-bearing) followed by the keys of its dependencies, in edge
//! order. Because dependency keys are themselves digests of *their*
//! identity and dependencies, a key commits to the whole subtree
//! Merkle-style: two nodes share a key exactly when every input that
//! could influence their payload is identical. That is what makes a
//! store hit sufficient to skip not just the node but its entire
//! dependency cone — nothing below an unchanged key can have changed.
//!
//! Keys are computed *statically*, before anything runs: the pipelines
//! are deterministic functions of their configuration, so identity
//! never needs to include payload bytes.

use crate::hash::{to_hex, Fnv128};

/// A 128-bit content-addressed task key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskKey(pub [u8; 16]);

impl TaskKey {
    /// Derives a key from identity parts and dependency keys.
    ///
    /// Every part and every dependency key is fed length-prefixed, and
    /// the part/dependency sections are separated by their counts, so
    /// moving a string between sections or across a boundary always
    /// changes the digest.
    #[must_use]
    pub fn derive<S: AsRef<str>>(parts: &[S], deps: &[TaskKey]) -> TaskKey {
        let mut h = Fnv128::new();
        h.update(&(parts.len() as u64).to_le_bytes());
        for part in parts {
            h.update_field(part.as_ref().as_bytes());
        }
        h.update(&(deps.len() as u64).to_le_bytes());
        for dep in deps {
            h.update_field(&dep.0);
        }
        TaskKey(h.finish())
    }

    /// The 32-digit lowercase hex form (store filename, manifest
    /// `provenance.task_key` value).
    #[must_use]
    pub fn hex(&self) -> String {
        to_hex(&self.0)
    }

    /// Parses the 32-digit hex form back into a key.
    #[must_use]
    pub fn from_hex(hex: &str) -> Option<TaskKey> {
        let bytes = hex.as_bytes();
        if bytes.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Some(TaskKey(out))
    }
}

impl std::fmt::Display for TaskKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_parts_and_deps_both_matter() {
        let base = TaskKey::derive(&["measure", "crc", "small"], &[]);
        assert_eq!(base, TaskKey::derive(&["measure", "crc", "small"], &[]));
        assert_ne!(base, TaskKey::derive(&["measure", "crc", "large"], &[]));
        assert_ne!(base, TaskKey::derive(&["measure", "crc", "small"], &[base]));
    }

    #[test]
    fn merkle_composition_propagates_leaf_changes() {
        let leaf_v1 = TaskKey::derive(&["leaf", "v1"], &[]);
        let leaf_v2 = TaskKey::derive(&["leaf", "v2"], &[]);
        let root_v1 = TaskKey::derive(&["root"], &[leaf_v1]);
        let root_v2 = TaskKey::derive(&["root"], &[leaf_v2]);
        assert_ne!(root_v1, root_v2, "a changed leaf must change every ancestor key");
    }

    #[test]
    fn part_dep_boundary_is_unambiguous() {
        let as_part = TaskKey::derive(&["a", "b"], &[]);
        let as_dep = TaskKey::derive(&["a"], &[TaskKey::derive(&["b"], &[])]);
        assert_ne!(as_part, as_dep);
    }

    #[test]
    fn hex_round_trips() {
        let key = TaskKey::derive(&["round", "trip"], &[]);
        assert_eq!(TaskKey::from_hex(&key.hex()), Some(key));
        assert_eq!(TaskKey::from_hex("zz"), None);
        assert_eq!(TaskKey::from_hex(&"0".repeat(31)), None);
    }
}
