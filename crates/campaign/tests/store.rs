//! Store robustness: the four failure modes the campaign store must
//! absorb without ever serving a wrong payload — truncation, write
//! races, tampering, and gc racing a pending plan.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use wp_campaign::{Dag, NullMonitor, Store, TaskKey};

fn temp_store(tag: &str) -> Store {
    let root = std::env::temp_dir().join(format!("wp-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    Store::new(root)
}

fn entry_path(store: &Store, key: &TaskKey) -> std::path::PathBuf {
    let hex = key.hex();
    store.root().join("objects").join(&hex[..2]).join(hex)
}

#[test]
fn truncated_entry_is_a_miss_and_recomputes() {
    let store = temp_store("truncate");
    let counter = Arc::new(AtomicUsize::new(0));
    let build = |counter: Arc<AtomicUsize>| {
        let mut dag = Dag::new();
        dag.add("node", &["robust", "truncate"], &[], move |_| {
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(b"a payload long enough to truncate meaningfully".to_vec())
        });
        dag
    };

    let dag = build(Arc::clone(&counter));
    assert!(dag.run(&store, &[], 1, &NullMonitor).ok());
    assert_eq!(counter.load(Ordering::Relaxed), 1);

    // Tear the entry mid-payload, as a crashed host would.
    let path = entry_path(&store, &dag.key(0));
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    let rerun = build(Arc::clone(&counter)).run(&store, &[], 1, &NullMonitor);
    assert!(rerun.ok());
    assert_eq!(rerun.misses(), 1, "truncated entry must read as a miss");
    assert_eq!(counter.load(Ordering::Relaxed), 2, "and the node must recompute");

    // The recompute republished a valid entry.
    assert_eq!(
        store.get(&dag.key(0)).as_deref(),
        Some(&b"a payload long enough to truncate meaningfully"[..])
    );
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn tampered_payload_is_detected_by_hash_verification() {
    let store = temp_store("tamper");
    let key = TaskKey::derive(&["robust", "tamper"], &[]);
    store.put(&key, "tamper", b"authentic-payload").unwrap();

    // Flip one payload byte without touching the length: only the
    // digest check can catch this.
    let path = entry_path(&store, &key);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    assert!(store.get(&key).is_none(), "tampered content must miss");
    assert!(!path.exists(), "the tampered corpse must be swept");
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn concurrent_writers_on_one_key_publish_exactly_one_valid_entry() {
    let store = Arc::new(temp_store("race"));
    let key = TaskKey::derive(&["robust", "race"], &[]);
    // Content-addressed writers by construction write the same bytes.
    let payload = b"the one true payload for this key".to_vec();

    std::thread::scope(|scope| {
        for _ in 0..8 {
            let store = Arc::clone(&store);
            let payload = payload.clone();
            scope.spawn(move || {
                for _ in 0..50 {
                    store.put(&key, "race", &payload).unwrap();
                }
            });
        }
    });

    // Exactly one entry file exists and it verifies.
    let entries = store.entries().unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].key, key);
    assert_eq!(store.get(&key).as_deref(), Some(payload.as_slice()));
    // No temp litter left behind.
    let tmp: Vec<_> = std::fs::read_dir(store.root().join("tmp")).unwrap().collect();
    assert!(tmp.is_empty(), "every racing temp file must have been renamed away");
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn gc_never_deletes_entries_a_pending_plan_needs() {
    let store = temp_store("gc-pending");

    // A plan mid-flight: its leaf already published, the rest pending.
    let mut dag = Dag::new();
    let leaf = dag.add("leaf", &["gc", "leaf"], &[], |_| Ok(b"leaf".to_vec()));
    let _root = dag.add("root", &["gc", "root"], &[leaf], |_| Ok(b"root".to_vec()));
    assert!(dag.run(&store, &[leaf], 1, &NullMonitor).ok());

    // Stale entries from an older epoch that nothing pins.
    for i in 0..5 {
        let stale = TaskKey::derive(&["gc", "stale", &i.to_string()], &[]);
        store.put(&stale, "stale", b"old").unwrap();
    }

    // The campaign binary pins every key of the plan it is about to
    // run; even keep_last=0 must then preserve the leaf the pending
    // root still needs.
    let report = store.gc(0, &dag.all_keys()).unwrap();
    assert_eq!(report.deleted, 5);
    assert!(store.contains(&dag.key(leaf)));

    // The pending root now completes from the preserved leaf without
    // recomputing it.
    let resume = dag.run(&store, &[], 1, &NullMonitor);
    assert!(resume.ok());
    assert_eq!(resume.hits(), 1, "leaf must be served from the store");
    assert_eq!(resume.misses(), 1, "only the root still runs");
    let _ = std::fs::remove_dir_all(store.root());
}
