//! A two-pass text assembler for the guest ISA.
//!
//! The syntax is a pragmatic subset of GNU ARM assembly:
//!
//! ```text
//!     .text
//!     .global main
//! main:
//!     push {r4, r5, lr}
//!     mov r4, #0
//! .Lloop:
//!     add r4, r4, #1
//!     cmp r4, #10
//!     blt .Lloop
//!     ldr r0, =table          ; pseudo: expands to movw/movt
//!     ldr r1, [r0, r4, lsl #2]
//!     pop {r4, r5, pc}
//!
//!     .data
//!     .align 2
//! table:
//!     .word 1, 2, 3, handler  ; symbol words become data relocations
//! buf:
//!     .space 64
//!     .asciz "hello"
//! ```
//!
//! Labels starting with `.` are module-local. Branches and address
//! materialisations stay symbolic in the produced [`Module`] so the
//! link-time rewriter can reorder basic blocks freely.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{
    AddrMode, Address, AluOp, Cond, DataReloc, Insn, MemOffset, MemWidth, Module, MulOp, Op,
    Operand, Reg, RegList, Reloc, RelocKind, ShiftAmount, ShiftKind, Symbol, SymbolSection,
    TextEntry,
};

/// An assembly error with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// Module (file) name.
    pub module: String,
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.module, self.line, self.message)
    }
}

impl Error for AsmError {}

/// Assembles `source` into a relocatable [`Module`] named `name`.
///
/// # Errors
///
/// Returns an [`AsmError`] pinpointing the first syntax error, duplicate
/// label, out-of-range operand, or reference to an undefined module-local
/// symbol.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), wp_isa::AsmError> {
/// let module = wp_isa::assemble(
///     "demo",
///     "
///     .text
///     f: mov r0, #42
///        bx lr
///     ",
/// )?;
/// assert_eq!(module.text.len(), 2);
/// assert_eq!(module.symbol("f").unwrap().offset, 0);
/// # Ok(())
/// # }
/// ```
pub fn assemble(name: &str, source: &str) -> Result<Module, AsmError> {
    Assembler::new(name).run(source)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Section {
    Text,
    Data,
    Bss,
}

struct Assembler {
    module: Module,
    section: Section,
    equs: HashMap<String, i64>,
    line: usize,
}

type Result_<T> = Result<T, String>;

impl Assembler {
    fn new(name: &str) -> Assembler {
        Assembler {
            module: Module::new(name),
            section: Section::Text,
            equs: HashMap::new(),
            line: 0,
        }
    }

    fn err(&self, message: String) -> AsmError {
        AsmError { module: self.module.name.clone(), line: self.line, message }
    }

    fn run(mut self, source: &str) -> Result<Module, AsmError> {
        for (idx, raw) in source.lines().enumerate() {
            self.line = idx + 1;
            let line = strip_comment(raw);
            let mut rest = line.trim();
            // Consume any number of leading `label:` definitions.
            while let Some((label, after)) = split_label(rest) {
                self.define_label(label).map_err(|m| self.err(m))?;
                rest = after.trim();
            }
            if rest.is_empty() {
                continue;
            }
            if let Some(directive) = rest.strip_prefix('.') {
                self.directive(directive).map_err(|m| self.err(m))?;
            } else {
                self.instruction(rest).map_err(|m| self.err(m))?;
            }
        }
        self.check_locals()?;
        Ok(self.module)
    }

    fn define_label(&mut self, label: &str) -> Result_<()> {
        if !is_ident(label) {
            return Err(format!("invalid label `{label}`"));
        }
        if self.module.symbols.iter().any(|s| s.name == label) {
            return Err(format!("duplicate label `{label}`"));
        }
        let (section, offset) = match self.section {
            Section::Text => (SymbolSection::Text, self.module.text.len()),
            Section::Data => (SymbolSection::Data, self.module.data.len()),
            Section::Bss => (SymbolSection::Bss, self.module.bss_size),
        };
        self.module.symbols.push(Symbol { name: label.to_string(), section, offset });
        Ok(())
    }

    fn check_locals(&self) -> Result<(), AsmError> {
        let defined: Vec<&str> = self.module.symbols.iter().map(|s| s.name.as_str()).collect();
        let check = |symbol: &str| -> Result<(), AsmError> {
            if symbol.starts_with('.') && !defined.contains(&symbol) {
                return Err(AsmError {
                    module: self.module.name.clone(),
                    line: 0,
                    message: format!("undefined local symbol `{symbol}`"),
                });
            }
            Ok(())
        };
        for entry in &self.module.text {
            if let Some(reloc) = &entry.reloc {
                check(&reloc.symbol)?;
            }
        }
        for reloc in &self.module.data_relocs {
            check(&reloc.symbol)?;
        }
        Ok(())
    }

    // ----- directives -------------------------------------------------

    fn directive(&mut self, body: &str) -> Result_<()> {
        let (name, args) = match body.find(char::is_whitespace) {
            Some(pos) => (&body[..pos], body[pos..].trim()),
            None => (body, ""),
        };
        match name {
            "text" => self.section = Section::Text,
            "data" => self.section = Section::Data,
            "bss" => self.section = Section::Bss,
            "global" | "globl" => {
                // All non-dot symbols are already global; validate the name.
                if !is_ident(args) {
                    return Err(format!("invalid symbol in .global: `{args}`"));
                }
            }
            "word" | "long" => {
                for arg in split_args(args) {
                    self.emit_word(&arg)?;
                }
            }
            "half" | "short" => {
                for arg in split_args(args) {
                    let value = self.int_expr(&arg)?;
                    if !(-0x8000..0x1_0000).contains(&value) {
                        return Err(format!(".half value {value} out of range"));
                    }
                    let bytes = (value as u16).to_le_bytes();
                    self.emit_bytes(&bytes)?;
                }
            }
            "byte" => {
                for arg in split_args(args) {
                    let value = self.int_expr(&arg)?;
                    if !(-0x80..0x100).contains(&value) {
                        return Err(format!(".byte value {value} out of range"));
                    }
                    self.emit_bytes(&[value as u8])?;
                }
            }
            "space" | "skip" | "zero" => {
                let size = self.int_expr(args.trim())? as usize;
                match self.section {
                    Section::Data => self.module.data.extend(std::iter::repeat_n(0, size)),
                    Section::Bss => self.module.bss_size += size,
                    Section::Text => return Err(".space not allowed in .text".into()),
                }
            }
            "align" | "balign" => {
                let arg = self.int_expr(args.trim())?;
                let bytes = if name == "align" {
                    1usize.checked_shl(arg as u32).ok_or_else(|| format!("bad .align {arg}"))?
                } else {
                    arg as usize
                };
                if bytes == 0 || !bytes.is_power_of_two() {
                    return Err(format!("alignment {bytes} is not a power of two"));
                }
                match self.section {
                    Section::Data => {
                        while !self.module.data.len().is_multiple_of(bytes) {
                            self.module.data.push(0);
                        }
                    }
                    Section::Bss => {
                        while !self.module.bss_size.is_multiple_of(bytes) {
                            self.module.bss_size += 1;
                        }
                    }
                    Section::Text => {
                        while !self.module.text_bytes().is_multiple_of(bytes) {
                            self.module.text.push(TextEntry::plain(Insn::always(Op::Nop)));
                        }
                    }
                }
            }
            "ascii" | "asciz" | "string" => {
                let bytes = parse_string(args)?;
                self.emit_bytes(&bytes)?;
                if name != "ascii" {
                    self.emit_bytes(&[0])?;
                }
            }
            "equ" | "set" => {
                let parts = split_args(args);
                let [name, value_text] = parts.as_slice() else {
                    return Err(".equ needs `name, value`".into());
                };
                let value = self.int_expr(value_text)?;
                let name = name.clone();
                if !is_ident(&name) {
                    return Err(format!("invalid .equ name `{name}`"));
                }
                self.equs.insert(name, value);
            }
            _ => return Err(format!("unknown directive `.{name}`")),
        }
        Ok(())
    }

    fn emit_word(&mut self, arg: &str) -> Result_<()> {
        if self.section != Section::Data {
            return Err(".word only allowed in .data".into());
        }
        if !self.module.data.len().is_multiple_of(4) {
            return Err(".word at unaligned offset; add .align 2".into());
        }
        // Integer expression, or symbol(+/-addend) => data relocation.
        if let Ok(value) = self.int_expr(arg) {
            self.module.data.extend((value as u32).to_le_bytes());
            return Ok(());
        }
        let (symbol, addend) = parse_symbol_expr(arg)?;
        self.module
            .data_relocs
            .push(DataReloc { offset: self.module.data.len(), symbol, addend });
        self.module.data.extend(0u32.to_le_bytes());
        Ok(())
    }

    fn emit_bytes(&mut self, bytes: &[u8]) -> Result_<()> {
        match self.section {
            Section::Data => {
                self.module.data.extend_from_slice(bytes);
                Ok(())
            }
            _ => Err("data emission only allowed in .data".into()),
        }
    }

    // ----- instructions ------------------------------------------------

    fn instruction(&mut self, text: &str) -> Result_<()> {
        let (mnemonic, operands) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let mnemonic = mnemonic.to_ascii_lowercase();
        let args = split_args(operands);
        self.dispatch(&mnemonic, &args)
    }

    fn emit(&mut self, insn: Insn) {
        self.module.text.push(TextEntry::plain(insn));
    }

    fn emit_reloc(&mut self, insn: Insn, reloc: Reloc) {
        self.module.text.push(TextEntry { insn, reloc: Some(reloc) });
    }

    fn dispatch(&mut self, mnemonic: &str, args: &[String]) -> Result_<()> {
        if self.section != Section::Text {
            return Err("instructions only allowed in .text".into());
        }
        // Branch family first: `b`-prefixed mnemonics collide with cond
        // suffixes (`blt` = b+lt, `bleq` = bl+eq), so try longest base.
        if let Some(cond) = strip_cond(mnemonic, "bx") {
            return self.branch_reg(cond, args);
        }
        if let Some(cond) = strip_cond(mnemonic, "bl") {
            return self.branch(cond, true, args);
        }
        if let Some(cond) = strip_cond(mnemonic, "b") {
            return self.branch(cond, false, args);
        }
        // ALU family (with optional `s`, cond in either order).
        for op in AluOp::ALL {
            if let Some((cond, s)) = strip_cond_s(mnemonic, op.mnemonic()) {
                return self.alu(op, cond, s || op.is_compare(), args);
            }
        }
        // UAL shift aliases: `lsl rd, rm, #n` == `mov rd, rm, lsl #n`.
        for kind in ShiftKind::ALL {
            if let Some((cond, s)) = strip_cond_s(mnemonic, kind.mnemonic()) {
                return self.shift_alias(kind, cond, s, args);
            }
        }
        for (base, op) in [
            ("mul", MulOp::Mul),
            ("mla", MulOp::Mla),
            ("umull", MulOp::Umull),
            ("smull", MulOp::Smull),
        ] {
            if let Some((cond, s)) = strip_cond_s(mnemonic, base) {
                return self.mul(op, cond, s, args);
            }
        }
        if let Some(cond) = strip_cond(mnemonic, "movw") {
            return self.mov16(cond, false, args);
        }
        if let Some(cond) = strip_cond(mnemonic, "movt") {
            return self.mov16(cond, true, args);
        }
        if let Some((cond, load, width, signed)) = strip_mem(mnemonic) {
            return self.mem(cond, load, width, signed, args);
        }
        if let Some(cond) = strip_cond(mnemonic, "push") {
            return self.push_pop(cond, false, args);
        }
        if let Some(cond) = strip_cond(mnemonic, "pop") {
            return self.push_pop(cond, true, args);
        }
        if let Some(cond) = strip_cond(mnemonic, "swi") {
            return self.swi(cond, args);
        }
        if let Some(cond) = strip_cond(mnemonic, "svc") {
            return self.swi(cond, args);
        }
        if let Some(cond) = strip_cond(mnemonic, "nop") {
            if !args.is_empty() {
                return Err("nop takes no operands".into());
            }
            self.emit(Insn::new(cond, Op::Nop));
            return Ok(());
        }
        if let Some(cond) = strip_cond(mnemonic, "ret") {
            if !args.is_empty() {
                return Err("ret takes no operands".into());
            }
            self.emit(Insn::new(cond, Op::BranchReg { rm: Reg::LR }));
            return Ok(());
        }
        if let Some((cond, s)) = strip_cond_s(mnemonic, "neg") {
            // neg rd, rm => rsb rd, rm, #0
            if args.len() != 2 {
                return Err("neg needs `rd, rm`".into());
            }
            let rd = self.reg(&args[0])?;
            let rm = self.reg(&args[1])?;
            self.emit(Insn::new(
                cond,
                Op::Alu { op: AluOp::Rsb, s, rd, rn: rm, op2: Operand::Imm(0) },
            ));
            return Ok(());
        }
        if let Some(cond) = strip_cond(mnemonic, "adr") {
            return self.adr(cond, args);
        }
        Err(format!("unknown mnemonic `{mnemonic}`"))
    }

    fn reg(&self, text: &str) -> Result_<Reg> {
        Reg::parse(text.trim()).ok_or_else(|| format!("expected register, got `{text}`"))
    }

    fn imm(&self, text: &str) -> Result_<i64> {
        let body = text.trim().strip_prefix('#').unwrap_or(text.trim());
        self.int_expr(body)
    }

    fn int_expr(&self, text: &str) -> Result_<i64> {
        eval_int_expr(text, &self.equs)
    }

    fn alu(&mut self, op: AluOp, cond: Cond, s: bool, args: &[String]) -> Result_<()> {
        // Shapes:
        //   compares: op rn, op2
        //   mov/mvn:  op rd, op2
        //   others:   op rd, rn, op2   (or 2-operand form: op rd, op2 == op rd, rd, op2)
        let (rd, rn, op2_args): (Reg, Reg, &[String]) = if op.is_compare() {
            if args.len() < 2 {
                return Err(format!("{op} needs `rn, op2`"));
            }
            (Reg::R0, self.reg(&args[0])?, &args[1..])
        } else if !op.has_rn() {
            if args.len() < 2 {
                return Err(format!("{op} needs `rd, op2`"));
            }
            (self.reg(&args[0])?, Reg::R0, &args[1..])
        } else if args.len() >= 3 && Reg::parse(args[1].trim()).is_some() {
            (self.reg(&args[0])?, self.reg(&args[1])?, &args[2..])
        } else {
            // Two-operand shorthand `add rd, op2`.
            if args.len() < 2 {
                return Err(format!("{op} needs `rd, rn, op2`"));
            }
            let rd = self.reg(&args[0])?;
            (rd, rd, &args[1..])
        };
        let op2 = self.operand2(op2_args)?;
        // Immediate fix-ups: negative or oversized constants.
        if let Operand::Imm(raw) = op2 {
            return self.alu_imm_fixed(op, cond, s, rd, rn, raw as i64 as i32 as i64, op2_args);
        }
        self.emit(Insn::new(cond, Op::Alu { op, s, rd, rn, op2 }));
        Ok(())
    }

    /// Emits an ALU-with-immediate instruction, rewriting the opcode when
    /// the constant is negative (`add` ↔ `sub`, `cmp` ↔ `cmn`,
    /// `mov` → `mvn`, `and` → `bic`) and materialising genuinely
    /// unencodable constants through `ip` (`movw`/`movt` + register form).
    #[allow(clippy::too_many_arguments)] // mirrors the instruction fields
    fn alu_imm_fixed(
        &mut self,
        op: AluOp,
        cond: Cond,
        s: bool,
        rd: Reg,
        rn: Reg,
        value: i64,
        raw_args: &[String],
    ) -> Result_<()> {
        // Re-evaluate sign: operand2() already returned bits, recompute from text.
        let value = if raw_args.len() == 1 { self.imm(&raw_args[0])? } else { value };
        let fits = |v: i64| (0..=i64::from(Operand::MAX_IMM)).contains(&v);
        let flipped: Option<(AluOp, i64)> = match op {
            AluOp::Add => Some((AluOp::Sub, -value)),
            AluOp::Sub => Some((AluOp::Add, -value)),
            AluOp::Cmp => Some((AluOp::Cmn, -value)),
            AluOp::Cmn => Some((AluOp::Cmp, -value)),
            AluOp::Mov => Some((AluOp::Mvn, !value)),
            AluOp::Mvn => Some((AluOp::Mov, !value)),
            AluOp::And => Some((AluOp::Bic, !value)),
            AluOp::Bic => Some((AluOp::And, !value)),
            _ => None,
        };
        if fits(value) {
            self.emit(Insn::new(cond, Op::Alu { op, s, rd, rn, op2: Operand::Imm(value as u32) }));
            return Ok(());
        }
        if let Some((flip_op, flip_value)) = flipped {
            if fits(flip_value) {
                self.emit(Insn::new(
                    cond,
                    Op::Alu { op: flip_op, s, rd, rn, op2: Operand::Imm(flip_value as u32) },
                ));
                return Ok(());
            }
        }
        // Materialise through ip. `mov rd, #big` avoids the scratch.
        let bits = value as u32;
        if op == AluOp::Mov && !s {
            self.load_const(cond, rd, bits);
            return Ok(());
        }
        if rn == Reg::IP || rd == Reg::IP {
            return Err(format!("constant {value} needs ip as scratch, but ip is an operand"));
        }
        self.load_const(cond, Reg::IP, bits);
        self.emit(Insn::new(cond, Op::Alu { op, s, rd, rn, op2: Operand::reg(Reg::IP) }));
        Ok(())
    }

    fn load_const(&mut self, cond: Cond, rd: Reg, bits: u32) {
        self.emit(Insn::new(cond, Op::Mov16 { top: false, rd, imm: bits as u16 }));
        if bits >> 16 != 0 {
            self.emit(Insn::new(cond, Op::Mov16 { top: true, rd, imm: (bits >> 16) as u16 }));
        }
    }

    /// Parses a flexible second operand from the trailing argument slots:
    /// `#imm` | `rm` | `rm, <shift> #amt` | `rm, <shift> rs`.
    fn operand2(&self, args: &[String]) -> Result_<Operand> {
        match args {
            [single] => {
                let t = single.trim();
                if t.starts_with('#') || t.starts_with(|c: char| c.is_ascii_digit() || c == '-') {
                    let value = self.imm(t)?;
                    // Sign handled by the caller's fix-ups; pass bits through.
                    Ok(Operand::Imm(value as u32))
                } else {
                    Ok(Operand::reg(self.reg(t)?))
                }
            }
            [rm, shift] => {
                let rm = self.reg(rm)?;
                let (kind, amount) = self.shift_spec(shift)?;
                Ok(Operand::Reg { rm, kind, amount })
            }
            _ => Err("malformed second operand".into()),
        }
    }

    /// Parses `lsl #3`, `asr r4`, etc.
    fn shift_spec(&self, text: &str) -> Result_<(ShiftKind, ShiftAmount)> {
        let text = text.trim();
        let (name, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => return Err(format!("malformed shift `{text}`")),
        };
        let kind = ShiftKind::parse(name).ok_or_else(|| format!("unknown shift `{name}`"))?;
        if let Some(reg) = Reg::parse(rest) {
            return Ok((kind, ShiftAmount::Reg(reg)));
        }
        let amount = self.imm(rest)?;
        if !(0..32).contains(&amount) {
            return Err(format!("shift amount {amount} out of range"));
        }
        Ok((kind, ShiftAmount::Imm(amount as u8)))
    }

    fn shift_alias(
        &mut self,
        kind: ShiftKind,
        cond: Cond,
        s: bool,
        args: &[String],
    ) -> Result_<()> {
        if args.len() != 3 {
            return Err(format!("{kind} needs `rd, rm, #amt|rs`"));
        }
        let rd = self.reg(&args[0])?;
        let rm = self.reg(&args[1])?;
        let amount = if let Some(rs) = Reg::parse(args[2].trim()) {
            ShiftAmount::Reg(rs)
        } else {
            let amt = self.imm(&args[2])?;
            if !(0..32).contains(&amt) {
                return Err(format!("shift amount {amt} out of range"));
            }
            ShiftAmount::Imm(amt as u8)
        };
        self.emit(Insn::new(
            cond,
            Op::Alu { op: AluOp::Mov, s, rd, rn: Reg::R0, op2: Operand::Reg { rm, kind, amount } },
        ));
        Ok(())
    }

    fn mul(&mut self, op: MulOp, cond: Cond, s: bool, args: &[String]) -> Result_<()> {
        match op {
            MulOp::Mul => {
                if args.len() != 3 {
                    return Err("mul needs `rd, rm, rs`".into());
                }
                let rd = self.reg(&args[0])?;
                let rm = self.reg(&args[1])?;
                let rs = self.reg(&args[2])?;
                self.emit(Insn::new(cond, Op::Mul { op, s, rd, ra: Reg::R0, rm, rs }));
            }
            MulOp::Mla => {
                if args.len() != 4 {
                    return Err("mla needs `rd, rm, rs, rn`".into());
                }
                let rd = self.reg(&args[0])?;
                let rm = self.reg(&args[1])?;
                let rs = self.reg(&args[2])?;
                let ra = self.reg(&args[3])?;
                self.emit(Insn::new(cond, Op::Mul { op, s, rd, ra, rm, rs }));
            }
            MulOp::Umull | MulOp::Smull => {
                if args.len() != 4 {
                    return Err("mull needs `rdlo, rdhi, rm, rs`".into());
                }
                let rd = self.reg(&args[0])?;
                let ra = self.reg(&args[1])?;
                let rm = self.reg(&args[2])?;
                let rs = self.reg(&args[3])?;
                if rd == ra {
                    return Err("mull: rdlo and rdhi must differ".into());
                }
                self.emit(Insn::new(cond, Op::Mul { op, s, rd, ra, rm, rs }));
            }
        }
        Ok(())
    }

    fn mov16(&mut self, cond: Cond, top: bool, args: &[String]) -> Result_<()> {
        if args.len() != 2 {
            return Err("movw/movt need `rd, #imm16`".into());
        }
        let rd = self.reg(&args[0])?;
        let value = self.imm(&args[1])?;
        if !(0..0x1_0000).contains(&value) {
            return Err(format!("16-bit immediate {value} out of range"));
        }
        self.emit(Insn::new(cond, Op::Mov16 { top, rd, imm: value as u16 }));
        Ok(())
    }

    fn mem(
        &mut self,
        cond: Cond,
        load: bool,
        width: MemWidth,
        signed: bool,
        args: &[String],
    ) -> Result_<()> {
        if args.len() < 2 {
            return Err("ldr/str need `rd, <address>`".into());
        }
        let rd = self.reg(&args[0])?;
        // `ldr rd, =expr` pseudo-instruction.
        if load && width == MemWidth::Word {
            if let Some(expr) = args[1].trim().strip_prefix('=') {
                if args.len() != 2 {
                    return Err("malformed `ldr rd, =expr`".into());
                }
                return self.ldr_const(cond, rd, expr);
            }
        }
        let addr = self.address(&args[1..])?;
        if signed && !load {
            return Err("signed stores do not exist".into());
        }
        self.emit(Insn::new(cond, Op::Mem { load, width, signed, rd, addr }));
        Ok(())
    }

    fn ldr_const(&mut self, cond: Cond, rd: Reg, expr: &str) -> Result_<()> {
        if let Ok(value) = self.int_expr(expr) {
            self.load_const(cond, rd, value as u32);
            return Ok(());
        }
        let (symbol, addend) = parse_symbol_expr(expr)?;
        self.emit_reloc(
            Insn::new(cond, Op::Mov16 { top: false, rd, imm: 0 }),
            Reloc { kind: RelocKind::Abs16Lo, symbol: symbol.clone(), addend },
        );
        self.emit_reloc(
            Insn::new(cond, Op::Mov16 { top: true, rd, imm: 0 }),
            Reloc { kind: RelocKind::Abs16Hi, symbol, addend },
        );
        Ok(())
    }

    fn adr(&mut self, cond: Cond, args: &[String]) -> Result_<()> {
        if args.len() != 2 {
            return Err("adr needs `rd, label`".into());
        }
        let rd = self.reg(&args[0])?;
        self.ldr_const(cond, rd, args[1].trim())
    }

    /// Parses the bracketed address syntax. The brackets may have been
    /// split across comma-separated argument slots.
    fn address(&self, args: &[String]) -> Result_<Address> {
        let joined = args.join(",");
        let text = joined.trim();
        let open = text.find('[').ok_or_else(|| format!("expected `[` in `{text}`"))?;
        let close = text.find(']').ok_or_else(|| format!("expected `]` in `{text}`"))?;
        if open != 0 || close < open {
            return Err(format!("malformed address `{text}`"));
        }
        let inside = &text[open + 1..close];
        let after = text[close + 1..].trim();
        let parts: Vec<&str> = inside.split(',').map(str::trim).collect();
        let base = self.reg(parts[0])?;

        let parse_offset = |spec: &[&str]| -> Result_<MemOffset> {
            match spec {
                [] => Ok(MemOffset::Imm(0)),
                [one] => {
                    let t = one.trim();
                    if t.starts_with('#')
                        || t.starts_with(|c: char| c.is_ascii_digit())
                        || t.starts_with('-') && t[1..].starts_with(|c: char| c.is_ascii_digit())
                    {
                        let value = self.imm(t)?;
                        if value.unsigned_abs() > MemOffset::MAX_IMM as u64 {
                            return Err(format!("memory offset {value} out of range"));
                        }
                        Ok(MemOffset::Imm(value as i32))
                    } else {
                        let (add, name) = match t.strip_prefix('-') {
                            Some(rest) => (false, rest),
                            None => (true, t),
                        };
                        Ok(MemOffset::Reg {
                            rm: self.reg(name)?,
                            kind: ShiftKind::Lsl,
                            amount: 0,
                            add,
                        })
                    }
                }
                [reg, shift] => {
                    let t = reg.trim();
                    let (add, name) = match t.strip_prefix('-') {
                        Some(rest) => (false, rest),
                        None => (true, t),
                    };
                    let rm = self.reg(name)?;
                    let (kind, amount) = self.shift_spec(shift)?;
                    let ShiftAmount::Imm(amount) = amount else {
                        return Err("register-shifted memory offsets must be constant".into());
                    };
                    if amount >= 8 {
                        return Err(format!("memory shift amount {amount} out of range (0..=7)"));
                    }
                    Ok(MemOffset::Reg { rm, kind, amount, add })
                }
                _ => Err("malformed memory offset".into()),
            }
        };

        if after.is_empty() {
            // [rn] or [rn, off]
            Ok(Address { base, offset: parse_offset(&parts[1..])?, mode: AddrMode::Offset })
        } else if after == "!" {
            let offset = parse_offset(&parts[1..])?;
            if parts.len() == 1 {
                return Err("pre-index needs an offset".into());
            }
            Ok(Address { base, offset, mode: AddrMode::PreIndex })
        } else if let Some(post) = after.strip_prefix(',') {
            if parts.len() != 1 {
                return Err("post-index puts the offset after the brackets".into());
            }
            let post_parts: Vec<&str> = post.split(',').map(str::trim).collect();
            let offset = parse_offset(&post_parts)?;
            Ok(Address { base, offset, mode: AddrMode::PostIndex })
        } else {
            Err(format!("trailing junk after address: `{after}`"))
        }
    }

    fn push_pop(&mut self, cond: Cond, pop: bool, args: &[String]) -> Result_<()> {
        let joined = args.join(",");
        let text = joined.trim();
        let inner = text
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| format!("expected register list, got `{text}`"))?;
        let mut list = RegList::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((lo, hi)) = part.split_once('-') {
                let lo = self.reg(lo)?;
                let hi = self.reg(hi)?;
                if lo.index() > hi.index() {
                    return Err(format!("bad register range `{part}`"));
                }
                for i in lo.index()..=hi.index() {
                    list.insert(Reg::new(i as u8));
                }
            } else {
                list.insert(self.reg(part)?);
            }
        }
        if list.is_empty() {
            return Err("empty register list".into());
        }
        if !pop && list.contains(Reg::PC) {
            return Err("cannot push pc".into());
        }
        let op = if pop { Op::Pop { list } } else { Op::Push { list } };
        self.emit(Insn::new(cond, op));
        Ok(())
    }

    fn swi(&mut self, cond: Cond, args: &[String]) -> Result_<()> {
        if args.len() != 1 {
            return Err("swi needs `#imm`".into());
        }
        let value = self.imm(&args[0])?;
        if !(0..1 << 24).contains(&value) {
            return Err(format!("swi number {value} out of range"));
        }
        self.emit(Insn::new(cond, Op::Swi { imm: value as u32 }));
        Ok(())
    }

    fn branch(&mut self, cond: Cond, link: bool, args: &[String]) -> Result_<()> {
        if args.len() != 1 {
            return Err("branch needs a target label".into());
        }
        let (symbol, addend) = parse_symbol_expr(args[0].trim())?;
        self.emit_reloc(
            Insn::new(cond, Op::Branch { link, offset: 0 }),
            Reloc { kind: RelocKind::Branch24, symbol, addend },
        );
        Ok(())
    }

    fn branch_reg(&mut self, cond: Cond, args: &[String]) -> Result_<()> {
        if args.len() != 1 {
            return Err("bx needs a register".into());
        }
        let rm = self.reg(&args[0])?;
        self.emit(Insn::new(cond, Op::BranchReg { rm }));
        Ok(())
    }
}

// ----- lexical helpers -----------------------------------------------

/// Strips `;`, `@` and `//` comments, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut in_char = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            if b == b'\\' {
                i += 1;
            } else if b == b'"' {
                in_string = false;
            }
        } else if in_char {
            if b == b'\\' {
                i += 1;
            } else if b == b'\'' {
                in_char = false;
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'\'' => in_char = true,
                b';' | b'@' => return &line[..i],
                b'/' if bytes.get(i + 1) == Some(&b'/') => return &line[..i],
                _ => {}
            }
        }
        i += 1;
    }
    line
}

/// If the line starts with `label:`, returns `(label, rest)`.
fn split_label(line: &str) -> Option<(&str, &str)> {
    let colon = line.find(':')?;
    let label = line[..colon].trim();
    if label.is_empty() || !is_ident(label) {
        return None;
    }
    Some((label, &line[colon + 1..]))
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

/// Splits operands on commas that are not inside brackets, braces or
/// quotes. Returns trimmed, non-empty pieces.
fn split_args(text: &str) -> Vec<String> {
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut in_string = false;
    let mut in_char = false;
    let mut current = String::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            current.push(c);
            if c == '\\' {
                if let Some(n) = chars.next() {
                    current.push(n);
                }
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        if in_char {
            current.push(c);
            if c == '\\' {
                if let Some(n) = chars.next() {
                    current.push(n);
                }
            } else if c == '\'' {
                in_char = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                current.push(c);
            }
            '\'' => {
                in_char = true;
                current.push(c);
            }
            '[' | '{' => {
                depth += 1;
                current.push(c);
            }
            ']' | '}' => {
                depth -= 1;
                current.push(c);
            }
            ',' if depth == 0 => {
                if !current.trim().is_empty() {
                    args.push(current.trim().to_string());
                }
                current.clear();
            }
            // A comma *inside* brackets stays with its argument so the
            // address parser sees the whole `[rn, rm, lsl #2]` form; the
            // post-index comma also keeps `[rn], #4` together because the
            // `]` closed the bracket but the arg is re-joined later.
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        args.push(current.trim().to_string());
    }
    args
}

/// Parses an integer literal: decimal, `0x` hex, `0b` binary, `'c'` char,
/// with optional leading `-`.
fn parse_int(text: &str) -> Option<i64> {
    let text = text.trim();
    let (negative, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, text),
    };
    let magnitude: i64 = if let Some(hex) = body.strip_prefix("0x").or(body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or(body.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else if body.starts_with('\'') {
        let inner = body.strip_prefix('\'')?.strip_suffix('\'')?;
        let c = match inner {
            "\\n" => b'\n',
            "\\t" => b'\t',
            "\\r" => b'\r',
            "\\0" => 0,
            "\\\\" => b'\\',
            "\\'" => b'\'',
            s if s.len() == 1 => s.as_bytes()[0],
            _ => return None,
        };
        i64::from(c)
    } else {
        body.parse().ok()?
    };
    Some(if negative { -magnitude } else { magnitude })
}

/// Evaluates `a + b - c` style integer expressions over literals and
/// `.equ` constants.
fn eval_int_expr(text: &str, equs: &HashMap<String, i64>) -> Result<i64, String> {
    let mut total = 0i64;
    for (sign, term) in split_terms(text)? {
        let value = if let Some(v) = parse_int(&term) {
            v
        } else if let Some(v) = equs.get(term.trim()) {
            *v
        } else {
            return Err(format!("cannot evaluate `{term}` as an integer"));
        };
        total += sign * value;
    }
    Ok(total)
}

/// Parses `symbol`, `symbol+4`, `symbol-8` into `(symbol, addend)`.
fn parse_symbol_expr(text: &str) -> Result<(String, i64), String> {
    let terms = split_terms(text)?;
    let mut symbol: Option<String> = None;
    let mut addend = 0i64;
    for (sign, term) in terms {
        if let Some(v) = parse_int(&term) {
            addend += sign * v;
        } else if is_ident(term.trim()) {
            if symbol.is_some() {
                return Err(format!("multiple symbols in expression `{text}`"));
            }
            if sign < 0 {
                return Err(format!("cannot negate a symbol in `{text}`"));
            }
            symbol = Some(term.trim().to_string());
        } else {
            return Err(format!("malformed expression term `{term}`"));
        }
    }
    match symbol {
        Some(symbol) => Ok((symbol, addend)),
        None => Err(format!("expected a symbol in `{text}`")),
    }
}

/// Splits an additive expression into signed terms, respecting that `-`
/// may be a literal sign only at the start.
fn split_terms(text: &str) -> Result<Vec<(i64, String)>, String> {
    let text = text.trim();
    if text.is_empty() {
        return Err("empty expression".into());
    }
    let mut terms = Vec::new();
    let mut sign = 1i64;
    let mut current = String::new();
    let mut first = true;
    for c in text.chars() {
        match c {
            '+' | '-' if !first && !current.trim().is_empty() => {
                terms.push((sign, std::mem::take(&mut current)));
                sign = if c == '+' { 1 } else { -1 };
            }
            '-' if current.trim().is_empty() => {
                // leading minus binds to the literal
                current.push(c);
            }
            _ => current.push(c),
        }
        first = false;
    }
    if current.trim().is_empty() {
        return Err(format!("dangling operator in `{text}`"));
    }
    terms.push((sign, current));
    Ok(terms)
}

fn parse_string(text: &str) -> Result<Vec<u8>, String> {
    let text = text.trim();
    let inner = text
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("expected quoted string, got `{text}`"))?;
    let mut bytes = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => bytes.push(b'\n'),
                Some('t') => bytes.push(b'\t'),
                Some('r') => bytes.push(b'\r'),
                Some('0') => bytes.push(0),
                Some('\\') => bytes.push(b'\\'),
                Some('"') => bytes.push(b'"'),
                other => return Err(format!("bad escape `\\{other:?}`")),
            }
        } else {
            let mut buf = [0u8; 4];
            bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(bytes)
}

/// Strips a condition suffix off `mnemonic` given its `base`; returns the
/// condition if the remainder parses.
fn strip_cond(mnemonic: &str, base: &str) -> Option<Cond> {
    let rest = mnemonic.strip_prefix(base)?;
    Cond::parse_suffix(rest)
}

/// Strips `s` and condition suffixes in either order.
fn strip_cond_s(mnemonic: &str, base: &str) -> Option<(Cond, bool)> {
    let rest = mnemonic.strip_prefix(base)?;
    if let Some(cond) = Cond::parse_suffix(rest) {
        return Some((cond, false));
    }
    if let Some(no_s) = rest.strip_suffix('s') {
        if let Some(cond) = Cond::parse_suffix(no_s) {
            return Some((cond, true));
        }
    }
    if let Some(no_s) = rest.strip_prefix('s') {
        if let Some(cond) = Cond::parse_suffix(no_s) {
            return Some((cond, true));
        }
    }
    None
}

/// Parses `ldr`/`str` mnemonics with width and condition suffixes in
/// either order: `ldrb`, `ldrbne`, `ldrneb`, `strh`, `ldrsh`, ...
fn strip_mem(mnemonic: &str) -> Option<(Cond, bool, MemWidth, bool)> {
    let (load, rest) = if let Some(rest) = mnemonic.strip_prefix("ldr") {
        (true, rest)
    } else if let Some(rest) = mnemonic.strip_prefix("str") {
        (false, rest)
    } else {
        return None;
    };
    let widths: [(&str, MemWidth, bool); 5] = [
        ("sb", MemWidth::Byte, true),
        ("sh", MemWidth::Half, true),
        ("b", MemWidth::Byte, false),
        ("h", MemWidth::Half, false),
        ("", MemWidth::Word, false),
    ];
    // width then cond
    for (suffix, width, signed) in widths {
        if let Some(after) = rest.strip_prefix(suffix) {
            if let Some(cond) = Cond::parse_suffix(after) {
                return Some((cond, load, width, signed));
            }
        }
    }
    // cond then width
    for (suffix, width, signed) in widths {
        if let Some(before) = rest.strip_suffix(suffix) {
            if let Some(cond) = Cond::parse_suffix(before) {
                return Some((cond, load, width, signed));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asm(src: &str) -> Module {
        assemble("test", src).expect("assembly failed")
    }

    fn asm_err(src: &str) -> AsmError {
        assemble("test", src).expect_err("assembly unexpectedly succeeded")
    }

    fn text(src: &str) -> Vec<String> {
        asm(src).text.iter().map(|e| e.insn.to_string()).collect()
    }

    #[test]
    fn basic_alu() {
        assert_eq!(
            text("add r0, r1, #4\nsubs r2, r2, r3\nmov r4, r5, lsl #3"),
            vec!["add r0, r1, #4", "subs r2, r2, r3", "mov r4, r5, lsl #3"]
        );
    }

    #[test]
    fn two_operand_shorthand() {
        assert_eq!(text("add r0, #1"), vec!["add r0, r0, #1"]);
        assert_eq!(text("orr r3, r4"), vec!["orr r3, r3, r4"]);
    }

    #[test]
    fn conditional_mnemonics() {
        assert_eq!(
            text("addeq r0, r1, #1\nmovne r2, #0\nsubges r3, r3, #1\nsublts r3, r3, #1"),
            vec!["addeq r0, r1, #1", "movne r2, #0", "subges r3, r3, #1", "sublts r3, r3, #1"]
        );
    }

    #[test]
    fn branch_mnemonic_disambiguation() {
        let m = asm("x: b x\n bl x\n blt x\n bleq x\n bls x\n bx lr\n bxne r3");
        let kinds: Vec<String> = m.text.iter().map(|e| e.insn.to_string()).collect();
        assert!(kinds[0].starts_with("b "));
        assert!(kinds[1].starts_with("bl "));
        assert!(kinds[2].starts_with("blt "));
        assert!(kinds[3].starts_with("bleq "));
        assert!(kinds[4].starts_with("bls "));
        assert_eq!(kinds[5], "bx lr");
        assert_eq!(kinds[6], "bxne r3");
        // All direct branches carry Branch24 relocations to `x`.
        for entry in &m.text[..5] {
            let reloc = entry.reloc.as_ref().expect("branch reloc");
            assert_eq!(reloc.kind, RelocKind::Branch24);
            assert_eq!(reloc.symbol, "x");
        }
    }

    #[test]
    fn negative_immediate_fixups() {
        assert_eq!(text("add r0, r1, #-4"), vec!["sub r0, r1, #4"]);
        assert_eq!(text("sub r0, r1, #-4"), vec!["add r0, r1, #4"]);
        assert_eq!(text("cmp r0, #-1"), vec!["cmn r0, #1"]);
        assert_eq!(text("mov r0, #-1"), vec!["mvn r0, #0"]);
        assert_eq!(text("and r0, r1, #-2"), vec!["bic r0, r1, #1"]);
    }

    #[test]
    fn large_constants_materialise() {
        // mov with a large constant becomes movw/movt into rd itself.
        assert_eq!(text("mov r0, #0x12345678"), vec!["movw r0, #22136", "movt r0, #4660"]);
        // other ops go through ip.
        assert_eq!(
            text("add r0, r1, #0x10000"),
            vec!["movw r12, #0", "movt r12, #1", "add r0, r1, r12"]
        );
        // 16-bit constants skip the movt.
        assert_eq!(text("mov r0, #0x8000"), vec!["movw r0, #32768"]);
    }

    #[test]
    fn ldr_pseudo() {
        let m = asm(".data\nv: .word 0\n.text\nf: ldr r0, =v\nldr r1, =0x42");
        assert_eq!(m.text.len(), 3);
        assert_eq!(m.text[0].reloc.as_ref().unwrap().kind, RelocKind::Abs16Lo);
        assert_eq!(m.text[1].reloc.as_ref().unwrap().kind, RelocKind::Abs16Hi);
        assert_eq!(m.text[2].insn.to_string(), "movw r1, #66");
    }

    #[test]
    fn memory_operands() {
        assert_eq!(
            text(
                "ldr r0, [r1]\nldr r0, [r1, #8]\nstr r0, [r1, #-8]\n\
                 ldrb r0, [r1, r2]\nldr r0, [r1, r2, lsl #2]\n\
                 str r0, [r1, #4]!\nldr r0, [r1], #4\nldrsh r0, [r1, -r2]"
            ),
            vec![
                "ldr r0, [r1]",
                "ldr r0, [r1, #8]",
                "str r0, [r1, #-8]",
                "ldrb r0, [r1, r2]",
                "ldr r0, [r1, r2, lsl #2]",
                "str r0, [r1, #4]!",
                "ldr r0, [r1], #4",
                "ldrsh r0, [r1, -r2]",
            ]
        );
    }

    #[test]
    fn push_pop_ranges() {
        assert_eq!(
            text("push {r4-r6, lr}\npop {r4-r6, pc}"),
            vec!["push {r4, r5, r6, lr}", "pop {r4, r5, r6, pc}"]
        );
    }

    #[test]
    fn data_directives() {
        let m = asm(".data\n\
             a: .word 1, 2, 0x10\n\
             b: .byte 1, 2\n\
             .align 2\n\
             c: .half 0x1234\n\
             s: .asciz \"hi\"\n\
             .bss\n\
             buf: .space 32\n");
        assert_eq!(&m.data[0..4], &1u32.to_le_bytes());
        assert_eq!(&m.data[8..12], &0x10u32.to_le_bytes());
        assert_eq!(m.data[12], 1);
        assert_eq!(m.data[13], 2);
        // aligned to 4 before the half
        assert_eq!(&m.data[16..18], &0x1234u16.to_le_bytes());
        assert_eq!(&m.data[18..21], b"hi\0");
        assert_eq!(m.bss_size, 32);
        assert_eq!(m.symbol("buf").unwrap().section, SymbolSection::Bss);
        assert_eq!(m.symbol("c").unwrap().offset, 16);
    }

    #[test]
    fn word_symbol_relocs() {
        let m = asm(".text\nf: nop\n.data\ntbl: .word f, f+4, 9");
        assert_eq!(m.data_relocs.len(), 2);
        assert_eq!(m.data_relocs[0].offset, 0);
        assert_eq!(m.data_relocs[0].symbol, "f");
        assert_eq!(m.data_relocs[1].addend, 4);
        assert_eq!(&m.data[8..12], &9u32.to_le_bytes());
    }

    #[test]
    fn equ_constants() {
        let m = asm(".equ SIZE, 64\n.text\nf: mov r0, #SIZE\n.data\n.space SIZE");
        assert_eq!(m.text[0].insn.to_string(), "mov r0, #64");
        assert_eq!(m.data.len(), 64);
    }

    #[test]
    fn comments_are_stripped() {
        let m = asm("f: mov r0, #1 ; semicolon\n\
             mov r1, #2 @ at-sign\n\
             mov r2, #3 // slashes\n\
             mov r3, #';'\n");
        assert_eq!(m.text.len(), 4);
        assert_eq!(m.text[3].insn.to_string(), format!("mov r3, #{}", b';'));
    }

    #[test]
    fn char_immediates() {
        assert_eq!(text("mov r0, #'a'"), vec![format!("mov r0, #{}", b'a')]);
        assert_eq!(text("cmp r0, #'\\n'"), vec![format!("cmp r0, #{}", b'\n')]);
    }

    #[test]
    fn mul_forms() {
        assert_eq!(
            text("mul r0, r1, r2\nmla r0, r1, r2, r3\numull r0, r1, r2, r3\nsmull r0, r1, r2, r3"),
            vec![
                "mul r0, r1, r2",
                "mla r0, r1, r2, r3",
                "umull r0, r1, r2, r3",
                "smull r0, r1, r2, r3",
            ]
        );
    }

    #[test]
    fn shift_aliases() {
        assert_eq!(text("lsl r0, r1, #3"), vec!["mov r0, r1, lsl #3"]);
        assert_eq!(text("lsrs r0, r1, r2"), vec!["movs r0, r1, lsr r2"]);
        assert_eq!(text("asr r5, r5, #31"), vec!["mov r5, r5, asr #31"]);
    }

    #[test]
    fn labels_and_sections() {
        let m = asm(".text\nmain: nop\nhelper: nop\n.data\nval: .word 5\n");
        assert_eq!(m.symbol("main").unwrap().offset, 0);
        assert_eq!(m.symbol("helper").unwrap().offset, 1);
        assert_eq!(m.symbol("val").unwrap().section, SymbolSection::Data);
    }

    #[test]
    fn errors_carry_position() {
        let err = asm_err("nop\nbogus r0\n");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn error_cases() {
        assert!(asm_err("mov r0").message.contains("needs"));
        assert!(asm_err("push {}").message.contains("empty"));
        assert!(asm_err("push {pc}").message.contains("cannot push pc"));
        assert!(asm_err("x: nop\nx: nop").message.contains("duplicate"));
        assert!(asm_err("b .Lmissing").message.contains("undefined local"));
        assert!(asm_err(".data\n.word 1\n.byte 7\n.word 2").message.contains("unaligned"));
        assert!(asm_err("ldr r0, [r1, #9999]").message.contains("out of range"));
        assert!(asm_err("strsb r0, [r1]").message.contains("signed stores"));
        assert!(asm_err(".weird").message.contains("unknown directive"));
        assert!(asm_err(".text\n.word 1").message.contains("only allowed in .data"));
    }

    #[test]
    fn swi_and_nop() {
        assert_eq!(text("swi #3\nsvc #4\nnop\nret"), vec!["swi #3", "swi #4", "nop", "bx lr"]);
    }

    #[test]
    fn neg_alias() {
        assert_eq!(text("neg r0, r1"), vec!["rsb r0, r1, #0"]);
        assert_eq!(text("negs r0, r1"), vec!["rsbs r0, r1, #0"]);
    }

    #[test]
    fn align_in_text_pads_with_nops() {
        let m = asm("f: nop\n.align 3\ng: nop");
        assert_eq!(m.symbol("g").unwrap().offset, 2);
        assert_eq!(m.text[1].insn.op, Op::Nop);
    }

    #[test]
    fn multiple_labels_one_line() {
        let m = asm("a: b: nop");
        assert_eq!(m.symbol("a").unwrap().offset, 0);
        assert_eq!(m.symbol("b").unwrap().offset, 0);
    }
}
