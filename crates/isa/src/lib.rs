//! # wp-isa — the guest instruction set
//!
//! The instruction-set substrate of the *compiler way-placement*
//! reproduction (Jones et al., DATE 2008). This crate defines a clean
//! 32-bit, fixed-width, ARM-flavoured embedded ISA together with:
//!
//! * typed instruction definitions ([`Insn`], [`Op`], [`Operand`], ...);
//! * a binary [encoding](Insn::encode) / [decoding](Insn::decode) pair;
//! * carry-exact [ALU semantics](alu) shared by the simulators;
//! * a GNU-style [text assembler](assemble) producing relocatable
//!   [`Module`]s;
//! * the [object model](Module) and linked [`Image`] consumed by the
//!   `wp-linker` link-time rewriter and the `wp-sim` cycle simulator.
//!
//! The ISA deliberately mirrors the Intel XScale's ARMv5-class ISA in the
//! ways that matter to the paper — fixed 4-byte instructions (so the
//! I-cache fetch stream is homogeneous), predication (so basic blocks have
//! ARM-like shapes), and a link register + `push`/`pop` calling
//! convention (so call/return chains constrain code layout exactly as
//! Diablo's did).
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), wp_isa::AsmError> {
//! use wp_isa::{assemble, Insn};
//!
//! let module = assemble(
//!     "triangle",
//!     "
//!     .text
//! triangle:                   ; r0 = 0+1+...+r0
//!     mov r1, #0
//! .Lloop:
//!     add r1, r1, r0
//!     subs r0, r0, #1
//!     bne .Lloop
//!     mov r0, r1
//!     bx lr
//!     ",
//! )?;
//! assert_eq!(module.text.len(), 6);
//!
//! // Every instruction round-trips through its 32-bit encoding.
//! for entry in &module.text {
//!     let word = entry.insn.encode();
//!     assert_eq!(Insn::decode(word), Ok(entry.insn));
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod alu;
mod asm;
mod cond;
mod disasm;
mod encode;
mod insn;
mod object;
mod reg;
mod shift;

pub use asm::{assemble, AsmError};
pub use cond::{Cond, Flags};
pub use disasm::DisasmLine;
pub use encode::{canonical, DecodeError};
pub use insn::{AddrMode, Address, AluOp, Insn, MemOffset, MemWidth, MulOp, Op, Operand};
pub use object::{
    DataReloc, Image, ImageError, Module, Reloc, RelocKind, Symbol, SymbolSection, TextEntry,
};
pub use reg::{Reg, RegList, NUM_REGS};
pub use shift::{ShiftAmount, ShiftKind};
