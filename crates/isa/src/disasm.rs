//! Disassembly of linked images: symbol-annotated listings for
//! debugging layouts and inspecting what the link-time rewriter emitted.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{Image, Insn, Op};

/// One disassembled line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DisasmLine {
    /// Instruction address.
    pub addr: u32,
    /// Labels defined at this address.
    pub labels: Vec<String>,
    /// The rendered instruction.
    pub text: String,
    /// For direct branches, the resolved target (symbol if known).
    pub target: Option<String>,
}

impl Image {
    /// Disassembles the text section into annotated lines.
    ///
    /// # Examples
    ///
    /// ```
    /// use wp_isa::{Cond, Image, Insn, Op};
    ///
    /// let image = Image {
    ///     text: vec![Insn::new(Cond::Al, Op::Nop)],
    ///     data: Vec::new(),
    ///     bss_size: 0,
    ///     entry: Image::TEXT_BASE,
    ///     symbols: [("main".to_string(), Image::TEXT_BASE)].into_iter().collect(),
    /// };
    /// let lines = image.disassemble();
    /// assert_eq!(lines[0].labels, vec!["main"]);
    /// assert_eq!(lines[0].text, "nop");
    /// ```
    #[must_use]
    pub fn disassemble(&self) -> Vec<DisasmLine> {
        // Invert the symbol table: address -> names.
        let mut labels_at: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for (name, &addr) in &self.symbols {
            labels_at.entry(addr).or_default().push(name.clone());
        }
        self.iter_text()
            .map(|(addr, insn)| {
                let target = branch_target(addr, insn).map(|t| {
                    labels_at
                        .get(&t)
                        .and_then(|names| names.first().cloned())
                        .unwrap_or_else(|| format!("{t:#x}"))
                });
                DisasmLine {
                    addr,
                    labels: labels_at.get(&addr).cloned().unwrap_or_default(),
                    text: insn.to_string(),
                    target,
                }
            })
            .collect()
    }

    /// Renders the whole text section as one listing string.
    #[must_use]
    pub fn disassembly(&self) -> String {
        let mut out = String::new();
        for line in self.disassemble() {
            for label in &line.labels {
                let _ = writeln!(out, "{label}:");
            }
            match &line.target {
                Some(target) => {
                    let _ = writeln!(out, "  {:#010x}  {:<32} ; -> {target}", line.addr, line.text);
                }
                None => {
                    let _ = writeln!(out, "  {:#010x}  {}", line.addr, line.text);
                }
            }
        }
        out
    }
}

fn branch_target(addr: u32, insn: Insn) -> Option<u32> {
    match insn.op {
        Op::Branch { offset, .. } => Some(addr.wrapping_add(4).wrapping_add((offset as u32) << 2)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Insn, Op, Reg};

    fn image() -> Image {
        // main: b skip / nop / skip: bx lr
        Image {
            text: vec![
                Insn::always(Op::Branch { link: false, offset: 1 }),
                Insn::new(Cond::Al, Op::Nop),
                Insn::always(Op::BranchReg { rm: Reg::LR }),
            ],
            data: Vec::new(),
            bss_size: 0,
            entry: Image::TEXT_BASE,
            symbols: [
                ("main".to_string(), Image::TEXT_BASE),
                ("skip".to_string(), Image::TEXT_BASE + 8),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn branch_targets_resolve_to_symbols() {
        let lines = image().disassemble();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].labels, vec!["main"]);
        assert_eq!(lines[0].target.as_deref(), Some("skip"));
        assert!(lines[1].target.is_none());
        assert_eq!(lines[2].labels, vec!["skip"]);
    }

    #[test]
    fn listing_contains_labels_and_arrows() {
        let listing = image().disassembly();
        assert!(listing.contains("main:"));
        assert!(listing.contains("skip:"));
        assert!(listing.contains("; -> skip"));
        assert!(listing.contains("bx lr"));
    }

    #[test]
    fn unknown_targets_print_addresses() {
        let mut img = image();
        img.symbols.clear();
        let lines = img.disassemble();
        assert_eq!(lines[0].target.as_deref(), Some("0x8008"));
    }
}
