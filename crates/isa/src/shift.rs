//! The barrel shifter: shift kinds and their carry-exact evaluation.
//!
//! Data-processing instructions may route their second operand through the
//! barrel shifter. The shifter produces both a value and a carry-out, which
//! flag-setting logical instructions copy into the C flag.

use std::fmt;

/// A barrel-shifter operation kind.
///
/// # Examples
///
/// ```
/// use wp_isa::ShiftKind;
/// let (value, _carry) = ShiftKind::Lsl.apply(1, 4, false);
/// assert_eq!(value, 16);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum ShiftKind {
    /// Logical shift left.
    Lsl = 0,
    /// Logical shift right.
    Lsr = 1,
    /// Arithmetic shift right (sign-extending).
    Asr = 2,
    /// Rotate right.
    Ror = 3,
}

impl ShiftKind {
    /// All four shift kinds in encoding order.
    pub const ALL: [ShiftKind; 4] =
        [ShiftKind::Lsl, ShiftKind::Lsr, ShiftKind::Asr, ShiftKind::Ror];

    /// The 2-bit encoding field.
    #[must_use]
    pub const fn field(self) -> u32 {
        self as u32
    }

    /// Decodes a 2-bit encoding field.
    #[must_use]
    pub const fn from_field(bits: u32) -> ShiftKind {
        match bits & 0b11 {
            0 => ShiftKind::Lsl,
            1 => ShiftKind::Lsr,
            2 => ShiftKind::Asr,
            _ => ShiftKind::Ror,
        }
    }

    /// The assembler mnemonic.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            ShiftKind::Lsl => "lsl",
            ShiftKind::Lsr => "lsr",
            ShiftKind::Asr => "asr",
            ShiftKind::Ror => "ror",
        }
    }

    /// Parses an assembler mnemonic (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<ShiftKind> {
        match s.to_ascii_lowercase().as_str() {
            "lsl" => Some(ShiftKind::Lsl),
            "lsr" => Some(ShiftKind::Lsr),
            "asr" => Some(ShiftKind::Asr),
            "ror" => Some(ShiftKind::Ror),
            _ => None,
        }
    }

    /// Applies the shift to `value` by `amount` bit positions, returning
    /// `(result, carry_out)`.
    ///
    /// Semantics follow ARM's barrel shifter, with `carry_in` reported as
    /// the carry-out when the shift amount is zero (no shift happened):
    ///
    /// * amounts `1..=31` behave as the shift name suggests, carry-out is
    ///   the last bit shifted out;
    /// * `Lsl`/`Lsr` by 32 produce 0 with carry = bit 0 / bit 31;
    /// * `Asr` by ≥ 32 produces the sign fill with carry = sign bit;
    /// * `Lsl`/`Lsr` by > 32 produce 0 with carry clear;
    /// * `Ror` reduces the amount modulo 32 (amount ≡ 0 mod 32 with a
    ///   non-zero amount leaves the value intact, carry = bit 31).
    #[must_use]
    pub fn apply(self, value: u32, amount: u32, carry_in: bool) -> (u32, bool) {
        if amount == 0 {
            return (value, carry_in);
        }
        match self {
            ShiftKind::Lsl => match amount {
                1..=31 => (value << amount, value >> (32 - amount) & 1 != 0),
                32 => (0, value & 1 != 0),
                _ => (0, false),
            },
            ShiftKind::Lsr => match amount {
                1..=31 => (value >> amount, value >> (amount - 1) & 1 != 0),
                32 => (0, value >> 31 != 0),
                _ => (0, false),
            },
            ShiftKind::Asr => match amount {
                1..=31 => {
                    (((value as i32) >> amount) as u32, (value as i32) >> (amount - 1) & 1 != 0)
                }
                _ => {
                    let fill = ((value as i32) >> 31) as u32;
                    (fill, fill & 1 != 0)
                }
            },
            ShiftKind::Ror => {
                let amt = amount % 32;
                if amt == 0 {
                    (value, value >> 31 != 0)
                } else {
                    let result = value.rotate_right(amt);
                    (result, result >> 31 != 0)
                }
            }
        }
    }
}

impl fmt::Display for ShiftKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// A shift applied to a register operand: either by a constant amount or by
/// the value of another register (its low 8 bits).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ShiftAmount {
    /// Shift by a constant `0..=31`.
    Imm(u8),
    /// Shift by the low byte of a register.
    Reg(crate::Reg),
}

impl fmt::Display for ShiftAmount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShiftAmount::Imm(n) => write!(f, "#{n}"),
            ShiftAmount::Reg(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_amount_passes_carry_through() {
        for kind in ShiftKind::ALL {
            assert_eq!(kind.apply(0xdead_beef, 0, true), (0xdead_beef, true));
            assert_eq!(kind.apply(0xdead_beef, 0, false), (0xdead_beef, false));
        }
    }

    #[test]
    fn lsl_semantics() {
        assert_eq!(ShiftKind::Lsl.apply(1, 4, false), (16, false));
        assert_eq!(ShiftKind::Lsl.apply(0x8000_0001, 1, false), (2, true));
        assert_eq!(ShiftKind::Lsl.apply(1, 32, false), (0, true));
        assert_eq!(ShiftKind::Lsl.apply(0xffff_ffff, 40, true), (0, false));
    }

    #[test]
    fn lsr_semantics() {
        assert_eq!(ShiftKind::Lsr.apply(16, 4, false), (1, false));
        assert_eq!(ShiftKind::Lsr.apply(3, 1, false), (1, true));
        assert_eq!(ShiftKind::Lsr.apply(0x8000_0000, 32, false), (0, true));
        assert_eq!(ShiftKind::Lsr.apply(0xffff_ffff, 33, true), (0, false));
    }

    #[test]
    fn asr_semantics() {
        assert_eq!(ShiftKind::Asr.apply(0x8000_0000, 4, false), (0xf800_0000, false));
        assert_eq!(ShiftKind::Asr.apply(0xffff_ffff, 40, false), (0xffff_ffff, true));
        assert_eq!(ShiftKind::Asr.apply(0x7fff_ffff, 40, true), (0, false));
        assert_eq!(ShiftKind::Asr.apply(5, 1, false), (2, true));
    }

    #[test]
    fn ror_semantics() {
        assert_eq!(ShiftKind::Ror.apply(1, 1, false), (0x8000_0000, true));
        assert_eq!(ShiftKind::Ror.apply(0xf0, 4, false), (0xf, false));
        // amount 32 leaves value intact, carry = bit 31
        assert_eq!(ShiftKind::Ror.apply(0x8000_0000, 32, false), (0x8000_0000, true));
        assert_eq!(ShiftKind::Ror.apply(0x1234_5678, 36, false), {
            let v = 0x1234_5678u32.rotate_right(4);
            (v, v >> 31 != 0)
        });
    }

    #[test]
    fn field_round_trip() {
        for kind in ShiftKind::ALL {
            assert_eq!(ShiftKind::from_field(kind.field()), kind);
            assert_eq!(ShiftKind::parse(kind.mnemonic()), Some(kind));
        }
        assert_eq!(ShiftKind::parse("rrx"), None);
    }
}
