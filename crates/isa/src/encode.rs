//! Binary encoding and decoding of instructions.
//!
//! Every instruction is one little-endian 32-bit word:
//!
//! ```text
//! bits 31..28  condition code
//! bits 27..24  class
//! bits 23..0   class-specific payload
//! ```
//!
//! | class | meaning              | payload layout (msb → lsb)                         |
//! |-------|----------------------|----------------------------------------------------|
//! | 0x0   | ALU, immediate       | op:4 s:1 rn:4 rd:4 imm:11                          |
//! | 0x1   | ALU, reg, imm shift  | op:4 s:1 rn:4 rd:4 rm:4 kind:2 amt:5               |
//! | 0x2   | multiply family      | sub:2 s:1 rd:4 ra:4 rm:4 rs:4 (pad:5)              |
//! | 0x3   | movw/movt            | top:1 rd:4 (pad:3) imm:16                          |
//! | 0x4   | mem, imm offset      | l:1 width:2 signed:1 mode:2 u:1 rn:4 rd:4 imm:9    |
//! | 0x5   | mem, reg offset      | l:1 width:2 signed:1 mode:2 u:1 rn:4 rd:4 rm:4 kind:2 amt:3 |
//! | 0x8   | b                    | offset:24 (signed words)                           |
//! | 0x9   | bl                   | offset:24 (signed words)                           |
//! | 0xA   | bx                   | (pad:20) rm:4                                      |
//! | 0xB   | push/pop             | (pad:7) pop:1 mask:16                              |
//! | 0xC   | swi                  | imm:24                                             |
//! | 0xD   | nop                  | 0                                                  |
//! | 0xE   | ALU, reg, reg shift  | op:4 s:1 rn:4 rd:4 rm:4 kind:2 (pad:1) rs:4        |
//!
//! Classes 0x6, 0x7 and 0xF are unallocated and decode to an error, which
//! the simulator raises as an illegal-instruction fault.

use std::error::Error;
use std::fmt;

use crate::{
    AddrMode, Address, AluOp, Cond, Insn, MemOffset, MemWidth, MulOp, Op, Operand, Reg, RegList,
    ShiftAmount, ShiftKind,
};

/// Error produced when a word does not decode to a valid instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The offending word.
    pub word: u32,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#010x}: {}", self.word, self.reason)
    }
}

impl Error for DecodeError {}

const CLASS_ALU_IMM: u32 = 0x0;
const CLASS_ALU_REG: u32 = 0x1;
const CLASS_MUL: u32 = 0x2;
const CLASS_MOV16: u32 = 0x3;
const CLASS_MEM_IMM: u32 = 0x4;
const CLASS_MEM_REG: u32 = 0x5;
const CLASS_B: u32 = 0x8;
const CLASS_BL: u32 = 0x9;
const CLASS_BX: u32 = 0xa;
const CLASS_PUSHPOP: u32 = 0xb;
const CLASS_SWI: u32 = 0xc;
const CLASS_NOP: u32 = 0xd;
const CLASS_ALU_REGSHIFT: u32 = 0xe;

fn addr_mode_field(mode: AddrMode) -> u32 {
    match mode {
        AddrMode::Offset => 0,
        AddrMode::PreIndex => 1,
        AddrMode::PostIndex => 2,
    }
}

fn addr_mode_from_field(bits: u32) -> Option<AddrMode> {
    match bits & 0b11 {
        0 => Some(AddrMode::Offset),
        1 => Some(AddrMode::PreIndex),
        2 => Some(AddrMode::PostIndex),
        _ => None,
    }
}

impl Insn {
    /// Encodes the instruction into its 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if a field is out of its encodable range (an ALU immediate
    /// above 2047, a memory offset beyond ±511, a shift amount above 31, a
    /// branch offset beyond ±2²³ words, …). The assembler guarantees the
    /// ranges; constructing instructions by hand must respect them.
    #[must_use]
    pub fn encode(&self) -> u32 {
        let cond = self.cond.field() << 28;
        let word = match self.op {
            Op::Alu { op, s, rd, rn, op2 } => {
                let head =
                    op.field() << 20 | u32::from(s) << 19 | rn.field() << 15 | rd.field() << 11;
                match op2 {
                    Operand::Imm(imm) => {
                        assert!(imm <= Operand::MAX_IMM, "ALU immediate {imm} out of range");
                        CLASS_ALU_IMM << 24 | head | imm
                    }
                    Operand::Reg { rm, kind, amount } => match amount {
                        ShiftAmount::Imm(amt) => {
                            assert!(amt < 32, "shift amount {amt} out of range");
                            CLASS_ALU_REG << 24
                                | head
                                | rm.field() << 7
                                | kind.field() << 5
                                | u32::from(amt)
                        }
                        ShiftAmount::Reg(rs) => {
                            CLASS_ALU_REGSHIFT << 24
                                | head
                                | rm.field() << 7
                                | kind.field() << 5
                                | rs.field()
                        }
                    },
                }
            }
            Op::Mul { op, s, rd, ra, rm, rs } => {
                CLASS_MUL << 24
                    | op.field() << 22
                    | u32::from(s) << 21
                    | rd.field() << 17
                    | ra.field() << 13
                    | rm.field() << 9
                    | rs.field() << 5
            }
            Op::Mov16 { top, rd, imm } => {
                CLASS_MOV16 << 24 | u32::from(top) << 23 | rd.field() << 19 | u32::from(imm)
            }
            Op::Mem { load, width, signed, rd, addr } => {
                let head = u32::from(load) << 23
                    | width.field() << 21
                    | u32::from(signed) << 20
                    | addr_mode_field(addr.mode) << 18
                    | addr.base.field() << 13
                    | rd.field() << 9;
                match addr.offset {
                    MemOffset::Imm(imm) => {
                        let mag = imm.unsigned_abs();
                        assert!(
                            mag <= MemOffset::MAX_IMM as u32,
                            "memory offset {imm} out of range"
                        );
                        CLASS_MEM_IMM << 24 | head | u32::from(imm >= 0) << 17 | mag
                    }
                    MemOffset::Reg { rm, kind, amount, add } => {
                        assert!(amount < 8, "memory shift amount {amount} out of range");
                        CLASS_MEM_REG << 24
                            | head
                            | u32::from(add) << 17
                            | rm.field() << 5
                            | kind.field() << 3
                            | u32::from(amount)
                    }
                }
            }
            Op::Push { list } => CLASS_PUSHPOP << 24 | u32::from(list.mask()),
            Op::Pop { list } => CLASS_PUSHPOP << 24 | 1 << 16 | u32::from(list.mask()),
            Op::Branch { link, offset } => {
                assert!(
                    (-(1 << 23)..1 << 23).contains(&offset),
                    "branch offset {offset} out of range"
                );
                let class = if link { CLASS_BL } else { CLASS_B };
                class << 24 | (offset as u32 & 0x00ff_ffff)
            }
            Op::BranchReg { rm } => CLASS_BX << 24 | rm.field(),
            Op::Swi { imm } => {
                assert!(imm < 1 << 24, "swi number {imm} out of range");
                CLASS_SWI << 24 | imm
            }
            Op::Nop => CLASS_NOP << 24,
        };
        cond | word
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unallocated classes, the reserved
    /// condition field, or unallocated sub-fields.
    pub fn decode(word: u32) -> Result<Insn, DecodeError> {
        let cond = Cond::from_field(word >> 28)
            .ok_or(DecodeError { word, reason: "reserved condition field" })?;
        let class = word >> 24 & 0xf;
        let op = match class {
            CLASS_ALU_IMM | CLASS_ALU_REG | CLASS_ALU_REGSHIFT => {
                let op = AluOp::from_field(word >> 20)
                    .ok_or(DecodeError { word, reason: "unallocated ALU opcode" })?;
                let s = word >> 19 & 1 != 0;
                let rn = Reg::from_field(word >> 15);
                let rd = Reg::from_field(word >> 11);
                let op2 = match class {
                    CLASS_ALU_IMM => Operand::Imm(word & 0x7ff),
                    CLASS_ALU_REG => Operand::Reg {
                        rm: Reg::from_field(word >> 7),
                        kind: ShiftKind::from_field(word >> 5),
                        amount: ShiftAmount::Imm((word & 0x1f) as u8),
                    },
                    _ => Operand::Reg {
                        rm: Reg::from_field(word >> 7),
                        kind: ShiftKind::from_field(word >> 5),
                        amount: ShiftAmount::Reg(Reg::from_field(word)),
                    },
                };
                Op::Alu { op, s, rd, rn, op2 }
            }
            CLASS_MUL => Op::Mul {
                op: MulOp::from_field(word >> 22),
                s: word >> 21 & 1 != 0,
                rd: Reg::from_field(word >> 17),
                ra: Reg::from_field(word >> 13),
                rm: Reg::from_field(word >> 9),
                rs: Reg::from_field(word >> 5),
            },
            CLASS_MOV16 => Op::Mov16 {
                top: word >> 23 & 1 != 0,
                rd: Reg::from_field(word >> 19),
                imm: (word & 0xffff) as u16,
            },
            CLASS_MEM_IMM | CLASS_MEM_REG => {
                let load = word >> 23 & 1 != 0;
                let width = MemWidth::from_field(word >> 21)
                    .ok_or(DecodeError { word, reason: "unallocated memory width" })?;
                let signed = word >> 20 & 1 != 0;
                let mode = addr_mode_from_field(word >> 18)
                    .ok_or(DecodeError { word, reason: "unallocated addressing mode" })?;
                let add = word >> 17 & 1 != 0;
                let base = Reg::from_field(word >> 13);
                let rd = Reg::from_field(word >> 9);
                let offset = if class == CLASS_MEM_IMM {
                    let mag = (word & 0x1ff) as i32;
                    MemOffset::Imm(if add { mag } else { -mag })
                } else {
                    MemOffset::Reg {
                        rm: Reg::from_field(word >> 5),
                        kind: ShiftKind::from_field(word >> 3),
                        amount: (word & 0b111) as u8,
                        add,
                    }
                };
                Op::Mem { load, width, signed, rd, addr: Address { base, offset, mode } }
            }
            CLASS_B | CLASS_BL => {
                let raw = word & 0x00ff_ffff;
                // Sign-extend the 24-bit field.
                let offset = (raw << 8) as i32 >> 8;
                Op::Branch { link: class == CLASS_BL, offset }
            }
            CLASS_BX => Op::BranchReg { rm: Reg::from_field(word) },
            CLASS_PUSHPOP => {
                let list = RegList::from_mask((word & 0xffff) as u16);
                if word >> 16 & 1 != 0 {
                    Op::Pop { list }
                } else {
                    Op::Push { list }
                }
            }
            CLASS_SWI => Op::Swi { imm: word & 0x00ff_ffff },
            CLASS_NOP => Op::Nop,
            _ => return Err(DecodeError { word, reason: "unallocated instruction class" }),
        };
        Ok(Insn { cond, op })
    }
}

/// Normalises an instruction so that don't-care fields (ignored registers,
/// negative-zero offsets) take their canonical encoded value. Useful for
/// round-trip testing: `decode(encode(x)) == canonical(x)`.
#[must_use]
pub fn canonical(insn: Insn) -> Insn {
    let op = match insn.op {
        // Compares always update the flags and have no destination;
        // `mov`/`mvn` read no first operand. The assembler zeroes the
        // ignored fields, so the canonical form does too.
        Op::Alu { op, rd, rn, op2, s } => {
            let s = s || op.is_compare();
            let rd = if op.has_rd() { rd } else { Reg::R0 };
            let rn = if op.has_rn() { rn } else { Reg::R0 };
            Op::Alu { op, s, rd, rn, op2 }
        }
        Op::Mem { load, width, signed, rd, addr } => {
            let offset = addr.offset;
            Op::Mem {
                load,
                width,
                // Sign extension is only meaningful for sub-word loads.
                signed: signed && load && width != MemWidth::Word,
                rd,
                addr: Address { offset, ..addr },
            }
        }
        other => other,
    };
    Insn { cond: insn.cond, op }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(insn: Insn) {
        let word = insn.encode();
        let back = Insn::decode(word).unwrap_or_else(|e| panic!("{insn}: {e}"));
        assert_eq!(back, insn, "round trip for `{insn}` ({word:#010x})");
    }

    #[test]
    fn alu_imm_round_trip() {
        for op in AluOp::ALL {
            for imm in [0u32, 1, 255, 2047] {
                round_trip(Insn::new(
                    Cond::Ne,
                    Op::Alu { op, s: true, rd: Reg::R3, rn: Reg::R7, op2: Operand::Imm(imm) },
                ));
            }
        }
    }

    #[test]
    fn alu_reg_round_trip() {
        for kind in ShiftKind::ALL {
            for amt in [0u8, 1, 15, 31] {
                round_trip(Insn::always(Op::Alu {
                    op: AluOp::Eor,
                    s: false,
                    rd: Reg::R0,
                    rn: Reg::LR,
                    op2: Operand::Reg { rm: Reg::R9, kind, amount: ShiftAmount::Imm(amt) },
                }));
                round_trip(Insn::always(Op::Alu {
                    op: AluOp::Add,
                    s: true,
                    rd: Reg::IP,
                    rn: Reg::R1,
                    op2: Operand::Reg { rm: Reg::R2, kind, amount: ShiftAmount::Reg(Reg::R3) },
                }));
            }
        }
    }

    #[test]
    fn mul_round_trip() {
        for op in [MulOp::Mul, MulOp::Mla, MulOp::Umull, MulOp::Smull] {
            round_trip(Insn::always(Op::Mul {
                op,
                s: op == MulOp::Mul,
                rd: Reg::R1,
                ra: Reg::R2,
                rm: Reg::R3,
                rs: Reg::R4,
            }));
        }
    }

    #[test]
    fn mov16_round_trip() {
        round_trip(Insn::always(Op::Mov16 { top: false, rd: Reg::R5, imm: 0xbeef }));
        round_trip(Insn::always(Op::Mov16 { top: true, rd: Reg::R5, imm: 0xdead }));
    }

    #[test]
    fn mem_round_trip() {
        for load in [false, true] {
            for width in [MemWidth::Word, MemWidth::Byte, MemWidth::Half] {
                for mode in [AddrMode::Offset, AddrMode::PreIndex, AddrMode::PostIndex] {
                    for imm in [-511, -1, 1, 0, 511] {
                        round_trip(Insn::always(Op::Mem {
                            load,
                            width,
                            signed: false,
                            rd: Reg::R0,
                            addr: Address { base: Reg::SP, offset: MemOffset::Imm(imm), mode },
                        }));
                    }
                }
            }
        }
        round_trip(Insn::always(Op::Mem {
            load: true,
            width: MemWidth::Half,
            signed: true,
            rd: Reg::R8,
            addr: Address {
                base: Reg::R9,
                offset: MemOffset::Reg {
                    rm: Reg::R10,
                    kind: ShiftKind::Lsl,
                    amount: 1,
                    add: false,
                },
                mode: AddrMode::Offset,
            },
        }));
    }

    #[test]
    fn branch_round_trip() {
        for offset in [0, 1, -1, 1000, -1000, (1 << 23) - 1, -(1 << 23)] {
            round_trip(Insn::always(Op::Branch { link: false, offset }));
            round_trip(Insn::new(Cond::Lt, Op::Branch { link: true, offset }));
        }
    }

    #[test]
    fn misc_round_trip() {
        round_trip(Insn::always(Op::BranchReg { rm: Reg::LR }));
        round_trip(Insn::always(Op::Push {
            list: [Reg::R4, Reg::R5, Reg::LR].into_iter().collect(),
        }));
        round_trip(Insn::always(Op::Pop {
            list: [Reg::R4, Reg::R5, Reg::PC].into_iter().collect(),
        }));
        round_trip(Insn::always(Op::Swi { imm: 0 }));
        round_trip(Insn::always(Op::Swi { imm: 0x00ff_ffff }));
        round_trip(Insn::new(Cond::Eq, Op::Nop));
    }

    #[test]
    fn decode_rejects_reserved() {
        // Reserved condition field (0xF).
        assert!(Insn::decode(0xf000_0000).is_err());
        // Unallocated classes 0x6, 0x7, 0xF.
        assert!(Insn::decode(0x0600_0000).is_err());
        assert!(Insn::decode(0x0700_0000).is_err());
        assert!(Insn::decode(0x0f00_0000).is_err());
        // ALU opcode 15 is unallocated.
        assert!(Insn::decode(0x00f0_0000).is_err());
        // Memory width 3 is unallocated.
        assert!(Insn::decode(0x0460_0000).is_err());
        // Addressing mode 3 is unallocated.
        assert!(Insn::decode(0x040c_0000).is_err());
    }

    #[test]
    fn decode_error_display() {
        let err = Insn::decode(0xf000_0000).unwrap_err();
        assert!(err.to_string().contains("0xf0000000"));
        assert!(err.to_string().contains("reserved condition"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_panics_on_oversized_imm() {
        let _ = Insn::always(Op::Alu {
            op: AluOp::Add,
            s: false,
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Operand::Imm(4096),
        })
        .encode();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_panics_on_oversized_branch() {
        let _ = Insn::always(Op::Branch { link: false, offset: 1 << 23 }).encode();
    }
}
