//! Architectural ALU semantics shared by the functional and timing
//! simulators: carry/overflow-exact addition and the data-processing
//! result computation.

use crate::{AluOp, Flags};

/// `a + b + carry_in` with the ARM carry/overflow rules.
///
/// Returns `(result, carry_out, overflow)`.
///
/// # Examples
///
/// ```
/// use wp_isa::alu::add_with_carry;
/// let (r, c, v) = add_with_carry(u32::MAX, 1, false);
/// assert_eq!((r, c, v), (0, true, false));
/// let (r, c, v) = add_with_carry(0x7fff_ffff, 1, false);
/// assert_eq!((r, c, v), (0x8000_0000, false, true));
/// ```
#[must_use]
pub fn add_with_carry(a: u32, b: u32, carry_in: bool) -> (u32, bool, bool) {
    let unsigned = u64::from(a) + u64::from(b) + u64::from(carry_in);
    let signed = i64::from(a as i32) + i64::from(b as i32) + i64::from(carry_in);
    let result = unsigned as u32;
    let carry = unsigned > u64::from(u32::MAX);
    let overflow = signed != i64::from(result as i32);
    (result, carry, overflow)
}

/// The outcome of a data-processing operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AluOutcome {
    /// The 32-bit result (meaningless for compares, but still computed).
    pub result: u32,
    /// The flags the operation would write if its S bit is set.
    pub flags: Flags,
}

/// Computes a data-processing result given the first operand `rn_value`,
/// the shifter output `op2` with its carry-out `shifter_carry`, and the
/// current flags (consumed by `adc`/`sbc` and preserved into V for
/// logical operations).
#[must_use]
pub fn alu_compute(
    op: AluOp,
    rn_value: u32,
    op2: u32,
    shifter_carry: bool,
    flags: Flags,
) -> AluOutcome {
    let arith = |result: u32, carry: bool, overflow: bool| AluOutcome {
        result,
        flags: Flags::from_result(result, carry, overflow),
    };
    let logical = |result: u32| AluOutcome {
        result,
        flags: Flags::from_logical(result, shifter_carry, flags),
    };
    match op {
        AluOp::And | AluOp::Tst => logical(rn_value & op2),
        AluOp::Eor | AluOp::Teq => logical(rn_value ^ op2),
        AluOp::Orr => logical(rn_value | op2),
        AluOp::Bic => logical(rn_value & !op2),
        AluOp::Mov => logical(op2),
        AluOp::Mvn => logical(!op2),
        AluOp::Add | AluOp::Cmn => {
            let (r, c, v) = add_with_carry(rn_value, op2, false);
            arith(r, c, v)
        }
        AluOp::Adc => {
            let (r, c, v) = add_with_carry(rn_value, op2, flags.c);
            arith(r, c, v)
        }
        AluOp::Sub | AluOp::Cmp => {
            let (r, c, v) = add_with_carry(rn_value, !op2, true);
            arith(r, c, v)
        }
        AluOp::Sbc => {
            let (r, c, v) = add_with_carry(rn_value, !op2, flags.c);
            arith(r, c, v)
        }
        AluOp::Rsb => {
            let (r, c, v) = add_with_carry(op2, !rn_value, true);
            arith(r, c, v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F0: Flags = Flags { n: false, z: false, c: false, v: false };

    #[test]
    fn add_with_carry_cases() {
        assert_eq!(add_with_carry(2, 3, false), (5, false, false));
        assert_eq!(add_with_carry(u32::MAX, 0, true), (0, true, false));
        assert_eq!(add_with_carry(0x8000_0000, 0x8000_0000, false), (0, true, true));
        assert_eq!(add_with_carry(0x7fff_ffff, 0x7fff_ffff, false), (0xffff_fffe, false, true));
    }

    #[test]
    fn sub_via_complement() {
        // 5 - 3 = 2, no borrow => carry set (ARM convention).
        let out = alu_compute(AluOp::Sub, 5, 3, false, F0);
        assert_eq!(out.result, 2);
        assert!(out.flags.c);
        assert!(!out.flags.n && !out.flags.z && !out.flags.v);
        // 3 - 5 borrows => carry clear, negative.
        let out = alu_compute(AluOp::Sub, 3, 5, false, F0);
        assert_eq!(out.result, -2i32 as u32);
        assert!(!out.flags.c);
        assert!(out.flags.n);
    }

    #[test]
    fn cmp_matches_sub() {
        for (a, b) in [(0u32, 0u32), (5, 3), (3, 5), (u32::MAX, 1), (0x8000_0000, 1)] {
            assert_eq!(
                alu_compute(AluOp::Cmp, a, b, false, F0).flags,
                alu_compute(AluOp::Sub, a, b, false, F0).flags
            );
        }
    }

    #[test]
    fn rsb_reverses() {
        let out = alu_compute(AluOp::Rsb, 3, 10, false, F0);
        assert_eq!(out.result, 7);
    }

    #[test]
    fn adc_sbc_chain() {
        // 64-bit add: 0xffffffff_ffffffff + 1
        let lo = alu_compute(AluOp::Add, u32::MAX, 1, false, F0);
        assert_eq!(lo.result, 0);
        assert!(lo.flags.c);
        let hi = alu_compute(AluOp::Adc, u32::MAX, 0, false, lo.flags);
        assert_eq!(hi.result, 0);
        assert!(hi.flags.c);

        // 64-bit sub: 0x1_00000000 - 1 = 0x0_ffffffff
        let lo = alu_compute(AluOp::Sub, 0, 1, false, F0);
        assert_eq!(lo.result, u32::MAX);
        assert!(!lo.flags.c, "borrow clears carry");
        let hi = alu_compute(AluOp::Sbc, 1, 0, false, lo.flags);
        assert_eq!(hi.result, 0);
    }

    #[test]
    fn logical_ops_use_shifter_carry() {
        let out = alu_compute(AluOp::Mov, 0, 0, true, F0);
        assert!(out.flags.c, "shifter carry propagates");
        assert!(out.flags.z);
        let old = Flags { v: true, ..F0 };
        let out = alu_compute(AluOp::And, 0xff, 0x0f, false, old);
        assert_eq!(out.result, 0x0f);
        assert!(out.flags.v, "V preserved by logicals");
    }

    #[test]
    fn mvn_and_bic() {
        assert_eq!(alu_compute(AluOp::Mvn, 0, 0, false, F0).result, u32::MAX);
        assert_eq!(alu_compute(AluOp::Bic, 0xff, 0x0f, false, F0).result, 0xf0);
    }
}
