//! General-purpose register file description for the guest ISA.
//!
//! The guest machine follows the classic ARM register convention: sixteen
//! 32-bit registers, with `r13` doubling as the stack pointer, `r14` as the
//! link register and `r15` as the program counter. Unlike real ARM, the
//! program counter is *not* a freely addressable operand in data-processing
//! instructions; it is only written by branches and by `pop {pc}` /
//! `bx lr` — this keeps the pipeline model honest without the archaic
//! `pc+8` visibility rules.

use std::fmt;

/// Number of architectural general-purpose registers.
pub const NUM_REGS: usize = 16;

/// A guest general-purpose register (`r0`..`r15`).
///
/// # Examples
///
/// ```
/// use wp_isa::Reg;
/// let sp = Reg::SP;
/// assert_eq!(sp.index(), 13);
/// assert_eq!(sp.to_string(), "sp");
/// assert_eq!(Reg::new(4).to_string(), "r4");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Register 0, the first argument/return-value register.
    pub const R0: Reg = Reg(0);
    /// Register 1.
    pub const R1: Reg = Reg(1);
    /// Register 2.
    pub const R2: Reg = Reg(2);
    /// Register 3.
    pub const R3: Reg = Reg(3);
    /// Register 4 (callee-saved).
    pub const R4: Reg = Reg(4);
    /// Register 5 (callee-saved).
    pub const R5: Reg = Reg(5);
    /// Register 6 (callee-saved).
    pub const R6: Reg = Reg(6);
    /// Register 7 (callee-saved).
    pub const R7: Reg = Reg(7);
    /// Register 8 (callee-saved).
    pub const R8: Reg = Reg(8);
    /// Register 9 (callee-saved).
    pub const R9: Reg = Reg(9);
    /// Register 10 (callee-saved).
    pub const R10: Reg = Reg(10);
    /// Register 11, conventionally the frame pointer.
    pub const FP: Reg = Reg(11);
    /// Register 12, the intra-procedure scratch register.
    pub const IP: Reg = Reg(12);
    /// Register 13, the stack pointer.
    pub const SP: Reg = Reg(13);
    /// Register 14, the link register.
    pub const LR: Reg = Reg(14);
    /// Register 15, the program counter.
    pub const PC: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!((index as usize) < NUM_REGS, "register index {index} out of range");
        Reg(index)
    }

    /// Creates a register from its index without bounds checking the
    /// *architectural* range; out-of-range values are masked to 4 bits.
    /// Used by the instruction decoder, where the field width already
    /// guarantees the range.
    #[must_use]
    pub const fn from_field(bits: u32) -> Reg {
        Reg((bits & 0xf) as u8)
    }

    /// The register's index, `0..16`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The register's index as the 4-bit encoding field.
    #[must_use]
    pub const fn field(self) -> u32 {
        self.0 as u32
    }

    /// Whether this register is the program counter.
    #[must_use]
    pub const fn is_pc(self) -> bool {
        self.0 == 15
    }

    /// Parses a register name (`r0`..`r15`, `fp`, `ip`, `sp`, `lr`, `pc`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Reg> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "fp" => return Some(Reg::FP),
            "ip" => return Some(Reg::IP),
            "sp" => return Some(Reg::SP),
            "lr" => return Some(Reg::LR),
            "pc" => return Some(Reg::PC),
            _ => {}
        }
        let digits = lower.strip_prefix('r')?;
        let index: u8 = digits.parse().ok()?;
        if (index as usize) < NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// Iterates over all sixteen registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            13 => write!(f, "sp"),
            14 => write!(f, "lr"),
            15 => write!(f, "pc"),
            n => write!(f, "r{n}"),
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A set of registers, as used by `push`/`pop` and the load/store-multiple
/// instructions. Backed by a 16-bit mask, one bit per register.
///
/// # Examples
///
/// ```
/// use wp_isa::{Reg, RegList};
/// let list: RegList = [Reg::R4, Reg::R5, Reg::LR].into_iter().collect();
/// assert_eq!(list.len(), 3);
/// assert!(list.contains(Reg::LR));
/// assert_eq!(list.to_string(), "{r4, r5, lr}");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegList(u16);

impl RegList {
    /// The empty register list.
    #[must_use]
    pub const fn new() -> RegList {
        RegList(0)
    }

    /// Builds a list directly from its 16-bit mask.
    #[must_use]
    pub const fn from_mask(mask: u16) -> RegList {
        RegList(mask)
    }

    /// The 16-bit mask, bit *i* set iff `r<i>` is in the list.
    #[must_use]
    pub const fn mask(self) -> u16 {
        self.0
    }

    /// Inserts a register into the list.
    pub fn insert(&mut self, reg: Reg) {
        self.0 |= 1 << reg.index();
    }

    /// Whether the list contains `reg`.
    #[must_use]
    pub const fn contains(self, reg: Reg) -> bool {
        self.0 & (1 << reg.0) != 0
    }

    /// Number of registers in the list.
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the list is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the members in ascending register order (the memory
    /// order used by the block transfer instructions).
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).filter(move |i| self.0 & (1 << i) != 0).map(Reg)
    }
}

impl FromIterator<Reg> for RegList {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegList {
        let mut list = RegList::new();
        for reg in iter {
            list.insert(reg);
        }
        list
    }
}

impl Extend<Reg> for RegList {
    fn extend<I: IntoIterator<Item = Reg>>(&mut self, iter: I) {
        for reg in iter {
            self.insert(reg);
        }
    }
}

impl fmt::Display for RegList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for reg in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{reg}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for RegList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names_round_trip() {
        for reg in Reg::all() {
            let name = reg.to_string();
            assert_eq!(Reg::parse(&name), Some(reg), "{name}");
        }
        // Aliases parse to the same architectural registers.
        assert_eq!(Reg::parse("r13"), Some(Reg::SP));
        assert_eq!(Reg::parse("r14"), Some(Reg::LR));
        assert_eq!(Reg::parse("r15"), Some(Reg::PC));
        assert_eq!(Reg::parse("R3"), Some(Reg::R3));
        assert_eq!(Reg::parse("fp"), Some(Reg::new(11)));
    }

    #[test]
    fn parse_rejects_junk() {
        assert_eq!(Reg::parse("r16"), None);
        assert_eq!(Reg::parse("x0"), None);
        assert_eq!(Reg::parse(""), None);
        assert_eq!(Reg::parse("r"), None);
        assert_eq!(Reg::parse("r-1"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(16);
    }

    #[test]
    fn reglist_basics() {
        let mut list = RegList::new();
        assert!(list.is_empty());
        list.insert(Reg::R0);
        list.insert(Reg::LR);
        list.insert(Reg::R0); // duplicate insert is idempotent
        assert_eq!(list.len(), 2);
        assert!(list.contains(Reg::R0));
        assert!(!list.contains(Reg::R1));
        let members: Vec<Reg> = list.iter().collect();
        assert_eq!(members, vec![Reg::R0, Reg::LR]);
    }

    #[test]
    fn reglist_display() {
        let list: RegList = [Reg::R0, Reg::SP, Reg::PC].into_iter().collect();
        assert_eq!(list.to_string(), "{r0, sp, pc}");
        assert_eq!(RegList::new().to_string(), "{}");
    }

    #[test]
    fn reglist_mask_round_trip() {
        let list = RegList::from_mask(0b1010_0000_0000_0101);
        assert_eq!(list.mask(), 0b1010_0000_0000_0101);
        assert_eq!(list.len(), 4);
    }
}
